type t = {
  alphabet : string array;
  size : int;
  start : int;
  final : bool array;
  next : int array array;
}

let symbol_index dfa sym =
  let found = ref None in
  Array.iteri
    (fun i s -> if String.equal s sym then found := Some i)
    dfa.alphabet;
  !found

let make ~alphabet ~size ~start ~finals ~trans =
  let module S = Set.Make (String) in
  let alpha = Array.of_list (S.elements (S.of_list alphabet)) in
  let k = Array.length alpha in
  let sink = size in
  let next = Array.init (size + 1) (fun _ -> Array.make k sink) in
  let final = Array.make (size + 1) false in
  List.iter (fun f ->
      if f < 0 || f >= size then invalid_arg "Dfa.make: final out of range";
      final.(f) <- true)
    finals;
  let sym_idx s =
    let rec find i =
      if i >= k then invalid_arg ("Dfa.make: unknown symbol " ^ s)
      else if String.equal alpha.(i) s then i
      else find (i + 1)
    in
    find 0
  in
  List.iter
    (fun (src, sym, dst) ->
      if src < 0 || src >= size || dst < 0 || dst >= size then
        invalid_arg "Dfa.make: state out of range";
      next.(src).(sym_idx sym) <- dst)
    trans;
  if start < 0 || start >= size then invalid_arg "Dfa.make: bad start";
  { alphabet = alpha; size = size + 1; start; final; next }

let of_nfa nfa =
  let alpha = Array.of_list (Nfa.alphabet nfa) in
  let k = Array.length alpha in
  let table = Hashtbl.create 64 in
  let states = ref [] in
  let counter = ref 0 in
  let id_of set =
    match Hashtbl.find_opt table set with
    | Some id -> id
    | None ->
        let id = !counter in
        incr counter;
        Hashtbl.add table set id;
        states := (id, set) :: !states;
        id
  in
  let start_set = Nfa.eps_closure nfa [ nfa.start ] in
  let start = id_of start_set in
  let transitions = ref [] in
  let rec explore = function
    | [] -> ()
    | set :: rest ->
        let id = Hashtbl.find table set in
        let new_sets =
          Array.to_list alpha
          |> List.filter_map (fun sym ->
                 let dst_set = Nfa.step nfa set sym in
                 let known = Hashtbl.mem table dst_set in
                 let dst = id_of dst_set in
                 transitions := (id, sym, dst) :: !transitions;
                 if known then None else Some dst_set)
        in
        explore (new_sets @ rest)
  in
  explore [ start_set ];
  let size = !counter in
  let next = Array.init size (fun _ -> Array.make k 0) in
  let final = Array.make size false in
  List.iter
    (fun (id, set) -> if List.mem nfa.final set then final.(id) <- true)
    !states;
  List.iter
    (fun (src, sym, dst) ->
      let rec idx i = if String.equal alpha.(i) sym then i else idx (i + 1) in
      next.(src).(idx 0) <- dst)
    !transitions;
  { alphabet = alpha; size; start; final; next }

let of_regex regex = of_nfa (Nfa.of_regex regex)

let accepts dfa word =
  let rec go state = function
    | [] -> dfa.final.(state)
    | sym :: rest -> (
        match symbol_index dfa sym with
        | None -> false
        | Some i -> go dfa.next.(state).(i) rest)
  in
  go dfa.start word

let reachable dfa =
  let seen = Array.make dfa.size false in
  let rec go = function
    | [] -> ()
    | s :: rest ->
        if seen.(s) then go rest
        else begin
          seen.(s) <- true;
          go (Array.to_list dfa.next.(s) @ rest)
        end
  in
  go [ dfa.start ];
  seen

let reachable_count dfa =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (reachable dfa)

let minimize dfa =
  let seen = reachable dfa in
  (* Moore refinement over reachable states. *)
  let k = Array.length dfa.alphabet in
  let classes = Array.make dfa.size 0 in
  Array.iteri
    (fun s f -> if seen.(s) then classes.(s) <- (if f then 1 else 0))
    dfa.final;
  let changed = ref true in
  while !changed do
    changed := false;
    (* Signature: own class + class of each successor. *)
    let sig_table = Hashtbl.create 64 in
    let fresh = ref 0 in
    let new_classes = Array.make dfa.size 0 in
    for s = 0 to dfa.size - 1 do
      if seen.(s) then begin
        let signature =
          (classes.(s), Array.to_list (Array.map (fun d -> classes.(d)) dfa.next.(s)))
        in
        let c =
          match Hashtbl.find_opt sig_table signature with
          | Some c -> c
          | None ->
              let c = !fresh in
              incr fresh;
              Hashtbl.add sig_table signature c;
              c
        in
        new_classes.(s) <- c
      end
    done;
    let distinct_before =
      let module IS = Set.Make (Int) in
      IS.cardinal
        (Array.to_list classes
        |> List.filteri (fun s _ -> seen.(s))
        |> IS.of_list)
    in
    let distinct_after = Hashtbl.length sig_table in
    if distinct_after <> distinct_before then begin
      changed := true;
      Array.blit new_classes 0 classes 0 dfa.size
    end
    else Array.blit new_classes 0 classes 0 dfa.size
  done;
  let module IS = Set.Make (Int) in
  let class_ids =
    Array.to_list classes
    |> List.filteri (fun s _ -> seen.(s))
    |> IS.of_list |> IS.elements
  in
  let remap = Hashtbl.create 16 in
  List.iteri (fun i c -> Hashtbl.add remap c i) class_ids;
  let size = List.length class_ids in
  let next = Array.init size (fun _ -> Array.make k 0) in
  let final = Array.make size false in
  for s = 0 to dfa.size - 1 do
    if seen.(s) then begin
      let c = Hashtbl.find remap classes.(s) in
      final.(c) <- dfa.final.(s);
      for a = 0 to k - 1 do
        next.(c).(a) <- Hashtbl.find remap classes.(dfa.next.(s).(a))
      done
    end
  done;
  {
    alphabet = dfa.alphabet;
    size;
    start = Hashtbl.find remap classes.(dfa.start);
    final;
    next;
  }

let complement dfa = { dfa with final = Array.map not dfa.final }

(* Step function tolerant of foreign symbols: None is the dead state. *)
let step_opt dfa state sym =
  match state with
  | None -> None
  | Some s -> (
      match symbol_index dfa sym with
      | None -> None
      | Some i -> Some dfa.next.(s).(i))

let final_opt dfa = function None -> false | Some s -> dfa.final.(s)

let product ~accept d1 d2 =
  let module S = Set.Make (String) in
  let alpha =
    S.elements
      (S.union
         (S.of_list (Array.to_list d1.alphabet))
         (S.of_list (Array.to_list d2.alphabet)))
  in
  let table = Hashtbl.create 64 in
  let counter = ref 0 in
  let transitions = ref [] in
  let finals = ref [] in
  let id_of pair =
    match Hashtbl.find_opt table pair with
    | Some id -> (id, true)
    | None ->
        let id = !counter in
        incr counter;
        Hashtbl.add table pair id;
        if accept (final_opt d1 (fst pair)) (final_opt d2 (snd pair)) then
          finals := id :: !finals;
        (id, false)
  in
  let start_pair = (Some d1.start, Some d2.start) in
  let start, _ = id_of start_pair in
  let rec explore = function
    | [] -> ()
    | pair :: rest ->
        let id, _ = id_of pair in
        let nexts =
          List.filter_map
            (fun sym ->
              let dst =
                (step_opt d1 (fst pair) sym, step_opt d2 (snd pair) sym)
              in
              let dst_id, known = id_of dst in
              transitions := (id, sym, dst_id) :: !transitions;
              if known then None else Some dst)
            alpha
        in
        explore (nexts @ rest)
  in
  explore [ start_pair ];
  make ~alphabet:alpha ~size:!counter ~start ~finals:!finals
    ~trans:!transitions

let intersect d1 d2 = product ~accept:( && ) d1 d2
let union d1 d2 = product ~accept:( || ) d1 d2
let difference d1 d2 = product ~accept:(fun a b -> a && not b) d1 d2

let is_empty dfa =
  let seen = reachable dfa in
  let empty = ref true in
  Array.iteri (fun s f -> if seen.(s) && f then empty := false) dfa.final;
  !empty

let equal_language d1 d2 =
  (* BFS over the synchronized product; a discrepancy in acceptance refutes
     equality. *)
  let module PS = Set.Make (struct
    type t = int option * int option

    let compare = compare
  end) in
  let module S = Set.Make (String) in
  let alpha =
    S.elements
      (S.union
         (S.of_list (Array.to_list d1.alphabet))
         (S.of_list (Array.to_list d2.alphabet)))
  in
  let rec go frontier seen =
    match frontier with
    | [] -> true
    | ((s1, s2) as pair) :: rest ->
        if PS.mem pair seen then go rest seen
        else if final_opt d1 s1 <> final_opt d2 s2 then false
        else
          let seen = PS.add pair seen in
          let succs =
            List.map
              (fun sym -> (step_opt d1 s1 sym, step_opt d2 s2 sym))
              alpha
          in
          go (succs @ rest) seen
  in
  go [ (Some d1.start, Some d2.start) ] PS.empty

let enumerate dfa ~max_len =
  (* BFS by length over (state, reversed word). *)
  let rec go frontier len acc =
    if len > max_len then List.rev acc
    else
      let acc =
        List.fold_left
          (fun acc (s, rev_word) ->
            if dfa.final.(s) then List.rev rev_word :: acc else acc)
          acc frontier
      in
      let next_frontier =
        List.concat_map
          (fun (s, rev_word) ->
            Array.to_list dfa.alphabet
            |> List.mapi (fun i sym -> (dfa.next.(s).(i), sym :: rev_word)))
          frontier
      in
      go next_frontier (len + 1) acc
  in
  go [ (dfa.start, []) ] 0 []

let shortest_accepted dfa =
  (* BFS with per-state visited marking. *)
  let seen = Array.make dfa.size false in
  let rec go = function
    | [] -> None
    | (s, rev_word) :: rest ->
        if dfa.final.(s) then Some (List.rev rev_word)
        else begin
          let nexts =
            Array.to_list dfa.alphabet
            |> List.mapi (fun i sym -> (dfa.next.(s).(i), sym :: rev_word))
            |> List.filter (fun (d, _) ->
                   if seen.(d) then false
                   else begin
                     seen.(d) <- true;
                     true
                   end)
          in
          go (rest @ nexts)
        end
  in
  seen.(dfa.start) <- true;
  go [ (dfa.start, []) ]

let states_count dfa = dfa.size

let pp ppf dfa =
  Format.fprintf ppf "@[<v>dfa(%d states, start %d)" dfa.size dfa.start;
  for s = 0 to dfa.size - 1 do
    Format.fprintf ppf "@,%d%s:" s (if dfa.final.(s) then "*" else "");
    Array.iteri
      (fun i sym -> Format.fprintf ppf " %s->%d" sym dfa.next.(s).(i))
      dfa.alphabet
  done;
  Format.fprintf ppf "@]"

let to_regex dfa =
  (* GNFA state elimination.  Matrix indexed by [0..n+1]: n is the new
     initial state, n+1 the new final state. *)
  let n = dfa.size in
  let init = n and fin = n + 1 in
  let m = Array.make_matrix (n + 2) (n + 2) Regex.Empty in
  let add src dst e =
    m.(src).(dst) <- Regex.simplify (Regex.Alt (m.(src).(dst), e))
  in
  for s = 0 to n - 1 do
    Array.iteri (fun i sym -> add s dfa.next.(s).(i) (Regex.Sym sym)) dfa.alphabet;
    if dfa.final.(s) then add s fin Regex.Eps
  done;
  add init dfa.start Regex.Eps;
  (* Eliminate states 0..n-1. *)
  for k = 0 to n - 1 do
    let loop = Regex.simplify (Regex.Star m.(k).(k)) in
    for i = 0 to n + 1 do
      if i <> k then
        for j = 0 to n + 1 do
          if j <> k && m.(i).(k) <> Regex.Empty && m.(k).(j) <> Regex.Empty
          then
            add i j
              (Regex.Cat (m.(i).(k), Regex.Cat (loop, m.(k).(j))))
        done
    done;
    for i = 0 to n + 1 do
      m.(i).(k) <- Regex.Empty;
      m.(k).(i) <- Regex.Empty
    done
  done;
  Regex.simplify m.(init).(fin)
