lib/graphdb/generators.mli: Core Graph
