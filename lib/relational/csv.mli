(** CSV serialization of relations, so the command-line front end can learn
    joins over real tables.  The dialect is minimal RFC-4180: the first
    record is the attribute header; fields may be double-quoted, with [""]
    escaping a quote and quoted fields spanning newlines; separators default
    to [','].  Values parse via
    {!Value.of_string} (integers as [Int]). *)

exception Syntax_error of string

val parse : ?separator:char -> name:string -> string -> Relation.t
(** @raise Syntax_error on unbalanced quotes or ragged rows.
    @raise Invalid_argument on duplicate header names. *)

val parse_result :
  ?separator:char -> ?source:string -> name:string -> string ->
  (Relation.t, Core.Error.t) result
(** Non-raising variant of {!parse}: unbalanced quotes, ragged rows and
    duplicate header names all yield a structured {!Core.Error.t}; ragged
    rows carry the offending 1-based line number.  [source] (default
    ["<csv>"]) names the input in messages. *)

val to_string : ?separator:char -> Relation.t -> string
(** Header + rows; fields are quoted when they contain the separator, a
    quote, or a newline.  [parse (to_string r)] reconstructs [r]. *)
