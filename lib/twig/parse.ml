exception Syntax_error of string

(* Internal: keeps the raw offset so [query_result] can report line/column;
   the raising [query] formats it into the historical message. *)
exception Located of string * int

type cursor = { input : string; mutable pos : int }

let peek cur =
  if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None

let fail cur msg = raise (Located (msg, cur.pos))

let eat cur c =
  match peek cur with
  | Some c' when c' = c -> cur.pos <- cur.pos + 1
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let looking_at cur s =
  let n = String.length s in
  cur.pos + n <= String.length cur.input
  && String.sub cur.input cur.pos n = s

(* Unlike XML names, twig node tests exclude ':' and '.' so that axis
   syntax (following-sibling::b) and the relative-path dot are not silently
   swallowed into a label. *)
let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

(* An axis separator: '//' is Descendant, '/' is Child.  '//' must be checked
   first. *)
let read_axis cur =
  if looking_at cur "//" then (
    cur.pos <- cur.pos + 2;
    Query.Descendant)
  else (
    eat cur '/';
    Query.Child)

let read_test cur =
  match peek cur with
  | Some '*' ->
      cur.pos <- cur.pos + 1;
      Query.Wildcard
  | Some '@' ->
      cur.pos <- cur.pos + 1;
      let start = cur.pos in
      while
        match peek cur with Some c -> is_name_char c | None -> false
      do
        cur.pos <- cur.pos + 1
      done;
      if cur.pos = start then fail cur "expected an attribute name";
      Query.Label ("@" ^ String.sub cur.input start (cur.pos - start))
  | Some c when is_name_char c ->
      let start = cur.pos in
      while
        match peek cur with Some c -> is_name_char c | None -> false
      do
        cur.pos <- cur.pos + 1
      done;
      Query.Label (String.sub cur.input start (cur.pos - start))
  | _ -> fail cur "expected a node test"

let rec read_preds cur acc =
  match peek cur with
  | Some '[' ->
      cur.pos <- cur.pos + 1;
      let axis =
        if looking_at cur ".//" then (
          cur.pos <- cur.pos + 3;
          Query.Descendant)
        else Query.Child
      in
      let f = read_fnode cur in
      eat cur ']';
      read_preds cur ((axis, f) :: acc)
  | _ -> List.rev acc

and read_fnode cur =
  let test = read_test cur in
  let preds = read_preds cur [] in
  (* Optional trailing path continues the filter downward. *)
  match peek cur with
  | Some '/' ->
      let axis = read_axis cur in
      let child = read_fnode cur in
      { Query.ftest = test; fsubs = preds @ [ (axis, child) ] }
  | _ -> { Query.ftest = test; fsubs = preds }

let read_step cur =
  let axis = read_axis cur in
  let test = read_test cur in
  let filters = read_preds cur [] in
  { Query.axis; test; filters }

let query_unlocated input =
  let cur = { input; pos = 0 } in
  if peek cur <> Some '/' then fail cur "a query must start with '/' or '//'";
  let rec steps acc =
    match peek cur with
    | Some '/' -> steps (read_step cur :: acc)
    | None -> List.rev acc
    | Some _ -> fail cur "expected '/' or end of input"
  in
  match steps [] with
  | [] -> fail cur "empty query"
  | q -> q

let query input =
  let input = String.trim input in
  try query_unlocated input with
  | Located (msg, pos) ->
      raise (Syntax_error (Printf.sprintf "%s at offset %d" msg pos))

let query_opt input =
  match query input with q -> Some q | exception Syntax_error _ -> None

let query_result ?(source = "<query>") input =
  let input = String.trim input in
  match query_unlocated input with
  | q -> Ok q
  | exception Located (msg, offset) ->
      Error (Core.Error.at_offset ~source ~input ~offset msg)
