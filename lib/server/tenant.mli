(** Per-tenant quotas — the multi-tenant half of admission control.

    Every request names its tenant in the [x-learnq-tenant] header (default
    ["anon"]).  A tenant's quota caps how many live sessions it may hold and
    how much work one learning step may burn ({!Core.Budget} fuel and
    wall-clock), so one noisy tenant cannot starve the rest.  Quotas come
    from a flat text config file, one tenant per line:

    {v # name   key=value ...
       acme     max_sessions=200 fuel=2000000 timeout=1.0
       default  max_sessions=50 v}

    The ["default"] line (re)defines the quota applied to tenants with no
    line of their own. *)

type quota = {
  max_sessions : int;  (** concurrent live sessions; [0] = blocked *)
  step_fuel : int option;  (** {!Core.Budget} fuel per learning step *)
  step_timeout : float option;  (** wall-clock seconds per learning step *)
}

type t
(** An immutable tenant table. *)

val quota : ?step_fuel:int -> ?step_timeout:float -> max_sessions:int -> unit -> quota

val default_quota : quota
(** 64 sessions, no step caps. *)

val make : ?default:quota -> (string * quota) list -> t

val parse : string -> (t, string) result
(** Parses config-file contents.  Blank lines and [#] comments are skipped;
    unknown keys, bad numbers, and duplicate tenants are errors. *)

val load : string -> (t, string) result
(** {!parse} the file at a path. *)

val find : t -> string -> quota
(** The tenant's own quota, or the default. *)

val names : t -> string list
(** Tenants with explicit quotas, sorted. *)
