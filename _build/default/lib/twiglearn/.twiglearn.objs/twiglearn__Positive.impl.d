lib/twiglearn/positive.ml: List Twig Xmltree
