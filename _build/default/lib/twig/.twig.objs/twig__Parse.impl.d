lib/twig/parse.ml: List Printf Query String
