test/test_twiglearn.ml: Alcotest Benchkit Core List Printf Relational Twig Twiglearn Uschema Xmltree
