(** Interactive learning of twig queries by node annotation: "develop a
    practical system able to learn twig queries from interaction with the
    user" (paper, Section 2), instantiating the generic protocol of
    {!Core.Interact}.

    The user is shown nodes of a document and labels them; between
    questions the learner infers the labels forced by the anchored-fragment
    semantics:

    - a node selected by the LGG of the current positives must be positive
      (every anchored query consistent with the labels contains the LGG);
    - a node whose addition to the positives would drive the LGG onto a
      known negative — or out of the anchored fragment altogether — must be
      negative.

    Those nodes are uninformative and are never asked. *)

type item = Xmltree.Annotated.t

val set_batch_lgg : bool -> unit
(** Ablation switch (default [false]): [true] makes subsequently created
    sessions refold the whole positive set through
    {!Positive.learn_positive} on every answer and every determined-probe —
    the pre-incremental behavior, kept for benchmarking
    ([bench pr4]) and for the incremental-equivalence property tests.  Read
    once per session at [Session.init]. *)

val batch_lgg_enabled : unit -> bool

val set_probe_recheck : bool -> unit
(** Fault-injection switch (default [true]).  [false] disables the probe
    memo's negative-prefix recheck: a memoized open item is then never
    re-tested against negatives recorded since it was cached, silently
    reviving the staleness bug the memo's bookkeeping exists to prevent.
    Only for exercising the differential fuzzing harness ({!Fuzz.Oracle}
    [interact-batch] catches it within a few hundred cases) — never unset
    this in production code paths. *)

module Session :
  Core.Interact.SESSION with type query = Twig.Query.t and type item = item

module Loop : module type of Core.Interact.Make (Session)

val items_of_doc : Xmltree.Tree.t -> item list
(** Every node of the document as a labelable item (preorder). *)

val label_diverse_strategy : (Session.state, item) Core.Interact.strategy
(** Prefers nodes whose label has been asked least often so far (and, among
    those, the shallowest).  Document order wastes its budget walking to
    the first positive; label diversity finds one within about one question
    per distinct label, after which the LGG-based pruning determines most
    of the pool. *)

val encode_item : item -> string
(** Journal codec: the item's node path, e.g. ["/0/2/1"] (the session's
    document is recorded in the journal header's config, not per item). *)

val decode_item : doc:Xmltree.Tree.t -> string -> item option
(** Inverse of {!encode_item} over [doc]; [None] when the path addresses no
    node — the journal belongs to a different document. *)

val encode_state : Session.state -> string
(** Checkpoint codec: the labeled node paths (each polarity in arrival
    order) plus the session's ablation mode — the accumulator itself is
    redundant, being a deterministic fold of them. *)

val decode_state :
  doc:Xmltree.Tree.t -> string -> (Session.state, string) result
(** Inverse of {!encode_state} over [doc]: refolds the recorded labels
    through [Session.record], rebuilding the exact live accumulator.
    [Error] when a path addresses no node of [doc] or the snapshot is
    malformed. *)

val run_with_goal :
  ?rng:Core.Prng.t ->
  ?strategy:(Session.state, item) Core.Interact.strategy ->
  ?budget:Core.Budget.t ->
  ?profile:Core.Flaky.profile ->
  ?retry:Core.Retry.policy ->
  doc:Xmltree.Tree.t ->
  goal:Twig.Query.t ->
  unit ->
  Loop.outcome
(** Simulates the user with the goal query as oracle over all nodes of
    [doc].  [profile] injects crowd-worker faults; [retry] re-asks
    refused/timed-out questions (see {!Core.Interact.Make.run_flaky}). *)
