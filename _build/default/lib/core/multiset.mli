(** Finite multisets (bags) over an ordered element type.

    Multisets are the denotation domain of disjunctive multiplicity
    expressions for unordered XML ({!Uschema}): the children of an XML node
    are validated as a multiset of labels.  They are also used by the schema
    inference algorithm and by several workload generators. *)

module Make (Ord : Map.OrderedType) : sig
  type elt = Ord.t

  type t
  (** An immutable multiset. *)

  val empty : t
  val is_empty : t -> bool

  val add : ?count:int -> elt -> t -> t
  (** [add ?count x m] adds [count] (default 1) occurrences of [x].
      @raise Invalid_argument if [count < 0]. *)

  val remove : ?count:int -> elt -> t -> t
  (** Removes up to [count] (default 1) occurrences. *)

  val count : elt -> t -> int
  (** Number of occurrences (0 when absent). *)

  val mem : elt -> t -> bool
  val singleton : elt -> t
  val of_list : elt list -> t

  val to_list : t -> (elt * int) list
  (** Ascending by element; counts are positive. *)

  val elements : t -> elt list
  (** All occurrences, ascending, with repetition. *)

  val support : t -> elt list
  (** Distinct elements, ascending. *)

  val cardinal : t -> int
  (** Total number of occurrences. *)

  val distinct : t -> int
  (** Number of distinct elements. *)

  val sum : t -> t -> t
  (** Additive union: counts add. *)

  val subset : t -> t -> bool
  (** [subset a b] iff every element occurs in [b] at least as often as in
      [a]. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val fold : (elt -> int -> 'a -> 'a) -> t -> 'a -> 'a
  val pp : (Format.formatter -> elt -> unit) -> Format.formatter -> t -> unit
end
