type quota = {
  max_sessions : int;
  step_fuel : int option;
  step_timeout : float option;
}

type t = { default : quota; table : (string, quota) Hashtbl.t }

let quota ?step_fuel ?step_timeout ~max_sessions () =
  if max_sessions < 0 then invalid_arg "Tenant.quota: max_sessions < 0";
  { max_sessions; step_fuel; step_timeout }

let default_quota = { max_sessions = 64; step_fuel = None; step_timeout = None }

let make ?(default = default_quota) entries =
  let table = Hashtbl.create 16 in
  List.iter (fun (name, q) -> Hashtbl.replace table name q) entries;
  { default; table }

let parse_line lineno line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] -> Ok None
  | name :: kvs ->
      let rec fold q = function
        | [] -> Ok q
        | kv :: rest -> (
            match String.index_opt kv '=' with
            | None ->
                Error
                  (Printf.sprintf "line %d: expected key=value, got %S" lineno
                     kv)
            | Some i -> (
                let key = String.sub kv 0 i in
                let v = String.sub kv (i + 1) (String.length kv - i - 1) in
                let int_v () =
                  match int_of_string_opt v with
                  | Some n when n >= 0 -> Ok n
                  | _ ->
                      Error
                        (Printf.sprintf "line %d: bad value for %s: %S" lineno
                           key v)
                in
                let float_v () =
                  match float_of_string_opt v with
                  | Some f when f > 0. -> Ok f
                  | _ ->
                      Error
                        (Printf.sprintf "line %d: bad value for %s: %S" lineno
                           key v)
                in
                match key with
                | "max_sessions" ->
                    Result.bind (int_v ()) (fun n ->
                        fold { q with max_sessions = n } rest)
                | "fuel" ->
                    Result.bind (int_v ()) (fun n ->
                        fold { q with step_fuel = Some n } rest)
                | "timeout" ->
                    Result.bind (float_v ()) (fun f ->
                        fold { q with step_timeout = Some f } rest)
                | _ ->
                    Error (Printf.sprintf "line %d: unknown key %S" lineno key)))
      in
      Result.map (fun q -> Some (name, q)) (fold default_quota kvs)

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match parse_line lineno line with
        | Error _ as e -> e
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some (name, q)) ->
            if List.mem_assoc name acc then
              Error (Printf.sprintf "line %d: duplicate tenant %S" lineno name)
            else go (lineno + 1) ((name, q) :: acc) rest)
  in
  Result.map
    (fun entries ->
      let default =
        match List.assoc_opt "default" entries with
        | Some q -> q
        | None -> default_quota
      in
      make ~default (List.remove_assoc "default" entries))
    (go 1 [] lines)

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

let find t name =
  match Hashtbl.find_opt t.table name with Some q -> q | None -> t.default

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare
