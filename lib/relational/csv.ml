exception Syntax_error of string

(* Internal: a record-level failure tagged with its 1-based line number, so
   [parse_result] can build a positioned {!Core.Error.t} while the legacy
   [parse] keeps its historical messages. *)
exception Located of string * int

(* Internal: [split_record] has no line context of its own. *)
exception Unterminated

(* Record-level scanner handling quoted fields spanning separators (not
   newlines inside quotes — keep the dialect line-based and simple). *)
let split_record separator line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match line.[i] with
      | c when c = separator ->
          flush ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then raise Unterminated
    else
      match line.[i] with
      | '"' ->
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            quoted (i + 2)
          end
          else plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  List.rev !fields

(* Lines paired with their original 1-based numbers, so errors keep pointing
   at the right place even when blank lines are skipped. *)
let numbered_lines contents =
  String.split_on_char '\n' contents
  |> List.mapi (fun i l ->
         let l =
           if String.length l > 0 && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l
         in
         (i + 1, l))
  |> List.filter (fun (_, l) -> String.trim l <> "")

let parse_located ?(separator = ',') ~name contents =
  let record lineno line =
    try split_record separator line
    with Unterminated -> raise (Located ("unterminated quoted field", lineno))
  in
  match numbered_lines contents with
  | [] -> raise (Located ("empty input: a header row is required", 1))
  | (header_line, header) :: rows ->
      let attrs = record header_line header in
      let width = List.length attrs in
      let tuples =
        List.map
          (fun (lineno, row) ->
            let fields = record lineno row in
            if List.length fields <> width then
              raise
                (Located
                   ( Printf.sprintf "row %d has %d fields, expected %d" lineno
                       (List.length fields) width,
                     lineno ));
            Array.of_list (List.map Value.of_string fields))
          rows
      in
      Relation.make ~name ~attrs tuples

let parse ?separator ~name contents =
  try parse_located ?separator ~name contents with
  | Located (msg, _) -> raise (Syntax_error msg)

let parse_result ?separator ?(source = "<csv>") ~name contents =
  match parse_located ?separator ~name contents with
  | r -> Ok r
  | exception Located (msg, line) ->
      Error
        (Core.Error.parse_error ~source
           ~position:{ Core.Error.line; column = 1 }
           msg)
  | exception Invalid_argument msg ->
      (* Relation.make rejects duplicate header names. *)
      Error (Core.Error.parse_error ~source msg)

let needs_quoting separator s =
  String.exists (fun c -> c = separator || c = '"' || c = '\n') s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string ?(separator = ',') r =
  let field s = if needs_quoting separator s then quote s else s in
  let sep = String.make 1 separator in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat sep
       (List.map field (Array.to_list (Relation.attrs r))));
  Buffer.add_char buf '\n';
  List.iter
    (fun t ->
      Buffer.add_string buf
        (String.concat sep
           (List.map
              (fun v -> field (Value.to_string v))
              (Array.to_list t)));
      Buffer.add_char buf '\n')
    (Relation.tuples r);
  Buffer.contents buf
