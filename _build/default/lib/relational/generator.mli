(** Random relational instances for the learning experiments.

    Instances are generated so that attribute-pair agreements are plentiful
    but not universal: values are drawn from a small shared domain, and a
    {e planted} join predicate can be used to inject guaranteed matches —
    the "very large database instance" on which the interactive learner is
    exercised (paper, Section 3). *)

type pair_instance = {
  left : Relation.t;
  right : Relation.t;
  planted : Algebra.predicate;  (** the hidden goal predicate *)
}

val pair_instance :
  rng:Core.Prng.t ->
  ?left_arity:int ->
  ?right_arity:int ->
  ?left_rows:int ->
  ?right_rows:int ->
  ?domain:int ->
  ?planted_pairs:int ->
  unit ->
  pair_instance
(** Defaults: arities 4/4, rows 30/30, domain 8, 2 planted pairs.  Values
    are uniform over [Int 0 .. Int (domain-1)]; a random share of left
    tuples is duplicated into the right relation along the planted pairs so
    the goal predicate has witnesses. *)

val random_relation :
  rng:Core.Prng.t -> name:string -> attrs:string list -> rows:int ->
  domain:int -> Relation.t
