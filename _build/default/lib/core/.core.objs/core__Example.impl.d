lib/core/example.ml: Format List
