lib/joinlearn/interactive.mli: Core Relational Signature
