(** Dependency graphs of a schema, and the PTIME static analyses the paper
    reduces to them: "for disjunction-free multiplicity schemas, we have
    reduced query satisfiability and query implication to testing embedding
    from the query to some dependency graphs" (Section 2).

    The {e possible} graph has an edge [a → b] when [b] may appear among the
    children of [a] (it occurs in some clause of [a]'s rule); the
    {e required} graph has [a → b] when every valid node labeled [a] {e must}
    have a [b] child ([b] occurs with a non-nullable multiplicity in every
    clause).

    - A twig query is {e satisfiable} w.r.t. the schema iff it embeds into
      the possible graph from the root (sound and complete for
      disjunction-free schemas; sound as a necessary condition in general).
    - A filter is {e implied} at label [a] when it embeds into the required
      graph from [a]; implied filters are satisfied by every valid document
      and are exactly the "overspecialization" the schema-aware learner
      prunes.  The check is sound for all schemas and complete for the
      disjunction-free restriction. *)

type t

val of_schema : Schema.t -> t
val schema : t -> Schema.t

val possible_edges : t -> (string * string) list
(** Sorted pairs. *)

val required_edges : t -> (string * string) list

val satisfiable : t -> Twig.Query.t -> bool
(** Whether some valid document has a node selected by the query. *)

val filter_implied :
  t -> at:string -> Twig.Query.axis * Twig.Query.filter -> bool
(** Whether every valid document node labeled [at] satisfies the filter. *)

val label_implied : t -> at:string -> child:string -> bool
(** Required-edge membership (the simplest filter implication). *)
