open Xmltree

type doc = {
  tree : Tree.t;
  labels : string array;  (** label of node [i] (preorder id) *)
  children : int list array;
  last_desc : int array;  (** descendants of [i] are ids in [i+1 .. last_desc.(i)] *)
  paths : Tree.path array;
  by_path : (Tree.path, int) Hashtbl.t;  (** inverse of [paths] *)
  mutable store : Xmlstore.Store.t option;
      (** labeled store for the index-backed fast path, built on demand *)
}

let index tree =
  let n = Tree.size tree in
  let labels = Array.make n "" in
  let children = Array.make n [] in
  let last_desc = Array.make n 0 in
  let paths = Array.make n [] in
  let by_path = Hashtbl.create n in
  let counter = ref 0 in
  let rec go path (node : Tree.t) =
    let id = !counter in
    incr counter;
    labels.(id) <- node.label;
    let p = List.rev path in
    paths.(id) <- p;
    Hashtbl.replace by_path p id;
    let kids =
      List.mapi (fun i c -> go (i :: path) c) node.children
    in
    children.(id) <- kids;
    last_desc.(id) <- !counter - 1;
    id
  in
  let root = go [] tree in
  assert (root = 0);
  { tree; labels; children; last_desc; paths; by_path; store = None }

let doc_tree d = d.tree
let doc_size d = Array.length d.labels

(* Compiled filters: each filter node gets a dense id so embeddings can be
   memoized in a flat matrix. *)
type compiled_filter = { ctest : Query.test; csubs : (Query.axis * int) list }

type compiled = {
  cfilters : compiled_filter array;
  csteps : (Query.axis * Query.test * (Query.axis * int) list) array;
}

let compile (q : Query.t) =
  let acc = ref [] in
  let count = ref 0 in
  let rec comp_filter (f : Query.filter) =
    let id = !count in
    incr count;
    (* Reserve the slot, fill after children are compiled. *)
    acc := (id, { ctest = f.ftest; csubs = [] }) :: !acc;
    let subs = List.map (fun (a, g) -> (a, comp_filter g)) f.fsubs in
    acc :=
      (id, { ctest = f.ftest; csubs = subs })
      :: List.remove_assoc id !acc;
    id
  in
  let csteps =
    Array.of_list
      (List.map
         (fun (s : Query.step) ->
           let fs = List.map (fun (a, f) -> (a, comp_filter f)) s.filters in
           (s.axis, s.test, fs))
         q)
  in
  let cfilters = Array.make (max 1 !count) { ctest = Query.Wildcard; csubs = [] } in
  List.iter (fun (id, cf) -> cfilters.(id) <- cf) !acc;
  { cfilters; csteps }

let test_holds test label =
  match test with Query.Wildcard -> true | Query.Label l -> String.equal l label

(* embed.(fid * n + node) : -1 unknown, 0 no, 1 yes *)
let embeds doc compiled =
  let n = Array.length doc.labels in
  let nf = Array.length compiled.cfilters in
  let memo = Array.make (nf * n) (-1) in
  let rec embed fid node =
    let key = (fid * n) + node in
    match memo.(key) with
    | 0 -> false
    | 1 -> true
    | _ ->
        let cf = compiled.cfilters.(fid) in
        let ok =
          test_holds cf.ctest doc.labels.(node)
          && List.for_all
               (fun (axis, gid) ->
                 match axis with
                 | Query.Child ->
                     List.exists (fun c -> embed gid c) doc.children.(node)
                 | Query.Descendant ->
                     let rec scan i =
                       i <= doc.last_desc.(node)
                       && (embed gid i || scan (i + 1))
                     in
                     scan (node + 1))
               cf.csubs
        in
        memo.(key) <- (if ok then 1 else 0);
        ok
  in
  embed

let select_ids_walk doc (q : Query.t) =
  let compiled = compile q in
  let embed = embeds doc compiled in
  let n = Array.length doc.labels in
  let node_matches (test, filters) id =
    test_holds test doc.labels.(id)
    && List.for_all (fun (axis, fid) ->
           match axis with
           | Query.Child -> List.exists (fun c -> embed fid c) doc.children.(id)
           | Query.Descendant ->
               let rec scan i =
                 i <= doc.last_desc.(id) && (embed fid i || scan (i + 1))
               in
               scan (id + 1))
         filters
  in
  (* context: boolean mask over node ids; starts as the virtual root, encoded
     by candidate generation for the first step. *)
  let step_candidates context (axis, test, filters) ~first =
    let out = Array.make n false in
    let mark id = if node_matches (test, filters) id then out.(id) <- true in
    (if first then
       match axis with
       | Query.Child -> mark 0
       | Query.Descendant ->
           for id = 0 to n - 1 do
             mark id
           done
     else
       Array.iteri
         (fun id in_ctx ->
           if in_ctx then
             match axis with
             | Query.Child -> List.iter mark doc.children.(id)
             | Query.Descendant ->
                 for d = id + 1 to doc.last_desc.(id) do
                   mark d
                 done)
         context);
    out
  in
  let steps = Array.to_list compiled.csteps in
  match steps with
  | [] -> invalid_arg "Eval.select: empty query"
  | first :: rest ->
      let init = step_candidates [||] first ~first:true in
      let final =
        List.fold_left
          (fun ctx step -> step_candidates ctx step ~first:false)
          init rest
      in
      let ids = ref [] in
      for id = n - 1 downto 0 do
        if final.(id) then ids := id :: !ids
      done;
      !ids

(* ------------------------------------------------------------------ *)
(* The index-backed fast path                                          *)
(* ------------------------------------------------------------------ *)

(* [Xmlstore.Twigjoin] evaluates the same semantics with structural
   joins over the store's containment labels and inverted name lists —
   O(touched posting lists) per query instead of the walk's
   O(|q|·|t|·depth) with its per-call memo matrix.  Both produce
   ascending preorder ids, so swapping evaluators is invisible to every
   caller (including journaled interactive sessions, which stay
   byte-identical).  The walk remains as the differential reference and
   as the [--no-xmlstore] ablation. *)

let use_xmlstore = ref true
let set_xmlstore on = use_xmlstore := on
let xmlstore_enabled () = !use_xmlstore

let m_join_evals = Core.Telemetry.Metrics.counter "learnq.twig.join_evals"
let m_walk_evals = Core.Telemetry.Metrics.counter "learnq.twig.walk_evals"

let to_pattern (q : Query.t) : Xmlstore.Pattern.t =
  let conv_test = function
    | Query.Wildcard -> Xmlstore.Pattern.Wild
    | Query.Label l -> Xmlstore.Pattern.Name l
  in
  let conv_axis = function
    | Query.Child -> Xmlstore.Pattern.Child
    | Query.Descendant -> Xmlstore.Pattern.Descendant
  in
  let acc = ref [] in
  let count = ref 0 in
  let rec comp_filter (f : Query.filter) =
    let id = !count in
    incr count;
    let subs = List.map (fun (a, g) -> (conv_axis a, comp_filter g)) f.fsubs in
    acc := (id, { Xmlstore.Pattern.ftest = conv_test f.ftest; fedges = subs }) :: !acc;
    id
  in
  let steps =
    Array.of_list
      (List.map
         (fun (s : Query.step) ->
           let es = List.map (fun (a, f) -> (conv_axis a, comp_filter f)) s.filters in
           {
             Xmlstore.Pattern.saxis = conv_axis s.axis;
             stest = conv_test s.test;
             sedges = es;
           })
         q)
  in
  let fnodes =
    Array.make (max 1 !count) { Xmlstore.Pattern.ftest = Wild; fedges = [] }
  in
  List.iter (fun (id, fn) -> fnodes.(id) <- fn) !acc;
  { Xmlstore.Pattern.fnodes = Array.sub fnodes 0 !count; steps }

let store_of_doc doc =
  match doc.store with
  | Some s -> s
  | None ->
      let s = Xmlstore.Store.of_tree doc.tree in
      doc.store <- Some s;
      s

let select_ids doc (q : Query.t) =
  if q = [] then invalid_arg "Eval.select: empty query"
  else if !use_xmlstore then begin
    Core.Telemetry.Metrics.incr m_join_evals;
    Xmlstore.Twigjoin.select_ids (store_of_doc doc) (to_pattern q)
  end
  else begin
    Core.Telemetry.Metrics.incr m_walk_evals;
    select_ids_walk doc q
  end

let select_doc doc q = List.map (fun id -> doc.paths.(id)) (select_ids doc q)
let select q tree = select_doc (index tree) q

let select_walk q tree =
  let doc = index tree in
  List.map (fun id -> doc.paths.(id)) (select_ids_walk doc q)

(* ------------------------------------------------------------------ *)
(* The single-node membership hot path                                 *)
(* ------------------------------------------------------------------ *)

(* [selects] is the probe the interactive learners hammer: the
   determined-scan asks "does the current candidate select this node?"
   once per open item per round — same document every time, and the same
   (physically identical) candidate query for a whole round.  Naively that
   is a full re-index plus a full evaluation per probe; memoizing both by
   physical equality turns every probe after a round's first into one hash
   lookup and one array read.

   One entry each suffices (a session has one document and one live
   candidate), and the caches are domain-local so {!Core.Pool} workers
   warm their own — no sharing, no locks.  Misses stay exactly the old
   code path, so results are unchanged. *)

type probe_cache = {
  mutable pc_tree : Tree.t option;  (* phys-eq key for pc_doc *)
  mutable pc_doc : doc option;
  mutable pc_masks : (Query.t * bool array) list;
      (* phys-eq keyed, most-recent first.  A round interleaves the live
         candidate with per-probe would-be generalizations, so one slot
         would thrash; a handful keeps the candidate resident. *)
}

(* Enough slots that a round's worth of live raw-extension queries (kept
   physically identical across rounds by the session probe memo) stays
   resident alongside the candidate; a mask is one bool per node, so even
   64 of them are a few hundred KB per domain. *)
let probe_cache_slots = 64

let probe_dls : probe_cache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { pc_tree = None; pc_doc = None; pc_masks = [] })

let m_probe_hits = Core.Telemetry.Metrics.counter "learnq.twig.eval_cache_hits"
let m_probe_misses = Core.Telemetry.Metrics.counter "learnq.twig.eval_cache_misses"

let index_cached c tree =
  match c.pc_doc with
  | Some d when (match c.pc_tree with Some t -> t == tree | None -> false) ->
      d
  | _ ->
      let d = index tree in
      c.pc_tree <- Some tree;
      c.pc_doc <- Some d;
      c.pc_masks <- [];
      d

let rec mask_assq q = function
  | [] -> None
  | (q0, m) :: rest -> if q0 == q then Some m else mask_assq q rest

let rec list_take n = function
  | x :: rest when n > 0 -> x :: list_take (n - 1) rest
  | _ -> []

let selects q tree path =
  let c = Domain.DLS.get probe_dls in
  let doc = index_cached c tree in
  let mask =
    match mask_assq q c.pc_masks with
    | Some mask ->
        Core.Telemetry.Metrics.incr m_probe_hits;
        mask
    | None ->
        Core.Telemetry.Metrics.incr m_probe_misses;
        let mask = Array.make (Array.length doc.labels) false in
        List.iter (fun id -> mask.(id) <- true) (select_ids doc q);
        c.pc_masks <- (q, mask) :: list_take (probe_cache_slots - 1) c.pc_masks;
        mask
  in
  match Hashtbl.find_opt doc.by_path path with
  | Some id -> mask.(id)
  | None -> false

let selects_example q (a : Annotated.t) = selects q a.doc a.target

let holds_filter f tree =
  let doc = index tree in
  let compiled = compile [ { Query.axis = Child; test = Wildcard; filters = [ (Query.Child, f) ] } ] in
  (* The compiled query's only filter tree is f, rooted at filter id 0. *)
  let embed = embeds doc compiled in
  embed 0 0
