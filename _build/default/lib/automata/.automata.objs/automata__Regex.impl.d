lib/automata/regex.ml: Format List Printf Set String
