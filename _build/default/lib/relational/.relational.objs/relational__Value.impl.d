lib/relational/value.ml: Format Hashtbl Int String
