(** Interactive path labeling on a graph (paper, Section 3): "our algorithms
    compute what paths the user should be asked to label (as positive or
    negative example) in order to gather as many information as possible
    with few interactions".

    Items are concrete labeled walks [(src, path word, dst)]; many walks
    share a word, and a word only needs one answer — asking about a path
    whose word is already labeled (or decided by the current hypothesis'
    two-tier bias) is uninformative, which is what the session prunes.

    The paper also sketches {e query-workload reuse}: "consider a scenario
    where all the previous users were interested in paths where all the
    edges … contain the information highway … we want to ask with priority
    the next user to label a path having the same property."
    {!workload_strategy} implements exactly that prior. *)

type item = { src : int; dst : int; word : string list }

module Session :
  Core.Interact.SESSION
    with type query = Words.hypothesis
     and type item = item

module Loop : module type of Core.Interact.Make (Session)

val items_of_graph :
  ?max_len:int -> ?per_source:int -> rng:Core.Prng.t -> Graphdb.Graph.t ->
  item list
(** Path pool: walks harvested breadth-first from every node, capped at
    [per_source] (default 30) per source, length ≤ [max_len] (default 4). *)

val workload_strategy :
  prior:Automata.Dfa.t list -> (Session.state, item) Core.Interact.strategy
(** Prefers items whose word is accepted by some previously learned query;
    falls back to shortest-word-first. *)

val encode_item : item -> string
(** Journal codec: ["src dst label1 label2 …"]. *)

val decode_item : string -> item option
(** Inverse of {!encode_item}; [None] on a malformed line. *)

val encode_state : Session.state -> string
(** Checkpoint codec: the positive and negative word sets. *)

val decode_state : string -> (Session.state, string) result
(** Inverse of {!encode_state}.  Recomputes the hypothesis with a single
    {!Words.learn} call — the reason resume-from-checkpoint beats replaying
    a long journal, which runs the learner once per recorded answer. *)

val run_with_goal :
  ?rng:Core.Prng.t ->
  ?strategy:(Session.state, item) Core.Interact.strategy ->
  ?budget:Core.Budget.t ->
  ?profile:Core.Flaky.profile ->
  ?retry:Core.Retry.policy ->
  ?max_len:int ->
  graph:Graphdb.Graph.t ->
  goal:Automata.Dfa.t ->
  unit ->
  Loop.outcome
(** Oracle: a path is positive iff its word is in the goal language.
    [budget] bounds the session; on exhaustion the outcome carries the
    current hypothesis with [degraded = true].  [profile] injects
    crowd-worker faults; [retry] re-asks refused/timed-out questions. *)
