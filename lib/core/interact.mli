(** The interactive learning kernel (paper, Section 3).

    The paper's protocol: the database instance is very large; the learning
    algorithm repeatedly chooses an item (a tuple, an XML node, a graph path)
    and asks the user to label it positive or negative.  After each answer the
    algorithm "infers the items which become uninformative w.r.t. the
    previously labeled items" and never asks about those.  The loop stops when
    every item is either labeled or uninformative, and the goal is to minimize
    the number of interactions.

    The kernel is functorized over a {!SESSION}: a concrete learner exposing a
    monotone state, a notion of determined (= uninformative) items, and a
    current candidate query.

    Sessions are durable and supervised: an optional {!Journal} records every
    question and answer write-ahead (so a crashed session resumes from its
    journal, replaying the recorded answers instead of re-asking them), and an
    optional {!Retry} policy re-issues refused or timed-out questions with
    backoff, tripping a circuit breaker when the oracle looks dead. *)

module type SESSION = sig
  type query
  type item

  type state
  (** Learner state after some sequence of labels. *)

  val init : item list -> state
  (** Fresh state over the pool of labelable items. *)

  val record : state -> item -> bool -> state
  (** [record st item label] incorporates the user's answer. *)

  val determined : state -> item -> bool option
  (** [determined st item] is [Some l] when every query consistent with the
      labels recorded so far assigns label [l] to [item] — asking the user
      about it would be uninformative; [None] when both labels are still
      possible. *)

  val candidate : state -> query option
  (** A query consistent with all recorded labels, if one exists. *)

  val pp_item : Format.formatter -> item -> unit
  val pp_query : Format.formatter -> query -> unit
end

(** How the next question is chosen among the informative items. *)
type ('state, 'item) strategy = Prng.t -> 'state -> 'item list -> 'item

val first_strategy : ('state, 'item) strategy
(** Deterministic: asks the first informative item (pool order). *)

val random_strategy : ('state, 'item) strategy
(** Uniform among informative items — the natural baseline. *)

module Make (S : SESSION) : sig
  type outcome = {
    query : S.query option;  (** final candidate *)
    questions : int;  (** live user interactions this run (= crowd HITs) *)
    replayed : int;  (** answers replayed from a journal, not re-asked *)
    asked : (S.item * bool) list;  (** transcript incl. replays, in order *)
    pruned : int;  (** items never asked because they became determined *)
    refused : int;  (** questions unanswered even through the retry policy *)
    retried : int;  (** extra oracle attempts spent by the retry policy *)
    degraded : bool;  (** stopped on budget exhaustion or an open breaker *)
    breaker_open : bool;  (** the oracle circuit breaker is open *)
    state : S.state;  (** final learner state *)
  }

  val run :
    ?rng:Prng.t ->
    ?strategy:(S.state, S.item) strategy ->
    ?max_questions:int ->
    ?budget:Budget.t ->
    ?journal:Journal.t * (S.item -> string) ->
    ?resume:(S.item * Flaky.reply) list ->
    ?restore:S.state * string list * int ->
    ?checkpoint_every:int ->
    ?snapshot:(S.state -> string) ->
    ?pool:Pool.t ->
    oracle:(S.item -> bool) ->
    items:S.item list ->
    unit ->
    outcome
  (** Runs the interactive protocol: repeatedly selects an informative item
      with [strategy] (default {!first_strategy}), labels it with [oracle],
      and updates the state, until no informative item remains or
      [max_questions] is reached.  [pruned] counts pool items whose label was
      inferred rather than asked.  When [budget] runs out mid-session the
      loop returns the current candidate with [degraded = true] instead of
      raising.  [journal] and [resume] are as in {!run_flaky}; [pool]
      (default {!Pool.default}) parallelizes the determined-scan with a
      deterministic, input-order merge — the question sequence and journal
      bytes are identical at every pool size. *)

  val run_flaky :
    ?rng:Prng.t ->
    ?strategy:(S.state, S.item) strategy ->
    ?max_questions:int ->
    ?budget:Budget.t ->
    ?journal:Journal.t * (S.item -> string) ->
    ?resume:(S.item * Flaky.reply) list ->
    ?restore:S.state * string list * int ->
    ?checkpoint_every:int ->
    ?snapshot:(S.state -> string) ->
    ?retry:Retry.policy ->
    ?pool:Pool.t ->
    oracle:(S.item -> Flaky.reply) ->
    items:S.item list ->
    unit ->
    outcome
  (** {!run} against an unreliable user ({!Flaky}).

      [journal] is a write-ahead log plus an item encoder: every question is
      journaled before the oracle is consulted and every reply after, so a
      crash loses at most the answer in flight.

      [resume] is the decoded [Answered] prefix of a recovered journal.
      Replay is a pure fold of {!SESSION.record} over the recorded labels —
      deterministic, with duplicate answers as idempotent no-ops — and
      replayed items are removed from the pool, so no already-answered
      question is ever asked twice.  Refused/timed-out records return to the
      pool.  Replays are counted in [replayed], not [questions].

      [restore] short-circuits replay from a {!Journal.checkpoint}: the
      triple is the engine-decoded accumulator, the checkpoint's answered
      codec keys, and its label count (which seeds [replayed]); [resume]
      then carries only the decoded events {e after} the checkpoint (see
      [Journal.split_checkpoint]).  Requires [journal] — the keys are codec
      strings.  The [asked] transcript covers only events since the
      checkpoint.

      [checkpoint_every] (with [snapshot], the engine's state encoder)
      snapshots the accumulator every N labeled answers and atomically
      compacts the journal down to header + checkpoint, bounding journal
      growth over arbitrarily long sessions.  Storage failures surface as
      [Journal.Io] carrying a typed [Error.Storage]; the journal is left
      intact.

      [retry] re-issues refused and timed-out questions with backoff instead
      of skipping them; only questions that fail every attempt count in
      [refused].  When the policy's circuit breaker opens (too many
      consecutive given-up questions) the session stops asking and returns
      the current candidate with [degraded = true] and [breaker_open = true]
      — the caller's cue to fall back (e.g. [Twiglearn.Fallback],
      [Joinlearn.Fallback]) rather than hammer a dead oracle. *)

  val cost :
    price_per_question:float -> outcome -> float
  (** Crowdsourcing cost of a session: the paper equates minimizing
      interactions with minimizing financial cost of HITs (Section 3).
      Replayed answers were already paid for and are not re-billed. *)
end
