(** ASCII table rendering for the experiment harness. *)

type t

val make : title:string -> header:string list -> t
val add_row : t -> string list -> unit
(** @raise Invalid_argument on width mismatch with the header. *)

val render : t -> string
val print : t -> unit
(** Renders to stdout with a trailing newline. *)

val cell_float : ?digits:int -> float -> string
val cell_pct : float -> string
(** [0.153] ↦ ["15.3%"]. *)
