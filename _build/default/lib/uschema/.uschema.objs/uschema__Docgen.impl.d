lib/uschema/docgen.ml: Core Int List Map Multiplicity Option Schema String Xmltree
