lib/pathlearn/pairs.ml: Automata Core Expr Fun Graphdb List Words
