(** Structured random generators for the differential fuzzing harness.

    Every generator draws from a {!Core.Prng.t} and takes an explicit size
    parameter, so a fuzzing case is reproducible from [(seed, size)] alone —
    the currency of counterexample artifacts ({!Artifact}).  The label
    alphabet is deliberately tiny ([a]–[d]): collisions are what make
    generalization, containment and caching interesting, and small alphabets
    reach them orders of magnitude sooner than realistic vocabularies.

    Generators come in matched pairs with the {!Shrink} candidate functions;
    what [Gen] builds, [Shrink] reduces. *)

val labels : string array
(** The shared element-label alphabet, [\[|"a"; "b"; "c"; "d"|\]]. *)

val label : Core.Prng.t -> string
(** Uniform draw from {!labels}. *)

(** {2 Documents} *)

val tree : Core.Prng.t -> size:int -> Xmltree.Tree.t
(** Element-only unranked tree with exactly [max 1 size] nodes. *)

val xml_tree : Core.Prng.t -> size:int -> Xmltree.Tree.t
(** Tree exercising the full XML surface: attributes (distinct names, placed
    first, each with a text value), at most one text child per node, and
    text values containing characters that force escaping ([&], [<],
    quotes).  Shaped so that [Parse.xml (Print.to_xml t)] can reconstruct
    it exactly — the printer pulls attribute children into the tag and the
    parser trims character data, so attribute order and raw whitespace are
    not representable. *)

val element_paths : Xmltree.Tree.t -> Xmltree.Tree.path list
(** Paths of non-text nodes, preorder. *)

val annotated :
  Core.Prng.t -> Xmltree.Tree.t -> k:int -> Xmltree.Annotated.t list
(** [k] distinct element nodes of the document as annotated examples. *)

val mutant_doc : Core.Prng.t -> Xmltree.Tree.t -> Xmltree.Tree.t
(** One structural mutation: relabel, delete or duplicate a random node —
    the adversarial, possibly-non-conforming counterpart of
    {!Uschema.Docgen.generate}. *)

(** {2 Twig queries} *)

val twig : Core.Prng.t -> size:int -> Twig.Query.t
(** Arbitrary twig with roughly [size] pattern nodes: wildcards, descendant
    edges and nested filters anywhere the syntax allows. *)

val anchored_twig : Core.Prng.t -> size:int -> Twig.Query.t
(** Like {!twig}, then repaired into the anchored fragment by relabeling
    every wildcard incident to a descendant edge (and the output node). *)

val filter_edge :
  Core.Prng.t -> size:int -> Twig.Query.axis * Twig.Query.filter
(** A filter condition as attached to a spine node. *)

val generalize : Core.Prng.t -> Twig.Query.t -> Twig.Query.t
(** Randomly weaken a query (drop filters, widen axes, cut a spine prefix);
    the result contains the input, which makes [subsumed input result]
    likely true — the interesting branch of containment oracles. *)

val goal : Core.Prng.t -> Xmltree.Tree.t -> Twig.Query.t
(** A goal query for interactive-learning oracles over [doc]: usually the
    characteristic query of a random node, generalized (filters dropped,
    axes widened, spine prefix cut) so it selects a nonempty, nontrivial
    answer set; occasionally a fresh {!anchored_twig}. *)

(** {2 Schemas} *)

val schema : Core.Prng.t -> size:int -> Uschema.Schema.t
(** DMS over root [r] and alphabet {!labels}: one or two clauses per rule,
    random multiplicities.  Rules may be unproductive or unreachable —
    {!Uschema.Docgen.generate} then returns [None], which oracles treat as
    a valid (vacuous) case. *)

(** {2 Relations and graphs} *)

val relation : Core.Prng.t -> name:string -> rows:int -> Relational.Relation.t
(** Random arity 1–4; values mix [Int]s with strings that stress the CSV
    quoting rules (separators, quotes, newlines, empty fields) while
    avoiding digit-only strings, which {!Relational.Value.of_string} cannot
    tell from [Int]s. *)

val join_instance :
  Core.Prng.t -> rows:int -> Relational.Generator.pair_instance
(** Relation pair with a planted join predicate
    ({!Relational.Generator.pair_instance} scaled by [rows]). *)

val graph : Core.Prng.t -> size:int -> Graphdb.Graph.t
(** Random labeled digraph: [max 1 size] nodes, [2·size] edges, labels
    [a]/[b]/[c]. *)

val regex : Core.Prng.t -> size:int -> Automata.Regex.t
(** RPQ regular expression over [a]/[b]/[c] with roughly [size] AST nodes;
    [Eps] and [Empty] leaves appear with small probability. *)

(** {2 Adversarial strings} *)

val junk : Core.Prng.t -> size:int -> string
(** Uniform soup over a charset biased toward structural characters of all
    the repo's syntaxes (angle brackets, squares, slashes, quotes, [@], [#],
    …). *)

val mutate_string : Core.Prng.t -> string -> string
(** 1–3 random edits (delete / insert / replace / truncate) — applied to a
    valid print, this is the near-miss input class that finds parser bugs
    plain junk misses. *)
