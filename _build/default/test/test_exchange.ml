(* Tests for cross-model data exchange: RDF store, publishing, shredding,
   the four Figure-1 mapping scenarios. *)

let qcheck = QCheck_alcotest.to_alcotest

let tuple vs = Array.of_list (List.map Relational.Value.of_string vs)

(* ------------------------------------------------------------------ *)
(* RDF store                                                           *)
(* ------------------------------------------------------------------ *)

let test_rdf_store_basics () =
  let t1 = { Exchange.Rdf.subj = "s"; pred = "p"; obj = "o" } in
  let store = Exchange.Rdf.of_list [ t1; t1 ] in
  Alcotest.(check int) "set semantics" 1 (Exchange.Rdf.cardinal store);
  Alcotest.(check bool) "mem" true (Exchange.Rdf.mem t1 store);
  Alcotest.(check (list string)) "subjects" [ "s" ] (Exchange.Rdf.subjects store)

let test_rdf_graph_roundtrip () =
  let g =
    Graphdb.Graph.make
      ~names:[| "paris"; "lille"; "lyon" |]
      ~nodes:3
      [ (0, "road", 1); (1, "rail", 2); (2, "road", 0) ]
  in
  let store = Exchange.Rdf.of_graph g in
  Alcotest.(check int) "three triples" 3 (Exchange.Rdf.cardinal store);
  let g2 = Exchange.Rdf.to_graph store in
  let store2 = Exchange.Rdf.of_graph g2 in
  Alcotest.(check bool) "roundtrip preserves triples" true
    (Exchange.Rdf.equal store store2)

let test_rdf_of_xml () =
  let doc = Xmltree.Parse.term "site(people(person(name(#Aki))))" in
  let store = Exchange.Rdf.of_xml doc in
  Alcotest.(check bool) "structure triple" true
    (Exchange.Rdf.mem { subj = "/"; pred = "people"; obj = "/0" } store);
  Alcotest.(check bool) "deep structure" true
    (Exchange.Rdf.mem { subj = "/0"; pred = "person"; obj = "/0/0" } store);
  Alcotest.(check bool) "value triple" true
    (Exchange.Rdf.mem { subj = "/0/0/0"; pred = "value"; obj = "Aki" } store)

(* ------------------------------------------------------------------ *)
(* Publishing and shredding                                            *)
(* ------------------------------------------------------------------ *)

let cities =
  Relational.Relation.make ~name:"cities" ~attrs:[ "name"; "country" ]
    [ tuple [ "Lille"; "France" ]; tuple [ "Kyoto"; "Japan" ] ]

let test_relation_to_xml () =
  let doc = Exchange.Publish.relation_to_xml cities in
  Alcotest.(check string) "root element" "cities" doc.label;
  Alcotest.(check int) "two rows" 2 (List.length doc.children);
  (* Shred it back: full roundtrip. *)
  let back =
    Exchange.Publish.xml_to_relation ~name:"cities"
      ~row_query:(Twig.Parse.query "/cities/row")
      ~columns:[ ("name", "name"); ("country", "country") ]
      doc
  in
  Alcotest.(check bool) "roundtrip" true
    (Relational.Relation.equal_contents cities back)

let test_relation_to_xml_grouped () =
  let doc = Exchange.Publish.relation_to_xml_grouped ~group_by:"country" cities in
  Alcotest.(check int) "two groups" 2 (List.length doc.children);
  List.iter
    (fun (g : Xmltree.Tree.t) ->
      Alcotest.(check string) "group element" "group" g.label)
    doc.children;
  match Exchange.Publish.relation_to_xml_grouped ~group_by:"zip" cities with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown group attribute must be rejected"

let test_xml_to_relation_missing_values () =
  let doc = Xmltree.Parse.term "t(row(a(#1)),row(a(#2),b(#x)))" in
  let r =
    Exchange.Publish.xml_to_relation ~name:"t"
      ~row_query:(Twig.Parse.query "/t/row")
      ~columns:[ ("a", "a"); ("b", "b") ]
      doc
  in
  Alcotest.(check int) "two rows" 2 (Relational.Relation.cardinal r);
  Alcotest.(check bool) "missing b shreds to empty string" true
    (Relational.Relation.mem (tuple [ "1"; "" ]) r)

let test_graph_paths_to_xml () =
  let g =
    Graphdb.Graph.make ~nodes:3 [ (0, "h", 1); (1, "h", 2) ]
  in
  let doc =
    Exchange.Publish.graph_paths_to_xml g
      (Automata.Dfa.of_regex (Automata.Regex.parse "h h"))
  in
  Alcotest.(check string) "paths root" "paths" doc.label;
  Alcotest.(check int) "one answer path" 1 (List.length doc.children);
  match doc.children with
  | [ path ] ->
      let edges =
        List.filter
          (fun (c : Xmltree.Tree.t) -> c.label = "edge")
          path.children
      in
      Alcotest.(check int) "two edges in witness" 2 (List.length edges)
  | _ -> Alcotest.fail "unexpected shape"

let test_xml_to_rdf_scoped () =
  let doc = Xmltree.Parse.term "site(people(person(name(#A)),person(name(#B))),trash(person(name(#C))))" in
  let scope = Twig.Parse.query "/site/people/person" in
  let store = Exchange.Publish.xml_to_rdf ~scope doc in
  (* Only the two people persons contribute; each person yields a name edge
     and a value triple. *)
  Alcotest.(check int) "two persons, two triples each" 4
    (Exchange.Rdf.cardinal store);
  Alcotest.(check bool) "subject ids re-anchored" true
    (List.for_all
       (fun (t : Exchange.Rdf.triple) ->
         String.length t.subj >= 4 && String.sub t.subj 0 2 = "/0")
       (Exchange.Rdf.to_list store))

(* ------------------------------------------------------------------ *)
(* Basic graph patterns (SPARQL-style)                                 *)
(* ------------------------------------------------------------------ *)

let geo_store =
  Exchange.Rdf.of_list
    [
      { subj = "p0"; pred = "name"; obj = "Aki" };
      { subj = "p0"; pred = "lives"; obj = "tampa" };
      { subj = "p1"; pred = "name"; obj = "Bea" };
      { subj = "p1"; pred = "lives"; obj = "lille" };
      { subj = "tampa"; pred = "in"; obj = "usa" };
      { subj = "lille"; pred = "in"; obj = "france" };
    ]

let test_bgp_single_pattern () =
  let q = Exchange.Bgp.parse "?p name ?n" in
  Alcotest.(check int) "two matches" 2 (List.length (Exchange.Bgp.eval geo_store q));
  Alcotest.(check (list (list string))) "select names"
    [ [ "Aki" ]; [ "Bea" ] ]
    (Exchange.Bgp.select ~vars:[ "n" ] geo_store q)

let test_bgp_join () =
  let q = Exchange.Bgp.parse "?p lives ?c . ?c in ?country . ?p name ?n" in
  Alcotest.(check (list (list string))) "joined bindings"
    [ [ "Aki"; "usa" ]; [ "Bea"; "france" ] ]
    (Exchange.Bgp.select ~vars:[ "n"; "country" ] geo_store q)

let test_bgp_constants_and_repeats () =
  (* A repeated variable forces equality. *)
  let q = Exchange.Bgp.parse "?x in ?x" in
  Alcotest.(check bool) "no self loops" false (Exchange.Bgp.ask geo_store q);
  let q2 = Exchange.Bgp.parse "?p lives tampa" in
  Alcotest.(check (list (list string))) "constant object" [ [ "p0" ] ]
    (Exchange.Bgp.select ~vars:[ "p" ] geo_store q2);
  Alcotest.(check bool) "unsatisfied constant" false
    (Exchange.Bgp.ask geo_store (Exchange.Bgp.parse "p9 name ?n"))

let test_bgp_empty_query () =
  Alcotest.(check int) "empty binding" 1
    (List.length (Exchange.Bgp.eval geo_store []))

let test_bgp_parse_errors () =
  List.iter
    (fun s ->
      match Exchange.Bgp.parse s with
      | exception Exchange.Bgp.Parse_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ s))
    [ ""; "?a ?b"; "a b c d"; "? name x" ]

let test_bgp_over_shredded_xml () =
  (* Query the structural shredding of a document. *)
  let doc = Xmltree.Parse.term "site(people(person(name(#Aki)),person(name(#Bea))))" in
  let store = Exchange.Rdf.of_xml doc in
  let q = Exchange.Bgp.parse "?p name ?nm . ?nm value ?v" in
  Alcotest.(check (list (list string))) "names via triples"
    [ [ "Aki" ]; [ "Bea" ] ]
    (Exchange.Bgp.select ~vars:[ "v" ] store q)

(* ------------------------------------------------------------------ *)
(* Mapping scenarios                                                   *)
(* ------------------------------------------------------------------ *)

let test_scenario1_rel_to_xml () =
  let rng = Core.Prng.create 3 in
  let inst = Relational.Generator.pair_instance ~rng () in
  let space =
    Joinlearn.Signature.space
      ~left_arity:(Relational.Relation.arity inst.left)
      ~right_arity:(Relational.Relation.arity inst.right)
  in
  let goal = Joinlearn.Signature.of_predicate space inst.planted in
  (* Label a handful of pairs with the goal. *)
  let examples =
    Joinlearn.Interactive.items_of space inst.left inst.right
    |> List.filteri (fun i _ -> i mod 7 = 0)
    |> List.map (fun (it : Joinlearn.Interactive.item) ->
           ((it.left, it.right), Joinlearn.Signature.subset goal it.mask))
  in
  match Exchange.Mapping.Rel_to_xml.run ~left:inst.left ~right:inst.right ~examples with
  | None -> Alcotest.fail "scenario 1 must succeed"
  | Some result ->
      (* The published document shreds back to the goal equi-join. *)
      let direct = Relational.Algebra.equijoin inst.left inst.right result.predicate in
      Alcotest.(check int) "row count matches the join"
        (Relational.Relation.cardinal direct)
        (List.length result.published.children)

let test_scenario2_xml_to_rel () =
  let doc =
    Benchkit.Xmark.generate ~scale:2.0 ~seed:77 ()
  in
  let goal = Twig.Parse.query "//person" in
  (* Annotate every person: the LGG then selects at least all of them. *)
  let annotations = Twig.Eval.select goal doc in
  Alcotest.(check bool) "persons expected" true (List.length annotations >= 2);
  match
    Exchange.Mapping.Xml_to_rel.run ~doc ~annotations ~name:"person"
      ~columns:[ ("name", "name"); ("email", "emailaddress") ]
  with
  | None -> Alcotest.fail "scenario 2 must succeed"
  | Some result ->
      let expected = List.length (Twig.Eval.select result.query doc) in
      Alcotest.(check bool) "rows shredded (dedup allowed)" true
        (Relational.Relation.cardinal result.shredded <= expected
        && Relational.Relation.cardinal result.shredded > 0);
      Alcotest.(check bool) "learned query finds all persons" true
        (List.length (Twig.Eval.select result.query doc)
        = List.length (Twig.Eval.select goal doc))

let test_scenario3_xml_to_rdf () =
  let doc = Xmltree.Parse.term "site(people(person(name(#A)),person(name(#B))))" in
  match
    Exchange.Mapping.Xml_to_rdf.run ~doc ~annotations:[ [ 0; 0 ]; [ 0; 1 ] ]
  with
  | None -> Alcotest.fail "scenario 3 must succeed"
  | Some result ->
      Alcotest.(check bool) "some triples" true
        (Exchange.Rdf.cardinal result.triples > 0);
      Alcotest.(check bool) "values preserved" true
        (List.exists
           (fun (t : Exchange.Rdf.triple) -> t.obj = "A")
           (Exchange.Rdf.to_list result.triples))

let test_scenario4_graph_to_xml () =
  let chain =
    Graphdb.Graph.make ~nodes:4
      [ (0, "h", 1); (1, "h", 2); (2, "h", 3); (3, "r", 0) ]
  in
  let examples = [ ((0, 1), true); ((0, 2), true); ((3, 0), false) ] in
  match Exchange.Mapping.Graph_to_xml.run ~graph:chain ~examples with
  | None -> Alcotest.fail "scenario 4 must succeed"
  | Some result ->
      Alcotest.(check string) "paths doc" "paths" result.published.label;
      Alcotest.(check bool) "at least the positive pairs published" true
        (List.length result.published.children >= 2)

let () =
  Alcotest.run "exchange"
    [
      ( "rdf",
        [
          Alcotest.test_case "store basics" `Quick test_rdf_store_basics;
          Alcotest.test_case "graph roundtrip" `Quick test_rdf_graph_roundtrip;
          Alcotest.test_case "of_xml" `Quick test_rdf_of_xml;
        ] );
      ( "publish",
        [
          Alcotest.test_case "relation→xml→relation" `Quick test_relation_to_xml;
          Alcotest.test_case "grouped publishing" `Quick test_relation_to_xml_grouped;
          Alcotest.test_case "missing values" `Quick test_xml_to_relation_missing_values;
          Alcotest.test_case "graph paths" `Quick test_graph_paths_to_xml;
          Alcotest.test_case "scoped rdf shredding" `Quick test_xml_to_rdf_scoped;
        ] );
      ( "bgp",
        [
          Alcotest.test_case "single pattern" `Quick test_bgp_single_pattern;
          Alcotest.test_case "join" `Quick test_bgp_join;
          Alcotest.test_case "constants and repeats" `Quick test_bgp_constants_and_repeats;
          Alcotest.test_case "empty query" `Quick test_bgp_empty_query;
          Alcotest.test_case "parse errors" `Quick test_bgp_parse_errors;
          Alcotest.test_case "over shredded xml" `Quick test_bgp_over_shredded_xml;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "1: relational→XML" `Quick test_scenario1_rel_to_xml;
          Alcotest.test_case "2: XML→relational" `Slow test_scenario2_xml_to_rel;
          Alcotest.test_case "3: XML→RDF" `Quick test_scenario3_xml_to_rdf;
          Alcotest.test_case "4: graph→XML" `Quick test_scenario4_graph_to_xml;
        ] );
    ]

let _ = qcheck
