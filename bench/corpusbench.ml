(* The xmlstore performance pass (PR 9), two claims, both CI-gated:

   Phase A — indexing beats walking.  The same deterministic interactive
   learn-twig session (XMark scale 10, the BENCH_PR3/PR4 goal query) runs
   once on the index-backed evaluator (containment labels + inverted name
   lists + structural joins) and once on the bottom-up tree walk
   (--no-xmlstore).  Gate: indexed >= 5x, with identical question
   transcripts — the evaluator swap must be invisible to the learner.

   Phase B — parallelism at the right granularity.  BENCH_PR4 is honest
   that pool > 1 *loses* on the probe loop once probes are O(1); the shard
   is the granularity that pays.  A corpus of XMark documents runs the
   whole per-shard pipeline — label, persist with fsync, validate against
   the XMark schema, evaluate the query set — on 1 lane and on 2, chunked
   dispatch, one shard per claim.  Lanes own whole shards, so compute on
   one shard overlaps both the fsync and the compute of another, and the
   merged verdict vector is byte-equal at every pool size.  Gate:
   pool=2 wall-clock < pool=1, verdicts identical.

   Results go to BENCH_PR9.json for the CI artifact. *)

module TI = Twiglearn.Interactive
module Store = Xmlstore.Store
module Twigjoin = Xmlstore.Twigjoin

let time f =
  let t0 = Core.Monotonic.now () in
  let x = f () in
  (x, Core.Monotonic.now () -. t0)

let median xs =
  let a = List.sort compare xs in
  List.nth a (List.length a / 2)

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some v when v > 0. -> v
  | _ -> default

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let output = "BENCH_PR9.json"

(* ------------------------------------------------------------------ *)
(* Phase A: indexed vs tree-walk on learn-twig's evaluation workload   *)
(* ------------------------------------------------------------------ *)

(* The interactive session clock cannot see the evaluator: profiling
   (LEARNQ_PR9_PROFILE=1) shows that at scale 10 all but a few dozen of
   the ~115k probe evaluations hit the per-session mask cache, and the
   remaining wall time is learner machinery (consistency probes, the LGG
   memo).  What the evaluator does carry is learn-twig's *query
   trajectory*: the goal query (answer extraction, candidate checks) and
   the LGG candidates the learner emits as its positive-example prefix
   grows.  Phase A reconstructs that trajectory, runs it through the
   index-backed evaluator and through the reference tree walk, and gates
   on indexed >= 5x with identical answers per query.

   That the evaluator swap is invisible to the learner itself — byte-
   identical question transcripts under --no-xmlstore — is checked with a
   full session at a smaller scale, where session wall time is dominated
   by the learner either way and adds only seconds to the bench. *)

type session_result = {
  s_questions : int;
  s_transcript : (string * bool) list;
  s_query : string;
}

let run_session ~doc ~goal ~xmlstore () =
  Twig.Eval.set_xmlstore xmlstore;
  Fun.protect
    ~finally:(fun () -> Twig.Eval.set_xmlstore true)
    (fun () ->
      let o = TI.run_with_goal ~rng:(Core.Prng.create 1) ~doc ~goal () in
      {
        s_questions = o.TI.Loop.questions;
        s_transcript =
          List.map (fun (it, ans) -> (TI.encode_item it, ans)) o.TI.Loop.asked;
        s_query =
          (match o.TI.Loop.query with
          | Some q -> Twig.Query.to_string q
          | None -> "<none>");
      })

(* The queries learn-twig evaluates on [doc] while learning [goal]: the
   goal itself plus the LGG candidate after every positive-example
   prefix, deduplicated (consecutive prefixes often generalize to the
   same query). *)
let trajectory ~doc ~goal =
  let answers = Twig.Eval.select_walk goal doc in
  let positives = List.map (fun p -> Xmltree.Annotated.make doc p) answers in
  let seen = Hashtbl.create 16 in
  let keep q =
    let s = Twig.Query.to_string q in
    if Hashtbl.mem seen s then false
    else begin
      Hashtbl.add seen s ();
      true
    end
  in
  let cands = ref [] in
  let prefix = ref [] in
  List.iter
    (fun ex ->
      prefix := ex :: !prefix;
      match Twiglearn.Positive.learn_positive (List.rev !prefix) with
      | Some q when keep q -> cands := q :: !cands
      | _ -> ())
    positives;
  ignore (keep goal);
  goal :: List.rev !cands

let phase_a () =
  let scale = env_float "LEARNQ_PR9_SCALE" 10.0 in
  let doc = Benchkit.Xmark.generate ~scale ~seed:1 () in
  let goal = Twig.Parse.query "//person[profile/education]/name" in
  let reps = env_int "LEARNQ_PR9_REPS" 5 in
  let passes = env_int "LEARNQ_PR9_PASSES" 10 in
  let queries = trajectory ~doc ~goal in
  let d = Twig.Eval.index doc in
  Twig.Eval.set_xmlstore true;
  let run_indexed () =
    for _ = 1 to passes do
      List.iter (fun q -> ignore (Twig.Eval.select_doc d q)) queries
    done
  in
  let run_walk () =
    for _ = 1 to passes do
      List.iter (fun q -> ignore (Twig.Eval.select_walk q doc)) queries
    done
  in
  (* Answers must agree query by query before any timing matters. *)
  let answers_agree =
    List.for_all
      (fun q -> Twig.Eval.select_doc d q = Twig.Eval.select_walk q doc)
      queries
  in
  (* Warm both paths (builds and caches the labeled store), then time. *)
  run_indexed ();
  run_walk ();
  let idx_s = median (List.init reps (fun _ -> snd (time run_indexed))) in
  let walk_s = median (List.init reps (fun _ -> snd (time run_walk))) in
  (* Transcript equality: one full session per evaluator. *)
  let sscale = env_float "LEARNQ_PR9_SESSION_SCALE" 4.0 in
  let sdoc = Benchkit.Xmark.generate ~scale:sscale ~seed:1 () in
  let r_idx = run_session ~doc:sdoc ~goal ~xmlstore:true () in
  let r_walk = run_session ~doc:sdoc ~goal ~xmlstore:false () in
  let transcripts_agree =
    r_idx.s_transcript = r_walk.s_transcript && r_idx.s_query = r_walk.s_query
  in
  ( Xmltree.Tree.size doc,
    scale,
    List.length queries,
    passes,
    idx_s,
    walk_s,
    answers_agree,
    sscale,
    r_idx,
    transcripts_agree )

(* ------------------------------------------------------------------ *)
(* Phase B: the sharded-corpus pipeline, pool 1 vs pool 2              *)
(* ------------------------------------------------------------------ *)

let query_texts =
  [
    "//person[profile/education]/name";
    "//people/person[address]/name";
    "//item[payment]/name";
    "//closed_auction[annotation]/price";
    "//category/name";
  ]

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

(* One lane's work for one shard: label, persist (fsync), validate,
   evaluate.  Returns the shard verdict. *)
let shard_job ~state_dir ~patterns ~eval_rounds tag i tree =
  let store = Store.of_tree tree in
  let path =
    Filename.concat state_dir (Printf.sprintf "%s-shard%02d.lqx" tag i)
  in
  Store.save ~fsync:true store path;
  let valid = Uschema.Schema.valid Benchkit.Xmark.schema tree in
  let counts =
    List.map
      (fun pat ->
        let c = ref 0 in
        for _ = 1 to eval_rounds do
          c := Array.length (Twigjoin.select_array store pat)
        done;
        !c)
      patterns
  in
  (i, valid, counts)

(* Minor collections are stop-the-world across domains in OCaml 5: with
   the default ~256k-word nursery, an allocation-heavy pipeline on two
   domains synchronizes every fraction of a millisecond, which on few
   cores costs more than the parallelism wins.  The nursery can only be
   sized at startup (runtime [Gc.set] does not resize it in 5.1), so when
   the harness was launched without an [s=] component in OCAMLRUNPARAM we
   re-exec ourselves once with a roomy one — the same setting for pool=1
   and pool=2, so the comparison stays fair.  Only done when pr9 was
   requested explicitly, to avoid restarting a full-suite run. *)
let ensure_nursery () =
  let param = Option.value (Sys.getenv_opt "OCAMLRUNPARAM") ~default:"" in
  let has_s =
    String.split_on_char ',' param
    |> List.exists (fun kv ->
           String.length kv >= 2 && kv.[0] = 's' && kv.[1] = '=')
  in
  if (not has_s) && Array.exists (String.equal "pr9") Sys.argv then begin
    Unix.putenv "OCAMLRUNPARAM"
      (if param = "" then "s=8M" else param ^ ",s=8M");
    try Unix.execv Sys.executable_name Sys.argv
    with Unix.Unix_error _ -> ()
  end

let profile_b () =
  let cscale = env_float "LEARNQ_PR9_CORPUS_SCALE" 8.0 in
  let tree = Benchkit.Xmark.generate ~scale:cscale ~seed:100 () in
  let patterns =
    List.map (fun s -> Twig.Eval.to_pattern (Twig.Parse.query s)) query_texts
  in
  let dir = "pr9-profile-b" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  for rep = 1 to 3 do
    let store, t_label = time (fun () -> Store.of_tree tree) in
    let path = Filename.concat dir (Printf.sprintf "r%d.lqx" rep) in
    let (), t_save = time (fun () -> Store.save ~fsync:true store path) in
    let _, t_valid =
      time (fun () -> Uschema.Schema.valid Benchkit.Xmark.schema tree)
    in
    let _, t_eval =
      time (fun () ->
          for _ = 1 to 10 do
            List.iter
              (fun pat -> ignore (Twigjoin.select_array store pat))
              patterns
          done)
    in
    Printf.printf
      "pr9-profile-b: label %5.2f ms  save+fsync %5.2f ms  validate %5.2f ms  \
       eval(10 rounds) %5.2f ms  (file %d bytes)\n"
      (t_label *. 1e3) (t_save *. 1e3) (t_valid *. 1e3) (t_eval *. 1e3)
      (Unix.stat path).Unix.st_size
  done;
  rm_rf dir

let phase_b () =
  (* Phase isolation: phase A leaves a large, mostly dead major heap (the
     scale-10 document, eval structures, session state).  Its concurrent
     marking runs on into phase B, and the mark-slice barriers synchronize
     every domain — which on few cores reliably erases pool=2's overlap
     win.  Collect and compact before the pools exist so both pool sizes
     start from the same small heap. *)
  Gc.compact ();
  let shards = env_int "LEARNQ_PR9_SHARDS" 16 in
  let cscale = env_float "LEARNQ_PR9_CORPUS_SCALE" 8.0 in
  let eval_rounds = env_int "LEARNQ_PR9_EVAL_ROUNDS" 10 in
  let reps = env_int "LEARNQ_PR9_REPS" 7 in
  let state_dir =
    Option.value (Sys.getenv_opt "LEARNQ_PR9_STATE") ~default:"pr9-state"
  in
  (try Unix.mkdir state_dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let trees =
    Array.init shards (fun i ->
        Benchkit.Xmark.generate ~scale:cscale ~seed:(100 + i) ())
  in
  let patterns =
    List.map (fun s -> Twig.Eval.to_pattern (Twig.Parse.query s)) query_texts
  in
  let idx = Array.init shards Fun.id in
  let pool1 = Core.Pool.create 1 in
  let pool2 = Core.Pool.create 2 in
  let go pool tag () =
    Core.Pool.map_array_chunked pool ~chunk:1
      (fun i -> shard_job ~state_dir ~patterns ~eval_rounds tag i trees.(i))
      idx
  in
  let go1 = go pool1 "pool1" and go2 = go pool2 "pool2" in
  (* Warm both (page cache, shard files, domain spin-up), then interleave
     the timed reps so drift (CPU frequency, dirty-page writeback) hits
     both pool sizes alike. *)
  let v1 = go1 () in
  let v2 = go2 () in
  let times1 = ref [] and times2 = ref [] in
  for _ = 1 to reps do
    times1 := snd (time go1) :: !times1;
    times2 := snd (time go2) :: !times2
  done;
  Core.Pool.shutdown pool1;
  Core.Pool.shutdown pool2;
  let t1 = median !times1 and t2 = median !times2 in
  (* Persistence really round-trips: reload shard 0 from disk and re-run
     the query set on the reloaded store. *)
  let reload_matches =
    let path = Filename.concat state_dir "pool1-shard00.lqx" in
    match Store.load path with
    | Error _ -> false
    | Ok store ->
        let counts =
          List.map
            (fun pat -> Array.length (Twigjoin.select_array store pat))
            patterns
        in
        (match v1.(0) with (_, _, c0) -> c0 = counts)
  in
  rm_rf state_dir;
  let nodes = Array.fold_left (fun a t -> a + Xmltree.Tree.size t) 0 trees in
  (shards, cscale, eval_rounds, nodes, v1, t1, v2, t2, reload_matches)

(* ------------------------------------------------------------------ *)

let verdict_json (i, valid, counts) =
  Printf.sprintf {|    { "shard": %d, "valid": %b, "matches": [%s] }|} i valid
    (String.concat ", " (List.map string_of_int counts))

(* Diagnostic mode (LEARNQ_PR9_PROFILE=1): span and counter breakdown of
   one instrumented session per evaluator, plus a select-only microbench. *)
let profile () =
  let module T = Core.Telemetry in
  let scale = env_float "LEARNQ_PR9_SCALE" 10.0 in
  let doc = Benchkit.Xmark.generate ~scale ~seed:1 () in
  let goal = Twig.Parse.query "//person[profile/education]/name" in
  List.iter
    (fun (tag, xmlstore) ->
      T.reset ();
      T.set_enabled true;
      let _, dt = time (run_session ~doc ~goal ~xmlstore) in
      T.set_enabled false;
      Printf.printf "pr9-profile: %s session %.1f ms\n" tag (dt *. 1e3);
      List.iteri
        (fun i (name, count, total, self) ->
          if i < 10 then
            Printf.printf "pr9-profile:   %-28s n=%-7d total %8.1f ms self %8.1f ms\n"
              name count (total *. 1e3) (self *. 1e3))
        (T.span_aggregates ());
      List.iter
        (fun c ->
          Printf.printf "pr9-profile:   %-40s %d\n" c
            (T.Metrics.counter_value (T.Metrics.counter c)))
        [ "learnq.twig.eval_cache_hits"; "learnq.twig.eval_cache_misses";
          "learnq.twig.join_evals"; "learnq.twig.walk_evals" ];
      T.reset ())
    [ ("indexed", true); ("tree-walk", false) ];
  let sel q tag =
    let query = Twig.Parse.query q in
    List.iter
      (fun (mode, xmlstore) ->
        Twig.Eval.set_xmlstore xmlstore;
        let d = Twig.Eval.index doc in
        ignore (Twig.Eval.select_doc d query);
        let _, dt =
          time (fun () ->
              for _ = 1 to 100 do
                ignore (Twig.Eval.select_doc d query)
              done)
        in
        Twig.Eval.set_xmlstore true;
        Printf.printf "pr9-profile: select %s %-10s 100x = %7.1f ms\n" tag mode
          (dt *. 1e3))
      [ ("indexed", true); ("walk", false) ]
  in
  sel "//person[profile/education]/name" "goal  ";
  sel "//*[*/*]/*" "wild  "

let run () =
  ensure_nursery ();
  if Sys.getenv_opt "LEARNQ_PR9_PROFILE" <> None then profile ();
  if Sys.getenv_opt "LEARNQ_PR9_PROFILE_B" <> None then profile_b ();
  let ( doc_nodes,
        scale,
        n_queries,
        passes,
        idx_s,
        walk_s,
        answers_agree,
        sscale,
        r_idx,
        transcripts_agree ) =
    phase_a ()
  in
  let speedup = if idx_s > 0. then walk_s /. idx_s else 0. in
  let indexed_ok = answers_agree && transcripts_agree && speedup >= 5.0 in
  Printf.printf
    "pr9: learn-twig eval workload, xmark scale %g (%d nodes, %d queries x %d \
     passes): indexed %7.1f ms, tree-walk %7.1f ms — %.1fx (gate >= 5x: %b, \
     answers agree: %b, session transcripts agree at scale %g: %b)\n"
    scale doc_nodes n_queries passes (idx_s *. 1e3) (walk_s *. 1e3) speedup
    indexed_ok answers_agree sscale transcripts_agree;
  let shards, cscale, eval_rounds, corpus_nodes, v1, t1, v2, t2, reload_matches
      =
    phase_b ()
  in
  let verdicts_agree = v1 = v2 in
  let pool_ok = verdicts_agree && t2 < t1 in
  Printf.printf
    "pr9: corpus %d shards, scale %g (%d nodes), %d eval rounds: pool1 %7.1f \
     ms, pool2 %7.1f ms — %.2fx (gate pool2 < pool1: %b, verdicts agree: %b, \
     reload matches: %b)\n"
    shards cscale corpus_nodes eval_rounds (t1 *. 1e3) (t2 *. 1e3)
    (if t2 > 0. then t1 /. t2 else 0.)
    pool_ok verdicts_agree reload_matches;
  let json =
    Printf.sprintf
      {|{
  "bench": "pr9_xmlstore",
  "generated_by": "dune exec bench/main.exe -- pr9",
  "phase_a": {
    "workload": "learn-twig query trajectory (goal + LGG candidates per positive-example prefix), xmark scale %g seed 1, //person[profile/education]/name",
    "doc_nodes": %d,
    "trajectory_queries": %d,
    "passes": %d,
    "indexed_s": %.6f,
    "tree_walk_s": %.6f,
    "indexed_speedup": %.2f,
    "answers_agree": %b,
    "session_scale": %g,
    "session_questions": %d,
    "session_final_query": %S,
    "transcripts_agree": %b
  },
  "phase_b": {
    "shards": %d,
    "shard_scale": %g,
    "corpus_nodes": %d,
    "eval_rounds": %d,
    "queries": [%s],
    "pool1_s": %.6f,
    "pool2_s": %.6f,
    "pool_speedup": %.2f,
    "verdicts_agree": %b,
    "reload_matches": %b,
    "verdicts": [
%s
    ]
  },
  "indexed_speedup_5x_ok": %b,
  "pool2_beats_pool1": %b
}
|}
      scale doc_nodes n_queries passes idx_s walk_s speedup answers_agree
      sscale r_idx.s_questions r_idx.s_query transcripts_agree shards cscale
      corpus_nodes eval_rounds
      (String.concat ", " (List.map (Printf.sprintf "%S") query_texts))
      t1 t2
      (if t2 > 0. then t1 /. t2 else 0.)
      verdicts_agree reload_matches
      (String.concat ",\n" (List.map verdict_json (Array.to_list v1)))
      indexed_ok pool_ok
  in
  let oc = open_out output in
  output_string oc json;
  close_out oc;
  Printf.printf "pr9: wrote %s\n" output
