type axis = Child | Descendant
type test = Wild | Name of string

type fnode = { ftest : test; fedges : (axis * int) list }
type step = { saxis : axis; stest : test; sedges : (axis * int) list }

type t = { fnodes : fnode array; steps : step array }

let node_count t = Array.length t.steps + Array.length t.fnodes

let pp_test ppf = function
  | Wild -> Format.pp_print_string ppf "*"
  | Name l -> Format.pp_print_string ppf l

let pp_axis ppf = function
  | Child -> Format.pp_print_string ppf "/"
  | Descendant -> Format.pp_print_string ppf "//"

let pp ppf t =
  let rec pp_fnode ppf j =
    let f = t.fnodes.(j) in
    Format.fprintf ppf "%a%a" pp_test f.ftest pp_edges f.fedges
  and pp_edges ppf = function
    | [] -> ()
    | edges ->
        Format.fprintf ppf "[%a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
             (fun ppf (a, j) ->
               Format.fprintf ppf "%a%a" pp_axis a pp_fnode j))
          edges
  in
  Array.iter
    (fun s ->
      Format.fprintf ppf "%a%a%a" pp_axis s.saxis pp_test s.stest pp_edges
        s.sedges)
    t.steps
