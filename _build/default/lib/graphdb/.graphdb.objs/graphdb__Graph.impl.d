lib/graphdb/graph.ml: Array Format List Printf Set String
