(** Path expressions: the restricted regular-expression shape used as the
    learnable graph query language — concatenations of single symbols and
    starred symbols (e.g. [highway+ ·road], written [highway highway* road]).
    This mirrors the path-query classes the navigational-query literature
    the paper cites works with: expressive enough for the geographic
    use case, small enough to admit few-example learning. *)

type atom = Sym of string | Star of string
type t = atom list
(** [\[\]] is ε. *)

val to_regex : t -> Automata.Regex.t
val to_dfa : t -> Automata.Dfa.t
val matches : t -> string list -> bool
val size : t -> int

val generalize_word : string list -> t
(** Collapse every maximal run of ≥2 equal symbols into [Sym a; Star a]
    (i.e. [a+]); single occurrences stay literal.  The result matches the
    word and every pumping of its runs. *)

val star_all : string list -> t
(** Every distinct symbol run becomes [Star]: the coarsest single-word
    generalization. *)

val learn :
  pos:string list list -> neg:string list list -> t option
(** Generate-and-test: candidate generalizations of the positive words
    (literal, run-collapsed, fully starred, and pairwise merges), filtered
    for consistency with the whole sample; returns the smallest consistent
    candidate.  [None] when no candidate of this shape fits — callers fall
    back to {!Automata.Rpni} over the full regular class. *)

val of_dfa : Automata.Dfa.t -> t option
(** Extracts a path expression from a DFA whose minimal form is a single
    forward chain with optional self-loops — the shape RPNI produces when
    the target is a path query. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
