(** A sharded corpus of labeled documents.

    One shard = one {!Store.t}.  Shards are the parallelism granularity
    that actually pays: each {!Core.Pool} lane owns whole documents, so
    there is no cross-domain sharing of store caches, no per-probe
    dispatch overhead, and per-shard results are merged back in shard
    order — deterministically, whatever the pool size or interleaving.

    The per-shard work a lane runs is whatever the caller passes to
    {!map}: label, persist ({!Store.save}), validate, evaluate.  Keeping
    the whole per-shard pipeline inside one lane lets evaluation of one
    shard overlap the fsync of another. *)

type t

val of_trees : ?pool:Core.Pool.t -> Xmltree.Tree.t array -> t
(** Label every document; with a pool, shards are labeled in parallel. *)

val of_stores : Store.t array -> t

val shards : t -> int
val store : t -> int -> Store.t

val total_nodes : t -> int

val map : ?pool:Core.Pool.t -> ?chunk:int -> t -> (int -> Store.t -> 'a) -> 'a array
(** [map ?pool ?chunk c f] runs [f shard_index store] per shard —
    sequentially without a pool, else via {!Core.Pool.map_array_chunked}
    (default [chunk = 1]: one shard per dispatch, since shards are
    chunky).  Results are in shard order at every pool size. *)

val select : ?pool:Core.Pool.t -> t -> Pattern.t -> int list array
(** Per-shard matching node ids (ascending within each shard), in shard
    order. *)
