open Xmltree

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  last : ints;
  parent : ints;
  rank : ints;
  level : ints;
  name_ids : ints;
  posting_offsets : ints;
  posting_data : ints;
  names : string array;
  name_tbl : (string, int) Hashtbl.t;
  mutable posting_cache : int array option array;
  mutable all_ids_cache : int array option;
  mutable stamp : int array;
  mutable stamp_gen : int;
}

let make_ints n = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let finish ~n ~last ~parent ~rank ~level ~name_ids ~posting_offsets
    ~posting_data ~names =
  let name_tbl = Hashtbl.create (Array.length names * 2) in
  Array.iteri (fun k name -> Hashtbl.replace name_tbl name k) names;
  {
    n;
    last;
    parent;
    rank;
    level;
    name_ids;
    posting_offsets;
    posting_data;
    names;
    name_tbl;
    posting_cache = Array.make (Array.length names) None;
    all_ids_cache = None;
    stamp = Array.make n 0;
    stamp_gen = 0;
  }

let of_tree tree =
  let n = Tree.size tree in
  let last = make_ints n in
  let parent = make_ints n in
  let rank = make_ints n in
  let level = make_ints n in
  let name_ids = make_ints n in
  let tbl = Hashtbl.create 64 in
  let rev_names = ref [] in
  let name_count = ref 0 in
  let intern l =
    match Hashtbl.find_opt tbl l with
    | Some k -> k
    | None ->
        let k = !name_count in
        incr name_count;
        Hashtbl.add tbl l k;
        rev_names := l :: !rev_names;
        k
  in
  let counter = ref 0 in
  let rec go pid rk lvl (node : Tree.t) =
    let id = !counter in
    incr counter;
    parent.{id} <- pid;
    rank.{id} <- rk;
    level.{id} <- lvl;
    name_ids.{id} <- intern node.label;
    List.iteri (fun i c -> go id i (lvl + 1) c) node.children;
    last.{id} <- !counter - 1
  in
  go (-1) 0 0 tree;
  let m = !name_count in
  let names = Array.of_list (List.rev !rev_names) in
  (* Counting sort into CSR: postings come out in ascending preorder per
     name because ids are visited in order. *)
  let posting_offsets = make_ints (m + 1) in
  let counts = Array.make (max 1 m) 0 in
  for i = 0 to n - 1 do
    counts.(name_ids.{i}) <- counts.(name_ids.{i}) + 1
  done;
  let total = ref 0 in
  for k = 0 to m - 1 do
    posting_offsets.{k} <- !total;
    total := !total + counts.(k)
  done;
  posting_offsets.{m} <- !total;
  let posting_data = make_ints n in
  let cursor = Array.make (max 1 m) 0 in
  for k = 0 to m - 1 do
    cursor.(k) <- posting_offsets.{k}
  done;
  for i = 0 to n - 1 do
    let k = name_ids.{i} in
    posting_data.{cursor.(k)} <- i;
    cursor.(k) <- cursor.(k) + 1
  done;
  finish ~n ~last ~parent ~rank ~level ~name_ids ~posting_offsets
    ~posting_data ~names

let size t = t.n
let label t id = t.names.(t.name_ids.{id})
let last t id = t.last.{id}
let level t id = t.level.{id}
let parent t id = t.parent.{id}
let is_ancestor t a d = a < d && d <= t.last.{a}
let is_child t p c = c > 0 && t.parent.{c} = p
let name_id t name = Hashtbl.find_opt t.name_tbl name

let postings t name =
  match name_id t name with
  | None -> [||]
  | Some k -> (
      match t.posting_cache.(k) with
      | Some arr -> arr
      | None ->
          let off = t.posting_offsets.{k} in
          let len = t.posting_offsets.{k + 1} - off in
          let arr = Array.init len (fun i -> t.posting_data.{off + i}) in
          t.posting_cache.(k) <- Some arr;
          arr)

let all_ids t =
  match t.all_ids_cache with
  | Some arr -> arr
  | None ->
      let arr = Array.init t.n Fun.id in
      t.all_ids_cache <- Some arr;
      arr

let path_of_id t id =
  let rec climb id acc =
    if id <= 0 then acc else climb t.parent.{id} (t.rank.{id} :: acc)
  in
  if id < 0 || id >= t.n then invalid_arg "Store.path_of_id: id out of range"
  else climb id []

let id_of_path t path =
  (* first child of [i] is [i+1]; the sibling after [j] is [last j + 1]. *)
  let rec walk id = function
    | [] -> Some id
    | k :: rest ->
        if k < 0 then None
        else
          let stop = t.last.{id} in
          let rec child c j =
            if c > stop then None
            else if j = k then walk c rest
            else child (t.last.{c} + 1) (j + 1)
          in
          child (id + 1) 0
  in
  if t.n = 0 then None else walk 0 path

let fresh_stamp t =
  if Array.length t.stamp < t.n then t.stamp <- Array.make t.n 0;
  t.stamp_gen <- t.stamp_gen + 1;
  (t.stamp, t.stamp_gen)

(* ------------------------------------------------------------------ *)
(* Persistence: the LQXSTORE layout                                    *)
(* ------------------------------------------------------------------ *)

(* 32-byte header:
     bytes  0..7   magic "LQXSTORE"
     bytes  8..15  format sentinel (int64 LE) — version and byte order
     bytes 16..23  n (int64 LE)
     bytes 24..31  m = distinct names (int64 LE)
   then the numeric region, 6n+m+1 int64 LE words, 8-byte aligned at
   offset 32 so it can be memory-mapped directly:
     last[n] parent[n] rank[n] level[n] name_ids[n]
     posting_offsets[m+1] posting_data[n]
   then the name table: for each name, int64 LE length followed by the
   raw bytes. *)

let magic = "LQXSTORE"
let sentinel = 0x4c51585331_4c45L (* "LQXS1" ++ "LE": format 1, little endian *)
let header_bytes = 32
let words t = (6 * t.n) + Bigarray.Array1.dim t.posting_offsets

let to_bytes t =
  let buf = Buffer.create (header_bytes + (8 * words t) + 64) in
  Buffer.add_string buf magic;
  Buffer.add_int64_le buf sentinel;
  Buffer.add_int64_le buf (Int64.of_int t.n);
  Buffer.add_int64_le buf (Int64.of_int (Array.length t.names));
  let dump (a : ints) =
    for i = 0 to Bigarray.Array1.dim a - 1 do
      Buffer.add_int64_le buf (Int64.of_int a.{i})
    done
  in
  dump t.last;
  dump t.parent;
  dump t.rank;
  dump t.level;
  dump t.name_ids;
  dump t.posting_offsets;
  dump t.posting_data;
  Array.iter
    (fun name ->
      Buffer.add_int64_le buf (Int64.of_int (String.length name));
      Buffer.add_string buf name)
    t.names;
  Buffer.to_bytes buf

let decode_err fmt = Format.kasprintf (fun s -> Error s) fmt

let of_bytes bytes =
  let len = Bytes.length bytes in
  if len < header_bytes then decode_err "xmlstore: truncated header"
  else if not (String.equal (Bytes.sub_string bytes 0 8) magic) then
    decode_err "xmlstore: bad magic"
  else if Bytes.get_int64_le bytes 8 <> sentinel then
    decode_err "xmlstore: unknown format sentinel"
  else
    let n = Int64.to_int (Bytes.get_int64_le bytes 16) in
    let m = Int64.to_int (Bytes.get_int64_le bytes 24) in
    let word_count = (6 * n) + m + 1 in
    if n < 1 || m < 1 || m > n then decode_err "xmlstore: bad counts"
    else if len < header_bytes + (8 * word_count) then
      decode_err "xmlstore: truncated numeric region"
    else begin
      let pos = ref header_bytes in
      let read_ints count =
        let a = make_ints count in
        for i = 0 to count - 1 do
          a.{i} <- Int64.to_int (Bytes.get_int64_le bytes !pos);
          pos := !pos + 8
        done;
        a
      in
      let last = read_ints n in
      let parent = read_ints n in
      let rank = read_ints n in
      let level = read_ints n in
      let name_ids = read_ints n in
      let posting_offsets = read_ints (m + 1) in
      let posting_data = read_ints n in
      let names = Array.make m "" in
      let bad = ref None in
      (try
         for k = 0 to m - 1 do
           if len < !pos + 8 then raise Exit;
           let l = Int64.to_int (Bytes.get_int64_le bytes !pos) in
           pos := !pos + 8;
           if l < 0 || len < !pos + l then raise Exit;
           names.(k) <- Bytes.sub_string bytes !pos l;
           pos := !pos + l
         done
       with Exit -> bad := Some "xmlstore: truncated name table");
      match !bad with
      | Some msg -> Error msg
      | None ->
          Ok
            (finish ~n ~last ~parent ~rank ~level ~name_ids ~posting_offsets
               ~posting_data ~names)
    end

let save ?(fsync = false) t path =
  let bytes = to_bytes t in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = Bytes.length bytes in
      let written = ref 0 in
      while !written < len do
        written :=
          !written + Unix.write fd bytes !written (len - !written)
      done;
      if fsync then Unix.fsync fd);
  if fsync then begin
    (* Durability includes the directory entry: a store that survives a
       crash but cannot be found by name is not persisted. *)
    match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
    | dirfd ->
        Fun.protect
          ~finally:(fun () -> Unix.close dirfd)
          (fun () -> try Unix.fsync dirfd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  end

let mmap_supported = Sys.word_size = 64 && not Sys.big_endian

let read_file path =
  let ic = In_channel.open_bin path in
  Fun.protect
    ~finally:(fun () -> In_channel.close ic)
    (fun () -> In_channel.input_all ic)

let load_mmap path =
  let header = Bytes.create header_bytes in
  let ic = In_channel.open_bin path in
  let ok =
    Fun.protect
      ~finally:(fun () -> In_channel.close ic)
      (fun () -> In_channel.really_input_string ic header_bytes)
  in
  match ok with
  | None -> decode_err "xmlstore: truncated header"
  | Some hdr ->
      Bytes.blit_string hdr 0 header 0 header_bytes;
      if not (String.equal (String.sub hdr 0 8) magic) then
        decode_err "xmlstore: bad magic"
      else if Bytes.get_int64_le header 8 <> sentinel then
        decode_err "xmlstore: unknown format sentinel"
      else
        let n = Int64.to_int (Bytes.get_int64_le header 16) in
        let m = Int64.to_int (Bytes.get_int64_le header 24) in
        let word_count = (6 * n) + m + 1 in
        if n < 1 || m < 1 || m > n then decode_err "xmlstore: bad counts"
        else
          let file_len = (Unix.stat path).Unix.st_size in
          if file_len < header_bytes + (8 * word_count) then
            decode_err "xmlstore: truncated numeric region"
          else begin
            let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
            let all =
              Fun.protect
                ~finally:(fun () -> Unix.close fd)
                (fun () ->
                  Bigarray.array1_of_genarray
                    (Unix.map_file fd ~pos:(Int64.of_int header_bytes)
                       Bigarray.int Bigarray.c_layout false [| word_count |]))
            in
            let pos = ref 0 in
            let slice count =
              let s = Bigarray.Array1.sub all !pos count in
              pos := !pos + count;
              s
            in
            let last = slice n in
            let parent = slice n in
            let rank = slice n in
            let level = slice n in
            let name_ids = slice n in
            let posting_offsets = slice (m + 1) in
            let posting_data = slice n in
            (* The name table is tiny; read it through the channel. *)
            let body = read_file path in
            let names = Array.make m "" in
            let bpos = ref (header_bytes + (8 * word_count)) in
            let blen = String.length body in
            let bad = ref None in
            (try
               for k = 0 to m - 1 do
                 if blen < !bpos + 8 then raise Exit;
                 let l =
                   Int64.to_int
                     (Bytes.get_int64_le
                        (Bytes.unsafe_of_string body)
                        !bpos)
                 in
                 bpos := !bpos + 8;
                 if l < 0 || blen < !bpos + l then raise Exit;
                 names.(k) <- String.sub body !bpos l;
                 bpos := !bpos + l
               done
             with Exit -> bad := Some "xmlstore: truncated name table");
            match !bad with
            | Some msg -> Error msg
            | None ->
                Ok
                  (finish ~n ~last ~parent ~rank ~level ~name_ids
                     ~posting_offsets ~posting_data ~names)
          end

let load ?(mmap = true) path =
  match
    if mmap && mmap_supported then load_mmap path
    else of_bytes (Bytes.unsafe_of_string (read_file path))
  with
  | result -> result
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
