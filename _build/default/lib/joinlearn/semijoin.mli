(** Learning semijoin predicates — the intractable side of Section 3:
    "testing consistency of a set of positive and negative examples, a
    problem which is intractable in the context of semijoins".

    Instances are {e left} tuples only; a predicate θ selects a left tuple
    [r] iff {e some} right tuple agrees with [r] on θ.  The existential
    witness destroys the unique most-specific candidate that makes join
    learning easy: deciding consistency requires choosing a witness per
    positive, and the exact procedure below explores that choice space
    (exponential in the number of positives in the worst case — experiment
    E5 measures the blow-up).  A polynomial greedy variant trades
    completeness for speed, mirroring the paper's plan to "ignore some of
    the annotations to be able to compute in polynomial time a candidate
    query". *)

type t
(** A learning context: the attribute-pair space of a relation pair plus the
    right relation's tuples. *)

val make : Relational.Relation.t -> Relational.Relation.t -> t

val space : t -> Signature.space

val sigs_of : t -> Relational.Relation.tuple -> Signature.mask list
(** Signatures of a left tuple against every right tuple. *)

val selects : t -> Signature.mask -> Relational.Relation.tuple -> bool
(** Semijoin semantics: some right tuple agrees on θ. *)

type outcome = {
  theta : Signature.mask option;  (** a consistent predicate, if found *)
  explored : int;  (** search nodes visited *)
  complete : bool;  (** false when the node limit was hit *)
}

val consistent_exact :
  ?node_limit:int ->
  t ->
  (Relational.Relation.tuple * bool) list ->
  outcome
(** Exact branch-and-prune over per-positive witness choices with
    memoization; sound and complete within [node_limit] (default 1_000_000)
    search nodes. *)

val consistent_greedy :
  t -> (Relational.Relation.tuple * bool) list -> Signature.mask option
(** Polynomial heuristic: pick for each positive the witness keeping the
    running intersection largest; may miss consistent predicates. *)
