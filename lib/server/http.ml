type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let header name (req : request) =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  while !j >= !i && (s.[!j] = ' ' || s.[!j] = '\t' || s.[!j] = '\r') do
    decr j
  done;
  String.sub s !i (!j - !i + 1)

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> Error "empty request head"
  | request_line :: header_lines -> (
      let request_line = strip request_line in
      match String.split_on_char ' ' request_line with
      | [ meth; path; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" ->
          let rec headers acc = function
            | [] -> Ok (List.rev acc)
            | line :: rest ->
                let line =
                  if String.length line > 0 && line.[String.length line - 1] = '\r'
                  then String.sub line 0 (String.length line - 1)
                  else line
                in
                if line = "" then headers acc rest
                else (
                  match String.index_opt line ':' with
                  | None -> Error (Printf.sprintf "malformed header %S" line)
                  | Some i ->
                      let name =
                        String.lowercase_ascii (strip (String.sub line 0 i))
                      in
                      let value =
                        strip
                          (String.sub line (i + 1) (String.length line - i - 1))
                      in
                      headers ((name, value) :: acc) rest)
          in
          Result.map
            (fun headers ->
              { meth = String.uppercase_ascii meth; path; headers; body = "" })
            (headers [] header_lines)
      | _ -> Error (Printf.sprintf "malformed request line %S" request_line))

(* ------------------------------------------------------------------ *)
(* Incremental (resumable) request parsing                             *)
(* ------------------------------------------------------------------ *)

(* The multiplexer feeds whatever bytes the socket happens to have — a
   request may arrive in any number of chunks, and [step] must be callable
   after every one.  Unconsumed bytes accumulate in [pbuf]; the parsed head
   is memoized the moment its terminator appears so later feeds only check
   whether the body is complete.  [pscan] remembers how far the terminator
   search has already looked, keeping repeated [step]s on a trickling
   connection linear in the head size. *)
type incremental = {
  pbuf : Buffer.t;  (** unconsumed request bytes *)
  pmax_head : int;
  pmax_body : int;
  mutable pscan : int;  (** head-terminator search resumes here *)
  mutable phead : (request * int * int) option;
      (** parsed head, body offset in [pbuf], body length *)
  mutable perr : string option;  (** sticky: a framing error ends the conn *)
}

let incremental ?(max_head = 16 * 1024) ?(max_body = 1024 * 1024) () =
  {
    pbuf = Buffer.create 256;
    pmax_head = max_head;
    pmax_body = max_body;
    pscan = 0;
    phead = None;
    perr = None;
  }

let feed_sub p b ~pos ~len = Buffer.add_subbytes p.pbuf b pos len
let feed p s = Buffer.add_string p.pbuf s
let pending p = Buffer.length p.pbuf

(* Terminator search over [s] starting at [from]: index and length of the
   first "\r\n\r\n" (or lenient "\n\n"), if any. *)
let head_terminator s from =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then None
    else if s.[i] = '\n' && s.[i + 1] = '\n' then Some (i, 2)
    else if
      i + 3 < n
      && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i, 4)
    else go (i + 1)
  in
  go (max 0 from)

let content_length req =
  match header "content-length" req with
  | None -> Ok 0
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> Ok n
      | _ -> Error (Printf.sprintf "bad content-length %S" v))

let fail p msg =
  p.perr <- Some msg;
  `Error msg

let rec step p =
  match p.perr with
  | Some msg -> `Error msg
  | None -> (
      match p.phead with
      | None -> (
          let s = Buffer.contents p.pbuf in
          match head_terminator s (p.pscan - 3) with
          | None ->
              if String.length s > p.pmax_head then
                fail p "request head too large"
              else begin
                p.pscan <- String.length s;
                `More
              end
          | Some (i, tlen) -> (
              if i > p.pmax_head then fail p "request head too large"
              else
                match parse_head (String.sub s 0 i) with
                | Error msg -> fail p msg
                | Ok req -> (
                    match content_length req with
                    | Error msg -> fail p msg
                    | Ok len when len > p.pmax_body ->
                        fail p "request body too large"
                    | Ok len ->
                        p.phead <- Some (req, i + tlen, len);
                        step p)))
      | Some (req, off, len) ->
          if Buffer.length p.pbuf < off + len then `More
          else begin
            let s = Buffer.contents p.pbuf in
            let body = String.sub s off len in
            (* Consume exactly this request; pipelined bytes stay. *)
            Buffer.clear p.pbuf;
            Buffer.add_substring p.pbuf s (off + len)
              (String.length s - off - len);
            p.pscan <- 0;
            p.phead <- None;
            `Request { req with body }
          end)

(* A request is "in progress" once any of its bytes have arrived — the
   multiplexer's slow-request deadline starts there, while a connection
   with no pending bytes is merely idle and parks for free. *)
let mid_request p = p.perr <> None || p.phead <> None || pending p > 0

(* ------------------------------------------------------------------ *)
(* Socket I/O                                                          *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes read from the socket, not yet consumed *)
  chunk : Bytes.t;
}

let conn_of_fd fd = { fd; buf = Buffer.create 1024; chunk = Bytes.create 4096 }

(* One socket read into the buffer.  Returns the byte count (0 = EOF). *)
let refill c =
  match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
  | 0 -> Ok 0
  | n ->
      Buffer.add_subbytes c.buf c.chunk 0 n;
      Ok n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timeout"
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> Ok (-1) (* retry *)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* Index of "\r\n\r\n" (or the lenient "\n\n") in the buffer, with the
   terminator length, if present. *)
let find_head_end c =
  let s = Buffer.contents c.buf in
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then None
    else if s.[i] = '\n' && s.[i + 1] = '\n' then Some (i, 2, s)
    else if
      i + 3 < n
      && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i, 4, s)
    else go (i + 1)
  in
  go 0

(* Drop [k] consumed bytes from the front of the buffer. *)
let consume c k =
  let s = Buffer.contents c.buf in
  Buffer.clear c.buf;
  Buffer.add_substring c.buf s k (String.length s - k)

let buffered c = Buffer.length c.buf > 0

let read_request ?(max_head = 16 * 1024) ?(max_body = 1024 * 1024) c =
  (* The buffer is consumed only once the complete request — head {e and}
     body — has arrived.  A receive timeout mid-request therefore leaves
     every byte in place, and the caller can simply call again to keep
     reading the same request; treating [Error "timeout"] as an idle
     keep-alive poll can never drop a half-received request. *)
  let rec head () =
    match find_head_end c with
    | Some (i, tlen, s) -> Ok (Some (String.sub s 0 i, i + tlen))
    | None ->
        if Buffer.length c.buf > max_head then Error "request head too large"
        else (
          match refill c with
          | Ok 0 ->
              if Buffer.length c.buf = 0 then Ok None (* orderly EOF *)
              else Error "eof mid request head"
          | Ok _ -> head ()
          | Error _ as e -> e)
  in
  let rec body ~off len =
    if Buffer.length c.buf >= off + len then (
      let s = Buffer.contents c.buf in
      let b = String.sub s off len in
      consume c (off + len);
      Ok b)
    else
      match refill c with
      | Ok 0 -> Error "eof mid request body"
      | Ok _ -> body ~off len
      | Error _ as e -> e
  in
  match head () with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some (raw, off)) -> (
      match parse_head raw with
      | Error _ as e -> e
      | Ok req -> (
          let len =
            match header "content-length" req with
            | None -> Ok 0
            | Some v -> (
                match int_of_string_opt v with
                | Some n when n >= 0 -> Ok n
                | _ -> Error (Printf.sprintf "bad content-length %S" v))
          in
          match len with
          | Error _ as e -> e
          | Ok len when len > max_body -> Error "request body too large"
          | Ok len ->
              Result.map (fun b -> Some { req with body = b }) (body ~off len)))

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let response_bytes ~keep_alive { status; headers; body } =
  let body = body ^ "\n" in
  let buf = Buffer.create (String.length body + 128) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string buf
    (if keep_alive then "Connection: keep-alive\r\n"
     else "Connection: close\r\n");
  if
    not
      (List.exists
         (fun (k, _) -> String.lowercase_ascii k = "content-type")
         headers)
  then Buffer.add_string buf "Content-Type: application/json\r\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  Buffer.contents buf

let write_response c ~keep_alive resp =
  write_all c.fd (response_bytes ~keep_alive resp)
