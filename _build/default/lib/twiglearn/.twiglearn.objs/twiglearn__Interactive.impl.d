lib/twiglearn/interactive.ml: Core List Positive String Twig Xmltree
