(* Tests for the benchmark kit: XMark generator, XPathMark workload, table
   rendering. *)

let qcheck = QCheck_alcotest.to_alcotest

let test_xmark_validates () =
  List.iter
    (fun seed ->
      let doc = Benchkit.Xmark.generate ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d valid" seed)
        true
        (Uschema.Schema.valid Benchkit.Xmark.schema doc))
    [ 0; 1; 2; 3; 4 ]

let test_xmark_deterministic () =
  let d1 = Benchkit.Xmark.generate ~seed:9 () in
  let d2 = Benchkit.Xmark.generate ~seed:9 () in
  Alcotest.(check bool) "same seed same doc" true (Xmltree.Tree.equal d1 d2);
  let d3 = Benchkit.Xmark.generate ~seed:10 () in
  Alcotest.(check bool) "different seed differs" false (Xmltree.Tree.equal d1 d3)

let test_xmark_scales () =
  let small = Xmltree.Tree.size (Benchkit.Xmark.generate ~scale:1.0 ~seed:3 ()) in
  let big = Xmltree.Tree.size (Benchkit.Xmark.generate ~scale:4.0 ~seed:3 ()) in
  Alcotest.(check bool) "scale grows size" true (big > 2 * small)

let test_xmark_schema_disjunctive () =
  (* The description rule is genuinely disjunctive — the DMS feature the
     paper highlights as capturing the XMark DTD. *)
  Alcotest.(check bool) "not disjunction-free" false
    (Uschema.Schema.disjunction_free Benchkit.Xmark.schema);
  Alcotest.(check bool) "description rule has two clauses" true
    (List.length (Uschema.Schema.rule Benchkit.Xmark.schema "description") = 2)

let test_xmark_shape () =
  let doc = Benchkit.Xmark.generate ~seed:4 () in
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (q ^ " is populated")
        true
        (Twig.Eval.select (Twig.Parse.query q) doc <> []))
    [
      "/site/regions/africa/item";
      "//person/name";
      "//open_auction/itemref";
      "//closed_auction/price";
      "//category/description";
    ]

let prop_xmark_always_valid =
  QCheck.Test.make ~name:"all generated documents validate" ~count:30
    (QCheck.pair QCheck.small_int (QCheck.float_range 0.5 3.0))
    (fun (seed, scale) ->
      Uschema.Schema.valid Benchkit.Xmark.schema
        (Benchkit.Xmark.generate ~scale ~seed ()))

(* ------------------------------------------------------------------ *)
(* XPathMark                                                           *)
(* ------------------------------------------------------------------ *)

let test_xpathmark_consistency () =
  List.iter
    (fun (e : Benchkit.Xpathmark.entry) ->
      match (e.twig, e.reason) with
      | Some _, None -> ()
      | None, Some _ -> ()
      | _ -> Alcotest.fail (e.id ^ ": exactly one of twig/reason expected"))
    Benchkit.Xpathmark.queries

let test_xpathmark_fraction () =
  let total = List.length Benchkit.Xpathmark.queries in
  let expressible = List.length Benchkit.Xpathmark.expressible in
  Alcotest.(check bool) "a representative workload" true (total >= 20);
  (* Most XPathMark queries fall outside the twig fragment (the paper's 15%
     learnable-rate story); the transcription keeps that skew. *)
  Alcotest.(check bool) "minority expressible" true
    (float_of_int expressible < 0.5 *. float_of_int total)

let test_xpathmark_unique_ids () =
  let ids = List.map (fun (e : Benchkit.Xpathmark.entry) -> e.id) Benchkit.Xpathmark.queries in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_xpathmark_answers_exist () =
  (* Every expressible query has answers on some moderately sized document
     (so the learning experiments have witnesses to draw). *)
  let docs = List.init 6 (fun i -> Benchkit.Xmark.generate ~scale:3.0 ~seed:(200 + i) ()) in
  List.iter
    (fun (e : Benchkit.Xpathmark.entry) ->
      match e.twig with
      | None -> ()
      | Some q ->
          Alcotest.(check bool) (e.id ^ " has witnesses") true
            (List.exists (fun d -> Twig.Eval.select q d <> []) docs))
    Benchkit.Xpathmark.queries

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Benchkit.Table.make ~title:"demo" ~header:[ "query"; "n" ] in
  Benchkit.Table.add_row t [ "//person"; "12" ];
  Benchkit.Table.add_row t [ "//item/name"; "3" ];
  let s = Benchkit.Table.render t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  Alcotest.(check bool) "rows present" true
    (String.length s > String.length "== demo ==\n")

let test_table_width_mismatch () =
  let t = Benchkit.Table.make ~title:"x" ~header:[ "a"; "b" ] in
  match Benchkit.Table.add_row t [ "only one" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width mismatch must be rejected"

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Benchkit.Table.cell_float 3.14159);
  Alcotest.(check string) "pct" "15.0%" (Benchkit.Table.cell_pct 0.15)

(* ------------------------------------------------------------------ *)
(* Mutation / fault injection                                          *)
(* ------------------------------------------------------------------ *)

let test_mutants_invalidate () =
  let doc = Benchkit.Xmark.generate ~seed:8 () in
  let rng = Core.Prng.create 8 in
  let mutants =
    Benchkit.Mutate.invalidating_mutants rng Benchkit.Xmark.schema doc
  in
  Alcotest.(check int) "all three families apply" 3 (List.length mutants);
  List.iter
    (fun m ->
      Alcotest.(check bool) "schema rejects the mutant" false
        (Uschema.Schema.valid Benchkit.Xmark.schema m))
    mutants

let test_permutation_preserves_validity () =
  let doc = Benchkit.Xmark.generate ~seed:9 () in
  let rng = Core.Prng.create 9 in
  let permuted = Benchkit.Mutate.permute_children rng doc in
  Alcotest.(check bool) "same size" true
    (Xmltree.Tree.size doc = Xmltree.Tree.size permuted);
  Alcotest.(check bool) "unordered-equal to the original" true
    (Xmltree.Tree.equal_unordered doc permuted);
  Alcotest.(check bool) "still DMS-valid" true
    (Uschema.Schema.valid Benchkit.Xmark.schema permuted)

let test_drop_required_targets_required () =
  let doc = Xmltree.Parse.term "library(book(title,author))" in
  let schema =
    Uschema.Schema.make ~root:"library"
      ~rules:
        [
          ("library", Uschema.Dme.parse "book+");
          ("book", Uschema.Dme.parse "title author+");
        ]
  in
  let rng = Core.Prng.create 1 in
  match Benchkit.Mutate.drop_required rng schema doc with
  | None -> Alcotest.fail "a required child exists"
  | Some mutant ->
      Alcotest.(check bool) "invalid" false (Uschema.Schema.valid schema mutant);
      Alcotest.(check int) "one node removed"
        (Xmltree.Tree.size doc - 1)
        (Xmltree.Tree.size mutant)

let () =
  Alcotest.run "benchkit"
    [
      ( "xmark",
        [
          Alcotest.test_case "validates" `Quick test_xmark_validates;
          Alcotest.test_case "deterministic" `Quick test_xmark_deterministic;
          Alcotest.test_case "scales" `Quick test_xmark_scales;
          Alcotest.test_case "disjunctive schema" `Quick test_xmark_schema_disjunctive;
          Alcotest.test_case "shape" `Quick test_xmark_shape;
          qcheck prop_xmark_always_valid;
        ] );
      ( "xpathmark",
        [
          Alcotest.test_case "consistency" `Quick test_xpathmark_consistency;
          Alcotest.test_case "fraction" `Quick test_xpathmark_fraction;
          Alcotest.test_case "unique ids" `Quick test_xpathmark_unique_ids;
          Alcotest.test_case "answers exist" `Slow test_xpathmark_answers_exist;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "mutants invalidate" `Quick test_mutants_invalidate;
          Alcotest.test_case "permutation preserves validity" `Quick test_permutation_preserves_validity;
          Alcotest.test_case "drop targets required" `Quick test_drop_required_targets_required;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
    ]
