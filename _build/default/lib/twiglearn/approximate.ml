type instance = Xmltree.Annotated.t

type result = {
  query : Twig.Query.t;
  dropped : instance Core.Example.t list;
  training_errors : int;
}

let conflicts q negatives =
  List.filter (fun n -> Twig.Eval.selects_example q n) negatives

let learn ?max_dropped examples =
  let budget =
    match max_dropped with
    | Some b -> b
    | None -> max 1 (List.length examples / 3)
  in
  let positives =
    List.filter Core.Example.is_positive examples
  and negatives = List.filter Core.Example.is_negative examples in
  let lgg_of pos = Positive.learn_positive (List.map (fun (e : _ Core.Example.t) -> e.value) pos) in
  let rec refine pos neg dropped budget =
    match lgg_of pos with
    | None -> None
    | Some q -> (
        let bad =
          List.filter
            (fun (n : _ Core.Example.t) -> Twig.Eval.selects_example q n.value)
            neg
        in
        match bad with
        | [] -> Some (q, dropped)
        | worst :: _ ->
            if budget = 0 then
              (* Out of budget: return the query, counting leftover
                 conflicts as training errors. *)
              Some (q, dropped)
            else
              (* Candidate 1: drop the offending negative. *)
              let drop_neg_conflicts = List.length bad - 1 in
              (* Candidate 2: drop the positive whose removal removes the
                 most conflicts. *)
              let best_pos =
                List.filter_map
                  (fun (p : _ Core.Example.t) ->
                    let pos' = List.filter (fun e -> e != p) pos in
                    match lgg_of pos' with
                    | None -> None
                    | Some q' ->
                        Some
                          ( p,
                            List.length
                              (conflicts q'
                                 (List.map
                                    (fun (e : _ Core.Example.t) -> e.value)
                                    neg)) ))
                  pos
                |> List.sort (fun (_, c1) (_, c2) -> compare c1 c2)
                |> function
                | [] -> None
                | best :: _ -> Some best
              in
              let drop_positive =
                match best_pos with
                | Some (p, c) when c < drop_neg_conflicts && List.length pos > 1
                  ->
                    Some p
                | _ -> None
              in
              (match drop_positive with
              | Some p ->
                  refine
                    (List.filter (fun e -> e != p) pos)
                    neg (p :: dropped) (budget - 1)
              | None ->
                  refine pos
                    (List.filter (fun e -> e != worst) neg)
                    (worst :: dropped) (budget - 1)))
  in
  match refine positives negatives [] budget with
  | None -> None
  | Some (q, dropped) ->
      let kept_negatives =
        List.filter
          (fun (n : _ Core.Example.t) -> not (List.memq n dropped))
          negatives
      in
      let errors =
        List.length
          (List.filter
             (fun (n : _ Core.Example.t) -> Twig.Eval.selects_example q n.value)
             kept_negatives)
      in
      Some { query = q; dropped = List.rev dropped; training_errors = errors }
