(** The write-ahead session journal: crash durability for interactive
    learning sessions.

    The paper's Section 3 protocol is a long-running loop of questions and
    answers, each answer bought from a (crowd) user; losing them to a process
    crash means paying for them again.  In the spirit of ARIES-style
    write-ahead logging, a journal records the session {e before} the effects
    happen: a header (seed and configuration, so the run is reproducible),
    then one record per question asked and per answer received.

    {2 On-disk format}

    An 8-byte magic string ["LQJRNL1\n"] followed by records.  Each record is

    {v [length : 4 bytes LE] [crc32 : 4 bytes LE] [payload : length bytes] v}

    where the CRC-32 (polynomial 0xEDB88320) covers the payload.  A record is
    written with a single [write], so a crash leaves at most one torn record
    at the physical tail (under {!Batch}, at most one torn {e group}).
    {!recover} therefore treats a record whose bytes run out before [length]
    is satisfied as a torn tail and drops it silently, while a record that is
    fully present but fails its CRC is {e corruption} and is rejected with a
    positioned {!Error.t}.

    {2 Fsync policy}

    Per-append [fsync] is the strongest guarantee but dominates the cost of a
    fast learner (BENCH_PR2 measured 6.8× on the twig learn path).  {!sync}
    trades durability for throughput: {!Always} fsyncs every record, {!Batch}
    group-commits (one write + fsync per 8 records, and at every session
    milestone), {!Off} leaves flushing to the OS.  The chosen policy is
    recorded in the header so {!recover} can report what guarantee the
    journal was written under.

    {2 Writer mutual exclusion}

    Two processes appending to one journal would interleave frames into
    corruption, so {!create_result} and {!resume} take a sidecar lock file
    ([path ^ ".lock"], created with [O_EXCL], holding the owner's pid).  The
    loser gets a typed {!Error.t} ([Journal_locked]).  A lock whose recorded
    pid is no longer alive is the residue of a crash and is stolen silently —
    a restarted daemon can resume the journals its predecessor died holding.
    {!close} (and {!abort}) release the lock. *)

type header = {
  seed : int;  (** the PRNG seed the session ran under *)
  engine : string;  (** which learner ("learn-twig", "learn-join", …) *)
  config : string;  (** free-form parameter line; checked on resume *)
}

type sync =
  | Always  (** fsync every append: lose at most the in-flight record *)
  | Batch
      (** group commit: buffer up to 8 records per write+fsync; a crash loses
          at most the open group.  [Completed] and {!close} force a flush. *)
  | Off  (** never fsync: durability left to the OS page cache *)

val sync_to_string : sync -> string
val sync_of_string : string -> sync option

type event =
  | Asked of string  (** an encoded item was put to the oracle *)
  | Answered of string * Flaky.reply  (** …and this reply came back *)
  | Completed  (** the session ended with no open item *)

type t
(** An open journal writer. *)

val create_result : ?sync:sync -> path:string -> header -> (t, Error.t) result
(** Starts a fresh journal at [path] (truncating any existing file) and
    writes the header record — durable immediately (unless [sync] is {!Off}),
    since resume depends on it.  [sync] defaults to {!Always}.  Fails with
    [Journal_locked] when a live process holds the journal's lock file. *)

val create : ?sync:sync -> path:string -> header -> t
(** {!create_result}, raising [Invalid_argument] on a held lock — for
    callers (tests, benches) that own their paths outright. *)

val append : t -> event -> unit
(** Appends one record under the journal's {!sync} policy.
    @raise Invalid_argument on a closed journal. *)

val flush : t -> unit
(** Forces any buffered {!Batch} records to disk (write + fsync).  No-op when
    nothing is pending or under {!Always}/{!Off}. *)

val close : t -> unit
(** Flushes pending records, closes the descriptor, and releases the
    journal's lock; idempotent. *)

val abort : t -> unit
(** Simulated crash, for chaos harnesses: closes the descriptor {e without}
    flushing — buffered {!Batch} records are lost, exactly as a kill -9
    would lose them.  The lock is released (it belongs to this still-live
    process; after a real crash the next opener steals it instead).
    Idempotent with {!close}. *)

type recovered = {
  header : header option;
      (** [None] when even the header record was lost to truncation. *)
  recorded_sync : sync;
      (** the fsync policy the journal was written under ({!Always} for
          journals predating the policy field) *)
  events : event list;  (** the surviving prefix, in append order *)
  valid_bytes : int;  (** file offset just past the last whole record *)
  dropped_bytes : int;  (** torn-tail bytes discarded after [valid_bytes] *)
}

val parse : source:string -> string -> (recovered, Error.t) result
(** Pure parser over raw journal bytes ([source] names them in errors).  Any
    byte-truncation of a valid journal parses to the surviving prefix; a CRC
    mismatch or an undecodable payload in a complete record is an error
    positioned at the record's offset. *)

val recover : path:string -> (recovered, Error.t) result
(** Reads and {!parse}s the file at [path]. *)

val resume : ?sync:sync -> path:string -> unit -> (t * recovered, Error.t) result
(** {!recover} under the writer lock, then reopen [path] for appending: the
    torn tail (if any) is truncated away and subsequent {!append}s continue
    the valid prefix.  Continues under the journal's recorded policy unless
    [sync] overrides it.  Fails when the journal has no header (nothing to
    resume) or when a live process holds the lock ([Journal_locked]). *)

val answered : recovered -> (string * Flaky.reply) list
(** The [Answered] events of the surviving prefix, in order — what a learner
    replays to rebuild its state. *)

val crc32 : string -> int
(** The checksum used by the record format (exposed for tests). *)
