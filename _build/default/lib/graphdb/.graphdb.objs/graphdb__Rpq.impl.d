lib/graphdb/rpq.ml: Array Automata Graph Hashtbl List Set
