type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> escape buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* UTF-8-encode a code point (surrogate pairs are combined by the
     caller). *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub input !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match input.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match input.[!pos] with
             | '"' -> advance (); Buffer.add_char buf '"'
             | '\\' -> advance (); Buffer.add_char buf '\\'
             | '/' -> advance (); Buffer.add_char buf '/'
             | 'b' -> advance (); Buffer.add_char buf '\b'
             | 'f' -> advance (); Buffer.add_char buf '\012'
             | 'n' -> advance (); Buffer.add_char buf '\n'
             | 'r' -> advance (); Buffer.add_char buf '\r'
             | 't' -> advance (); Buffer.add_char buf '\t'
             | 'u' ->
                 advance ();
                 let cp = hex4 () in
                 let cp =
                   if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
                      && input.[!pos] = '\\'
                      && input.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo >= 0xDC00 && lo <= 0xDFFF then
                       0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                     else fail "unpaired surrogate"
                   end
                   else cp
                 in
                 add_utf8 buf cp
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      while !pos < n && input.[!pos] >= '0' && input.[!pos] <= '9' do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub input start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value depth =
    if depth > 100 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (fields [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (elems [])
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let mem k = function Obj fields -> List.assoc_opt k fields | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 ->
      Some (int_of_float f)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let get_str k j = Option.bind (mem k j) str
let get_int k j = Option.bind (mem k j) int
let get_num k j = Option.bind (mem k j) num
let get_bool k j = Option.bind (mem k j) bool
let of_int i = Num (float_of_int i)
let of_opt f = function None -> Null | Some x -> f x
