exception Syntax_error of string

(* Record-level scanner handling quoted fields spanning separators (not
   newlines inside quotes — keep the dialect line-based and simple). *)
let split_record separator line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match line.[i] with
      | c when c = separator ->
          flush ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then raise (Syntax_error "unterminated quoted field")
    else
      match line.[i] with
      | '"' ->
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            quoted (i + 2)
          end
          else plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let parse ?(separator = ',') ~name contents =
  let lines =
    String.split_on_char '\n' contents
    |> List.map (fun l ->
           if String.length l > 0 && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l)
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> raise (Syntax_error "empty input: a header row is required")
  | header :: rows ->
      let attrs = split_record separator header in
      let width = List.length attrs in
      let tuples =
        List.mapi
          (fun lineno row ->
            let fields = split_record separator row in
            if List.length fields <> width then
              raise
                (Syntax_error
                   (Printf.sprintf "row %d has %d fields, expected %d"
                      (lineno + 2) (List.length fields) width));
            Array.of_list (List.map Value.of_string fields))
          rows
      in
      Relation.make ~name ~attrs tuples

let needs_quoting separator s =
  String.exists (fun c -> c = separator || c = '"' || c = '\n') s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string ?(separator = ',') r =
  let field s = if needs_quoting separator s then quote s else s in
  let sep = String.make 1 separator in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat sep
       (List.map field (Array.to_list (Relation.attrs r))));
  Buffer.add_char buf '\n';
  List.iter
    (fun t ->
      Buffer.add_string buf
        (String.concat sep
           (List.map
              (fun v -> field (Value.to_string v))
              (Array.to_list t)));
      Buffer.add_char buf '\n')
    (Relation.tuples r);
  Buffer.contents buf
