(** The fuzzing loop: N iterations per oracle under a {!Core.Budget},
    deterministic from one master seed, with per-oracle stats in
    {!Core.Telemetry} and minimized counterexamples as {!Artifact}s.

    Each oracle gets its own PRNG stream derived from [(master seed, oracle
    name)] — adding or selecting oracles never perturbs another oracle's
    cases — and each case runs at a size cycling through [1..max_size].
    The first failing case of an oracle is shrunk (re-checking the oracle
    on every reduction step) and reported; the loop then moves to the next
    oracle rather than re-finding the same bug. *)

type stats = {
  oracle : string;
  runs : int;  (** cases executed (≤ iters when interrupted or failed) *)
  failures : int;  (** 0 or 1: an oracle stops at its first failure *)
}

type counterexample = {
  artifact : Artifact.t;
  path : string option;  (** where it was written when a dir was given *)
}

type report = {
  stats : stats list;
  counterexamples : counterexample list;
  interrupted : bool;  (** the budget ran out before all cases ran *)
}

val run :
  ?oracles:Oracle.t list ->
  ?budget:Core.Budget.t ->
  ?dir:string ->
  ?max_size:int ->
  ?jobs:int ->
  iters:int ->
  seed:int ->
  unit ->
  report
(** [oracles] defaults to {!Oracle.all}; [max_size] to 10; [budget] to
    unlimited (one fuel tick per case).  When [dir] is given, every
    counterexample is saved there.

    [jobs] (default 1) > 1 runs the oracles on a {!Core.Pool} of that
    many lanes.  Per-oracle PRNG streams are derived exactly as in
    sequential mode, and each oracle's state is confined to locals,
    unique temp files, and domain-local caches, so every oracle sees the
    same cases at every job count; {!Oracle.serial} oracles (which flip
    process-global switches) run on the calling domain after the
    parallel batch.  Stats stay in input oracle order.  Under a budget,
    sequential mode stops scheduling oracles when fuel runs out, while
    parallel mode reports an entry per oracle; the shared fuel counter is
    decremented from all lanes without synchronization — ticks may be
    lost, the cap is approximate. *)

val replay :
  Artifact.t -> [ `Passed | `Failed of string | `Unknown_oracle of string ]
(** Regenerate the artifact's input from its recorded seed and size and
    re-run the oracle — [`Passed] means the recorded bug no longer
    reproduces. *)
