test/test_joinlearn.ml: Alcotest Array Core Joinlearn List QCheck QCheck_alcotest Relational
