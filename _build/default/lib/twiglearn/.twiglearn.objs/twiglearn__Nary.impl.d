lib/twiglearn/nary.ml: Annotated Array Format List Option Positive Relational String Tree Twig Xmltree
