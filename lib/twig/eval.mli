(** Node-selection semantics of twig queries.

    [select q t] computes the set of nodes of [t] at which the spine of [q]
    ends under some embedding: an embedding maps spine and filter nodes to
    document nodes, respecting node tests (a label tests equality, [*] is
    satisfied by any node), child edges to parent–child edges and descendant
    edges to proper ancestor–descendant pairs.

    The evaluation is the standard bottom-up dynamic program: documents are
    indexed once (preorder numbering with descendant intervals) and filter
    embeddings are memoized per (filter node, document node), giving
    O(|q| · |t| · depth(t)) time. *)

type doc
(** A document indexed for repeated query evaluation. *)

val index : Xmltree.Tree.t -> doc
val doc_tree : doc -> Xmltree.Tree.t
val doc_size : doc -> int

val select_doc : doc -> Query.t -> Xmltree.Tree.path list
(** Selected nodes in document (preorder) order. *)

val select : Query.t -> Xmltree.Tree.t -> Xmltree.Tree.path list

(** {1 Index-backed fast path}

    By default evaluation runs on {!Xmlstore}: documents are labeled once
    (containment intervals + inverted name lists) and queries run as
    structural joins ({!Xmlstore.Twigjoin}).  The bottom-up tree walk
    remains available as the differential reference and the
    [--no-xmlstore] ablation; both return identical answers in identical
    (preorder) order, so interactive sessions behave byte-identically
    either way. *)

val set_xmlstore : bool -> unit
(** Toggle the index-backed fast path (default [true]).  Process-global
    ablation switch, CLI [--no-xmlstore]. *)

val xmlstore_enabled : unit -> bool

val to_pattern : Query.t -> Xmlstore.Pattern.t
(** Lower a query to the store pattern shape. *)

val store_of_doc : doc -> Xmlstore.Store.t
(** The labeled store of an indexed document, built on first use. *)

val select_walk : Query.t -> Xmltree.Tree.t -> Xmltree.Tree.path list
(** Always the tree-walk evaluator, regardless of {!set_xmlstore} — the
    reference implementation differential tests compare against. *)

val selects : Query.t -> Xmltree.Tree.t -> Xmltree.Tree.path -> bool
(** Membership of one node in the answer. *)

val selects_example : Query.t -> Xmltree.Annotated.t -> bool
(** Whether the query selects the annotated node of the example — the
    [selects] relation of the twig {!Core.Concept.CONCEPT}. *)

val holds_filter : Query.filter -> Xmltree.Tree.t -> bool
(** Whether the filter embeds at the root of the tree. *)
