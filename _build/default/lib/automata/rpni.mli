(** RPNI (Regular Positive and Negative Inference; Oncina & García) — the
    classical polynomial algorithm identifying regular languages in the limit
    from positive and negative words.  This is the automata-learning engine
    behind graph path-query inference (paper, Section 3: a graph query
    language "learnable from positive and possibly negative examples").

    The learner builds the prefix-tree acceptor of the positive words and
    greedily merges states in canonical order, keeping a merge whenever the
    quotient automaton still rejects every negative word.  Given a
    characteristic sample of the target regular language, the output is the
    canonical minimal DFA of the target. *)

val learn :
  pos:string list list -> neg:string list list -> Dfa.t option
(** [None] when the sample is contradictory (a word labeled both ways).
    Otherwise the result accepts every positive and rejects every negative
    word; it is returned minimized. *)

val pta : pos:string list list -> alphabet:string list -> Dfa.t
(** The prefix-tree acceptor alone (no generalization) — the learner's
    starting point, exposed for tests and ablations. *)
