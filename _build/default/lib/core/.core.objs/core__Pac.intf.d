lib/core/pac.mli: Example Prng
