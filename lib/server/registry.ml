module Journal = Core.Journal
module Budget = Core.Budget
module Error = Core.Error
module Vfs = Core.Vfs

type config = {
  dir : string;
  sync : Core.Journal.sync;
  tenants : Tenant.t;
  step_fuel : int option;
  step_timeout : float option;
  vfs : Vfs.t;
  checkpoint_every : int;  (** compact each session every N answers; 0 = off *)
  max_live : int;  (** LRU-evict beyond this many live steppers; 0 = ∞ *)
  idle_evict_after : float;  (** evict sessions idle this long; 0. = off *)
}

type session = {
  tenant : string;
  id : string;
  spec : Engines.spec;
  stepper : Stepper.t;
  path : string;
  mutable last_used : float;  (** wall clock of the last touch (LRU key) *)
}

type stats = { live : int; evicted : int; resumed : int; quarantined : int }

type t = {
  cfg : config;
  sessions : (string, session) Hashtbl.t;
  building : (string, string) Hashtbl.t;
      (** key -> tenant: slots reserved while a stepper is being built,
          resumed, or checkpointed out — concurrent requests wait on [cv] *)
  cv : Condition.t;  (** signaled whenever [building] shrinks *)
  mutable evicted : int;
  mutable resumed : int;
  mutable quarantined : int;
  m : Mutex.t;
}

let m_evicted = Core.Telemetry.Metrics.counter "learnq.serve.evicted"
let m_resumed = Core.Telemetry.Metrics.counter "learnq.serve.resumed"

let m_quarantined =
  Core.Telemetry.Metrics.counter "learnq.serve.quarantined"

let key ~tenant ~id = tenant ^ "/" ^ id

let valid_name s =
  s <> ""
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       s

(* "." cannot appear in a valid tenant or session name, so
   [tenant ^ "." ^ id] is injective: no two (tenant, id) pairs share a
   journal file, and recovery can split the name back unambiguously.  (A
   "__" separator would be ambiguous — names may contain '_' anywhere.) *)
let journal_path cfg ~tenant ~id =
  Filename.concat cfg.dir (tenant ^ "." ^ id ^ ".journal")

let create cfg =
  (try Vfs.mkdir cfg.vfs cfg.dir
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  {
    cfg;
    sessions = Hashtbl.create 64;
    building = Hashtbl.create 8;
    cv = Condition.create ();
    evicted = 0;
    resumed = 0;
    quarantined = 0;
    m = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let tenant_count_locked t tenant =
  let live =
    Hashtbl.fold
      (fun _ s n -> if s.tenant = tenant then n + 1 else n)
      t.sessions 0
  in
  Hashtbl.fold
    (fun _ ten n -> if ten = tenant then n + 1 else n)
    t.building live

(* Per-step budget: the tenant's caps override the server-wide defaults. *)
let step_budget t tenant =
  let q = Tenant.find t.cfg.tenants tenant in
  let fuel =
    match q.Tenant.step_fuel with Some f -> Some f | None -> t.cfg.step_fuel
  in
  let timeout =
    match q.Tenant.step_timeout with
    | Some s -> Some s
    | None -> t.cfg.step_timeout
  in
  fun () -> Budget.create ?fuel ?timeout ()

(* A journal that cannot be trusted: CRC failure or an undecodable payload
   beyond the last checkpoint.  Storage and lock errors are NOT this — they
   are transient and the journal may be perfectly fine. *)
let quarantine_worthy = function
  | Error.Corrupt_journal _ -> true
  | Error.Invalid_input { what = "journal"; _ } -> true
  | _ -> false

(* Move a corrupt journal out of the recovery path so it stops crashing
   every resume attempt, keeping the bytes for forensics.  Its stale lock
   (the writer that corrupted it is gone) goes with it. *)
let quarantine t ~path =
  (try Vfs.rename t.cfg.vfs path (path ^ ".quarantine")
   with Unix.Unix_error _ -> ());
  (try Vfs.unlink t.cfg.vfs (Journal.lock_path_of path)
   with Unix.Unix_error _ -> ());
  with_lock t (fun () -> t.quarantined <- t.quarantined + 1);
  (* Freeze the last moments next to the corpse: the flight-recorder dump
     shows what the server was doing (faults, fsyncs, evictions) in the
     window before this journal went bad. *)
  Core.Obs.Recorder.record ~detail:path "registry.quarantine";
  if Core.Obs.Recorder.is_recording () then
    Core.Obs.Recorder.dump_to_file (path ^ ".quarantine.flight.json");
  if Core.Telemetry.enabled () then begin
    Core.Telemetry.Metrics.incr m_quarantined;
    Core.Telemetry.Log.warn
      ~kv:[ ("journal", path) ]
      "corrupt journal quarantined"
  end

(* Rebuild a session from its on-disk journal: recover (restoring from the
   last checkpoint when one is present — [Engines.make] wires the state
   codec), verify the spec when the caller knows what it expects, and
   continue appending.  Runs outside the registry lock. *)
let resume_session ?expect t ~tenant ~id =
  let path = journal_path t.cfg ~tenant ~id in
  match Journal.resume ~sync:t.cfg.sync ~vfs:t.cfg.vfs ~path () with
  | Error _ as e -> e
  | Ok (j, recovered) -> (
      let jclose () = try Journal.close j with Journal.Io _ -> () in
      let recorded =
        match recovered.Journal.header with
        | Some h -> Engines.spec_of_config h.Journal.config
        | None -> Error "journal has no header"
      in
      match recorded with
      | Error msg ->
          jclose ();
          Error
            (Error.invalid_input ~what:"journal"
               (Printf.sprintf "%s: %s" path msg))
      | Ok spec -> (
          match expect with
          | Some want when want <> spec ->
              jclose ();
              Error
                (Error.invalid_input ~what:"session"
                   (Printf.sprintf
                      "session %s exists with a different spec (%s)" id
                      (Engines.config_of_spec spec)))
          | _ -> (
              match
                Engines.make ~journal:j ~resume:recovered.Journal.events
                  ~step_budget:(step_budget t tenant)
                  ~checkpoint_every:t.cfg.checkpoint_every spec
              with
              | Ok stepper ->
                  Ok
                    {
                      tenant;
                      id;
                      spec;
                      stepper;
                      path;
                      last_used = Unix.gettimeofday ();
                    }
              | Error _ as e ->
                  jclose ();
                  e)))

(* Build a stepper over a fresh journal, or by resuming the one already on
   disk (spec must agree with the recorded header).  Runs outside the
   registry lock. *)
let build t ~tenant ~id spec =
  let path = journal_path t.cfg ~tenant ~id in
  let fresh () =
    match
      Journal.create_result ~sync:t.cfg.sync ~vfs:t.cfg.vfs ~path
        (Engines.header_of_spec spec)
    with
    | Error _ as e -> e
    | Ok j -> (
        match
          Engines.make ~journal:j
            ~step_budget:(step_budget t tenant)
            ~checkpoint_every:t.cfg.checkpoint_every spec
        with
        | Ok stepper ->
            Ok
              { tenant; id; spec; stepper; path; last_used = Unix.gettimeofday () }
        | Error _ as e ->
            (try Journal.close j with Journal.Io _ -> ());
            (try Vfs.unlink t.cfg.vfs path with Unix.Unix_error _ -> ());
            e)
  in
  if not (Vfs.exists t.cfg.vfs path) then fresh ()
  else resume_session ~expect:spec t ~tenant ~id

let create_session t ~tenant ~id spec =
  if not (valid_name tenant && valid_name id) then
    Error
      (Error.invalid_input ~what:"session"
         "tenant and session ids must match [A-Za-z0-9_-]+")
  else
    let k = key ~tenant ~id in
    let reserve () =
      with_lock t (fun () ->
          match Hashtbl.find_opt t.sessions k with
          | Some s ->
              if s.spec <> spec then
                Error
                  (`Err
                     (Error.invalid_input ~what:"session"
                        (Printf.sprintf
                           "session %s exists with a different spec (%s)" id
                           (Engines.config_of_spec s.spec))))
              else begin
                s.last_used <- Unix.gettimeofday ();
                Error (`Existing (s.stepper.Stepper.view ()))
              end
          | None ->
              if Hashtbl.mem t.building k then
                Error
                  (`Err
                     (Error.invalid_input ~what:"session"
                        (Printf.sprintf "session %s is being created" id)))
              else
                let q = Tenant.find t.cfg.tenants tenant in
                if tenant_count_locked t tenant >= q.Tenant.max_sessions then
                  Error
                    (`Err
                       (Error.over_quota ~tenant ~what:"max_sessions"
                          ~limit:q.Tenant.max_sessions))
                else begin
                  Hashtbl.add t.building k tenant;
                  Ok ()
                end)
    in
    match reserve () with
    | Error (`Existing view) -> Ok view
    | Error (`Err e) -> Error e
    | Ok () -> (
        let release () =
          with_lock t (fun () ->
              Hashtbl.remove t.building k;
              Condition.broadcast t.cv)
        in
        match build t ~tenant ~id spec with
        | Ok s ->
            with_lock t (fun () ->
                Hashtbl.remove t.building k;
                Hashtbl.replace t.sessions k s;
                Condition.broadcast t.cv);
            Ok (s.stepper.Stepper.view ())
        | Error e ->
            release ();
            if quarantine_worthy e then
              quarantine t ~path:(journal_path t.cfg ~tenant ~id);
            Error e
        | exception exn ->
            release ();
            raise exn)

let find t ~tenant ~id =
  with_lock t (fun () ->
      Option.map
        (fun s ->
          s.last_used <- Unix.gettimeofday ();
          s.stepper)
        (Hashtbl.find_opt t.sessions (key ~tenant ~id)))

(* [find] that sees through eviction: a key with no live stepper but a
   journal on disk is resumed — exactly once, however many requests arrive
   in the burst.  The first caller reserves the key in [building] and does
   the replay; the rest wait on [cv] and find the live stepper.  [Ok None]
   is a genuinely unknown session; a resume failure is the typed error
   (quarantining the journal when it is corrupt, so the next request gets a
   clean 404 instead of the same crash). *)
let find_or_resume t ~tenant ~id =
  let k = key ~tenant ~id in
  let path = journal_path t.cfg ~tenant ~id in
  let rec attempt () =
    let decision =
      with_lock t (fun () ->
          match Hashtbl.find_opt t.sessions k with
          | Some s ->
              s.last_used <- Unix.gettimeofday ();
              `Live s.stepper
          | None ->
              if Hashtbl.mem t.building k then `Wait
              else if Vfs.exists t.cfg.vfs path then begin
                Hashtbl.add t.building k tenant;
                `Build
              end
              else `Absent)
    in
    match decision with
    | `Live stepper -> Ok (Some stepper)
    | `Absent -> Ok None
    | `Wait ->
        with_lock t (fun () ->
            while Hashtbl.mem t.building k do
              Condition.wait t.cv t.m
            done);
        attempt ()
    | `Build -> (
        let release () =
          with_lock t (fun () ->
              Hashtbl.remove t.building k;
              Condition.broadcast t.cv)
        in
        match resume_session t ~tenant ~id with
        | Ok s ->
            with_lock t (fun () ->
                Hashtbl.remove t.building k;
                Hashtbl.replace t.sessions k s;
                t.resumed <- t.resumed + 1;
                Condition.broadcast t.cv);
            if Core.Telemetry.enabled () then
              Core.Telemetry.Metrics.incr m_resumed;
            Ok (Some s.stepper)
        | Error e ->
            release ();
            if quarantine_worthy e then quarantine t ~path;
            Error e
        | exception exn ->
            release ();
            raise exn)
  in
  attempt ()

(* LRU eviction: checkpoint + compact each victim's journal, close it, and
   drop the stepper — the journal alone resurrects it on the next touch.
   Victims are pulled out of the table and parked in [building] first, so a
   concurrent create/find waits instead of racing a stepper mid-checkpoint.
   A victim whose checkpoint fails (the disk is unwell) is put back live:
   evicting it anyway could strand buffered answers.  Called between
   dispatcher batches, when no session is mid-answer. *)
let evict_idle t =
  let cfg = t.cfg in
  if cfg.max_live <= 0 && cfg.idle_evict_after <= 0. then 0
  else begin
    let now = Unix.gettimeofday () in
    let victims =
      with_lock t (fun () ->
          let all =
            Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.sessions []
            |> List.sort (fun (_, a) (_, b) ->
                   compare a.last_used b.last_used)
          in
          let over =
            if cfg.max_live > 0 then
              max 0 (List.length all - cfg.max_live)
            else 0
          in
          let victims =
            List.filteri
              (fun idx (_, s) ->
                idx < over
                || cfg.idle_evict_after > 0.
                   && now -. s.last_used >= cfg.idle_evict_after)
              all
          in
          List.iter
            (fun (k, s) ->
              Hashtbl.remove t.sessions k;
              Hashtbl.add t.building k s.tenant)
            victims;
          victims)
    in
    let evicted =
      List.fold_left
        (fun n (k, s) ->
          let ok =
            match s.stepper.Stepper.checkpoint () with
            | Ok () ->
                s.stepper.Stepper.close ();
                Core.Obs.Recorder.record ~detail:k "session.evicted";
                true
            | Error _ -> false
          in
          with_lock t (fun () ->
              Hashtbl.remove t.building k;
              if ok then t.evicted <- t.evicted + 1
              else Hashtbl.replace t.sessions k s;
              Condition.broadcast t.cv);
          if ok then n + 1 else n)
        0 victims
    in
    if evicted > 0 && Core.Telemetry.enabled () then
      Core.Telemetry.Metrics.incr m_evicted ~by:evicted;
    evicted
  end

let delete t ~tenant ~id =
  let k = key ~tenant ~id in
  let path = journal_path t.cfg ~tenant ~id in
  let rec take () =
    let decision =
      with_lock t (fun () ->
          match Hashtbl.find_opt t.sessions k with
          | Some s ->
              Hashtbl.remove t.sessions k;
              `Live s
          | None -> if Hashtbl.mem t.building k then `Wait else `Disk)
    in
    match decision with
    | `Live s ->
        s.stepper.Stepper.close ();
        (try Vfs.unlink t.cfg.vfs path with Unix.Unix_error _ -> ());
        true
    | `Disk ->
        (* An evicted (or never-loaded) session lives only on disk. *)
        if Vfs.exists t.cfg.vfs path then begin
          (try Vfs.unlink t.cfg.vfs path with Unix.Unix_error _ -> ());
          (try Vfs.unlink t.cfg.vfs (Journal.lock_path_of path)
           with Unix.Unix_error _ -> ());
          true
        end
        else false
    | `Wait ->
        with_lock t (fun () ->
            while Hashtbl.mem t.building k do
              Condition.wait t.cv t.m
            done);
        take ()
  in
  take ()

let recover_all t ~pool =
  let files =
    match Vfs.readdir t.cfg.vfs t.cfg.dir with
    | files ->
        Array.to_list files
        |> List.filter (fun f -> Filename.check_suffix f ".journal")
        |> List.sort compare
    | exception Sys_error _ -> []
    | exception Unix.Unix_error _ -> []
  in
  let parse_name f =
    let base = Filename.chop_suffix f ".journal" in
    (* tenant.id — '.' is not a name character, so the first '.' is the
       separator and the mapping round-trips exactly. *)
    match String.index_opt base '.' with
    | None -> None
    | Some i ->
        let tenant = String.sub base 0 i in
        let id = String.sub base (i + 1) (String.length base - i - 1) in
        if valid_name tenant && valid_name id then Some (tenant, id)
        else None
  in
  let todo =
    List.filter_map
      (fun f ->
        match parse_name f with
        | None -> None
        | Some (tenant, id) ->
            let k = key ~tenant ~id in
            if with_lock t (fun () -> Hashtbl.mem t.sessions k) then None
            else Some (f, tenant, id))
      files
  in
  (* Replay is CPU-bound and per-file independent: one pool lane per
     journal.  Each lane only reads its own file and builds its own
     stepper; table insertion happens afterwards on the calling thread. *)
  let results =
    Core.Pool.map_list pool
      (fun (f, tenant, id) -> (f, tenant, id, resume_session t ~tenant ~id))
      todo
  in
  List.fold_left
    (fun (n, errs) (f, tenant, id, r) ->
      match r with
      | Ok s ->
          with_lock t (fun () ->
              Hashtbl.replace t.sessions (key ~tenant:s.tenant ~id:s.id) s);
          (n + 1, errs)
      | Error e ->
          (* Corrupt journals move aside so the next boot is clean; other
             failures (locked, storage) stay put for retry. *)
          if quarantine_worthy e then
            quarantine t ~path:(journal_path t.cfg ~tenant ~id);
          (n, (f, e) :: errs))
    (0, []) results

let snapshot t = with_lock t (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [])

let drain t = List.iter (fun s -> s.stepper.Stepper.close ()) (snapshot t)
let crash t = List.iter (fun s -> s.stepper.Stepper.abort ()) (snapshot t)
let count t = with_lock t (fun () -> Hashtbl.length t.sessions)
let tenant_count t tenant = with_lock t (fun () -> tenant_count_locked t tenant)

let stats t =
  with_lock t (fun () ->
      {
        live = Hashtbl.length t.sessions;
        evicted = t.evicted;
        resumed = t.resumed;
        quarantined = t.quarantined;
      })

let fold t ~init ~f =
  List.fold_left
    (fun acc s -> f acc ~tenant:s.tenant ~id:s.id s.stepper)
    init (snapshot t)

type session_debug = {
  sd_tenant : string;
  sd_id : string;
  sd_engine : string;
  sd_done : bool;
  sd_degraded : bool;
  sd_qid : int;
  sd_open : bool;
  sd_questions : int;
  sd_replayed : int;
  sd_journal_bytes : int;
  sd_idle_s : float;
}

(* The /debug/sessions view.  Uses [Stepper.peek] (counters only — no
   journal touch, no self-heal) so it is safe concurrently with the
   dispatcher mutating the same session; the numbers are weakly
   consistent, which is the right trade for a debug endpoint. *)
let debug_sessions t =
  let now = Unix.gettimeofday () in
  snapshot t
  |> List.sort (fun a b -> compare (a.tenant, a.id) (b.tenant, b.id))
  |> List.map (fun s ->
         let p = s.stepper.Stepper.peek () in
         {
           sd_tenant = s.tenant;
           sd_id = s.id;
           sd_engine = p.Stepper.p_engine;
           sd_done = p.Stepper.p_done;
           sd_degraded = p.Stepper.p_degraded;
           sd_qid = p.Stepper.p_qid;
           sd_open = p.Stepper.p_open;
           sd_questions = p.Stepper.p_questions;
           sd_replayed = p.Stepper.p_replayed;
           sd_journal_bytes =
             (try Vfs.size t.cfg.vfs s.path with
             | Unix.Unix_error _ | Sys_error _ -> 0);
           sd_idle_s = Float.max 0. (now -. s.last_used);
         })
