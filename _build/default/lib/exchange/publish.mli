(** Publishing: producing XML from the other two models (Figure 1,
    scenarios 1 and 4 — "publishing" relational and graph data as XML, in
    the spirit of SilkRoute/MARS which the paper cites). *)

val relation_to_xml : Relational.Relation.t -> Xmltree.Tree.t
(** Canonical flat publishing:
    [<name><row><attr>value</attr>…</row>…</name>]. *)

val relation_to_xml_grouped :
  group_by:string -> Relational.Relation.t -> Xmltree.Tree.t
(** Nested publishing: one [<group>] element per distinct value of
    [group_by] (carried as a ["@key"] attribute), its rows inside.
    @raise Invalid_argument on an unknown attribute. *)

val xml_to_relation :
  name:string ->
  row_query:Twig.Query.t ->
  columns:(string * string) list ->
  Xmltree.Tree.t ->
  Relational.Relation.t
(** Shredding (scenario 2): [row_query] selects the row nodes;
    [columns = \[(attr, child_label); …\]] extracts, for each row node, the
    text value of its first [child_label] child (attribute children
    ["@x"] work too).  Missing values shred to the empty string. *)

val graph_paths_to_xml :
  Graphdb.Graph.t -> Automata.Dfa.t -> Xmltree.Tree.t
(** Publishing RPQ answers (scenario 4): for every answer pair a [<path>]
    element with [@src]/[@dst] and one [<edge label="…"/>] per step of a
    shortest witness. *)

val xml_to_rdf : ?scope:Twig.Query.t -> Xmltree.Tree.t -> Rdf.t
(** Shredding XML into RDF (scenario 3): {!Rdf.of_xml} on the whole
    document, or only on the subtrees rooted at the nodes selected by
    [scope]. *)
