type t =
  | Empty
  | Eps
  | Sym of string
  | Alt of t * t
  | Cat of t * t
  | Star of t

let rec nullable = function
  | Empty | Sym _ -> false
  | Eps | Star _ -> true
  | Alt (a, b) -> nullable a || nullable b
  | Cat (a, b) -> nullable a && nullable b

let rec simplify e =
  match e with
  | Empty | Eps | Sym _ -> e
  | Alt (a, b) -> (
      match (simplify a, simplify b) with
      | Empty, x | x, Empty -> x
      | x, y when x = y -> x
      | Eps, y when nullable y -> y
      | x, Eps when nullable x -> x
      | x, y -> Alt (x, y))
  | Cat (a, b) -> (
      match (simplify a, simplify b) with
      | Empty, _ | _, Empty -> Empty
      | Eps, x | x, Eps -> x
      | x, y -> Cat (x, y))
  | Star a -> (
      match simplify a with
      | Empty | Eps -> Eps
      | Star _ as s -> s
      | x -> Star x)

let rec deriv e sym =
  match e with
  | Empty | Eps -> Empty
  | Sym s -> if String.equal s sym then Eps else Empty
  | Alt (a, b) -> simplify (Alt (deriv a sym, deriv b sym))
  | Cat (a, b) ->
      let head = Cat (deriv a sym, b) in
      simplify (if nullable a then Alt (head, deriv b sym) else head)
  | Star a -> simplify (Cat (deriv a sym, Star a))

let matches e word =
  nullable (List.fold_left deriv (simplify e) word)

let alphabet e =
  let module S = Set.Make (String) in
  let rec go acc = function
    | Empty | Eps -> acc
    | Sym s -> S.add s acc
    | Alt (a, b) | Cat (a, b) -> go (go acc a) b
    | Star a -> go acc a
  in
  S.elements (go S.empty e)

let rec size = function
  | Empty | Eps | Sym _ -> 1
  | Alt (a, b) | Cat (a, b) -> 1 + size a + size b
  | Star a -> 1 + size a

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Syntax_error of string

type token = TSym of string | TAlt | TCat | TStar | TPlus | TOpt | TOpen | TClose

let tokenize input =
  let n = String.length input in
  (* '@' admits attribute labels (e.g. @id) as symbols, so DTD content
     models over the XML encoding parse directly. *)
  let is_sym c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '@'
  in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match input.[i] with
      | ' ' | '\t' | '\n' -> go (i + 1) acc
      | '|' -> go (i + 1) (TAlt :: acc)
      | '.' -> go (i + 1) (TCat :: acc)
      | '*' -> go (i + 1) (TStar :: acc)
      | '+' -> go (i + 1) (TPlus :: acc)
      | '?' -> go (i + 1) (TOpt :: acc)
      | '(' -> go (i + 1) (TOpen :: acc)
      | ')' -> go (i + 1) (TClose :: acc)
      | c when is_sym c ->
          let j = ref i in
          while !j < n && is_sym input.[!j] do
            incr j
          done;
          go !j (TSym (String.sub input i (!j - i)) :: acc)
      | c -> raise (Syntax_error (Printf.sprintf "unexpected character %C" c))
  in
  go 0 []

(* Recursive descent: alt := cat ('|' cat)*; cat := post (('.' )? post)*;
   post := atom ('*'|'+'|'?')*; atom := sym | '(' alt ')'. *)
let parse input =
  let tokens = ref (tokenize input) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () =
    match !tokens with [] -> () | _ :: rest -> tokens := rest
  in
  let rec alt () =
    let left = cat () in
    match peek () with
    | Some TAlt ->
        advance ();
        Alt (left, alt ())
    | _ -> left
  and cat () =
    let left = post () in
    match peek () with
    | Some TCat ->
        advance ();
        Cat (left, cat ())
    | Some (TSym _ | TOpen) -> Cat (left, cat ())
    | _ -> left
  and post () =
    let base = atom () in
    let rec wrap e =
      match peek () with
      | Some TStar ->
          advance ();
          wrap (Star e)
      | Some TPlus ->
          advance ();
          wrap (Cat (e, Star e))
      | Some TOpt ->
          advance ();
          wrap (Alt (e, Eps))
      | _ -> e
    in
    wrap base
  and atom () =
    match peek () with
    | Some (TSym s) ->
        advance ();
        Sym s
    | Some TOpen ->
        advance ();
        let e = alt () in
        (match peek () with
        | Some TClose -> advance ()
        | _ -> raise (Syntax_error "expected ')'"));
        e
    | _ -> raise (Syntax_error "expected a symbol or '('")
  in
  if !tokens = [] then raise (Syntax_error "empty expression");
  let e = alt () in
  if !tokens <> [] then raise (Syntax_error "trailing tokens");
  simplify e

let rec pp ppf = function
  | Empty -> Format.pp_print_string ppf "∅"
  | Eps -> Format.pp_print_string ppf "ε"
  | Sym s -> Format.pp_print_string ppf s
  | Alt (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
  | Cat (a, b) -> Format.fprintf ppf "%a . %a" pp_cat_arg a pp_cat_arg b
  | Star a -> Format.fprintf ppf "%a*" pp_star_arg a

and pp_cat_arg ppf e =
  match e with
  | Alt _ -> Format.fprintf ppf "(%a)" pp e
  | _ -> pp ppf e

and pp_star_arg ppf e =
  match e with
  | Sym _ | Eps | Empty -> pp ppf e
  | _ -> Format.fprintf ppf "(%a)" pp e

let to_string e = Format.asprintf "%a" pp e
let equal a b = simplify a = simplify b
