(* Twig.Hcons unit tests: interning returns one physical representative per
   filter shape, is idempotent, and the bounded table clears (bumping the
   generation) rather than growing without limit. *)

open Twig.Query

let filt ?(subs = []) test = { ftest = test; fsubs = subs }
let label_filter l = filt (Label l)

let test_phys_equal () =
  Twig.Hcons.clear ();
  let shape () =
    filt (Label "a")
      ~subs:[ (Child, label_filter "b"); (Descendant, filt Wildcard) ]
  in
  let c1, id1 = Twig.Hcons.filter (shape ()) in
  let c2, id2 = Twig.Hcons.filter (shape ()) in
  Alcotest.(check bool) "one representative" true (c1 == c2);
  Alcotest.(check int) "one id" id1 id2;
  Alcotest.(check bool)
    "representative is structurally the input" true
    (c1 = shape ());
  (* Subterms are interned too: the [b] child of the representative IS the
     representative of a directly interned [b]. *)
  let b, _ = Twig.Hcons.filter (label_filter "b") in
  (match c1.fsubs with
  | (Child, sub) :: _ ->
      Alcotest.(check bool) "shared subterm" true (sub == b)
  | _ -> Alcotest.fail "unexpected representative shape")

let test_distinct_shapes () =
  Twig.Hcons.clear ();
  let _, ida = Twig.Hcons.filter (label_filter "a") in
  let _, idb = Twig.Hcons.filter (label_filter "b") in
  let _, idw = Twig.Hcons.filter (filt Wildcard) in
  let distinct = List.sort_uniq compare [ ida; idb; idw ] in
  Alcotest.(check int) "three ids" 3 (List.length distinct)

let test_idempotent () =
  Twig.Hcons.clear ();
  let c, id = Twig.Hcons.filter (label_filter "a") in
  let c', id' = Twig.Hcons.filter c in
  Alcotest.(check bool) "re-interning is identity" true (c == c');
  Alcotest.(check int) "same id" id id'

let test_test_interning () =
  Twig.Hcons.clear ();
  let t1 = Twig.Hcons.test (Label "name") in
  let t2 = Twig.Hcons.test (Label "name") in
  Alcotest.(check bool) "labels share a node" true (t1 == t2);
  let i1 = Twig.Hcons.test t1 in
  Alcotest.(check bool) "idempotent" true (t1 == i1)

let test_generation_clear () =
  Twig.Hcons.clear ();
  let g0 = Twig.Hcons.generation () in
  let c0, _ = Twig.Hcons.filter (label_filter "a") in
  Alcotest.(check bool) "live after intern" true (Twig.Hcons.live_nodes () > 0);
  Twig.Hcons.clear ();
  Alcotest.(check int) "generation bumped" (g0 + 1) (Twig.Hcons.generation ());
  Alcotest.(check int) "table empty" 0 (Twig.Hcons.live_nodes ());
  (* The stale representative is no longer canonical: re-interning an equal
     shape yields a fresh node. *)
  let c1, _ = Twig.Hcons.filter (label_filter "a") in
  Alcotest.(check bool) "new representative" true (c0 != c1)

let test_capacity_clear () =
  Twig.Hcons.clear ();
  Twig.Hcons.set_max_nodes 0 (* clamps to the 1024 floor *);
  let g0 = Twig.Hcons.generation () in
  Fun.protect
    ~finally:(fun () ->
      Twig.Hcons.set_max_nodes (1 lsl 20);
      Twig.Hcons.clear ())
    (fun () ->
      for i = 1 to 3000 do
        ignore (Twig.Hcons.filter (label_filter ("l" ^ string_of_int i)))
      done;
      Alcotest.(check bool)
        "capacity clear bumped the generation" true
        (Twig.Hcons.generation () > g0);
      Alcotest.(check bool)
        "table stays bounded" true
        (Twig.Hcons.live_nodes () <= 1025))

let () =
  Alcotest.run "hcons"
    [
      ( "interning",
        [
          Alcotest.test_case "physical equality" `Quick test_phys_equal;
          Alcotest.test_case "distinct shapes, distinct ids" `Quick
            test_distinct_shapes;
          Alcotest.test_case "idempotence" `Quick test_idempotent;
          Alcotest.test_case "test nodes" `Quick test_test_interning;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "generation and clear" `Quick
            test_generation_clear;
          Alcotest.test_case "capacity-triggered clear" `Quick
            test_capacity_clear;
        ] );
    ]
