lib/uschema/multiplicity.ml: Format
