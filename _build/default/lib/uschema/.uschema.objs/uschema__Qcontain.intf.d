lib/uschema/qcontain.mli: Depgraph Twig Xmltree
