(** Small statistics and timing helpers for the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists of length < 2. *)

val median : float list -> float
(** Median; 0. on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank; 0. on []. *)

val minimum : float list -> float
val maximum : float list -> float

val mean_int : int list -> float
val median_int : int list -> float

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds,
    measured on {!Monotonic} — immune to NTP adjustments and clock steps. *)

val time_median : ?repeats:int -> (unit -> 'a) -> float
(** Median elapsed monotonic seconds over [repeats] (default 5) runs. *)
