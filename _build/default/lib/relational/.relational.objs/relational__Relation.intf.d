lib/relational/relation.mli: Format Value
