(** Fault injection for interactive oracles — the crowdsourcing setting of
    the paper's Section 3, where the "user" is a crowd worker who sometimes
    answers wrong, declines a HIT, or never returns.

    A {!profile} turns a reliable oracle into a flaky one; [Interact.Make.run_flaky]
    drives a session against it, skipping refused/timed-out questions instead
    of crashing, so sessions survive unreliable users.

    Since the storage-robustness PR the module also owns the {e unified}
    fault vocabulary: a {!plan} bundles oracle faults and {!Vfs} disk faults
    under a single seed, so one integer reproduces an entire chaos run.  New
    injection points should take a [plan] (or its [disk] half) instead of
    growing their own ad-hoc switches. *)

type reply =
  | Label of bool  (** an answer (possibly flipped by noise) *)
  | Refused  (** the user declined to answer this question *)
  | Timed_out  (** the answer never arrived *)

type profile = {
  noise : float;  (** probability an answer is flipped *)
  refusal : float;  (** probability the user refuses *)
  timeout : float;  (** probability the answer never arrives *)
}

val reliable : profile
(** All zero: {!wrap} with it is the identity. *)

val profile : ?noise:float -> ?refusal:float -> ?timeout:float -> unit -> profile
(** Fields default to 0.  @raise Invalid_argument when a rate is outside
    [0,1] or refusal + timeout exceeds 1. *)

val wrap : ?profile:profile -> rng:Prng.t -> ('item -> bool) -> 'item -> reply
(** [wrap ~rng oracle] injects the profile's faults into [oracle], drawing
    from [rng] (deterministic under a fixed seed). *)

(** {2 Fault plans}

    What real disks do to a write-ahead log: refuse the bytes ([enospc],
    [eio]), take only some of them ([short_write]), acknowledge an fsync
    without making the bytes durable ([lying_fsync]), and — at the crash
    itself — tear a multi-byte write at an arbitrary offset ([torn]).
    [Vfs.faulty] implements these against real files; the rates here are
    per-operation probabilities. *)

type disk = {
  enospc : float;  (** probability an append fails with [ENOSPC] *)
  eio : float;  (** probability an append fails with [EIO] *)
  short_write : float;
      (** probability an append takes only a prefix before failing *)
  lying_fsync : float;
      (** probability an fsync reports success without durability *)
  torn : float;
      (** probability a simulated crash keeps a torn prefix of the
          unfsynced tail instead of dropping it whole *)
}

val no_disk_faults : disk

val disk :
  ?enospc:float ->
  ?eio:float ->
  ?short_write:float ->
  ?lying_fsync:float ->
  ?torn:float ->
  unit ->
  disk
(** Rates default to 0.  @raise Invalid_argument outside [0,1]. *)

type plan = { seed : int; oracle : profile; disk : disk }
(** Everything that can go wrong in one seeded value: crowd-worker faults
    on the oracle side, disk faults on the storage side. *)

val plan :
  ?seed:int ->
  ?noise:float ->
  ?refusal:float ->
  ?timeout:float ->
  ?enospc:float ->
  ?eio:float ->
  ?short_write:float ->
  ?lying_fsync:float ->
  ?torn:float ->
  unit ->
  plan

val no_faults : plan

val wrap_plan : plan -> ('item -> bool) -> 'item -> reply
(** {!wrap} drawing from a stream derived from the plan's seed — the oracle
    half of the plan.  Hand the same plan to [Vfs.faulty] for the disk
    half; the two streams are independent but jointly deterministic. *)
