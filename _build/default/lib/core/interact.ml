module type SESSION = sig
  type query
  type item
  type state

  val init : item list -> state
  val record : state -> item -> bool -> state
  val determined : state -> item -> bool option
  val candidate : state -> query option
  val pp_item : Format.formatter -> item -> unit
  val pp_query : Format.formatter -> query -> unit
end

type ('state, 'item) strategy = Prng.t -> 'state -> 'item list -> 'item

let first_strategy _rng _st = function
  | [] -> invalid_arg "Interact.first_strategy: no informative item"
  | item :: _ -> item

let random_strategy rng _st items = Prng.pick rng items

module Make (S : SESSION) = struct
  type outcome = {
    query : S.query option;
    questions : int;
    asked : (S.item * bool) list;
    pruned : int;
    state : S.state;
  }

  let run ?(rng = Prng.create 0) ?(strategy = first_strategy)
      ?(max_questions = max_int) ~oracle ~items () =
    let rec loop state remaining asked questions pruned =
      (* Split the remaining pool into items whose label is already forced
         (uninformative — pruned without asking) and genuinely open ones. *)
      let open_items, newly_determined =
        List.partition (fun it -> S.determined state it = None) remaining
      in
      let pruned = pruned + List.length newly_determined in
      if open_items = [] || questions >= max_questions then
        {
          query = S.candidate state;
          questions;
          asked = List.rev asked;
          pruned;
          state;
        }
      else
        let item = strategy rng state open_items in
        let label = oracle item in
        let state = S.record state item label in
        let remaining = List.filter (fun it -> it != item) open_items in
        loop state remaining ((item, label) :: asked) (questions + 1) pruned
    in
    loop (S.init items) items [] 0 0

  let cost ~price_per_question outcome =
    price_per_question *. float_of_int outcome.questions
end
