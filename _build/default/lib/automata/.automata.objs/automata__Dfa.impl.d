lib/automata/dfa.ml: Array Format Hashtbl Int List Nfa Regex Set String
