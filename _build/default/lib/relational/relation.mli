(** Relations: named, fixed-arity collections of tuples.

    Tuples are value arrays indexed by attribute position; attribute names
    give positions meaning (and drive the natural join).  Relations behave
    as sets: construction deduplicates. *)

type tuple = Value.t array

type t

val make : name:string -> attrs:string list -> tuple list -> t
(** @raise Invalid_argument on duplicate attribute names or arity
    mismatches. *)

val name : t -> string
val attrs : t -> string array
val arity : t -> int
val tuples : t -> tuple list
(** In insertion order, duplicates removed. *)

val cardinal : t -> int
val mem : tuple -> t -> bool
val attr_index : t -> string -> int option

val project : t -> string list -> t
(** Keeps the named attributes (deduplicating resulting tuples).
    @raise Invalid_argument on unknown attributes. *)

val select : t -> (tuple -> bool) -> t
val union : t -> t -> t
(** @raise Invalid_argument when attribute lists differ. *)

val equal_contents : t -> t -> bool
(** Same attributes and same tuple set (order-insensitive). *)

val tuple_equal : tuple -> tuple -> bool
val pp_tuple : Format.formatter -> tuple -> unit
val pp : Format.formatter -> t -> unit
