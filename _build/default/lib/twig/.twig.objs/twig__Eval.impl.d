lib/twig/eval.ml: Annotated Array List Query String Tree Xmltree
