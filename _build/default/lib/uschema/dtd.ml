module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = { root : string; rules : Automata.Regex.t SMap.t }

let make ~root ~rules =
  let table =
    List.fold_left
      (fun acc (l, re) ->
        if SMap.mem l acc then invalid_arg ("Dtd.make: duplicate rule for " ^ l)
        else SMap.add l re acc)
      SMap.empty rules
  in
  { root; rules = table }

let root d = d.root

let rule d label =
  match SMap.find_opt label d.rules with
  | Some re -> re
  | None -> Automata.Regex.Eps

let rules d = SMap.bindings d.rules

type violation = {
  at : Xmltree.Tree.path;
  label : string;
  found : string list;
  expected : Automata.Regex.t;
}

let children_word (n : Xmltree.Tree.t) =
  n.children
  |> List.filter (fun c -> not (Xmltree.Tree.is_text c))
  |> List.map (fun (c : Xmltree.Tree.t) -> c.label)

let validate d tree =
  let violations = ref [] in
  if tree.Xmltree.Tree.label <> d.root then
    violations :=
      {
        at = [];
        label = tree.Xmltree.Tree.label;
        found = children_word tree;
        expected = Automata.Regex.Empty;
      }
      :: !violations;
  (* Rules are compiled to DFAs once; a node validates by running its
     children word through its label's DFA. *)
  let compiled = Hashtbl.create 16 in
  let dfa_of label =
    match Hashtbl.find_opt compiled label with
    | Some dfa -> dfa
    | None ->
        let dfa = Automata.Dfa.of_regex (rule d label) in
        Hashtbl.add compiled label dfa;
        dfa
  in
  Xmltree.Tree.fold
    (fun path (n : Xmltree.Tree.t) () ->
      if not (Xmltree.Tree.is_text n) then begin
        let word = children_word n in
        if not (Automata.Dfa.accepts (dfa_of n.label) word) then
          violations :=
            { at = path; label = n.label; found = word; expected = rule d n.label }
            :: !violations
      end)
    tree ();
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let valid d tree = validate d tree = Ok ()

let rule_leq r1 r2 =
  let d1 = Automata.Dfa.of_regex r1 and d2 = Automata.Dfa.of_regex r2 in
  (* L(d1) ⊆ L(d2) iff L(d1) ∩ ¬L(d2) = ∅, over the union alphabet: a word
     of d1 using a symbol unknown to d2 is a counterexample by itself. *)
  let module S = Set.Make (String) in
  let a1 = S.of_list (Automata.Regex.alphabet r1) in
  let a2 = S.of_list (Automata.Regex.alphabet r2) in
  if not (S.subset a1 a2) then
    (* Only a problem when d1 actually accepts a word through the extra
       symbol; the product below would miss it, so check via emptiness of
       d1 restricted to the extra-symbol-free language. *)
    let extra = S.diff a1 a2 in
    let without_extra =
      Automata.Dfa.intersect d1
        (Automata.Dfa.of_regex
           (let sigma =
              S.elements (S.diff a1 extra)
              |> List.map (fun s -> Automata.Regex.Sym s)
              |> function
              | [] -> Automata.Regex.Empty
              | x :: rest ->
                  List.fold_left (fun acc r -> Automata.Regex.Alt (acc, r)) x rest
            in
            Automata.Regex.Star sigma))
    in
    (* d1 ⊆ d2 requires: words using extra symbols are not accepted at all,
       i.e. d1 ≡ its extra-free restriction, and the restriction ⊆ d2. *)
    Automata.Dfa.equal_language d1 without_extra
    && Automata.Dfa.is_empty
         (Automata.Dfa.intersect without_extra (Automata.Dfa.complement d2))
  else
    (* The complement of d2 is over d2's alphabet ⊇ d1's, so the product
       with d1 is sound and complete. *)
    Automata.Dfa.is_empty (Automata.Dfa.intersect d1 (Automata.Dfa.complement d2))

let reachable d =
  let rec go frontier seen =
    match frontier with
    | [] -> seen
    | l :: rest ->
        if SSet.mem l seen then go rest seen
        else
          go (Automata.Regex.alphabet (rule d l) @ rest) (SSet.add l seen)
  in
  SSet.elements (go [ d.root ] SSet.empty)

let leq d1 d2 =
  String.equal d1.root d2.root
  && List.for_all (fun l -> rule_leq (rule d1 l) (rule d2 l)) (reachable d1)

let equiv d1 d2 = leq d1 d2 && leq d2 d1

let pp ppf d =
  Format.fprintf ppf "@[<v>root: %s" d.root;
  SMap.iter
    (fun l re -> Format.fprintf ppf "@,%s -> %a" l Automata.Regex.pp re)
    d.rules;
  Format.fprintf ppf "@]"

let pp_violation ppf v =
  Format.fprintf ppf "at %a: <%s> children [%s] do not match %a"
    Xmltree.Tree.pp_path v.at v.label
    (String.concat " " v.found)
    Automata.Regex.pp v.expected
