module Journal = Core.Journal
module Budget = Core.Budget
module Flaky = Core.Flaky
module Error = Core.Error

type view = {
  engine : string;
  done_ : bool;
  degraded : bool;
  qid : int;
  question : string option;
  question_text : string option;
  questions : int;
  replayed : int;
  pruned : int;
  refused : int;
  query : string option;
}

type t = {
  view : unit -> view;
  answer : qid:int -> Core.Flaky.reply -> (view, Core.Error.t) result;
  flush : unit -> unit;
  close : unit -> unit;
  abort : unit -> unit;
}

module Make (S : Core.Interact.SESSION) = struct
  type internal = {
    engine : string;
    encode : S.item -> string;
    journal : Journal.t option;
    step_budget : unit -> Budget.t;
    mutable st : S.state;
    mutable pool : S.item list;  (** unasked items, original order *)
    mutable current : (int * S.item) option;
    mutable qid : int;  (** count of Asked records ever (incl. replayed) *)
    mutable questions : int;
    mutable replayed : int;
    mutable pruned : int;
    mutable refused : int;
    mutable done_ : bool;
    mutable degraded : bool;
  }

  let jappend i ev =
    match i.journal with None -> () | Some j -> Journal.append j ev

  let view i =
    {
      engine = i.engine;
      done_ = i.done_;
      degraded = i.degraded;
      qid = i.qid;
      question = Option.map (fun (_, it) -> i.encode it) i.current;
      question_text =
        Option.map (fun (_, it) -> Format.asprintf "%a" S.pp_item it) i.current;
      questions = i.questions;
      replayed = i.replayed;
      pruned = i.pruned;
      refused = i.refused;
      query =
        Option.map (Format.asprintf "%a" S.pp_query) (S.candidate i.st);
    }

  (* Advance to the next open question: prune determined items, pick the
     first informative one (pool order — deterministic, so a crash/resume
     re-derives the same question sequence), journal the ask.  Mirrors the
     [Interact.Make] loop body exactly. *)
  let advance i =
    if not (i.done_ || i.current <> None) then begin
      let b = i.step_budget () in
      match
        List.partition
          (fun it ->
            Budget.tick b;
            S.determined i.st it = None)
          i.pool
      with
      | exception Budget.Out_of_budget ->
          (* Terminal degradation: keep the candidate so far; no
             [Completed] record, so the journal stays resumable under a
             bigger budget. *)
          i.done_ <- true;
          i.degraded <- true
      | opens, determined ->
          i.pruned <- i.pruned + List.length determined;
          i.pool <- opens;
          (match opens with
          | [] ->
              jappend i Journal.Completed;
              (match i.journal with None -> () | Some j -> Journal.flush j);
              i.done_ <- true
          | item :: _ ->
              i.pool <- List.filter (fun it -> it != item) opens;
              i.qid <- i.qid + 1;
              jappend i (Journal.Asked (i.encode item));
              i.current <- Some (i.qid, item))
    end

  let answer i ~qid reply =
    match i.current with
    | Some (cq, item) when qid = cq ->
        jappend i (Journal.Answered (i.encode item, reply));
        (match reply with
        | Flaky.Label label ->
            i.st <- S.record i.st item label;
            i.questions <- i.questions + 1
        | Flaky.Refused | Flaky.Timed_out ->
            (* Set aside for this run; a resume puts it back in the pool,
               exactly as [Interact.run_flaky] replay does. *)
            i.refused <- i.refused + 1);
        i.current <- None;
        advance i;
        Ok (view i)
    | Some (cq, _) when qid < cq -> Ok (view i) (* duplicate: no-op *)
    | None when qid <= i.qid -> Ok (view i) (* late duplicate: no-op *)
    | _ ->
        Error
          (Error.invalid_input ~what:"qid"
             (Printf.sprintf
                "answer for question %d but only %d have been asked" qid i.qid))

  let make ?journal ?(resume = []) ?step_budget ~engine ~encode ~decode ~items
      () =
    let step_budget =
      match step_budget with Some f -> f | None -> Budget.unlimited
    in
    let i =
      {
        engine;
        encode;
        journal;
        step_budget;
        st = S.init items;
        pool = items;
        current = None;
        qid = 0;
        questions = 0;
        replayed = 0;
        pruned = 0;
        refused = 0;
        done_ = false;
        degraded = false;
      }
    in
    (* Replay: fold the recovered events in order.  Labeled answers rebuild
       the state (duplicates are idempotent no-ops); refused/timed-out items
       stay in the pool; a trailing [Asked] with no [Answered] is the open
       question, re-posed without re-journaling. *)
    let answered = Hashtbl.create 64 in
    let decode_or_fail key =
      match decode key with
      | Some it -> Ok it
      | None ->
          Error
            (Error.invalid_input ~what:"journal"
               (Printf.sprintf "undecodable replay item %S for engine %s" key
                  engine))
    in
    let rec replay pending = function
      | [] -> Ok pending
      | Journal.Asked key :: rest ->
          i.qid <- i.qid + 1;
          replay (Some key) rest
      | Journal.Answered (key, reply) :: rest -> (
          match reply with
          | Flaky.Refused | Flaky.Timed_out -> replay None rest
          | Flaky.Label label ->
              if Hashtbl.mem answered key then replay None rest
              else (
                Hashtbl.add answered key ();
                match decode_or_fail key with
                | Error _ as e -> e
                | Ok it ->
                    i.st <- S.record i.st it label;
                    i.replayed <- i.replayed + 1;
                    replay None rest))
      | Journal.Completed :: rest ->
          i.done_ <- true;
          replay None rest
    in
    match replay None resume with
    | Error _ as e -> e
    | Ok pending -> (
        if i.replayed > 0 then
          i.pool <-
            List.filter
              (fun it -> not (Hashtbl.mem answered (encode it)))
              i.pool;
        let finish () =
          if i.current = None && not i.done_ then advance i;
          Ok
            {
              view = (fun () -> view i);
              answer = (fun ~qid reply -> answer i ~qid reply);
              flush =
                (fun () ->
                  match i.journal with
                  | None -> ()
                  | Some j -> Journal.flush j);
              close =
                (fun () ->
                  match i.journal with None -> () | Some j -> Journal.close j);
              abort =
                (fun () ->
                  match i.journal with None -> () | Some j -> Journal.abort j);
            }
        in
        match pending with
        | Some _ when i.done_ -> finish ()
        | Some key -> (
            match decode_or_fail key with
            | Error _ as e -> e
            | Ok it ->
                (* The crash lost the answer in flight: re-pose the same
                   question under its original qid.  The [Asked] record is
                   already on disk — appending another would double-count. *)
                i.pool <- List.filter (fun it' -> encode it' <> key) i.pool;
                i.current <- Some (i.qid, it);
                finish ())
        | None -> finish ())
end
