(** The three learnable query classes of the paper — twig, join, path —
    adapted to server sessions.

    A session is born from a {!spec}: which engine, and the seed and size
    knobs of the synthetic instance it learns over.  The spec is canonically
    serialized into the journal header's [config] line, so a crashed
    session's journal alone suffices to regenerate the {e identical}
    instance (generators are deterministic in the seed) and resume — the
    daemon stores nothing else.

    [goal] turns a spec plus a goal description into a simulated user — the
    chaos bench and the CI smoke test answer their own questions with it. *)

type spec = {
  engine : string;  (** ["twig"], ["join"], or ["path"] *)
  seed : int;
  scale : float;  (** twig: XMark scale factor *)
  rows : int;  (** join: rows per relation *)
  cities : int;  (** path: geo graph size *)
}

val default_spec : spec
(** twig, seed 0, scale 0.1, 12 rows, 12 cities. *)

val config_of_spec : spec -> string
(** Canonical [key=value] line stored in the journal header. *)

val max_scale : float
val max_rows : int
val max_cities : int
(** Instance-size ceilings enforced by {!validate}: a spec fresh off the
    wire or replayed from a journal header must not be able to allocate an
    arbitrarily large instance on a pool domain. *)

val validate : spec -> (spec, string) result
(** Checks the engine name and that [scale]/[rows]/[cities] are positive,
    finite, and within the ceilings above. *)

val spec_of_config : string -> (spec, string) result
(** Inverse of {!config_of_spec} (order-insensitive, unknown keys are
    errors); the result is {!validate}d, so a poisoned journal header is an
    [Error], not a daemon-killing allocation at recovery. *)

val spec_of_json : Json.t -> (spec, string) result
(** Reads [engine]/[seed]/[scale]/[rows]/[cities] fields, defaulting the
    absent ones from {!default_spec}; the result is {!validate}d. *)

val json_of_spec : spec -> Json.t

val header_of_spec : spec -> Core.Journal.header
(** [engine] is namespaced ["serve-twig"] etc., so server journals are
    distinguishable from CLI ones. *)

val make :
  ?journal:Core.Journal.t ->
  ?resume:Core.Journal.event list ->
  ?step_budget:(unit -> Core.Budget.t) ->
  ?checkpoint_every:int ->
  spec ->
  (Stepper.t, Core.Error.t) result
(** Builds the instance from the spec and wraps the engine's
    [Interactive.Session] in a {!Stepper}, wiring in the engine's state
    codec so checkpoints work for every engine: a [resume] bearing a
    {!Core.Journal.checkpoint} restores from it, and [checkpoint_every] > 0
    compacts the journal every N labeled answers. *)

val oracle : spec -> goal:string -> (string -> bool, Core.Error.t) result
(** A labeling function over {e codec strings} (the stepper's [question]
    field), simulating a user who holds [goal]: twig — a twig query string;
    join — ["planted"] for the instance's hidden predicate; path — a
    regular expression over edge labels. *)
