module Rel_to_xml = struct
  type result = {
    predicate : Relational.Algebra.predicate;
    published : Xmltree.Tree.t;
  }

  let run ~left ~right ~examples =
    let space =
      Joinlearn.Signature.space
        ~left_arity:(Relational.Relation.arity left)
        ~right_arity:(Relational.Relation.arity right)
    in
    let labeled =
      List.map
        (fun (pair, label) -> Joinlearn.Join.example space pair label)
        examples
    in
    match Joinlearn.Join.learn space labeled with
    | None -> None
    | Some mask ->
        let predicate = Joinlearn.Signature.to_predicate space mask in
        let joined = Relational.Algebra.equijoin left right predicate in
        Some { predicate; published = Publish.relation_to_xml joined }
end

module Xml_to_rel = struct
  type result = { query : Twig.Query.t; shredded : Relational.Relation.t }

  let run ~doc ~annotations ~name ~columns =
    let examples =
      List.map (fun p -> Xmltree.Annotated.make doc p) annotations
    in
    match Twiglearn.Positive.learn_positive examples with
    | None -> None
    | Some query ->
        Some
          {
            query;
            shredded =
              Publish.xml_to_relation ~name ~row_query:query ~columns doc;
          }
end

module Xml_to_rdf = struct
  type result = { query : Twig.Query.t; triples : Rdf.t }

  let run ~doc ~annotations =
    let examples =
      List.map (fun p -> Xmltree.Annotated.make doc p) annotations
    in
    match Twiglearn.Positive.learn_positive examples with
    | None -> None
    | Some query ->
        Some { query; triples = Publish.xml_to_rdf ~scope:query doc }
end

module Graph_to_xml = struct
  type result = {
    query : Pathlearn.Words.hypothesis;
    published : Xmltree.Tree.t;
  }

  let run ~graph ~examples =
    let labeled = List.map Core.Example.of_labeled examples in
    match Pathlearn.Pairs.learn graph labeled with
    | None -> None
    | Some hyp ->
        Some
          {
            query = hyp;
            published = Publish.graph_paths_to_xml graph hyp.Pathlearn.Words.dfa;
          }
end
