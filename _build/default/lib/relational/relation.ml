type tuple = Value.t array

type t = { name : string; attrs : string array; tuples : tuple list }

let tuple_equal t1 t2 =
  Array.length t1 = Array.length t2
  && Array.for_all2 Value.equal t1 t2

let dedup tuples =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun t ->
      let key = Array.to_list t in
      if Hashtbl.mem seen key then false
      else (
        Hashtbl.add seen key ();
        true))
    tuples

let make ~name ~attrs tuples =
  let attrs = Array.of_list attrs in
  let n = Array.length attrs in
  let module S = Set.Make (String) in
  if S.cardinal (S.of_list (Array.to_list attrs)) <> n then
    invalid_arg "Relation.make: duplicate attribute names";
  List.iter
    (fun t ->
      if Array.length t <> n then
        invalid_arg
          (Printf.sprintf "Relation.make: tuple arity %d, expected %d"
             (Array.length t) n))
    tuples;
  { name; attrs; tuples = dedup tuples }

let name r = r.name
let attrs r = r.attrs
let arity r = Array.length r.attrs
let tuples r = r.tuples
let cardinal r = List.length r.tuples
let mem t r = List.exists (tuple_equal t) r.tuples

let attr_index r a =
  let found = ref None in
  Array.iteri (fun i a' -> if String.equal a a' then found := Some i) r.attrs;
  !found

let project r names =
  let indices =
    List.map
      (fun a ->
        match attr_index r a with
        | Some i -> i
        | None -> invalid_arg ("Relation.project: unknown attribute " ^ a))
      names
  in
  make ~name:r.name ~attrs:names
    (List.map (fun t -> Array.of_list (List.map (fun i -> t.(i)) indices))
       r.tuples)

let select r p = { r with tuples = List.filter p r.tuples }

let union r1 r2 =
  if r1.attrs <> r2.attrs then
    invalid_arg "Relation.union: incompatible attributes";
  { r1 with tuples = dedup (r1.tuples @ r2.tuples) }

let equal_contents r1 r2 =
  r1.attrs = r2.attrs
  && cardinal r1 = cardinal r2
  && List.for_all (fun t -> mem t r2) r1.tuples

let pp_tuple ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Value.pp)
    (Array.to_list t)

let pp ppf r =
  Format.fprintf ppf "@[<v>%s(%s):" r.name
    (String.concat ", " (Array.to_list r.attrs));
  List.iter (fun t -> Format.fprintf ppf "@,  %a" pp_tuple t) r.tuples;
  Format.fprintf ppf "@]"
