(** A minimal RDF substrate: triple stores over string terms.

    RDF is the paper's third data model (Figure 1); shredding XML into RDF
    and publishing graph data as XML both pass through this store. *)

type triple = { subj : string; pred : string; obj : string }
type t

val empty : t
val add : triple -> t -> t
val of_list : triple list -> t
val to_list : t -> triple list
(** Sorted, distinct. *)

val cardinal : t -> int
val mem : triple -> t -> bool

val subjects : t -> string list
val with_pred : t -> string -> triple list
val equal : t -> t -> bool

val of_graph : Graphdb.Graph.t -> t
(** Every edge [(u, l, v)] becomes [(name u, l, name v)]. *)

val to_graph : t -> Graphdb.Graph.t
(** Nodes are the subjects/objects in sorted order. *)

val of_xml : Xmltree.Tree.t -> t
(** Structural shredding of a document: each node gets the IRI-like
    identifier ["/0/2/1"] of its path; a child edge becomes
    [(parent-id, child-label, child-id)], and a text child becomes
    [(parent-id, "value", text)]. *)

val pp : Format.formatter -> t -> unit
