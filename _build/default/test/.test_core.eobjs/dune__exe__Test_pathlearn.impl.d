test/test_pathlearn.ml: Alcotest Automata Core Fun Graphdb List Pathlearn QCheck QCheck_alcotest String
