lib/twiglearn/nary.mli: Format Relational Twig Xmltree
