lib/uschema/dtd.mli: Automata Format Xmltree
