lib/joinlearn/signature.mli: Format Relational
