(** Graph workload generators, headlined by the paper's geographic use case:
    "a geographical database modeled as a graph.  The vertices represent
    cities and the edges store information such as … the type of road
    linking the cities (e.g., highway)" (Section 3). *)

val geo :
  rng:Core.Prng.t ->
  ?cities:int ->
  ?extra_roads:int ->
  ?ferries:int ->
  unit ->
  Graph.t
(** A road network over [cities] (default 20) city nodes named
    ["city0"...]:
    - a {e highway backbone} — a directed cycle visiting a random half of
      the cities with ["highway"] edges (in both directions);
    - [extra_roads] (default [2·cities]) random ["road"] edges;
    - [ferries] (default [cities/5]) random ["ferry"] edges.  *)

val random :
  rng:Core.Prng.t ->
  nodes:int ->
  edges:int ->
  labels:string list ->
  Graph.t
(** Uniform random labeled digraph. *)
