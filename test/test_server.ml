(* Tests for the serve stack: the JSON codec, HTTP framing, the inverted
   interaction loop (stepper), the session registry's idempotency / quota /
   crash-recovery contracts, admission control, and one in-process
   daemon+client end-to-end run. *)

module Json = Server.Json
module Http = Server.Http
module Engines = Server.Engines
module Stepper = Server.Stepper
module Registry = Server.Registry
module Admission = Server.Admission
module Tenant = Server.Tenant

let with_temp_dir f =
  let path = Filename.temp_file "learnq_server" ".d" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun e -> try Sys.remove (Filename.concat path e) with Sys_error _ -> ())
           (Sys.readdir path)
       with Sys_error _ -> ());
      try Unix.rmdir path with Unix.Unix_error _ -> ())
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Num x, Json.Num y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Json.Str x, Json.Str y -> x = y
  | Json.Arr x, Json.Arr y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Json.Obj x, Json.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
           x y
  | _ -> false

let json_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let scalar =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            (* ints: exact through the float representation *)
            map (fun i -> Json.Num (float_of_int i)) (int_range (-1000000) 1000000);
            map (fun s -> Json.Str s) (string_size ~gen:printable (int_bound 12));
            map (fun s -> Json.Str s) (string_size (int_bound 12));
          ]
      in
      if n <= 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun l -> Json.Arr l) (list_size (int_bound 4) (self (n / 2))));
            ( 1,
              map
                (fun l ->
                  (* object keys must be distinct for roundtrip equality *)
                  Json.Obj (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) l))
                (list_size (int_bound 4) (self (n / 2))) );
          ])

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json print/parse roundtrip" ~count:300
    (QCheck.make ~print:(fun j -> Json.to_string j) json_gen)
    (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' -> json_equal j j'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let test_json_unicode () =
  (match Json.parse {|"a\u00e9\u2603b"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "utf-8 decoded" "a\xc3\xa9\xe2\x98\x83b" s
  | _ -> Alcotest.fail "unicode escape rejected");
  match Json.parse {|"\ud83d\ude00"|} with
  | Ok (Json.Str s) ->
      Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair rejected"

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":1,}"; "1 2"; "\"\\x\""; "nul"; "{\"a\" 1}"; "" ]

(* ------------------------------------------------------------------ *)
(* HTTP framing                                                        *)
(* ------------------------------------------------------------------ *)

let test_http_parse_head () =
  match
    Http.parse_head
      "POST /v1/sessions HTTP/1.1\r\nHost: localhost\r\nX-Learnq-Tenant:  acme \r\nContent-Length: 2"
  with
  | Error e -> Alcotest.failf "parse_head: %s" e
  | Ok req ->
      Alcotest.(check string) "method" "POST" req.Http.meth;
      Alcotest.(check string) "path" "/v1/sessions" req.Http.path;
      Alcotest.(check (option string)) "header lookup is case-insensitive"
        (Some "acme")
        (Http.header "x-learnq-tenant" req);
      Alcotest.(check (option string)) "content-length" (Some "2")
        (Http.header "content-length" req)

let test_http_parse_head_rejects () =
  List.iter
    (fun s ->
      match Http.parse_head s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "GET"; "GET /x"; "GET /x HTTP/1.1\r\nNoColonHere" ]

let test_http_timeout_mid_body_resumes () =
  (* A receive timeout between the head and the body must not lose the
     request: the next read_request call picks up the same request and
     returns it whole once the body arrives. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.set_nonblock a;
      (* nonblocking read surfaces as Error "timeout", like SO_RCVTIMEO *)
      let conn = Http.conn_of_fd a in
      let head = "POST /v1/x HTTP/1.1\r\nContent-Length: 4\r\n\r\n" in
      let n = Unix.write_substring b head 0 (String.length head) in
      Alcotest.(check int) "head written" (String.length head) n;
      let _ = Unix.write_substring b "ab" 0 2 in
      (* client pauses mid-body *)
      (match Http.read_request conn with
      | Error "timeout" -> ()
      | Ok _ -> Alcotest.fail "request cannot be complete yet"
      | Error e -> Alcotest.failf "wrong error: %s" e);
      Alcotest.(check bool) "partial request still buffered" true
        (Http.buffered conn);
      let _ = Unix.write_substring b "cd" 0 2 in
      match Http.read_request conn with
      | Ok (Some req) ->
          Alcotest.(check string) "nothing lost: full body" "abcd" req.Http.body;
          Alcotest.(check string) "path intact" "/v1/x" req.Http.path
      | Ok None -> Alcotest.fail "eof?"
      | Error e -> Alcotest.failf "read_request: %s" e)

let test_engines_spec_limits () =
  (* Unbounded instance knobs must be refused at both entry points: the
     wire (spec_of_json) and journal-header recovery (spec_of_config). *)
  let bad_json =
    [
      Json.Obj [ ("rows", Json.of_int 1000000000) ];
      Json.Obj [ ("rows", Json.of_int 0) ];
      Json.Obj [ ("cities", Json.of_int 1000000000) ];
      Json.Obj [ ("scale", Json.Num 1e9) ];
      Json.Obj [ ("scale", Json.Num (-1.0)) ];
      Json.Obj [ ("scale", Json.Num Float.nan) ];
    ]
  in
  List.iter
    (fun j ->
      match Engines.spec_of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" (Json.to_string j))
    bad_json;
  (match Engines.spec_of_json (Json.Obj [ ("rows", Json.of_int 64) ]) with
  | Ok s -> Alcotest.(check int) "in-range rows pass" 64 s.Engines.rows
  | Error e -> Alcotest.failf "in-range spec refused: %s" e);
  List.iter
    (fun line ->
      match Engines.spec_of_config line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "recovery accepted %S" line)
    [
      "engine=join seed=0 scale=0.1 rows=1000000000 cities=12";
      "engine=path seed=0 scale=0.1 rows=12 cities=1000000000";
      "engine=twig seed=0 scale=1e9 rows=12 cities=12";
    ];
  match
    Engines.spec_of_config (Engines.config_of_spec Engines.default_spec)
  with
  | Ok s -> Alcotest.(check bool) "roundtrip" true (s = Engines.default_spec)
  | Error e -> Alcotest.failf "default spec refused: %s" e

(* ------------------------------------------------------------------ *)
(* Stepper: the inverted loop                                          *)
(* ------------------------------------------------------------------ *)

let twig_spec = { Engines.default_spec with Engines.engine = "twig"; seed = 7; scale = 0.02 }

let truth_of spec goal =
  match Engines.oracle spec ~goal with
  | Ok f -> f
  | Error e -> Alcotest.failf "oracle: %s" (Core.Error.to_string e)

let make_stepper spec =
  match Engines.make spec with
  | Ok st -> st
  | Error e -> Alcotest.failf "engine: %s" (Core.Error.to_string e)

let drive st truth =
  let rec go n =
    let v = st.Stepper.view () in
    if v.Stepper.done_ then (n, v)
    else
      match v.Stepper.question with
      | None -> (n, v)
      | Some key -> (
          match
            st.Stepper.answer ~qid:v.Stepper.qid (Core.Flaky.Label (truth key))
          with
          | Ok _ -> go (n + 1)
          | Error e -> Alcotest.failf "answer: %s" (Core.Error.to_string e))
  in
  go 0

let test_stepper_duplicate_qid_idempotent () =
  let st = make_stepper twig_spec in
  let truth = truth_of twig_spec "//person/name" in
  let v = st.Stepper.view () in
  let key = Option.get v.Stepper.question in
  (match st.Stepper.answer ~qid:v.Stepper.qid (Core.Flaky.Label (truth key)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first answer: %s" (Core.Error.to_string e));
  let v1 = st.Stepper.view () in
  (* the client retries its delivered reply: a no-op returning the live view *)
  (match st.Stepper.answer ~qid:v.Stepper.qid (Core.Flaky.Label (not (truth key))) with
  | Ok v2 ->
      Alcotest.(check int) "view unchanged" v1.Stepper.qid v2.Stepper.qid;
      Alcotest.(check int) "no answer folded twice" v1.Stepper.questions
        v2.Stepper.questions
  | Error e -> Alcotest.failf "duplicate must be a no-op: %s" (Core.Error.to_string e));
  st.Stepper.close ()

let test_stepper_future_qid_rejected () =
  let st = make_stepper twig_spec in
  (match st.Stepper.answer ~qid:9999 (Core.Flaky.Label true) with
  | Error (Core.Error.Invalid_input _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Core.Error.to_string e)
  | Ok _ -> Alcotest.fail "a qid from the future must be refused");
  st.Stepper.close ()

let test_stepper_matches_interact_loop () =
  (* Differential: the inverted loop must walk the same path as the batch
     loop it replaces — same strategy (pool order), same determined-pruning,
     so same questions and same final query. *)
  let doc = Benchkit.Xmark.generate ~scale:0.02 ~seed:7 () in
  let goal =
    match Twig.Parse.query_result "//person/name" with
    | Ok q -> q
    | Error e -> Alcotest.failf "goal: %s" (Core.Error.to_string e)
  in
  let outcome = Twiglearn.Interactive.run_with_goal ~doc ~goal () in
  let st = make_stepper twig_spec in
  let truth = truth_of twig_spec "//person/name" in
  let questions, v = drive st truth in
  st.Stepper.close ();
  Alcotest.(check int) "same number of questions" outcome.Twiglearn.Interactive.Loop.questions
    questions;
  Alcotest.(check (option string)) "same final query"
    (Option.map
       (fun q -> Fmt.str "%a" Twig.Query.pp q)
       outcome.Twiglearn.Interactive.Loop.query)
    v.Stepper.query

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry_config ?(tenants = Tenant.make []) ?(sync = Core.Journal.Off)
    ?(vfs = Core.Vfs.real) ?(checkpoint_every = 0) ?(max_live = 0)
    ?(idle_evict_after = 0.) dir =
  {
    Registry.dir;
    sync;
    tenants;
    step_fuel = None;
    step_timeout = None;
    vfs;
    checkpoint_every;
    max_live;
    idle_evict_after;
  }

let test_registry_idempotent_create_and_conflict () =
  with_temp_dir (fun dir ->
      let reg = Registry.create (registry_config dir) in
      Fun.protect
        ~finally:(fun () -> Registry.drain reg)
        (fun () ->
          (match Registry.create_session reg ~tenant:"t" ~id:"s1" twig_spec with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "create: %s" (Core.Error.to_string e));
          (* same spec again: the live view, not an error *)
          (match Registry.create_session reg ~tenant:"t" ~id:"s1" twig_spec with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "idempotent create: %s" (Core.Error.to_string e));
          Alcotest.(check int) "still one session" 1 (Registry.count reg);
          (* different spec: typed conflict *)
          (match
             Registry.create_session reg ~tenant:"t" ~id:"s1"
               { twig_spec with Engines.seed = 8 }
           with
          | Error (Core.Error.Invalid_input _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Core.Error.to_string e)
          | Ok _ -> Alcotest.fail "conflicting spec accepted");
          (* hostile names never reach the filesystem *)
          match Registry.create_session reg ~tenant:"t" ~id:"../evil" twig_spec with
          | Error (Core.Error.Invalid_input _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Core.Error.to_string e)
          | Ok _ -> Alcotest.fail "path-traversal id accepted"))

let test_registry_quota_refusal () =
  with_temp_dir (fun dir ->
      let tenants = Tenant.make [ ("small", Tenant.quota ~max_sessions:1 ()) ] in
      let reg = Registry.create (registry_config ~tenants dir) in
      Fun.protect
        ~finally:(fun () -> Registry.drain reg)
        (fun () ->
          (match Registry.create_session reg ~tenant:"small" ~id:"a" twig_spec with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "create: %s" (Core.Error.to_string e));
          (match Registry.create_session reg ~tenant:"small" ~id:"b" twig_spec with
          | Error (Core.Error.Over_quota _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Core.Error.to_string e)
          | Ok _ -> Alcotest.fail "quota not enforced");
          (* other tenants are unaffected *)
          (match Registry.create_session reg ~tenant:"other" ~id:"b" twig_spec with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "other tenant: %s" (Core.Error.to_string e));
          (* freeing the slot readmits *)
          Alcotest.(check bool) "delete" true (Registry.delete reg ~tenant:"small" ~id:"a");
          match Registry.create_session reg ~tenant:"small" ~id:"b2" twig_spec with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "readmit: %s" (Core.Error.to_string e)))

let test_registry_crash_recover_equality () =
  (* The server's whole fault-tolerance claim in one test: crash mid-session,
     recover from the journal, finish — and land on the same query as a run
     that was never interrupted. *)
  let spec = { twig_spec with Engines.seed = 11 } in
  let truth = truth_of spec "//person/name" in
  let uninterrupted =
    with_temp_dir (fun dir ->
        let reg = Registry.create (registry_config dir) in
        Fun.protect
          ~finally:(fun () -> Registry.drain reg)
          (fun () ->
            (match Registry.create_session reg ~tenant:"t" ~id:"s" spec with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "create: %s" (Core.Error.to_string e));
            let st = Option.get (Registry.find reg ~tenant:"t" ~id:"s") in
            let _, v = drive st truth in
            v.Stepper.query))
  in
  with_temp_dir (fun dir ->
      let reg = Registry.create (registry_config ~sync:Core.Journal.Always dir) in
      (match Registry.create_session reg ~tenant:"t" ~id:"s" spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "create: %s" (Core.Error.to_string e));
      let st = Option.get (Registry.find reg ~tenant:"t" ~id:"s") in
      (* half a session, then the plug is pulled *)
      let answered = ref 0 in
      let rec half () =
        let v = st.Stepper.view () in
        if (not v.Stepper.done_) && !answered < 4 then
          match v.Stepper.question with
          | None -> ()
          | Some key ->
              (match
                 st.Stepper.answer ~qid:v.Stepper.qid (Core.Flaky.Label (truth key))
               with
              | Ok _ -> incr answered
              | Error e -> Alcotest.failf "answer: %s" (Core.Error.to_string e));
              half ()
      in
      half ();
      Registry.crash reg;
      let reg2 = Registry.create (registry_config ~sync:Core.Journal.Always dir) in
      Fun.protect
        ~finally:(fun () -> Registry.drain reg2)
        (fun () ->
          let pool = Core.Pool.create 1 in
          let recovered, errors =
            Fun.protect
              ~finally:(fun () -> Core.Pool.shutdown pool)
              (fun () -> Registry.recover_all reg2 ~pool)
          in
          List.iter
            (fun (f, e) ->
              Alcotest.failf "recovery error on %s: %s" f (Core.Error.to_string e))
            errors;
          Alcotest.(check int) "one session recovered" 1 recovered;
          let st2 = Option.get (Registry.find reg2 ~tenant:"t" ~id:"s") in
          Alcotest.(check bool) "answers replayed" true
            ((st2.Stepper.view ()).Stepper.replayed > 0);
          let _, v = drive st2 truth in
          Alcotest.(check (option string)) "same query as uninterrupted"
            uninterrupted v.Stepper.query))

let test_registry_drain_releases_locks () =
  with_temp_dir (fun dir ->
      let reg = Registry.create (registry_config ~sync:Core.Journal.Batch dir) in
      (match Registry.create_session reg ~tenant:"t" ~id:"s" twig_spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "create: %s" (Core.Error.to_string e));
      Registry.drain reg;
      let entries = Array.to_list (Sys.readdir dir) in
      Alcotest.(check bool) "journal kept" true
        (List.exists (fun e -> Filename.check_suffix e ".journal") entries);
      Alcotest.(check bool) "lock released" false
        (List.exists (fun e -> Filename.check_suffix e ".lock") entries))

let test_registry_names_injective_across_restart () =
  (* tenant "a_" / id "b" and tenant "a" / id "_b" must map to different
     journal files, and recovery must hand each session back to the tenant
     that owns it — not resurrect one as the other. *)
  with_temp_dir (fun dir ->
      let reg = Registry.create (registry_config ~sync:Core.Journal.Always dir) in
      (match Registry.create_session reg ~tenant:"a_" ~id:"b" twig_spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "create a_/b: %s" (Core.Error.to_string e));
      (match Registry.create_session reg ~tenant:"a" ~id:"_b" twig_spec with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "a/_b collided with a_/b: %s" (Core.Error.to_string e));
      Alcotest.(check int) "two distinct sessions" 2 (Registry.count reg);
      Registry.drain reg;
      let reg2 = Registry.create (registry_config ~sync:Core.Journal.Always dir) in
      Fun.protect
        ~finally:(fun () -> Registry.drain reg2)
        (fun () ->
          let pool = Core.Pool.create 1 in
          let recovered, errors =
            Fun.protect
              ~finally:(fun () -> Core.Pool.shutdown pool)
              (fun () -> Registry.recover_all reg2 ~pool)
          in
          List.iter
            (fun (f, e) ->
              Alcotest.failf "recovery error on %s: %s" f (Core.Error.to_string e))
            errors;
          Alcotest.(check int) "both recovered" 2 recovered;
          Alcotest.(check bool) "a_/b back under tenant a_" true
            (Registry.find reg2 ~tenant:"a_" ~id:"b" <> None);
          Alcotest.(check bool) "a/_b back under tenant a" true
            (Registry.find reg2 ~tenant:"a" ~id:"_b" <> None)))

(* ------------------------------------------------------------------ *)
(* Eviction, resume-on-demand, quarantine                              *)
(* ------------------------------------------------------------------ *)

(* One spec + goal per engine, small enough to drive to completion. *)
let evict_cases =
  [
    ("twig", { twig_spec with Engines.seed = 21 }, "//person/name");
    ( "join",
      { Engines.default_spec with Engines.engine = "join"; seed = 5; rows = 5 },
      "planted" );
    ( "path",
      {
        Engines.default_spec with
        Engines.engine = "path";
        seed = 5;
        cities = 6;
      },
      "highway*" );
  ]

let create_ok reg ~tenant ~id spec =
  match Registry.create_session reg ~tenant ~id spec with
  | Ok v -> v
  | Error e -> Alcotest.failf "create: %s" (Core.Error.to_string e)

(* Answer up to [n] questions; stops early when the session finishes. *)
let drive_n st truth n =
  let rec go k =
    let v = st.Stepper.view () in
    if v.Stepper.done_ || k >= n then k
    else
      match v.Stepper.question with
      | None -> k
      | Some key -> (
          match
            st.Stepper.answer ~qid:v.Stepper.qid (Core.Flaky.Label (truth key))
          with
          | Ok _ -> go (k + 1)
          | Error e -> Alcotest.failf "answer: %s" (Core.Error.to_string e))
  in
  go 0

let test_registry_evict_resume_roundtrip () =
  List.iter
    (fun (name, spec, goal) ->
      let truth = truth_of spec goal in
      (* Reference: never evicted, never checkpointed. *)
      let ref_questions, ref_query =
        with_temp_dir (fun dir ->
            let reg = Registry.create (registry_config dir) in
            Fun.protect
              ~finally:(fun () -> Registry.drain reg)
              (fun () ->
                ignore (create_ok reg ~tenant:"t" ~id:"s" spec);
                let st = Option.get (Registry.find reg ~tenant:"t" ~id:"s") in
                let n, v = drive st truth in
                (n, v.Stepper.query)))
      in
      if ref_questions < 3 then
        Alcotest.failf "%s: degenerate case (%d questions)" name ref_questions;
      with_temp_dir (fun dir ->
          let reg =
            Registry.create
              (registry_config ~sync:Core.Journal.Always ~checkpoint_every:2
                 ~max_live:1 dir)
          in
          Fun.protect
            ~finally:(fun () -> Registry.drain reg)
            (fun () ->
              ignore (create_ok reg ~tenant:"t" ~id:"s" spec);
              let st = Option.get (Registry.find reg ~tenant:"t" ~id:"s") in
              let answered = drive_n st truth 2 in
              Alcotest.(check int)
                (name ^ ": drove two answers before eviction") 2 answered;
              (* A second session pushes the first over max_live = 1. *)
              ignore (create_ok reg ~tenant:"t" ~id:"other" spec);
              let evicted = Registry.evict_idle reg in
              Alcotest.(check int) (name ^ ": one session evicted") 1 evicted;
              Alcotest.(check bool) (name ^ ": the LRU victim is gone") true
                (Registry.find reg ~tenant:"t" ~id:"s" = None);
              Alcotest.(check bool) (name ^ ": the fresh session survives")
                true
                (Registry.find reg ~tenant:"t" ~id:"other" <> None);
              (* Resume on demand: the evicted session comes back with its
                 answers intact (restored from the checkpoint + replay). *)
              let st2 =
                match Registry.find_or_resume reg ~tenant:"t" ~id:"s" with
                | Ok (Some st) -> st
                | Ok None -> Alcotest.failf "%s: evicted session lost" name
                | Error e ->
                    Alcotest.failf "%s: resume: %s" name
                      (Core.Error.to_string e)
              in
              let v = st2.Stepper.view () in
              Alcotest.(check int) (name ^ ": answers restored, not re-asked")
                2 v.Stepper.replayed;
              Alcotest.(check int) (name ^ ": no live questions burned") 0
                v.Stepper.questions;
              (* Finishing converges to the uninterrupted session. *)
              let _, v_final = drive st2 truth in
              Alcotest.(check (option string))
                (name ^ ": same query as uninterrupted") ref_query
                v_final.Stepper.query;
              Alcotest.(check int)
                (name ^ ": same total interaction count") ref_questions
                (v_final.Stepper.questions + v_final.Stepper.replayed);
              let stats = Registry.stats reg in
              Alcotest.(check int) (name ^ ": evicted counted") 1
                stats.Registry.evicted;
              Alcotest.(check int) (name ^ ": resumed counted") 1
                stats.Registry.resumed)))
    evict_cases

let test_registry_evicted_burst_single_flight () =
  let _, spec, goal = List.hd evict_cases in
  let truth = truth_of spec goal in
  with_temp_dir (fun dir ->
      let reg =
        Registry.create
          (registry_config ~sync:Core.Journal.Always ~checkpoint_every:2
             ~max_live:1 dir)
      in
      Fun.protect
        ~finally:(fun () -> Registry.drain reg)
        (fun () ->
          ignore (create_ok reg ~tenant:"t" ~id:"s" spec);
          let st = Option.get (Registry.find reg ~tenant:"t" ~id:"s") in
          ignore (drive_n st truth 2);
          ignore (create_ok reg ~tenant:"t" ~id:"other" spec);
          Alcotest.(check int) "evicted" 1 (Registry.evict_idle reg);
          (* A burst of concurrent requests for the evicted key: every one
             must see the session, and the journal must be replayed exactly
             once (single-flight). *)
          let results = Array.make 8 false in
          let threads =
            List.init 8 (fun i ->
                Thread.create
                  (fun () ->
                    match Registry.find_or_resume reg ~tenant:"t" ~id:"s" with
                    | Ok (Some _) -> results.(i) <- true
                    | Ok None | Error _ -> ())
                  ())
          in
          List.iter Thread.join threads;
          Array.iteri
            (fun i ok ->
              Alcotest.(check bool)
                (Printf.sprintf "request %d saw the session" i)
                true ok)
            results;
          Alcotest.(check int) "journal replayed exactly once" 1
            (Registry.stats reg).Registry.resumed))

let corrupt_journal_in dir =
  match
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun e -> Filename.check_suffix e ".journal")
  with
  | [ name ] ->
      let path = Filename.concat dir name in
      let ic = open_in_bin path in
      let bytes =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let b = Bytes.of_string bytes in
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_bytes oc b);
      path
  | l -> Alcotest.failf "expected exactly one journal, found %d" (List.length l)

let test_registry_quarantines_corrupt_journal () =
  let _, spec, goal = List.hd evict_cases in
  let truth = truth_of spec goal in
  with_temp_dir (fun dir ->
      (* Record a session, close cleanly, then corrupt a record in place. *)
      let reg = Registry.create (registry_config ~sync:Core.Journal.Always dir) in
      ignore (create_ok reg ~tenant:"t" ~id:"s" spec);
      let st = Option.get (Registry.find reg ~tenant:"t" ~id:"s") in
      ignore (drive_n st truth 2);
      Registry.drain reg;
      let path = corrupt_journal_in dir in
      (* Recovery quarantines it instead of failing every restart. *)
      let reg2 = Registry.create (registry_config ~sync:Core.Journal.Always dir) in
      Fun.protect
        ~finally:(fun () -> Registry.drain reg2)
        (fun () ->
          let pool = Core.Pool.create 1 in
          let recovered, errors =
            Fun.protect
              ~finally:(fun () -> Core.Pool.shutdown pool)
              (fun () -> Registry.recover_all reg2 ~pool)
          in
          Alcotest.(check int) "nothing recovered" 0 recovered;
          (match errors with
          | [ (_, Core.Error.Corrupt_journal _) ] -> ()
          | [ (_, e) ] ->
              Alcotest.failf "wrong error class: %s" (Core.Error.to_string e)
          | l -> Alcotest.failf "expected one error, got %d" (List.length l));
          Alcotest.(check bool) "journal moved aside" false
            (Sys.file_exists path);
          Alcotest.(check bool) "quarantine file exists" true
            (Sys.file_exists (path ^ ".quarantine"));
          Alcotest.(check bool) "stale lock removed" false
            (Sys.file_exists (path ^ ".lock"));
          Alcotest.(check int) "quarantine counted" 1
            (Registry.stats reg2).Registry.quarantined;
          (* The quarantined session no longer exists anywhere. *)
          match Registry.find_or_resume reg2 ~tenant:"t" ~id:"s" with
          | Ok None -> ()
          | Ok (Some _) -> Alcotest.fail "resumed a quarantined session"
          | Error e ->
              Alcotest.failf "wrong error: %s" (Core.Error.to_string e)))

let test_registry_enospc_is_typed_storage_full () =
  let _, spec, _ = List.hd evict_cases in
  with_temp_dir (fun dir ->
      let vfs = Core.Vfs.faulty ~seed:1 Core.Flaky.no_disk_faults in
      let reg =
        Registry.create
          (registry_config ~sync:Core.Journal.Always ~vfs dir)
      in
      Fun.protect
        ~finally:(fun () -> Registry.drain reg)
        (fun () ->
          Core.Vfs.set_full vfs true;
          (match Registry.create_session reg ~tenant:"t" ~id:"s" spec with
          | Error (Core.Error.Storage { full; _ }) ->
              Alcotest.(check bool) "classified as disk-full" true full
          | Error e ->
              Alcotest.failf "wrong error: %s" (Core.Error.to_string e)
          | Ok _ -> Alcotest.fail "created a session on a full disk");
          (* The episode ends: the same create succeeds. *)
          Core.Vfs.set_full vfs false;
          ignore (create_ok reg ~tenant:"t" ~id:"s" spec)))

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let dummy_job () = { Http.status = 200; headers = []; body = "{}" }

(* The advertised Retry-After is load-derived + jittered, not a constant:
   at a full queue the depth term pins it to [1.5×, 2.0×) the configured
   base.  Repeated refusals must also not all say the same thing — the
   jitter exists so a herd of refused clients does not re-arrive in
   lockstep. *)
let test_admission_sheds_when_full () =
  let adm = Admission.create ~retry_after:2.5 ~max_queue:1 () in
  (match Admission.submit adm ~tenant:"a" ~key:"a/1" dummy_job with
  | Admission.Enqueued _ -> ()
  | _ -> Alcotest.fail "first job must enqueue");
  let refusals =
    List.init 16 (fun i ->
        match
          Admission.submit adm ~tenant:"b" ~key:(Printf.sprintf "b/%d" i)
            dummy_job
        with
        | Admission.Shed retry -> retry
        | _ -> Alcotest.fail "full queue must shed")
  in
  List.iter
    (fun retry ->
      Alcotest.(check bool)
        (Printf.sprintf "retry-after %.4f within [1.5x, 2.0x)" retry)
        true
        (retry >= 1.5 *. 2.5 && retry < 2.0 *. 2.5))
    refusals;
  let distinct = List.sort_uniq compare refusals in
  Alcotest.(check bool) "jitter varies across refusals" true
    (List.length distinct > 1)

let test_admission_breaker_trips () =
  let policy =
    Core.Retry.policy ~max_attempts:1 ~breaker_threshold:2 ~cooldown:60.
      ~sleep:Core.Retry.no_sleep ()
  in
  let adm = Admission.create ~policy ~max_queue:16 () in
  Admission.fault adm ~tenant:"rowdy";
  (match Admission.submit adm ~tenant:"rowdy" ~key:"r/1" dummy_job with
  | Admission.Enqueued _ -> ()
  | _ -> Alcotest.fail "below threshold must still admit");
  Admission.fault adm ~tenant:"rowdy";
  (match Admission.submit adm ~tenant:"rowdy" ~key:"r/2" dummy_job with
  | Admission.Tripped _ -> ()
  | _ -> Alcotest.fail "tenant at threshold must trip");
  (* the breaker is per tenant *)
  match Admission.submit adm ~tenant:"calm" ~key:"c/1" dummy_job with
  | Admission.Enqueued _ -> ()
  | _ -> Alcotest.fail "another tenant must not be tripped"

let test_admission_batches_key_disjoint () =
  let adm = Admission.create ~max_queue:16 () in
  let enq tenant key =
    match Admission.submit adm ~tenant ~key dummy_job with
    | Admission.Enqueued j -> j
    | _ -> Alcotest.fail "enqueue"
  in
  let _a1 = enq "a" "a/s" in
  let _a2 = enq "a" "a/s" in
  (* same session: must not share a batch *)
  let _b1 = enq "b" "b/s" in
  let batch1 = Admission.take_batch adm ~max:8 ~block:false in
  let keys = List.map (fun j -> j.Admission.key) batch1 in
  Alcotest.(check int) "two jobs in the first batch" 2 (List.length batch1);
  Alcotest.(check bool) "keys are disjoint" true
    (List.sort_uniq compare keys = List.sort compare keys);
  let batch2 = Admission.take_batch adm ~max:8 ~block:false in
  Alcotest.(check int) "held-back job comes later" 1 (List.length batch2);
  Alcotest.(check string) "and it is the duplicate key" "a/s"
    (List.hd batch2).Admission.key

let test_admission_drain_refuses_submits () =
  (* Once drain has returned, no submit may enqueue (it would strand its
     waiter after the dispatcher exits) — but jobs enqueued before the
     drain stay takeable, per "finish the backlog" semantics. *)
  let adm = Admission.create ~max_queue:16 () in
  (match Admission.submit adm ~tenant:"a" ~key:"a/1" dummy_job with
  | Admission.Enqueued _ -> ()
  | _ -> Alcotest.fail "pre-drain job must enqueue");
  Admission.drain adm;
  (match Admission.submit adm ~tenant:"a" ~key:"a/2" dummy_job with
  | Admission.Draining _ -> ()
  | Admission.Enqueued _ -> Alcotest.fail "post-drain submit must be refused"
  | _ -> Alcotest.fail "post-drain submit must report Draining");
  let batch = Admission.take_batch adm ~max:8 ~block:false in
  Alcotest.(check int) "backlog still drains" 1 (List.length batch);
  Alcotest.(check int) "queue empty afterwards" 0 (Admission.pending adm)

(* ------------------------------------------------------------------ *)
(* Daemon + client, in process                                         *)
(* ------------------------------------------------------------------ *)

let test_daemon_end_to_end () =
  with_temp_dir (fun dir ->
      let port_box = ref 0 in
      let port_m = Mutex.create () in
      let port_cv = Condition.create () in
      let cfg =
        {
          Server.Daemon.default_config with
          Server.Daemon.state_dir = dir;
          port = 0;
          pool = 1;
          drain_grace = 2.0;
          on_listen =
            (fun p ->
              Mutex.lock port_m;
              port_box := p;
              Condition.broadcast port_cv;
              Mutex.unlock port_m);
        }
      in
      let daemon = Server.Daemon.create cfg in
      let serve_result = ref (Ok ()) in
      let server_thread =
        Thread.create (fun () -> serve_result := Server.Daemon.serve daemon) ()
      in
      Fun.protect
        ~finally:(fun () ->
          Server.Daemon.drain daemon;
          Thread.join server_thread;
          match !serve_result with
          | Ok () -> ()
          | Error e -> Alcotest.failf "serve: %s" e)
        (fun () ->
          Mutex.lock port_m;
          while !port_box = 0 do
            Condition.wait port_cv port_m
          done;
          let port = !port_box in
          Mutex.unlock port_m;
          let c =
            match Server.Client.connect ~host:"127.0.0.1" ~port with
            | Ok c -> c
            | Error e -> Alcotest.failf "connect: %s" e
          in
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              let req ?body meth path =
                match Server.Client.request c ~meth ~path ?body () with
                | Ok r -> r
                | Error e -> Alcotest.failf "%s %s: %s" meth path e
              in
              let code, _ = req "GET" "/healthz" in
              Alcotest.(check int) "healthz" 200 code;
              let code, view =
                req "POST" "/v1/sessions"
                  ~body:
                    (Json.Obj
                       [
                         ("id", Json.Str "e2e");
                         ("engine", Json.Str "twig");
                         ("seed", Json.of_int 7);
                         ("scale", Json.Num 0.02);
                       ])
              in
              Alcotest.(check int) "create" 200 code;
              let qid = Option.get (Json.get_int "qid" view) in
              let truth = truth_of twig_spec "//person/name" in
              let key = Option.get (Json.get_str "question" view) in
              let code, view =
                req "POST" "/v1/sessions/e2e/answers"
                  ~body:
                    (Json.Obj
                       [
                         ("qid", Json.of_int qid);
                         ("reply", Json.Bool (truth key));
                       ])
              in
              Alcotest.(check int) "answer" 200 code;
              Alcotest.(check bool) "question advanced" true
                (Option.get (Json.get_int "qid" view) > qid);
              let code, view' = req "GET" "/v1/sessions/e2e" in
              Alcotest.(check int) "get view" 200 code;
              Alcotest.(check (option int)) "stable view"
                (Json.get_int "qid" view)
                (Json.get_int "qid" view');
              let code, _ = req "GET" "/v1/sessions/nosuch" in
              Alcotest.(check int) "unknown session" 404 code;
              let code, stats = req "GET" "/stats" in
              Alcotest.(check int) "stats" 200 code;
              Alcotest.(check (option int)) "one live session" (Some 1)
                (Json.get_int "sessions" stats))))

let test_daemon_degraded_mode_self_heals () =
  with_temp_dir (fun dir ->
      let vfs = Core.Vfs.faulty ~seed:2 Core.Flaky.no_disk_faults in
      let port_box = ref 0 in
      let port_m = Mutex.create () in
      let port_cv = Condition.create () in
      let cfg =
        {
          Server.Daemon.default_config with
          Server.Daemon.state_dir = dir;
          port = 0;
          pool = 1;
          drain_grace = 2.0;
          sync = Core.Journal.Always;
          vfs;
          on_listen =
            (fun p ->
              Mutex.lock port_m;
              port_box := p;
              Condition.broadcast port_cv;
              Mutex.unlock port_m);
        }
      in
      let daemon = Server.Daemon.create cfg in
      let serve_result = ref (Ok ()) in
      let server_thread =
        Thread.create (fun () -> serve_result := Server.Daemon.serve daemon) ()
      in
      Fun.protect
        ~finally:(fun () ->
          Server.Daemon.drain daemon;
          Thread.join server_thread;
          match !serve_result with
          | Ok () -> ()
          | Error e -> Alcotest.failf "serve: %s" e)
        (fun () ->
          Mutex.lock port_m;
          while !port_box = 0 do
            Condition.wait port_cv port_m
          done;
          let port = !port_box in
          Mutex.unlock port_m;
          let c =
            match Server.Client.connect ~host:"127.0.0.1" ~port with
            | Ok c -> c
            | Error e -> Alcotest.failf "connect: %s" e
          in
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              let req ?body meth path =
                match Server.Client.request c ~meth ~path ?body () with
                | Ok r -> r
                | Error e -> Alcotest.failf "%s %s: %s" meth path e
              in
              let create_body id =
                Json.Obj
                  [
                    ("id", Json.Str id);
                    ("engine", Json.Str "twig");
                    ("seed", Json.of_int 7);
                    ("scale", Json.Num 0.02);
                  ]
              in
              (* Disk fills: creates are refused with 507 and the daemon
                 flips into degraded read-only mode. *)
              Core.Vfs.set_full vfs true;
              let code, _ = req "POST" "/v1/sessions" ~body:(create_body "a") in
              Alcotest.(check int) "full disk refuses create" 507 code;
              let _, stats = req "GET" "/stats" in
              Alcotest.(check (option bool)) "stats report degraded"
                (Some true)
                (Json.get_bool "degraded" stats);
              let code, _ = req "POST" "/v1/sessions" ~body:(create_body "b") in
              Alcotest.(check int) "degraded mode short-circuits creates" 507
                code;
              (* Space returns: the ~1/s heal probe clears the flag. *)
              Core.Vfs.set_full vfs false;
              let deadline = Unix.gettimeofday () +. 10.0 in
              let rec await_heal () =
                let _, stats = req "GET" "/stats" in
                if Json.get_bool "degraded" stats = Some false then ()
                else if Unix.gettimeofday () > deadline then
                  Alcotest.fail "daemon never healed after space returned"
                else (
                  Thread.delay 0.2;
                  await_heal ())
              in
              await_heal ();
              let code, _ = req "POST" "/v1/sessions" ~body:(create_body "c") in
              Alcotest.(check int) "healed daemon accepts creates" 200 code)))

(* A request slowed by an injected fsync stall must be findable end to
   end: in /debug/slow under its client-chosen trace id, in the flight
   recorder with the http.request span linked to the journal/vfs events on
   the pool domain, and in the /debug/flightrecorder dump. *)
let test_daemon_slow_request_traceable () =
  Core.Obs.reset ();
  with_temp_dir (fun dir ->
      let vfs = Core.Vfs.faulty ~seed:3 Core.Flaky.no_disk_faults in
      let port_box = ref 0 in
      let port_m = Mutex.create () in
      let port_cv = Condition.create () in
      let cfg =
        {
          Server.Daemon.default_config with
          Server.Daemon.state_dir = dir;
          port = 0;
          pool = 1;
          drain_grace = 2.0;
          sync = Core.Journal.Always;
          vfs;
          slow_ms = 50.;
          on_listen =
            (fun p ->
              Mutex.lock port_m;
              port_box := p;
              Condition.broadcast port_cv;
              Mutex.unlock port_m);
        }
      in
      let daemon = Server.Daemon.create cfg in
      let serve_result = ref (Ok ()) in
      let server_thread =
        Thread.create (fun () -> serve_result := Server.Daemon.serve daemon) ()
      in
      Fun.protect
        ~finally:(fun () ->
          Server.Daemon.drain daemon;
          Thread.join server_thread;
          match !serve_result with
          | Ok () -> ()
          | Error e -> Alcotest.failf "serve: %s" e)
        (fun () ->
          Mutex.lock port_m;
          while !port_box = 0 do
            Condition.wait port_cv port_m
          done;
          let port = !port_box in
          Mutex.unlock port_m;
          let c =
            match Server.Client.connect ~host:"127.0.0.1" ~port with
            | Ok c -> c
            | Error e -> Alcotest.failf "connect: %s" e
          in
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              let req ?headers ?body meth path =
                match Server.Client.request c ~meth ~path ?headers ?body () with
                | Ok r -> r
                | Error e -> Alcotest.failf "%s %s: %s" meth path e
              in
              (* /healthz reports the liveness shape. *)
              let code, h = req "GET" "/healthz" in
              Alcotest.(check int) "healthz" 200 code;
              Alcotest.(check (option bool)) "healthy" (Some true)
                (Json.get_bool "ok" h);
              Alcotest.(check (option bool)) "not draining" (Some false)
                (Json.get_bool "draining" h);
              Alcotest.(check (option bool)) "not degraded" (Some false)
                (Json.get_bool "degraded" h);
              Alcotest.(check (option int)) "no sessions yet" (Some 0)
                (Json.get_int "sessions" h);
              Alcotest.(check (option int)) "no stalls" (Some 0)
                (Json.get_int "stalled" h);
              (* Stall every fsync: with sync = Always the session create
                 crosses the slow threshold inside the journal. *)
              let trace = "e2e-stalled-create.1" in
              Core.Vfs.set_stall vfs 0.12;
              let code, _ =
                req "POST" "/v1/sessions"
                  ~headers:[ ("X-Learnq-Trace", trace) ]
                  ~body:
                    (Json.Obj
                       [
                         ("id", Json.Str "slowone");
                         ("engine", Json.Str "twig");
                         ("seed", Json.of_int 7);
                         ("scale", Json.Num 0.02);
                       ])
              in
              Core.Vfs.set_stall vfs 0.;
              Alcotest.(check int) "stalled create still succeeds" 200 code;
              (* /debug/slow names the request by its client-chosen trace. *)
              let code, slow = req "GET" "/debug/slow" in
              Alcotest.(check int) "debug/slow" 200 code;
              let slow_traces =
                match Json.mem "requests" slow with
                | Some (Json.Arr l) ->
                    List.filter_map (fun e -> Json.get_str "trace" e) l
                | _ -> Alcotest.fail "debug/slow has no requests array"
              in
              Alcotest.(check bool) "slow ring holds the stalled request"
                true
                (List.mem trace slow_traces);
              (* The flight recorder links the HTTP span to the journal
                 fsync and the injected vfs stall across the domain hop. *)
              let names =
                List.map
                  (fun e -> e.Core.Obs.Recorder.ev_name)
                  (Core.Obs.Recorder.trace_events trace)
              in
              List.iter
                (fun expected ->
                  Alcotest.(check bool)
                    (Printf.sprintf "trace links %s" expected)
                    true (List.mem expected names))
                [
                  "http.request"; "serve.job"; "journal.fsync"; "vfs.stall";
                  "http.slow";
                ];
              (* The dump endpoint serves the same events as Chrome-trace
                 JSON, stall included. *)
              let code, dump = req "GET" "/debug/flightrecorder" in
              Alcotest.(check int) "flightrecorder" 200 code;
              let dump_names =
                match Json.mem "traceEvents" dump with
                | Some (Json.Arr l) ->
                    List.filter_map (fun e -> Json.get_str "name" e) l
                | _ -> Alcotest.fail "dump has no traceEvents"
              in
              Alcotest.(check bool) "dump contains the vfs stall" true
                (List.mem "vfs.stall" dump_names);
              (* Error responses carry the trace id in the body. *)
              let code, err =
                req "GET" "/v1/sessions/nosuch"
                  ~headers:[ ("X-Learnq-Trace", "e2e-err.7") ]
              in
              Alcotest.(check int) "unknown session" 404 code;
              Alcotest.(check (option string)) "error body carries the trace"
                (Some "e2e-err.7") (Json.get_str "trace" err);
              (* A malformed inbound trace is replaced, not echoed. *)
              let _, err2 =
                req "GET" "/v1/sessions/nosuch"
                  ~headers:[ ("X-Learnq-Trace", "bad trace!") ]
              in
              (match Json.get_str "trace" err2 with
              | Some t when t <> "bad trace!" && t <> "" -> ()
              | other ->
                  Alcotest.failf "invalid trace echoed: %s"
                    (Option.value ~default:"<none>" other));
              (* /debug/sessions and /debug/tenants see the live session. *)
              let code, ds = req "GET" "/debug/sessions" in
              Alcotest.(check int) "debug/sessions" 200 code;
              (match Json.mem "sessions" ds with
              | Some (Json.Arr [ s ]) ->
                  Alcotest.(check (option string)) "session id"
                    (Some "slowone") (Json.get_str "id" s);
                  Alcotest.(check (option string)) "session engine"
                    (Some "twig") (Json.get_str "engine" s)
              | _ -> Alcotest.fail "expected exactly one debug session");
              let code, dt = req "GET" "/debug/tenants" in
              Alcotest.(check int) "debug/tenants" 200 code;
              (match Json.mem "tenants" dt with
              | Some (Json.Arr l) ->
                  Alcotest.(check bool) "anon tenant listed" true
                    (List.exists
                       (fun e -> Json.get_str "tenant" e = Some "anon")
                       l)
              | _ -> Alcotest.fail "debug/tenants has no tenants array");
              (* /metrics appends the labeled, windowed series. *)
              let code, m = req "GET" "/metrics" in
              Alcotest.(check int) "metrics" 200 code;
              let text = match m with Json.Str s -> s | _ -> "" in
              let has needle =
                let nn = String.length needle and hn = String.length text in
                let rec go i =
                  i + nn <= hn
                  && (String.sub text i nn = needle || go (i + 1))
                in
                go 0
              in
              Alcotest.(check bool) "labeled request counter" true
                (has "learnq_requests_total{");
              Alcotest.(check bool) "windowed latency summary" true
                (has "learnq_request_seconds{");
              Alcotest.(check bool) "tenant label" true
                (has "tenant=\"anon\"");
              Alcotest.(check bool) "watchdog never tripped" true
                (Server.Daemon.stalled daemon = 0))));
  Core.Obs.reset ()

(* The /debug surface can be turned off wholesale. *)
let test_daemon_debug_endpoints_disableable () =
  with_temp_dir (fun dir ->
      let port_box = ref 0 in
      let port_m = Mutex.create () in
      let port_cv = Condition.create () in
      let cfg =
        {
          Server.Daemon.default_config with
          Server.Daemon.state_dir = dir;
          port = 0;
          pool = 1;
          drain_grace = 2.0;
          debug_endpoints = false;
          on_listen =
            (fun p ->
              Mutex.lock port_m;
              port_box := p;
              Condition.broadcast port_cv;
              Mutex.unlock port_m);
        }
      in
      let daemon = Server.Daemon.create cfg in
      let serve_result = ref (Ok ()) in
      let server_thread =
        Thread.create (fun () -> serve_result := Server.Daemon.serve daemon) ()
      in
      Fun.protect
        ~finally:(fun () ->
          Server.Daemon.drain daemon;
          Thread.join server_thread;
          match !serve_result with
          | Ok () -> ()
          | Error e -> Alcotest.failf "serve: %s" e)
        (fun () ->
          Mutex.lock port_m;
          while !port_box = 0 do
            Condition.wait port_cv port_m
          done;
          let port = !port_box in
          Mutex.unlock port_m;
          let c =
            match Server.Client.connect ~host:"127.0.0.1" ~port with
            | Ok c -> c
            | Error e -> Alcotest.failf "connect: %s" e
          in
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              List.iter
                (fun path ->
                  match Server.Client.request c ~meth:"GET" ~path () with
                  | Ok (code, _) ->
                      Alcotest.(check int) (path ^ " hidden") 404 code
                  | Error e -> Alcotest.failf "GET %s: %s" path e)
                [
                  "/debug/sessions"; "/debug/tenants"; "/debug/slow";
                  "/debug/flightrecorder";
                ])))

(* ------------------------------------------------------------------ *)
(* Adversarial clients against the multiplexer                         *)
(* ------------------------------------------------------------------ *)

let with_inprocess_daemon cfg_mod f =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  with_temp_dir (fun dir ->
      let port_box = ref 0 in
      let port_m = Mutex.create () in
      let port_cv = Condition.create () in
      let cfg =
        cfg_mod
          {
            Server.Daemon.default_config with
            Server.Daemon.state_dir = dir;
            port = 0;
            pool = 1;
            drain_grace = 2.0;
            on_listen =
              (fun p ->
                Mutex.lock port_m;
                port_box := p;
                Condition.broadcast port_cv;
                Mutex.unlock port_m);
          }
      in
      let daemon = Server.Daemon.create cfg in
      let serve_result = ref (Ok ()) in
      let server_thread =
        Thread.create (fun () -> serve_result := Server.Daemon.serve daemon) ()
      in
      Fun.protect
        ~finally:(fun () ->
          Server.Daemon.drain daemon;
          Thread.join server_thread;
          match !serve_result with
          | Ok () -> ()
          | Error e -> Alcotest.failf "serve: %s" e)
        (fun () ->
          Mutex.lock port_m;
          while !port_box = 0 do
            Condition.wait port_cv port_m
          done;
          let port = !port_box in
          Mutex.unlock port_m;
          f daemon port))

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let raw_recv_all ?(deadline = 10.0) fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let t0 = Unix.gettimeofday () in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let rec go () =
    if Unix.gettimeofday () -. t0 > deadline then ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
  in
  go ();
  Buffer.contents buf

(* A slow-loris trickler — bytes arriving slower than the request
   deadline — must get its 408 and lose the connection, while concurrent
   well-behaved requests sail through: the trickler parks on the poll
   loop and never occupies a worker thread. *)
let test_daemon_slow_loris_gets_408 () =
  with_inprocess_daemon
    (fun cfg -> { cfg with Server.Daemon.request_deadline = 1.0 })
    (fun _daemon port ->
      let loris = raw_connect port in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close loris with Unix.Unix_error _ -> ())
        (fun () ->
          (* Start a request and then stall: enough bytes to be
             unmistakably mid-request, never the terminator. *)
          ignore
            (Unix.write_substring loris "GET /healthz HT" 0 15);
          (* While the trickler stalls, normal requests are unaffected. *)
          let c =
            match Server.Client.connect ~host:"127.0.0.1" ~port with
            | Ok c -> c
            | Error e -> Alcotest.failf "connect: %s" e
          in
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              let t0 = Unix.gettimeofday () in
              for _ = 1 to 5 do
                match
                  Server.Client.request c ~meth:"GET" ~path:"/healthz" ()
                with
                | Ok (200, _) -> ()
                | Ok (code, _) -> Alcotest.failf "healthz: %d" code
                | Error e -> Alcotest.failf "healthz: %s" e
              done;
              Alcotest.(check bool)
                "trickler does not stall well-behaved clients" true
                (Unix.gettimeofday () -. t0 < 1.0);
              (* The trickler's deadline fires: 408, then EOF. *)
              let got = raw_recv_all ~deadline:5.0 loris in
              Alcotest.(check bool) "loris gets 408" true
                (String.length got > 12
                && String.sub got 0 12 = "HTTP/1.1 408");
              match
                Server.Client.request c ~meth:"GET" ~path:"/stats" ()
              with
              | Ok (200, stats) ->
                  Alcotest.(check bool) "timeout counted in /stats" true
                    (match Json.get_int "http_timeouts" stats with
                    | Some n -> n >= 1
                    | None -> false)
              | Ok (code, _) -> Alcotest.failf "stats: %d" code
              | Error e -> Alcotest.failf "stats: %s" e)))

let proc_threads () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go () =
            match input_line ic with
            | line ->
                if String.length line > 8 && String.sub line 0 8 = "Threads:"
                then
                  int_of_string_opt
                    (String.trim
                       (String.sub line 8 (String.length line - 8)))
                else go ()
            | exception End_of_file -> None
          in
          go ())

(* 200 idle keep-alive connections must cost zero threads: the process
   thread count stays flat while they park, /stats reports them parked,
   and the advertised I/O thread budget stays io_threads + 1. *)
let test_daemon_idle_herd_thread_bound () =
  with_inprocess_daemon
    (fun cfg ->
      { cfg with Server.Daemon.io_threads = 2; max_conns = 400 })
    (fun _daemon port ->
      let herd = ref [] in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            !herd)
        (fun () ->
          let before = proc_threads () in
          for _ = 1 to 200 do
            herd := raw_connect port :: !herd
          done;
          let c =
            match Server.Client.connect ~host:"127.0.0.1" ~port with
            | Ok c -> c
            | Error e -> Alcotest.failf "connect: %s" e
          in
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              (* Wait until the mux has accepted the whole herd. *)
              let deadline = Unix.gettimeofday () +. 10.0 in
              let rec poll_stats () =
                match
                  Server.Client.request c ~meth:"GET" ~path:"/stats" ()
                with
                | Ok (200, stats)
                  when (match Json.get_int "parked" stats with
                       | Some n -> n >= 200
                       | None -> false) ->
                    stats
                | Ok (200, _) when Unix.gettimeofday () < deadline ->
                    Thread.delay 0.1;
                    poll_stats ()
                | Ok (code, _) ->
                    Alcotest.failf "stats while herding: %d" code
                | Error e -> Alcotest.failf "stats while herding: %s" e
              in
              let stats = poll_stats () in
              Alcotest.(check bool) "herd is parked" true
                (match Json.get_int "parked" stats with
                | Some n -> n >= 200
                | None -> false);
              Alcotest.(check (option int))
                "I/O thread budget is io_threads + 1" (Some 3)
                (Json.get_int "threads" stats);
              (match (before, proc_threads ()) with
              | Some b, Some a ->
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "thread count flat under the herd (%d -> %d)" b a)
                    true
                    (a - b <= 2)
              | _ -> () (* no procfs; the /stats assertions stand *));
              (* The herd does not crowd out request service. *)
              match
                Server.Client.request c ~meth:"GET" ~path:"/healthz" ()
              with
              | Ok (200, _) -> ()
              | Ok (code, _) -> Alcotest.failf "healthz under herd: %d" code
              | Error e -> Alcotest.failf "healthz under herd: %s" e)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "json",
        [
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
        ] );
      ( "http",
        [
          Alcotest.test_case "parse_head" `Quick test_http_parse_head;
          Alcotest.test_case "parse_head rejects" `Quick
            test_http_parse_head_rejects;
          Alcotest.test_case "timeout mid body resumes" `Quick
            test_http_timeout_mid_body_resumes;
        ] );
      ( "engines",
        [
          Alcotest.test_case "spec limits enforced" `Quick
            test_engines_spec_limits;
        ] );
      ( "stepper",
        [
          Alcotest.test_case "duplicate qid is idempotent" `Quick
            test_stepper_duplicate_qid_idempotent;
          Alcotest.test_case "future qid is refused" `Quick
            test_stepper_future_qid_rejected;
          Alcotest.test_case "matches the batch loop" `Quick
            test_stepper_matches_interact_loop;
        ] );
      ( "registry",
        [
          Alcotest.test_case "idempotent create, spec conflict" `Quick
            test_registry_idempotent_create_and_conflict;
          Alcotest.test_case "quota refusal" `Quick test_registry_quota_refusal;
          Alcotest.test_case "crash/recover equals uninterrupted" `Quick
            test_registry_crash_recover_equality;
          Alcotest.test_case "drain releases locks" `Quick
            test_registry_drain_releases_locks;
          Alcotest.test_case "names injective across restart" `Quick
            test_registry_names_injective_across_restart;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "evict/resume equals uninterrupted" `Quick
            test_registry_evict_resume_roundtrip;
          Alcotest.test_case "evicted burst resumes single-flight" `Quick
            test_registry_evicted_burst_single_flight;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "corrupt journal is quarantined" `Quick
            test_registry_quarantines_corrupt_journal;
          Alcotest.test_case "ENOSPC is typed Storage{full}" `Quick
            test_registry_enospc_is_typed_storage_full;
        ] );
      ( "admission",
        [
          Alcotest.test_case "sheds when full" `Quick test_admission_sheds_when_full;
          Alcotest.test_case "breaker trips a tenant" `Quick
            test_admission_breaker_trips;
          Alcotest.test_case "batches are key-disjoint" `Quick
            test_admission_batches_key_disjoint;
          Alcotest.test_case "drain refuses submits" `Quick
            test_admission_drain_refuses_submits;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end to end" `Quick test_daemon_end_to_end;
          Alcotest.test_case "slow request traceable end to end" `Quick
            test_daemon_slow_request_traceable;
          Alcotest.test_case "debug endpoints disableable" `Quick
            test_daemon_debug_endpoints_disableable;
          Alcotest.test_case "degraded mode self-heals" `Quick
            test_daemon_degraded_mode_self_heals;
          Alcotest.test_case "slow-loris gets 408, others unaffected" `Quick
            test_daemon_slow_loris_gets_408;
          Alcotest.test_case "200 idle conns, flat thread count" `Quick
            test_daemon_idle_herd_thread_bound;
        ] );
    ]
