type item = Xmltree.Annotated.t

(* Ablation switch (bench pr4, property tests): [true] restores the
   PR 3-era batch path that refolds the whole positive set per answer and
   per probe.  Read once at [Session.init], so a session never mixes
   modes. *)
let batch_lgg = ref false
let set_batch_lgg b = batch_lgg := b
let batch_lgg_enabled () = !batch_lgg

(* Fault-injection switch for the fuzzing harness: [false] skips the probe
   memo's recheck of negatives recorded after an entry was cached, i.e. the
   exact staleness bug the memo's survived-count bookkeeping prevents. *)
let probe_recheck = ref true
let set_probe_recheck b = probe_recheck := b

module Session = struct
  type query = Twig.Query.t
  type nonrec item = item

  type state = {
    pos : item list;
    neg : item list;
    neg_count : int;  (** [List.length neg], for the probe memo *)
    acc : Positive.Incremental.acc;  (** running raw LGG of [pos] *)
    lgg : Twig.Query.t option;  (** minimized anchored candidate *)
    batch : bool;  (** ablation: refold [pos] instead of extending [acc] *)
  }

  let init _items =
    {
      pos = [];
      neg = [];
      neg_count = 0;
      acc = Positive.Incremental.empty;
      lgg = None;
      batch = !batch_lgg;
    }

  (* [st.pos] is newest-first; the LGG fold must run in arrival order in
     BOTH modes — [Lgg.lgg] is a heuristic alignment, not associative, so
     folding newest-first can produce a genuinely different (even
     differently-selecting) candidate than the incremental accumulator,
     and the two modes would then ask different question sequences. *)
  let record st item label =
    if label then
      let pos = item :: st.pos in
      if st.batch then
        { st with pos; lgg = Positive.learn_positive (List.rev pos) }
      else
        Core.Telemetry.with_span "twig.lgg.inc" @@ fun () ->
        let acc = Positive.Incremental.add st.acc item in
        { st with pos; acc; lgg = Positive.Incremental.candidate acc }
    else { st with neg = item :: st.neg; neg_count = st.neg_count + 1 }

  let candidate st = st.lgg

  (* The probe memo.  [determined] revisits every open item once per round,
     but its inputs move slowly: the accumulator changes only on a positive
     answer (a handful per session) and the negative set only grows.  So
     each domain remembers, per item, the item's would-be generalization
     and how many negatives it has survived — a probe then merges nothing
     and rechecks only the negatives recorded since.  [Closed] is sound to
     cache because inconsistency is monotone at a fixed accumulator: more
     negatives never reopen an item.  The memo is invalidated wholesale
     when the accumulator's physical identity moves, and is domain-local
     ({!Core.Pool} workers warm their own), so verdicts — hence question
     sequences — are unchanged at every pool size. *)
  type probe_entry =
    | Closed  (** determined negative at the current accumulator *)
    | Open of Twig.Query.t * int  (** raw extension, negatives survived *)

  type probe_memo = {
    mutable pm_acc : Twig.Query.t option;  (* phys-eq key *)
    pm_tbl : (Xmltree.Tree.path, probe_entry) Hashtbl.t;
  }

  let probe_dls : probe_memo Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        { pm_acc = None; pm_tbl = Hashtbl.create 512 })

  let selects_any_prefix raw negs ~count =
    let rec go i = function
      | n :: rest when i < count ->
          Twig.Eval.selects_example raw n || go (i + 1) rest
      | _ -> false
    in
    go 0 negs

  let determined_incremental st item =
    match Positive.Incremental.raw st.acc with
    | None -> None  (* no positives yet: everything is informative *)
    | Some acc_raw -> (
        let memo = Domain.DLS.get probe_dls in
        (if match memo.pm_acc with Some a -> a != acc_raw | None -> true
         then begin
           memo.pm_acc <- Some acc_raw;
           Hashtbl.reset memo.pm_tbl
         end);
        let target = (item : item).target in
        let cached = Hashtbl.find_opt memo.pm_tbl target in
        match cached with
        | Some Closed -> Some false
        | _ -> (
            let raw_opt, survived =
              match cached with
              | Some (Open (raw, k)) -> (Some raw, k)
              | _ -> (Positive.Incremental.extend_consistent st.acc item, 0)
            in
            match raw_opt with
            | None ->
                (* Generalizing onto this item leaves the anchored fragment:
                   final for this accumulator. *)
                Hashtbl.replace memo.pm_tbl target Closed;
                Some false
            | Some raw ->
                (* [st.neg] is newest-first: the first [neg_count - survived]
                   entries are the ones this item has not been checked
                   against yet. *)
                let recheck_count =
                  if !probe_recheck then st.neg_count - survived
                  else if survived = 0 then st.neg_count
                  else 0
                in
                if selects_any_prefix raw st.neg ~count:recheck_count
                then begin
                  Hashtbl.replace memo.pm_tbl target Closed;
                  Some false
                end
                else begin
                  Hashtbl.replace memo.pm_tbl target (Open (raw, st.neg_count));
                  None
                end))

  let determined st item =
    match st.lgg with
    | None -> None
    | Some q ->
        if Twig.Eval.selects_example q item then Some true
        else if st.batch then begin
          (* Would taking it positive contradict a recorded negative or leave
             the anchored fragment?  Arrival-order fold, like [record]. *)
          match Positive.learn_positive (List.rev st.pos @ [ item ]) with
          | None -> Some false
          | Some q' ->
              if List.exists (fun n -> Twig.Eval.selects_example q' n) st.neg
              then Some false
              else None
        end
        else determined_incremental st item

  let pp_item = Xmltree.Annotated.pp
  let pp_query = Twig.Query.pp
end

module Loop = Core.Interact.Make (Session)

let m_items = Core.Telemetry.Metrics.counter "learnq.twiglearn.items"

(* Text nodes carry values, not structure: twig queries select element
   nodes, so only those are labelable. *)
let items_of_doc doc =
  Core.Telemetry.with_span "twiglearn.enumerate.items" @@ fun () ->
  let items =
    Xmltree.Tree.all_paths doc
    |> List.filter (fun p ->
           match Xmltree.Tree.node_at doc p with
           | Some n -> not (Xmltree.Tree.is_text n)
           | None -> false)
    |> List.map (fun p -> Xmltree.Annotated.make doc p)
  in
  if Core.Telemetry.enabled () then
    Core.Telemetry.Metrics.incr m_items ~by:(List.length items);
  items

let label_diverse_strategy _rng (st : Session.state) items =
  (* Diversify over (label, parent label) contexts: the same label under a
     new parent is a genuinely new situation (category/name vs person/name),
     so a positive is found within about one question per context. *)
  let context (a : item) =
    let label = (Xmltree.Annotated.target_node a).label in
    let parent =
      match Xmltree.Tree.parent_path a.target with
      | None -> "^"
      | Some p -> (
          match Xmltree.Tree.node_at a.doc p with
          | Some n -> n.label
          | None -> "^")
    in
    (label, parent)
  in
  let asked = List.map context (st.pos @ st.neg) in
  let count pred = List.length (List.filter pred asked) in
  let score (it : item) =
    let label, parent = context it in
    ( count (fun (l, p) -> String.equal l label && String.equal p parent),
      count (fun (l, _) -> String.equal l label),
      List.length it.target )
  in
  match items with
  | [] -> invalid_arg "label_diverse_strategy: no informative item"
  | first :: rest ->
      List.fold_left
        (fun best it -> if score it < score best then it else best)
        first rest

(* Journal codec: within a session the document is fixed, so an item is just
   its node path, printed the way the CLI's --select flag reads it. *)
let encode_item (it : item) =
  "/" ^ String.concat "/" (List.map string_of_int it.target)

let decode_item ~doc s =
  let parts = String.split_on_char '/' s |> List.filter (fun t -> t <> "") in
  let opts = List.map int_of_string_opt parts in
  if List.exists Option.is_none opts then None
  else
    let path = List.map Option.get opts in
    if Xmltree.Tree.node_at doc path = None then None
    else Some (Xmltree.Annotated.make doc path)

(* Checkpoint codec: the accumulator is a deterministic fold of the labeled
   nodes, so the snapshot is the labels themselves — positives and negatives
   as node paths, each side in arrival order — plus the session's ablation
   mode.  Decoding refolds [Session.record] (positives first, then
   negatives; the two sides never read each other during a fold, so
   de-interleaving is sound), which rebuilds [acc]/[lgg] exactly as the live
   session did instead of trying to serialize an LGG accumulator. *)
let encode_state (st : Session.state) =
  let line label it = (if label then "+" else "-") ^ encode_item it in
  String.concat "\n"
    ((if st.Session.batch then "twig1 batch" else "twig1")
    :: List.rev_map (line true) st.Session.pos
    @ List.rev_map (line false) st.Session.neg)

let decode_state ~doc s =
  match String.split_on_char '\n' s with
  | header :: lines when header = "twig1" || header = "twig1 batch" -> (
      let batch = header = "twig1 batch" in
      let base =
        {
          Session.pos = [];
          neg = [];
          neg_count = 0;
          acc = Positive.Incremental.empty;
          lgg = None;
          batch;
        }
      in
      let parse line =
        if String.length line < 2 then Error (Printf.sprintf "bad line %S" line)
        else
          let label =
            match line.[0] with
            | '+' -> Ok true
            | '-' -> Ok false
            | _ -> Error (Printf.sprintf "bad label in %S" line)
          in
          match label with
          | Error _ as e -> e
          | Ok label -> (
              let key = String.sub line 1 (String.length line - 1) in
              match decode_item ~doc key with
              | Some it -> Ok (it, label)
              | None -> Error (Printf.sprintf "node %S not in document" key))
      in
      let rec refold st = function
        | [] -> Ok st
        | line :: rest -> (
            match parse line with
            | Error _ as e -> e
            | Ok (it, label) -> refold (Session.record st it label) rest)
      in
      (* Positives precede negatives in the encoding, so a plain
         left-to-right refold replays each side in arrival order. *)
      refold base lines)
  | _ -> Error "not a twig state snapshot"

let run_with_goal ?rng ?strategy ?budget ?profile ?retry ~doc ~goal () =
  let items = items_of_doc doc in
  let oracle (item : item) = Twig.Eval.selects_example goal item in
  match profile with
  | None -> Loop.run ?rng ?strategy ?budget ~oracle ~items ()
  | Some profile ->
      let rng = match rng with Some r -> r | None -> Core.Prng.create 0 in
      Loop.run_flaky ~rng ?strategy ?budget ?retry
        ~oracle:(Core.Flaky.wrap ~profile ~rng oracle)
        ~items ()
