lib/core/concept.mli: Example Format
