type item = Xmltree.Annotated.t

module Session = struct
  type query = Twig.Query.t
  type nonrec item = item

  type state = {
    pos : item list;
    neg : item list;
    lgg : Twig.Query.t option;  (** cached LGG of [pos] *)
  }

  let init _items = { pos = []; neg = []; lgg = None }

  let record st item label =
    if label then
      let pos = item :: st.pos in
      { st with pos; lgg = Positive.learn_positive pos }
    else { st with neg = item :: st.neg }

  let candidate st = st.lgg

  let determined st item =
    match st.lgg with
    | None -> None
    | Some q ->
        if Twig.Eval.selects_example q item then Some true
        else begin
          (* Would taking it positive contradict a recorded negative or leave
             the anchored fragment? *)
          match Positive.learn_positive (item :: st.pos) with
          | None -> Some false
          | Some q' ->
              if List.exists (fun n -> Twig.Eval.selects_example q' n) st.neg
              then Some false
              else None
        end

  let pp_item = Xmltree.Annotated.pp
  let pp_query = Twig.Query.pp
end

module Loop = Core.Interact.Make (Session)

let m_items = Core.Telemetry.Metrics.counter "learnq.twiglearn.items"

(* Text nodes carry values, not structure: twig queries select element
   nodes, so only those are labelable. *)
let items_of_doc doc =
  Core.Telemetry.with_span "twiglearn.enumerate.items" @@ fun () ->
  let items =
    Xmltree.Tree.all_paths doc
    |> List.filter (fun p ->
           match Xmltree.Tree.node_at doc p with
           | Some n -> not (Xmltree.Tree.is_text n)
           | None -> false)
    |> List.map (fun p -> Xmltree.Annotated.make doc p)
  in
  if Core.Telemetry.enabled () then
    Core.Telemetry.Metrics.incr m_items ~by:(List.length items);
  items

let label_diverse_strategy _rng (st : Session.state) items =
  (* Diversify over (label, parent label) contexts: the same label under a
     new parent is a genuinely new situation (category/name vs person/name),
     so a positive is found within about one question per context. *)
  let context (a : item) =
    let label = (Xmltree.Annotated.target_node a).label in
    let parent =
      match Xmltree.Tree.parent_path a.target with
      | None -> "^"
      | Some p -> (
          match Xmltree.Tree.node_at a.doc p with
          | Some n -> n.label
          | None -> "^")
    in
    (label, parent)
  in
  let asked = List.map context (st.pos @ st.neg) in
  let count pred = List.length (List.filter pred asked) in
  let score (it : item) =
    let label, parent = context it in
    ( count (fun (l, p) -> String.equal l label && String.equal p parent),
      count (fun (l, _) -> String.equal l label),
      List.length it.target )
  in
  match items with
  | [] -> invalid_arg "label_diverse_strategy: no informative item"
  | first :: rest ->
      List.fold_left
        (fun best it -> if score it < score best then it else best)
        first rest

(* Journal codec: within a session the document is fixed, so an item is just
   its node path, printed the way the CLI's --select flag reads it. *)
let encode_item (it : item) =
  "/" ^ String.concat "/" (List.map string_of_int it.target)

let decode_item ~doc s =
  let parts = String.split_on_char '/' s |> List.filter (fun t -> t <> "") in
  let opts = List.map int_of_string_opt parts in
  if List.exists Option.is_none opts then None
  else
    let path = List.map Option.get opts in
    if Xmltree.Tree.node_at doc path = None then None
    else Some (Xmltree.Annotated.make doc path)

let run_with_goal ?rng ?strategy ?budget ?profile ?retry ~doc ~goal () =
  let items = items_of_doc doc in
  let oracle (item : item) = Twig.Eval.selects_example goal item in
  match profile with
  | None -> Loop.run ?rng ?strategy ?budget ~oracle ~items ()
  | Some profile ->
      let rng = match rng with Some r -> r | None -> Core.Prng.create 0 in
      Loop.run_flaky ~rng ?strategy ?budget ?retry
        ~oracle:(Core.Flaky.wrap ~profile ~rng oracle)
        ~items ()
