type triple = { subj : string; pred : string; obj : string }

module TSet = Set.Make (struct
  type t = triple

  let compare = compare
end)

type t = TSet.t

let empty = TSet.empty
let add = TSet.add
let of_list l = TSet.of_list l
let to_list = TSet.elements
let cardinal = TSet.cardinal
let mem = TSet.mem

let subjects store =
  TSet.fold (fun t acc -> t.subj :: acc) store []
  |> List.sort_uniq String.compare

let with_pred store p =
  TSet.elements (TSet.filter (fun t -> String.equal t.pred p) store)

let equal = TSet.equal

let of_graph g =
  List.fold_left
    (fun acc (src, label, dst) ->
      add
        {
          subj = Graphdb.Graph.name g src;
          pred = label;
          obj = Graphdb.Graph.name g dst;
        }
        acc)
    empty (Graphdb.Graph.edges g)

let to_graph store =
  let terms =
    TSet.fold (fun t acc -> t.subj :: t.obj :: acc) store []
    |> List.sort_uniq String.compare
  in
  let names = Array.of_list terms in
  let index name =
    let rec find i = if names.(i) = name then i else find (i + 1) in
    find 0
  in
  let edges =
    TSet.fold
      (fun t acc -> (index t.subj, t.pred, index t.obj) :: acc)
      store []
  in
  Graphdb.Graph.make ~names ~nodes:(Array.length names) edges

let path_id path =
  "/" ^ String.concat "/" (List.map string_of_int path)

let of_xml doc =
  Xmltree.Tree.fold
    (fun path (n : Xmltree.Tree.t) acc ->
      let id = path_id path in
      List.fold_left
        (fun acc (i, (c : Xmltree.Tree.t)) ->
          match Xmltree.Tree.text_value c with
          | Some txt -> add { subj = id; pred = "value"; obj = txt } acc
          | None ->
              add
                { subj = id; pred = c.label; obj = path_id (path @ [ i ]) }
                acc)
        acc
        (List.mapi (fun i c -> (i, c)) n.children))
    doc empty

let pp ppf store =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun t -> Format.fprintf ppf "(%s, %s, %s)@," t.subj t.pred t.obj)
    (to_list store);
  Format.fprintf ppf "@]"
