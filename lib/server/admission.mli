(** Admission control: a bounded queue with per-tenant fairness,
    load-shedding, and misbehaviour breakers.

    All session work funnels through one queue so the daemon can bound its
    backlog.  When the queue is full, new work is {e shed} with a 503 and a
    [Retry-After] — refusing cheaply beats queueing unboundedly.  Each
    tenant also has a {!Core.Retry} circuit breaker fed by its request
    outcomes (malformed requests and protocol errors are failures); a
    tenant whose breaker is open is {e tripped} with a 429 until the
    cooldown admits a half-open probe.

    The dispatcher drains the queue in batches ({!take_batch}) built
    round-robin across tenants — one job per tenant per turn — so a tenant
    flooding the queue cannot starve the others.  A batch never contains
    two jobs for the same session key; the second stays queued (preserving
    its order) for a later batch, which is what lets the dispatcher run a
    whole batch in parallel on a {!Core.Pool} without two jobs racing on
    one session. *)

type job = {
  tenant : string;
  key : string;  (** session key; batches are key-disjoint *)
  trace : string option;
      (** the submitting request's {!Core.Obs.Trace} id, captured at
          enqueue; the dispatcher re-installs it around [run] so journal
          and vfs events on the pool domain carry the request's trace *)
  run : unit -> Http.response;
  mutable result : Http.response option;
  m : Mutex.t;
  cv : Condition.t;
}

type verdict =
  | Enqueued of job
  | Shed of float  (** queue full; retry after this many seconds *)
  | Tripped of float  (** tenant breaker open; retry after this many seconds *)
  | Draining of float
      (** {!drain} has been called; the queue admits nothing more *)

(** The [float] in every refusal is a {e load-derived, jittered}
    Retry-After suggestion, not a constant: it scales from [0.5×] to
    [1.5×] the configured [retry_after] with queue depth, plus uniform
    jitter in [\[0, 0.5×)] so refused clients do not re-arrive in
    lockstep.  At the default [retry_after = 1.0], a refusal from a full
    queue suggests a value in [\[1.5, 2.0)]. *)

type t

val create : ?retry_after:float -> ?policy:Core.Retry.policy -> max_queue:int -> unit -> t
(** [policy] parameterizes the per-tenant breakers (default: threshold 8,
    cooldown = [retry_after], which defaults to 1s). *)

val drain : t -> unit
(** Stop admitting: every subsequent {!submit} returns [Draining].  The
    flag is checked under the queue lock, so once [drain] returns, no job
    can race into the queue behind the dispatcher's final emptiness check
    and strand its waiting connection thread.  Also wakes blocked
    {!take_batch} callers. *)

val submit : t -> tenant:string -> key:string -> (unit -> Http.response) -> verdict

val wait : job -> Http.response
(** Blocks the connection thread until the dispatcher has filled [result]. *)

val finish : job -> Http.response -> unit
(** Dispatcher side: publish the result and wake the waiter. *)

val take_batch : t -> max:int -> block:bool -> job list
(** Up to [max] key-disjoint jobs, round-robin across tenants.  With
    [block], waits until a job arrives or {!wake}; may return [[]] on a
    wake-up (the dispatcher's cue to re-check for drain). *)

val wake : t -> unit
(** Wake blocked {!take_batch} callers (drain path). *)

val fault : t -> tenant:string -> unit
(** Record a client fault (4xx) against the tenant's breaker. *)

val ok : t -> tenant:string -> unit
(** Record a well-formed request; closes a half-open breaker. *)

val pending : t -> int

val retry_suggestion : t -> float
(** The Retry-After the queue would attach to a refusal right now (depth
    term + fresh jitter) — for refusals minted outside {!submit}, e.g. the
    daemon's inline draining answer. *)

type stats = { queued : int; shed : int; tripped : int; dispatched : int }

val stats : t -> stats

type tenant_debug = {
  td_tenant : string;
  td_queued : int;  (** jobs currently backlogged for this tenant *)
  td_breaker : string;  (** ["closed" | "open" | "half-open"] *)
}

val debug_tenants : t -> tenant_debug list
(** Every tenant with a queue or a breaker, sorted by name — the
    [/debug/tenants] view. *)
