type polarity = Positive | Negative
type 'a t = { value : 'a; polarity : polarity }

let positive value = { value; polarity = Positive }
let negative value = { value; polarity = Negative }
let is_positive e = e.polarity = Positive
let is_negative e = e.polarity = Negative
let of_labeled (v, b) = if b then positive v else negative v

let partition examples =
  let pos =
    List.filter_map
      (fun e -> if is_positive e then Some e.value else None)
      examples
  and neg =
    List.filter_map
      (fun e -> if is_negative e then Some e.value else None)
      examples
  in
  (pos, neg)

let positives examples = fst (partition examples)
let negatives examples = snd (partition examples)

let consistent_with selects q examples =
  List.for_all
    (fun e ->
      match e.polarity with
      | Positive -> selects q e.value
      | Negative -> not (selects q e.value))
    examples

let map f e = { e with value = f e.value }

let pp pp_value ppf e =
  let sign = match e.polarity with Positive -> '+' | Negative -> '-' in
  Format.fprintf ppf "%c%a" sign pp_value e.value
