lib/core/pac.ml: Example List Prng Stats
