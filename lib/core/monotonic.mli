(** A monotonic clock for interval measurement.

    [Unix.gettimeofday] is wall-clock time: NTP adjustments and manual clock
    changes make it jump, so a deadline computed against it can fire early or
    never.  This module reads [CLOCK_MONOTONIC] (via a C stub), whose epoch is
    arbitrary but whose flow is steady — only differences between two readings
    are meaningful.  [Budget] deadlines and [Retry] breaker cooldowns are
    measured with it. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary (boot-time) epoch. *)

val now : unit -> float
(** Seconds since the same arbitrary epoch.  Use only for differences. *)
