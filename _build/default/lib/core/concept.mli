(** Concept classes and learners, in the sense of computational learning
    theory (Gold's identification in the limit, Valiant's PAC model), as used
    throughout the paper: a concept class is a query language, a concept is a
    query, and instances are database elements (annotated XML nodes, tuples,
    graph paths).

    These module types are the glue shared by all per-model learners
    ({!Twiglearn}, {!Joinlearn}, {!Pathlearn}, and schema inference in
    {!Uschema}): the interactive kernel {!Interact} and the
    identification-in-the-limit harness {!Limit} are functorized over them. *)

module type CONCEPT = sig
  type query
  (** A concept: a query of the class. *)

  type instance
  (** The objects queries select or reject. *)

  val selects : query -> instance -> bool
  (** Membership of an instance in the denotation of a query. *)

  val pp_query : Format.formatter -> query -> unit
  val pp_instance : Format.formatter -> instance -> unit
end

module type LEARNER = sig
  include CONCEPT

  val learn : instance Example.t list -> query option
  (** [learn examples] returns a query consistent with [examples] (selecting
      every positive and no negative instance), or [None] when no query of
      the class is consistent.  Learners for classes with intractable
      consistency may be incomplete and return [None] on hard inputs; each
      learner documents its guarantee. *)
end

module type POSITIVE_LEARNER = sig
  include CONCEPT

  val learn_positive : instance list -> query option
  (** Learn from positive examples only — the setting in which anchored twig
      queries and disjunctive multiplicity schemas are learnable (paper,
      Section 2).  Returns the minimal (most specific) consistent
      generalization when the class admits one. *)
end

(** Checking consistency of a labeled sample against a concrete query. *)
module Consistency (C : CONCEPT) : sig
  val check : C.query -> C.instance Example.t list -> bool

  val errors : C.query -> C.instance Example.t list -> C.instance Example.t list
  (** The misclassified examples. *)
end
