(* The geographic use case of Section 3: a road network whose vertices are
   cities and whose edges carry road types; a user interested in, say,
   highway-only connections labels a few proposed paths, and the learner
   infers the path query — reusing the query workload of previous users to
   ask better questions first.

   Run with:  dune exec examples/geo_paths.exe *)

let () =
  let rng = Core.Prng.create 2013 in
  let graph = Graphdb.Generators.geo ~rng ~cities:14 () in
  Printf.printf "Road network: %d cities, %d road segments (labels: %s)\n\n"
    (Graphdb.Graph.node_count graph)
    (Graphdb.Graph.edge_count graph)
    (String.concat ", " (Graphdb.Graph.labels graph));

  (* The hidden interest of this user: highway-only itineraries. *)
  let goal = Automata.Dfa.of_regex (Automata.Regex.parse "highway highway*") in

  (* Previous users were also interested in highways — the learner asks
     about highway paths first (the paper's query-workload reuse). *)
  let prior = [ goal ] in

  let outcome =
    Pathlearn.Interactive.run_with_goal ~rng
      ~strategy:(Pathlearn.Interactive.workload_strategy ~prior)
      ~max_len:3 ~graph ~goal ()
  in
  Printf.printf "Interactive session:\n";
  List.iteri
    (fun i ((item : Pathlearn.Interactive.item), label) ->
      if i < 8 then
        Printf.printf "  Q%-2d %s -> %s via [%s]?  user says %s\n" (i + 1)
          (Graphdb.Graph.name graph item.src)
          (Graphdb.Graph.name graph item.dst)
          (String.concat " " item.word)
          (if label then "YES" else "no"))
    outcome.asked;
  if List.length outcome.asked > 8 then
    Printf.printf "  ... (%d more questions)\n"
      (List.length outcome.asked - 8);
  Printf.printf "\n%d questions asked, %d candidate paths pruned as uninformative\n"
    outcome.questions outcome.pruned;
  (match outcome.query with
  | Some h ->
      Format.printf "learned query: %a@." Pathlearn.Words.pp h;
      let answers = Graphdb.Rpq.eval h.dfa graph in
      Printf.printf "\nThe query selects %d city pairs; the first few:\n"
        (List.length answers);
      List.iteri
        (fun i (u, v) ->
          if i < 5 then
            match Graphdb.Rpq.witness h.dfa graph ~src:u ~dst:v with
            | Some word ->
                Printf.printf "  %s -> %s via [%s]\n"
                  (Graphdb.Graph.name graph u)
                  (Graphdb.Graph.name graph v)
                  (String.concat " " word)
            | None -> ())
        answers
  | None -> print_endline "no consistent query");
  print_newline ()
