open Xmltree

let row_to_xml attrs tuple =
  Tree.node "row"
    (List.mapi
       (fun i attr ->
         Tree.node attr [ Tree.text (Relational.Value.to_string tuple.(i)) ])
       (Array.to_list attrs))

let relation_to_xml r =
  let attrs = Relational.Relation.attrs r in
  Tree.node
    (Relational.Relation.name r)
    (List.map (row_to_xml attrs) (Relational.Relation.tuples r))

let relation_to_xml_grouped ~group_by r =
  let attrs = Relational.Relation.attrs r in
  let key_idx =
    match Relational.Relation.attr_index r group_by with
    | Some i -> i
    | None ->
        invalid_arg ("Publish.relation_to_xml_grouped: unknown " ^ group_by)
  in
  let keys =
    Relational.Relation.tuples r
    |> List.map (fun t -> t.(key_idx))
    |> List.sort_uniq Relational.Value.compare
  in
  Tree.node
    (Relational.Relation.name r)
    (List.map
       (fun key ->
         let rows =
           List.filter
             (fun t -> Relational.Value.equal t.(key_idx) key)
             (Relational.Relation.tuples r)
         in
         Tree.node "group"
           (Tree.node "@key" [ Tree.text (Relational.Value.to_string key) ]
           :: List.map (row_to_xml attrs) rows))
       keys)

let xml_to_relation ~name ~row_query ~columns doc =
  let rows = Twig.Eval.select row_query doc in
  let tuples =
    List.map
      (fun path ->
        let row_node =
          match Tree.node_at doc path with
          | Some n -> n
          | None -> assert false
        in
        Array.of_list
          (List.map
             (fun (_, child_label) ->
               let cell =
                 List.find_opt
                   (fun (c : Tree.t) -> String.equal c.label child_label)
                   row_node.children
               in
               let text =
                 match cell with
                 | None -> ""
                 | Some c -> (
                     match Tree.value_of c with Some v -> v | None -> "")
               in
               Relational.Value.of_string text)
             columns))
      rows
  in
  Relational.Relation.make ~name ~attrs:(List.map fst columns) tuples

let graph_paths_to_xml g dfa =
  let answers = Graphdb.Rpq.eval dfa g in
  Tree.node "paths"
    (List.filter_map
       (fun (u, v) ->
         match Graphdb.Rpq.witness dfa g ~src:u ~dst:v with
         | None -> None
         | Some word ->
             Some
               (Tree.node "path"
                  (Tree.node "@src" [ Tree.text (Graphdb.Graph.name g u) ]
                  :: Tree.node "@dst" [ Tree.text (Graphdb.Graph.name g v) ]
                  :: List.map
                       (fun label ->
                         Tree.node "edge"
                           [ Tree.node "@label" [ Tree.text label ] ])
                       word)))
       answers)

let xml_to_rdf ?scope doc =
  match scope with
  | None -> Rdf.of_xml doc
  | Some q ->
      let selected = Twig.Eval.select q doc in
      List.fold_left
        (fun acc path ->
          match Tree.node_at doc path with
          | None -> acc
          | Some sub ->
              let shredded = Rdf.of_xml sub in
              (* Re-anchor identifiers at the selected node's path. *)
              let prefix =
                "/" ^ String.concat "/" (List.map string_of_int path)
              in
              List.fold_left
                (fun acc (t : Rdf.triple) ->
                  let fix s =
                    if String.length s > 0 && s.[0] = '/' then
                      if String.equal s "/" then prefix else prefix ^ s
                    else s
                  in
                  Rdf.add
                    { subj = fix t.subj; pred = t.pred; obj = fix t.obj }
                    acc)
                acc (Rdf.to_list shredded))
        Rdf.empty selected
