(** Consistency of twig samples: does a query of the class select every
    positive and no negative example?

    The complexity landscape reproduced here is the one the paper reports
    (Section 2):

    - for the {e anchored} class, the least general generalization of the
      positives is the unique minimal consistent candidate; a consistent
      query exists iff the LGG rejects every negative — polynomial time
      ({!anchored}).
    - for the {e full} twig class the problem is NP-complete; {!bounded}
      performs the exact exponential search over size-bounded candidates,
      which is tractable exactly when the bound (hence the example sets that
      pin it down) is small — the tractable case the paper cites. *)

type instance = Xmltree.Annotated.t

val anchored : instance Core.Example.t list -> Twig.Query.t option
(** PTIME decision for the anchored class, with a witness query.  Requires
    at least one positive example ([None] otherwise). *)

val anchored_consistent : instance Core.Example.t list -> bool

val bounded :
  ?budget:Core.Budget.t ->
  ?filter_depth:int ->
  ?max_filters_per_node:int ->
  max_size:int ->
  instance Core.Example.t list ->
  Twig.Query.t option
(** Exact search over all twigs with at most [max_size] pattern nodes over
    the labels occurring in the examples (exponential in [max_size]).
    Returns the first consistent candidate in enumeration order.  Spends one
    [budget] tick per candidate enumerated and per consistency check;
    @raise Core.Budget.Out_of_budget when it runs out — catch it (or go
    through [Fallback.learn]) to degrade to the polynomial learners. *)
