lib/relational/algebra.mli: Relation
