(* All node lists here are ascending preorder ids.  Base lists come from
   the store's caches and must not be mutated; every join allocates its
   output. *)

let test_list store = function
  | Pattern.Wild -> Store.all_ids store
  | Pattern.Name l -> Store.postings store l

(* Keep the entries of [anc] that have a proper descendant in [desc].
   Both ascending; one forward pass.  Because descendants of [a] occupy
   the contiguous id interval (a, last a], it is enough to look at the
   smallest remaining element of [desc] past [a]. *)
let semijoin_desc store anc desc =
  let la = Array.length anc and ld = Array.length desc in
  if la = 0 || ld = 0 then [||]
  else begin
    let out = Array.make la 0 in
    let count = ref 0 in
    let j = ref 0 in
    for i = 0 to la - 1 do
      let a = anc.(i) in
      while !j < ld && desc.(!j) <= a do
        incr j
      done;
      if !j < ld && desc.(!j) <= Store.last store a then begin
        out.(!count) <- a;
        incr count
      end
    done;
    Array.sub out 0 !count
  end

(* Keep the entries of [par] that have a child in [ch]: stamp every
   child's parent, then filter. *)
let semijoin_child store par ch =
  if Array.length par = 0 || Array.length ch = 0 then [||]
  else begin
    let stamp, gen = Store.fresh_stamp store in
    Array.iter
      (fun c -> if c > 0 then stamp.(Store.parent store c) <- gen)
      ch;
    let out = Array.make (Array.length par) 0 in
    let count = ref 0 in
    Array.iter
      (fun p ->
        if stamp.(p) = gen then begin
          out.(!count) <- p;
          incr count
        end)
      par;
    Array.sub out 0 !count
  end

(* Keep the entries of [self] that have a proper ancestor in [ctx]: the
   PathStack scan.  Walking both lists in document order, the stack holds
   the ctx entries whose intervals are still open at the current id; a
   self entry matches iff the stack is non-empty once stale tops are
   popped.  (Intervals nest or are disjoint, so ancestors of the current
   id form a stack suffix.) *)
let chain_desc store ctx self =
  let lc = Array.length ctx and ls = Array.length self in
  if lc = 0 || ls = 0 then [||]
  else begin
    let stack = Array.make lc 0 in
    let sp = ref 0 in
    let out = Array.make ls 0 in
    let count = ref 0 in
    let i = ref 0 in
    for k = 0 to ls - 1 do
      let d = self.(k) in
      while !i < lc && ctx.(!i) < d do
        stack.(!sp) <- ctx.(!i);
        incr sp;
        incr i
      done;
      while !sp > 0 && Store.last store stack.(!sp - 1) < d do
        decr sp
      done;
      if !sp > 0 then begin
        out.(!count) <- d;
        incr count
      end
    done;
    Array.sub out 0 !count
  end

(* Keep the entries of [self] whose parent is in [ctx]. *)
let chain_child store ctx self =
  if Array.length ctx = 0 || Array.length self = 0 then [||]
  else begin
    let stamp, gen = Store.fresh_stamp store in
    Array.iter (fun p -> stamp.(p) <- gen) ctx;
    let out = Array.make (Array.length self) 0 in
    let count = ref 0 in
    Array.iter
      (fun c ->
        if c > 0 && stamp.(Store.parent store c) = gen then begin
          out.(!count) <- c;
          incr count
        end)
      self;
    Array.sub out 0 !count
  end

let select_array store (pat : Pattern.t) =
  if Array.length pat.steps = 0 then
    invalid_arg "Twigjoin.select: empty query";
  (* Bottom-up filter reduction: children have larger ids than their
     parent, so a descending pass sees every child list before it is
     joined into its parent. *)
  let nf = Array.length pat.fnodes in
  let flists = Array.make nf [||] in
  for j = nf - 1 downto 0 do
    let fn = pat.fnodes.(j) in
    flists.(j) <-
      List.fold_left
        (fun acc (axis, sub) ->
          match axis with
          | Pattern.Child -> semijoin_child store acc flists.(sub)
          | Pattern.Descendant -> semijoin_desc store acc flists.(sub))
        (test_list store fn.ftest)
        fn.fedges
  done;
  let self_list (stest, sedges) =
    List.fold_left
      (fun acc (axis, sub) ->
        match axis with
        | Pattern.Child -> semijoin_child store acc flists.(sub)
        | Pattern.Descendant -> semijoin_desc store acc flists.(sub))
      (test_list store stest)
      sedges
  in
  let first = pat.steps.(0) in
  let first_self = self_list (first.stest, first.sedges) in
  (* The first step is relative to a virtual root above the document:
     Child admits only the real root, Descendant any node. *)
  let ctx =
    ref
      (match first.saxis with
      | Pattern.Descendant -> first_self
      | Pattern.Child ->
          if Array.length first_self > 0 && first_self.(0) = 0 then [| 0 |]
          else [||])
  in
  for k = 1 to Array.length pat.steps - 1 do
    if Array.length !ctx > 0 then begin
      let st = pat.steps.(k) in
      let self = self_list (st.stest, st.sedges) in
      ctx :=
        (match st.saxis with
        | Pattern.Child -> chain_child store !ctx self
        | Pattern.Descendant -> chain_desc store !ctx self)
    end
  done;
  !ctx

let select_ids store pat = Array.to_list (select_array store pat)

let select_paths store pat =
  List.map (Store.path_of_id store) (select_ids store pat)
