(* XPathMark learning demo (paper, Section 2): for every twig-expressible
   query of the XPathMark-style workload, learn it from annotated nodes of
   XMark-style documents, then prune schema-implied filters — printing the
   learned query at every stage so the overspecialization story is visible.

   Run with:  dune exec examples/xpathmark_learning.exe [goal-xpath]
   With an argument, learns that query instead of the whole workload, e.g.:
     dune exec examples/xpathmark_learning.exe -- "//person[profile]/name" *)

let docs =
  lazy (List.init 8 (fun i -> Benchkit.Xmark.generate ~scale:2.0 ~seed:(300 + i) ()))

let depgraph = lazy (Uschema.Depgraph.of_schema Benchkit.Xmark.schema)

let learn_goal name goal =
  Format.printf "--- %s: %a@." name Twig.Query.pp goal;
  let examples =
    List.filter_map
      (fun d ->
        match Twig.Eval.select goal d with
        | p :: _ -> Some (Xmltree.Annotated.make d p)
        | [] -> None)
      (Lazy.force docs)
  in
  Format.printf "    %d annotated examples (one per document)@."
    (List.length examples);
  match Twiglearn.Positive.learn_positive examples with
  | None -> Format.printf "    not learnable inside the anchored fragment@."
  | Some learned ->
      let pruned = Twiglearn.Schema_aware.prune (Lazy.force depgraph) learned in
      Format.printf "    learned (size %3d): ...%s@."
        (Twig.Query.size learned)
        (let s = Twig.Query.to_string learned in
         if String.length s > 60 then String.sub s (String.length s - 60) 60
         else s);
      Format.printf "    pruned  (size %3d): %a@."
        (Twig.Query.size pruned)
        Twig.Query.pp pruned;
      let fresh = Benchkit.Xmark.generate ~scale:2.0 ~seed:900 () in
      Format.printf "    agrees with the goal on a fresh document: %b@.@."
        (Twig.Eval.select pruned fresh = Twig.Eval.select goal fresh)

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [ xpath ] -> (
      match Twig.Parse.query_opt xpath with
      | Some goal -> learn_goal "custom goal" goal
      | None ->
          Printf.eprintf "not a twig query: %s\n" xpath;
          exit 1)
  | _ ->
      Printf.printf
        "Learning the twig-expressible XPathMark queries from examples\n\n";
      List.iter
        (fun (e : Benchkit.Xpathmark.entry) ->
          match e.twig with
          | Some goal -> learn_goal e.id goal
          | None -> ())
        Benchkit.Xpathmark.queries
