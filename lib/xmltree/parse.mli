(** Parsers producing {!Tree.t} documents.

    Two input syntaxes are supported:

    - {!xml}: a pragmatic XML subset — elements, attributes, text, comments,
      XML declarations and CDATA.  Attributes become ["@name"] children
      holding their value as a text node; character data becomes text nodes
      (see {!Tree}).
    - {!term}: the compact term syntax printed by {!Tree.pp}, e.g.
      ["site(regions(item(@id(#1), name(#Phone))))"], convenient in tests. *)

exception Syntax_error of string
(** Raised with a human-readable position/message on malformed input. *)

val xml : string -> Tree.t
(** @raise Syntax_error on malformed documents. *)

val term : string -> Tree.t
(** @raise Syntax_error on malformed terms. *)

val xml_result : ?source:string -> string -> (Tree.t, Core.Error.t) result
(** Non-raising variant of {!xml}: malformed input yields a structured
    {!Core.Error.t} carrying [source] (default ["<xml>"]) and the
    line/column of the failure. *)

val term_result : ?source:string -> string -> (Tree.t, Core.Error.t) result
(** Non-raising variant of {!term}. *)
