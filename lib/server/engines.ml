module Error = Core.Error

type spec = {
  engine : string;
  seed : int;
  scale : float;
  rows : int;
  cities : int;
}

let default_spec = { engine = "twig"; seed = 0; scale = 0.1; rows = 12; cities = 12 }

let config_of_spec s =
  Printf.sprintf "engine=%s seed=%d scale=%g rows=%d cities=%d" s.engine s.seed
    s.scale s.rows s.cities

let valid_engine = function "twig" | "join" | "path" -> true | _ -> false

(* Instance-size ceilings.  Specs arrive over the wire (POST /v1/sessions)
   and are replayed verbatim from journal headers at startup, so both entry
   points must bound them: an unbounded [rows] or [scale] lets one request
   allocate a pool domain to death — and, once persisted in a header, crash
   the daemon again on every recovery until the journal is deleted. *)
let max_scale = 2.0
let max_rows = 512
let max_cities = 512

let validate s =
  if not (valid_engine s.engine) then
    Error (Printf.sprintf "unknown engine %S (twig|join|path)" s.engine)
  else if not (Float.is_finite s.scale && s.scale > 0. && s.scale <= max_scale)
  then
    Error
      (Printf.sprintf "scale must be in (0, %g], got %g" max_scale s.scale)
  else if s.rows < 1 || s.rows > max_rows then
    Error (Printf.sprintf "rows must be in [1, %d], got %d" max_rows s.rows)
  else if s.cities < 1 || s.cities > max_cities then
    Error
      (Printf.sprintf "cities must be in [1, %d], got %d" max_cities s.cities)
  else Ok s

let spec_of_config line =
  let kvs =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  let rec fold spec = function
    | [] -> validate spec
    | kv :: rest -> (
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "bad config token %S" kv)
        | Some i -> (
            let k = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            let int_v f =
              match int_of_string_opt v with
              | Some n -> fold (f n) rest
              | None -> Error (Printf.sprintf "bad config value %S" kv)
            in
            match k with
            | "engine" -> fold { spec with engine = v } rest
            | "seed" -> int_v (fun n -> { spec with seed = n })
            | "scale" -> (
                match float_of_string_opt v with
                | Some f -> fold { spec with scale = f } rest
                | None -> Error (Printf.sprintf "bad config value %S" kv))
            | "rows" -> int_v (fun n -> { spec with rows = n })
            | "cities" -> int_v (fun n -> { spec with cities = n })
            | _ -> Error (Printf.sprintf "unknown config key %S" k)))
  in
  fold default_spec kvs

let spec_of_json j =
  let d = default_spec in
  validate
    {
      engine = Option.value ~default:d.engine (Json.get_str "engine" j);
      seed = Option.value ~default:d.seed (Json.get_int "seed" j);
      scale = Option.value ~default:d.scale (Json.get_num "scale" j);
      rows = Option.value ~default:d.rows (Json.get_int "rows" j);
      cities = Option.value ~default:d.cities (Json.get_int "cities" j);
    }

let json_of_spec s =
  Json.Obj
    [
      ("engine", Json.Str s.engine);
      ("seed", Json.of_int s.seed);
      ("scale", Json.Num s.scale);
      ("rows", Json.of_int s.rows);
      ("cities", Json.of_int s.cities);
    ]

let header_of_spec s =
  {
    Core.Journal.seed = s.seed;
    engine = "serve-" ^ s.engine;
    config = config_of_spec s;
  }

(* Instance construction is deterministic in the spec — the resurrection
   guarantee: a journal header's config line regenerates the exact pool the
   dead process was asking about. *)

let twig_doc s = Benchkit.Xmark.generate ~scale:s.scale ~seed:s.seed ()

let join_instance s =
  let rng = Core.Prng.create s.seed in
  Relational.Generator.pair_instance ~rng ~left_rows:s.rows
    ~right_rows:s.rows ()

let path_graph s =
  let rng = Core.Prng.create s.seed in
  Graphdb.Generators.geo ~rng ~cities:s.cities ()

let path_items s g =
  let rng = Core.Prng.create (s.seed + 1) in
  Pathlearn.Interactive.items_of_graph ~max_len:3 ~rng g

module Twig_stepper = Stepper.Make (Twiglearn.Interactive.Session)
module Join_stepper = Stepper.Make (Joinlearn.Interactive.Session)
module Path_stepper = Stepper.Make (Pathlearn.Interactive.Session)

let make ?journal ?resume ?step_budget ?checkpoint_every s =
  match s.engine with
  | "twig" ->
      let doc = twig_doc s in
      Twig_stepper.make ?journal ?resume ?step_budget ?checkpoint_every
        ~snapshot:Twiglearn.Interactive.encode_state
        ~restore:(Twiglearn.Interactive.decode_state ~doc)
        ~engine:s.engine
        ~encode:Twiglearn.Interactive.encode_item
        ~decode:(Twiglearn.Interactive.decode_item ~doc)
        ~items:(Twiglearn.Interactive.items_of_doc doc)
        ()
  | "join" ->
      let inst = join_instance s in
      let left = inst.Relational.Generator.left and right = inst.right in
      let space =
        Joinlearn.Signature.space
          ~left_arity:(Relational.Relation.arity left)
          ~right_arity:(Relational.Relation.arity right)
      in
      Join_stepper.make ?journal ?resume ?step_budget ?checkpoint_every
        ~snapshot:Joinlearn.Interactive.encode_state
        ~restore:(Joinlearn.Interactive.decode_state ~left ~right)
        ~engine:s.engine
        ~encode:(Joinlearn.Interactive.encode_item ~left ~right)
        ~decode:(Joinlearn.Interactive.decode_item ~left ~right)
        ~items:(Joinlearn.Interactive.items_of space left right)
        ()
  | "path" ->
      let g = path_graph s in
      Path_stepper.make ?journal ?resume ?step_budget ?checkpoint_every
        ~snapshot:Pathlearn.Interactive.encode_state
        ~restore:Pathlearn.Interactive.decode_state ~engine:s.engine
        ~encode:Pathlearn.Interactive.encode_item
        ~decode:Pathlearn.Interactive.decode_item ~items:(path_items s g) ()
  | e ->
      Error
        (Error.invalid_input ~what:"engine"
           (Printf.sprintf "unknown engine %S (twig|join|path)" e))

let oracle s ~goal =
  match s.engine with
  | "twig" -> (
      match Twig.Parse.query_result ~source:"goal" goal with
      | Error _ as e -> e
      | Ok q ->
          let doc = twig_doc s in
          Ok
            (fun key ->
              match Twiglearn.Interactive.decode_item ~doc key with
              | Some node -> Twig.Eval.selects_example q node
              | None -> false))
  | "join" ->
      if goal <> "planted" then
        Error
          (Error.invalid_input ~what:"goal"
             "join goals must be \"planted\" (the instance's hidden predicate)")
      else
        let inst = join_instance s in
        let left = inst.Relational.Generator.left and right = inst.right in
        Ok
          (fun key ->
            match Joinlearn.Interactive.decode_item ~left ~right key with
            | Some it ->
                Relational.Algebra.satisfies inst.planted it.Joinlearn.Interactive.left
                  it.Joinlearn.Interactive.right
            | None -> false)
  | "path" -> (
      match Automata.Regex.parse goal with
      | re ->
          let dfa = Automata.Dfa.of_regex re in
          Ok
            (fun key ->
              match Pathlearn.Interactive.decode_item key with
              | Some it ->
                  Automata.Dfa.accepts dfa it.Pathlearn.Interactive.word
              | None -> false)
      | exception _ ->
          Error
            (Error.invalid_input ~what:"goal"
               (Printf.sprintf "unparsable path regex %S" goal)))
  | e ->
      Error
        (Error.invalid_input ~what:"engine"
           (Printf.sprintf "unknown engine %S" e))
