(** Schema-aware twig learning — the paper's answer to overspecialization
    (Section 2): learned queries "include fragments implied by the schema …
    making the returned query bigger and increasing its evaluation time.
    … we want to add a filter present in all the positive examples to the
    learned query only if it is not implied by the schema."

    Filter implication w.r.t. the schema is decided on the required
    dependency graph ({!Uschema.Depgraph.filter_implied}) — the tractable
    problem the paper leverages precisely because full query containment in
    the presence of schemas is intractable.  Pruned queries are equivalent
    to the unpruned ones on every document valid for the schema. *)

type instance = Xmltree.Annotated.t

val prune : Uschema.Depgraph.t -> Twig.Query.t -> Twig.Query.t
(** Removes every (sub-)filter implied by the schema at its host label.
    Spine nodes and filter nodes with wildcard tests are left untouched
    (their label is not statically known). *)

val learn :
  schema:Uschema.Schema.t -> instance list -> Twig.Query.t option
(** {!Positive.learn_positive} followed by {!prune} — the "optimized version
    of the algorithms" the paper proposes.  Experiment E3 measures the size
    decrease this achieves. *)

val size_reduction :
  schema:Uschema.Schema.t -> instance list -> (int * int) option
(** [(size_without_schema, size_with_schema)] for the same examples. *)
