test/test_core.ml: Alcotest Core Format Fun Gen Int List QCheck QCheck_alcotest String
