module Retry = Core.Retry

type job = {
  tenant : string;
  key : string;
  trace : string option;
      (** the submitting request's trace id, captured at enqueue time and
          re-installed by the dispatcher around [run] on a pool domain *)
  run : unit -> Http.response;
  mutable result : Http.response option;
  m : Mutex.t;
  cv : Condition.t;
}

type verdict =
  | Enqueued of job
  | Shed of float
  | Tripped of float
  | Draining of float

type t = {
  max_queue : int;
  retry_after : float;
  rng : Core.Prng.t;  (** Retry-After jitter; guarded by [m] *)
  policy : Retry.policy;
  breakers : (string, Retry.breaker) Hashtbl.t;
  queues : (string, job Queue.t) Hashtbl.t;
  mutable rr : string list;  (** tenants with (possibly empty) queues, in
                                 round-robin order; cleaned lazily *)
  mutable draining : bool;
  mutable total : int;
  mutable shed : int;
  mutable tripped : int;
  mutable dispatched : int;
  m : Mutex.t;
  cv : Condition.t;
}

let create ?(retry_after = 1.0) ?policy ~max_queue () =
  if max_queue < 1 then invalid_arg "Admission.create: max_queue < 1";
  let policy =
    match policy with
    | Some p -> p
    | None ->
        Retry.policy ~breaker_threshold:8 ~cooldown:retry_after
          ~sleep:Retry.no_sleep ()
  in
  {
    max_queue;
    retry_after;
    rng = Core.Prng.create 0x5eed;
    policy;
    breakers = Hashtbl.create 16;
    queues = Hashtbl.create 16;
    rr = [];
    draining = false;
    total = 0;
    shed = 0;
    tripped = 0;
    dispatched = 0;
    m = Mutex.create ();
    cv = Condition.create ();
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* The Retry-After suggestion scales with how backed up the queue is —
   an empty queue says "come right back", a full one says "stay away
   longer" — plus jitter so a thundering herd of refused clients does not
   re-arrive in lockstep.  With the default [retry_after = 1.0]: empty
   queue ∈ [0.5, 1.0), full queue ∈ [1.5, 2.0).  Callers hold [m]. *)
let suggest t =
  let depth = float_of_int t.total /. float_of_int (max 1 t.max_queue) in
  (t.retry_after *. (0.5 +. Float.min 1.0 depth))
  +. Core.Prng.float t.rng (0.5 *. t.retry_after)

let retry_suggestion t = with_lock t (fun () -> suggest t)

let breaker_of t tenant =
  match Hashtbl.find_opt t.breakers tenant with
  | Some b -> b
  | None ->
      let b = Retry.breaker t.policy in
      Hashtbl.add t.breakers tenant b;
      b

(* The drain flag lives under the queue lock so that submit-vs-drain is
   serialized: once [drain] has returned, every later [submit] refuses, so
   a job can never slip into the queue after the dispatcher's final
   "draining && pending = 0" check — which would strand its waiter. *)
let drain t =
  with_lock t (fun () ->
      t.draining <- true;
      Condition.broadcast t.cv)

let submit t ~tenant ~key run =
  with_lock t (fun () ->
      if t.draining then Draining (suggest t)
      else
      let b = breaker_of t tenant in
      match Retry.breaker_state b with
      | Retry.Open ->
          t.tripped <- t.tripped + 1;
          Core.Obs.Recorder.record ~detail:tenant "admission.tripped";
          Tripped (suggest t)
      | Retry.Closed | Retry.Half_open ->
          if t.total >= t.max_queue then begin
            t.shed <- t.shed + 1;
            Core.Obs.Recorder.record ~detail:key "admission.shed";
            Shed (suggest t)
          end
          else begin
            let job =
              {
                tenant;
                key;
                trace = Core.Obs.Trace.current ();
                run;
                result = None;
                m = Mutex.create ();
                cv = Condition.create ();
              }
            in
            let q =
              match Hashtbl.find_opt t.queues tenant with
              | Some q -> q
              | None ->
                  let q = Queue.create () in
                  Hashtbl.add t.queues tenant q;
                  t.rr <- t.rr @ [ tenant ];
                  q
            in
            Queue.push job q;
            t.total <- t.total + 1;
            Condition.broadcast t.cv;
            Enqueued job
          end)

let wait (job : job) =
  Mutex.lock job.m;
  let rec go () =
    match job.result with
    | Some r ->
        Mutex.unlock job.m;
        r
    | None ->
        Condition.wait job.cv job.m;
        go ()
  in
  go ()

let finish (job : job) resp =
  Mutex.lock job.m;
  job.result <- Some resp;
  Condition.broadcast job.cv;
  Mutex.unlock job.m

(* One fairness pass: visit each tenant once in rr order, popping at most
   one eligible job (key not already in the batch).  Returns jobs in visit
   order and the rotated rr. *)
let round t ~taken ~room =
  let batch = ref [] and n = ref 0 in
  let keep = ref [] in
  List.iter
    (fun tenant ->
      match Hashtbl.find_opt t.queues tenant with
      | None -> ()
      | Some q when Queue.is_empty q -> Hashtbl.remove t.queues tenant
      | Some q ->
          keep := tenant :: !keep;
          if !n < room then (
            let head = Queue.peek q in
            if not (Hashtbl.mem taken head.key) then begin
              ignore (Queue.pop q);
              Hashtbl.add taken head.key ();
              t.total <- t.total - 1;
              batch := head :: !batch;
              incr n
            end))
    t.rr;
  t.rr <- List.rev !keep;
  (List.rev !batch, !n)

let take_batch t ~max ~block =
  with_lock t (fun () ->
      if block && t.total = 0 then Condition.wait t.cv t.m;
      if t.total = 0 then []
      else begin
        let taken = Hashtbl.create 16 in
        let rec fill acc room =
          if room <= 0 then acc
          else
            let batch, n = round t ~taken ~room in
            if n = 0 then acc else fill (acc @ batch) (room - n)
        in
        let batch = fill [] max in
        (* rotate so the next batch starts with a different tenant *)
        (match t.rr with [] -> () | x :: rest -> t.rr <- rest @ [ x ]);
        t.dispatched <- t.dispatched + List.length batch;
        batch
      end)

let wake t = with_lock t (fun () -> Condition.broadcast t.cv)

let fault t ~tenant =
  with_lock t (fun () -> Retry.breaker_failure (breaker_of t tenant))

let ok t ~tenant =
  with_lock t (fun () -> Retry.breaker_success (breaker_of t tenant))

let pending t = with_lock t (fun () -> t.total)

type stats = { queued : int; shed : int; tripped : int; dispatched : int }

let stats t =
  with_lock t (fun () ->
      { queued = t.total; shed = t.shed; tripped = t.tripped;
        dispatched = t.dispatched })

type tenant_debug = {
  td_tenant : string;
  td_queued : int;
  td_breaker : string;
}

let breaker_state_string = function
  | Retry.Closed -> "closed"
  | Retry.Open -> "open"
  | Retry.Half_open -> "half-open"

(* Every tenant the admission layer has ever seen (a breaker outlives its
   queue), with its current backlog and breaker state — the /debug/tenants
   view. *)
let debug_tenants t =
  with_lock t (fun () ->
      let tenants = Hashtbl.create 16 in
      Hashtbl.iter (fun ten _ -> Hashtbl.replace tenants ten ()) t.breakers;
      Hashtbl.iter (fun ten _ -> Hashtbl.replace tenants ten ()) t.queues;
      Hashtbl.fold (fun ten () acc -> ten :: acc) tenants []
      |> List.sort compare
      |> List.map (fun ten ->
             {
               td_tenant = ten;
               td_queued =
                 (match Hashtbl.find_opt t.queues ten with
                 | Some q -> Queue.length q
                 | None -> 0);
               td_breaker =
                 breaker_state_string
                   (Retry.breaker_state (breaker_of t ten));
             }))
