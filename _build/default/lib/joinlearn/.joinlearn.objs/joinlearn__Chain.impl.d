lib/joinlearn/chain.ml: Array Core Format List Option Relational Signature
