(** Learning path languages from labeled words (path label sequences).

    Two-tier hypothesis space, smallest-class-first: first the path-
    expression shape ({!Expr}), whose few-example generalization matches the
    paper's requirement that learners "learn the goal query from very few
    examples"; then the full regular class via RPNI when the sample rules
    path expressions out. *)

type hypothesis = {
  dfa : Automata.Dfa.t;  (** always present; minimized *)
  expr : Expr.t option;  (** the path-expression form, when one exists *)
}

val learn : pos:string list list -> neg:string list list -> hypothesis option
(** [None] on a contradictory sample.  The hypothesis accepts every positive
    and rejects every negative word. *)

val selects : hypothesis -> string list -> bool
val equal_hypothesis : hypothesis -> hypothesis -> bool
(** Language equality. *)

val pp : Format.formatter -> hypothesis -> unit
