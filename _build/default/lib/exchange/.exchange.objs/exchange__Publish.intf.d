lib/exchange/publish.mli: Automata Graphdb Rdf Relational Twig Xmltree
