(** Fault injection for interactive oracles — the crowdsourcing setting of
    the paper's Section 3, where the "user" is a crowd worker who sometimes
    answers wrong, declines a HIT, or never returns.

    A {!profile} turns a reliable oracle into a flaky one; [Interact.Make.run_flaky]
    drives a session against it, skipping refused/timed-out questions instead
    of crashing, so sessions survive unreliable users. *)

type reply =
  | Label of bool  (** an answer (possibly flipped by noise) *)
  | Refused  (** the user declined to answer this question *)
  | Timed_out  (** the answer never arrived *)

type profile = {
  noise : float;  (** probability an answer is flipped *)
  refusal : float;  (** probability the user refuses *)
  timeout : float;  (** probability the answer never arrives *)
}

val reliable : profile
(** All zero: {!wrap} with it is the identity. *)

val profile : ?noise:float -> ?refusal:float -> ?timeout:float -> unit -> profile
(** Fields default to 0.  @raise Invalid_argument when a rate is outside
    [0,1] or refusal + timeout exceeds 1. *)

val wrap : ?profile:profile -> rng:Prng.t -> ('item -> bool) -> 'item -> reply
(** [wrap ~rng oracle] injects the profile's faults into [oracle], drawing
    from [rng] (deterministic under a fixed seed). *)
