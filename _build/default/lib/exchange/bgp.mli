(** Basic graph patterns — the conjunctive core of SPARQL, the language the
    paper names as the standard for RDF (Section 3, with the complexity
    caveat that full SPARQL evaluation is PSPACE-complete; the conjunctive
    fragment here is the classical NP-complete-in-combined /
    polynomial-in-data case).

    A pattern is a triple of terms (constants or variables); a query is a
    conjunction of patterns; an answer is a binding of the variables such
    that every instantiated triple is in the store.  Evaluation orders
    patterns most-bound-first and backtracks. *)

type term = Var of string | Const of string

type pattern = { subj : term; pred : term; obj : term }

type query = pattern list

type binding = (string * string) list
(** Variable assignments, sorted by variable name. *)

val eval : Rdf.t -> query -> binding list
(** All answers, sorted, distinct.  The empty query has the empty binding
    as its only answer. *)

val ask : Rdf.t -> query -> bool
(** Non-emptiness (SPARQL ASK). *)

val select : vars:string list -> Rdf.t -> query -> string list list
(** Projections of {!eval} onto [vars], in the given order; unbound
    variables project to [""].  Sorted, distinct. *)

val vars_of : query -> string list
(** Variables mentioned, sorted. *)

exception Parse_error of string

val parse : string -> query
(** A compact triple-pattern syntax: patterns separated by [.], terms
    separated by spaces, variables prefixed with [?], everything else a
    constant.  Example: ["?p name ?n . ?p city Tampa"].
    @raise Parse_error on malformed input. *)

val pp_binding : Format.formatter -> binding -> unit
