(** Exhaustive enumeration of (bounded) twig queries, the engine behind the
    exact consistency search for the full twig class.

    Learning twigs from positive {e and} negative examples is NP-complete in
    general (paper, Section 2), but "when considering the restriction that
    the sets of positive and negative examples have a bounded size, the
    problem becomes tractable" — and likewise bounding the candidate query
    size makes exhaustive search feasible.  The enumeration is exponential
    in [max_nodes] by nature; it exists to exhibit that frontier
    (experiment E5's XML side), not for production learning. *)

val queries :
  ?budget:Core.Budget.t ->
  ?filter_depth:int ->
  ?max_filters_per_node:int ->
  alphabet:string list ->
  max_nodes:int ->
  unit ->
  Twig.Query.t Seq.t
(** All twig queries with at most [max_nodes] pattern nodes, node tests drawn
    from [alphabet] plus the wildcard, and per-node filters limited to
    [max_filters_per_node] (default 1) filters of depth [filter_depth]
    (default 1).  Queries are produced in non-decreasing spine length.
    Forcing the sequence spends one [budget] tick per candidate;
    @raise Core.Budget.Out_of_budget from the sequence when it runs out. *)

val count : ?budget:Core.Budget.t -> ?filter_depth:int ->
  ?max_filters_per_node:int ->
  alphabet:string list -> max_nodes:int -> unit -> int
(** Size of the enumeration (forces the sequence). *)
