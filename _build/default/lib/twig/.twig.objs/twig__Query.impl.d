lib/twig/query.ml: Format List Set Stdlib String Tree Xmltree
