test/test_xmltree.mli:
