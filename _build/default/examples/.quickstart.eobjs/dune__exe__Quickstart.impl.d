examples/quickstart.ml: Automata Core Format Fun Graphdb Joinlearn List Pathlearn Printf Relational String Twig Twiglearn Xmltree
