lib/xmltree/print.ml: Buffer Format List String Tree
