(** Learning anchored twig queries from positive examples only — the
    learnability result of Staworko & Wieczorek the paper builds on
    (Section 2): "the subclass of anchored twig queries … learnable from
    positive examples only, where the examples are XML documents with
    annotated nodes".

    [learn_positive examples] folds the least general generalization
    ({!Twig.Lgg}) over the characteristic queries of the examples and
    minimizes the result.  The output selects every example node; on
    examples drawn from an anchored goal query it converges to a query
    equivalent to the goal — generally after very few examples
    (experiment E1). *)

type instance = Xmltree.Annotated.t

val learn_positive : instance list -> Twig.Query.t option
(** [None] on the empty list or when the generalization leaves the anchored
    fragment (e.g. examples whose annotated nodes have different labels). *)

val learn_path : instance list -> Twig.Query.t option
(** Same, restricted to path queries: filters are stripped before merging —
    the smaller class of Staworko & Wieczorek. *)

(** The twig concept (plugs into {!Core.Concept} functors). *)
module Concept :
  Core.Concept.CONCEPT
    with type query = Twig.Query.t
     and type instance = instance
