#!/usr/bin/env bash
# End-to-end crash recovery: a journaled learn-twig session killed mid-run
# by --crash-after must (a) die with the kill exit code, (b) resume from its
# journal without re-asking any answered question, and (c) converge to the
# same query as an uninterrupted run under the same seed.
set -u

EXE="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail() { echo "crash_resume: $*" >&2; exit 1; }

questions_of() { sed -n 's/^questions: \([0-9]*\),.*/\1/p' "$1"; }
replayed_of() { sed -n 's/.*replayed: \([0-9]*\),.*/\1/p' "$1"; }
learned_of() { grep '^learned' "$1"; }

"$EXE" xmark --scale 2 --seed 3 > "$tmp/doc.xml" || fail "doc generation failed"
goal='//person[profile/education]/name'

# 1. The uninterrupted reference run.
"$EXE" learn-twig "$tmp/doc.xml" --goal "$goal" --interactive --seed 7 \
  > "$tmp/full.out" || fail "reference run failed"
full_q=$(questions_of "$tmp/full.out")
[ -n "$full_q" ] || fail "reference run printed no question count"
[ "$full_q" -ge 2 ] || fail "reference run too short ($full_q questions) to crash mid-way"
learned_of "$tmp/full.out" > /dev/null || fail "reference run learned nothing"

# 2. The same session, journaled, killed after half the answers.
k=$(( full_q / 2 ))
"$EXE" learn-twig "$tmp/doc.xml" --goal "$goal" --seed 7 \
  --journal "$tmp/session.wal" --crash-after "$k" > "$tmp/crash.out" 2> /dev/null
status=$?
[ "$status" -eq 137 ] || fail "crash run exited $status, expected 137"
[ -s "$tmp/session.wal" ] || fail "crash run left no journal"

# 3. Resume from the journal against the healthy oracle.
"$EXE" learn-twig "$tmp/doc.xml" --goal "$goal" \
  --journal "$tmp/session.wal" --resume > "$tmp/resume.out" \
  || fail "resume run failed"

replayed=$(replayed_of "$tmp/resume.out")
resumed_q=$(questions_of "$tmp/resume.out")
[ "$replayed" -eq "$k" ] \
  || fail "resume replayed $replayed answers, expected the $k paid for before the crash"
[ $(( resumed_q + replayed )) -eq "$full_q" ] \
  || fail "resume asked $resumed_q live questions after $replayed replays; uninterrupted run took $full_q — some question was re-asked or lost"

diff <(learned_of "$tmp/full.out") <(learned_of "$tmp/resume.out") > /dev/null \
  || fail "resumed session learned a different query:
  full:    $(learned_of "$tmp/full.out")
  resumed: $(learned_of "$tmp/resume.out")"

echo "crash_resume: ok (crashed after $k/$full_q answers, resumed to the same query)"
