lib/twig/contain.ml: Array Eval Hashtbl List Printf Query Xmltree
