module Tree = Xmltree.Tree
module Query = Twig.Query

let drop_i i xs = List.filteri (fun j _ -> j <> i) xs
let set_i i x' xs = List.mapi (fun j x -> if j = i then x' else x) xs

let minimize ?(max_steps = 400) ~candidates ~still_failing x =
  let steps = ref 0 in
  let rec go x =
    if !steps >= max_steps then x
    else
      match List.find_opt still_failing (candidates x) with
      | Some x' ->
          incr steps;
          go x'
      | None -> x
  in
  (* Bind before pairing: tuple components evaluate right-to-left, which
     would read [!steps] before [go] has taken any. *)
  let shrunk = go x in
  (shrunk, !steps)

let list_ shrink_elt xs =
  let drop = List.mapi (fun i _ -> drop_i i xs) xs in
  let reduce =
    List.concat
      (List.mapi
         (fun i x -> List.map (fun x' -> set_i i x' xs) (shrink_elt x))
         xs)
  in
  drop @ reduce

(* ------------------------------------------------------------------ *)
(* Trees                                                               *)
(* ------------------------------------------------------------------ *)

let is_plain_element (c : Tree.t) =
  (not (Tree.is_text c))
  && not (String.length c.label > 0 && c.label.[0] = '@')

let rec tree (t : Tree.t) =
  (* Hoisting a child over the root is the big cut; attribute and text
     children stay out of root position (no valid document has them there,
     and a counterexample that only "fails" by being ill-formed is noise). *)
  let hoist = List.filter is_plain_element t.children in
  let del =
    List.mapi (fun i _ -> { t with Tree.children = drop_i i t.children })
      t.children
  in
  let recurse =
    List.concat
      (List.mapi
         (fun i c ->
           List.map
             (fun c' -> { t with Tree.children = set_i i c' t.children })
             (tree c))
         t.children)
  in
  hoist @ del @ recurse

(* ------------------------------------------------------------------ *)
(* Twig queries                                                        *)
(* ------------------------------------------------------------------ *)

let rec filter_cands (f : Query.filter) =
  let subs = List.map snd f.fsubs in
  let drop =
    List.mapi (fun i _ -> { f with Query.fsubs = drop_i i f.fsubs }) f.fsubs
  in
  let recurse =
    List.concat
      (List.mapi
         (fun i (a, s) ->
           List.map
             (fun s' -> { f with Query.fsubs = set_i i (a, s') f.fsubs })
             (filter_cands s))
         f.fsubs)
  in
  subs @ drop @ recurse

let step_cands (s : Query.step) =
  let drop =
    List.mapi (fun i _ -> { s with Query.filters = drop_i i s.filters })
      s.filters
  in
  let recurse =
    List.concat
      (List.mapi
         (fun i (a, f) ->
           List.map
             (fun f' -> { s with Query.filters = set_i i (a, f') s.filters })
             (filter_cands f))
         s.filters)
  in
  drop @ recurse

let twig (q : Query.t) =
  let drop_step =
    if List.length q <= 1 then []
    else List.mapi (fun i _ -> drop_i i q) q
  in
  let step_level =
    List.concat
      (List.mapi (fun i s -> List.map (fun s' -> set_i i s' q) (step_cands s)) q)
  in
  drop_step @ step_level

let filter_edge (a, f) = List.map (fun f' -> (a, f')) (filter_cands f)

(* ------------------------------------------------------------------ *)
(* Regexes and graphs                                                  *)
(* ------------------------------------------------------------------ *)

let rec regex (r : Automata.Regex.t) =
  match r with
  | Automata.Regex.Empty | Automata.Regex.Eps | Automata.Regex.Sym _ -> []
  | Automata.Regex.Alt (a, b) ->
      [ a; b ]
      @ List.map (fun a' -> Automata.Regex.Alt (a', b)) (regex a)
      @ List.map (fun b' -> Automata.Regex.Alt (a, b')) (regex b)
  | Automata.Regex.Cat (a, b) ->
      [ a; b ]
      @ List.map (fun a' -> Automata.Regex.Cat (a', b)) (regex a)
      @ List.map (fun b' -> Automata.Regex.Cat (a, b')) (regex b)
  | Automata.Regex.Star a ->
      a :: List.map (fun a' -> Automata.Regex.Star a') (regex a)

let graph g =
  let n = Graphdb.Graph.node_count g in
  let edges = Graphdb.Graph.edges g in
  let drop_node =
    if n <= 1 then []
    else
      [ Graphdb.Graph.make ~nodes:(n - 1)
          (List.filter (fun (u, _, v) -> u < n - 1 && v < n - 1) edges) ]
  in
  let drop_edge =
    List.mapi (fun i _ -> Graphdb.Graph.make ~nodes:n (drop_i i edges)) edges
  in
  drop_node @ drop_edge

(* ------------------------------------------------------------------ *)
(* Relations and schemas                                               *)
(* ------------------------------------------------------------------ *)

let relation r =
  let name = Relational.Relation.name r in
  let attrs = Array.to_list (Relational.Relation.attrs r) in
  let tuples = Relational.Relation.tuples r in
  let drop_row =
    List.mapi
      (fun i _ -> Relational.Relation.make ~name ~attrs (drop_i i tuples))
      tuples
  in
  let drop_col =
    if List.length attrs <= 1 then []
    else
      List.mapi (fun i _ -> Relational.Relation.project r (drop_i i attrs))
        attrs
  in
  let zero = Relational.Value.Int 0 in
  let simplify =
    List.concat
      (List.mapi
         (fun i tup ->
           List.concat
             (List.mapi
                (fun j v ->
                  if Relational.Value.equal v zero then []
                  else
                    [ Relational.Relation.make ~name ~attrs
                        (set_i i
                           (Array.mapi (fun l x -> if l = j then zero else x)
                              tup)
                           tuples) ])
                (Array.to_list tup)))
         tuples)
  in
  drop_col @ drop_row @ simplify

let schema s =
  let root = Uschema.Schema.root s in
  let rules = Uschema.Schema.rules s in
  let remake rules = Uschema.Schema.make ~root ~rules in
  let drop_rule = List.mapi (fun i _ -> remake (drop_i i rules)) rules in
  let reduce_rule =
    List.concat
      (List.mapi
         (fun i (h, dme) ->
           let drop_clause =
             if List.length dme <= 1 then []
             else
               List.mapi
                 (fun j _ -> remake (set_i i (h, Uschema.Dme.make (drop_i j dme)) rules))
                 dme
           in
           let drop_atom =
             List.concat
               (List.mapi
                  (fun j clause ->
                    List.mapi
                      (fun k _ ->
                        remake
                          (set_i i
                             (h, Uschema.Dme.make (set_i j (drop_i k clause) dme))
                             rules))
                      clause)
                  dme)
           in
           drop_clause @ drop_atom)
         rules)
  in
  drop_rule @ reduce_rule

(* ------------------------------------------------------------------ *)
(* Strings                                                             *)
(* ------------------------------------------------------------------ *)

let string_ s =
  let len = String.length s in
  if len = 0 then []
  else
    let halves =
      if len >= 2 then
        [ String.sub s 0 (len / 2); String.sub s (len / 2) (len - (len / 2)) ]
      else []
    in
    let positions =
      let stride = max 1 (len / 24) in
      let rec go i acc = if i >= len then List.rev acc else go (i + stride) (i :: acc) in
      go 0 []
    in
    let chops =
      List.map
        (fun i -> String.sub s 0 i ^ String.sub s (i + 1) (len - i - 1))
        positions
    in
    halves @ chops
