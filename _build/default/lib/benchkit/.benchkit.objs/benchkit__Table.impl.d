lib/benchkit/table.ml: Buffer List Printf String
