lib/graphdb/graph.mli: Format
