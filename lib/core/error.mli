(** The typed error hierarchy (the [Learnq_error] type) carried across the
    input boundary and the budgeted engines, so callers — the CLI above all —
    can react structurally (exit codes, degradation messages) instead of
    pattern-matching exception strings or printing backtraces.

    Every parser at the input boundary ([Xmltree.Parse], [Twig.Parse],
    [Relational.Csv], [Uschema.Schema]) has a [_result] variant returning
    [(_, Error.t) result] with a line/column position. *)

type position = { line : int; column : int }
(** 1-based line and column. *)

type t =
  | Parse of { source : string; message : string; position : position option }
      (** Malformed input; [source] names the format ("xml", "twig", "csv",
          "dms", …). *)
  | Budget_exhausted of { engine : string; spent : Budget.stats }
      (** A budgeted engine ran out of fuel or time with no usable result. *)
  | Invalid_input of { what : string; message : string }
      (** Structurally well-formed input that violates a semantic requirement
          (duplicate attributes, arity mismatch, …). *)
  | Corrupt_journal of { path : string; offset : int; message : string }
      (** A session journal record whose checksum or framing is wrong at byte
          [offset] — in-place corruption, as opposed to the torn tail of a
          crash, which [Journal.recover] drops silently. *)
  | Journal_locked of { path : string; pid : int }
      (** A second writer tried to open a journal already held by the live
          process [pid] — concurrent sessions over one journal file would
          interleave records into corruption, so the loser is refused. *)
  | Over_quota of { tenant : string; what : string; limit : int }
      (** A server tenant exceeded one of its admission quotas ([what] names
          it: "max_sessions", …).  Retryable once load drops — the wire
          protocol maps it to 429. *)
  | Storage of { op : string; path : string; message : string; full : bool }
      (** The disk refused a journal write ([op] names it: "append",
          "fsync", "compact", …).  [full] distinguishes [ENOSPC] — which
          flips the daemon into degraded read-only mode (507) and is
          retryable once space returns — from [EIO]-class failures. *)

val position_of_offset : string -> int -> position
(** Line/column of a byte offset in an input string. *)

val parse_error : source:string -> ?position:position -> string -> t

val at_offset : source:string -> input:string -> offset:int -> string -> t
(** [parse_error] with the position computed from a byte offset. *)

val budget_exhausted : engine:string -> Budget.stats -> t
val invalid_input : what:string -> string -> t
val corrupt_journal : path:string -> offset:int -> string -> t
val journal_locked : path:string -> pid:int -> t
val over_quota : tenant:string -> what:string -> limit:int -> t
val storage : op:string -> path:string -> ?full:bool -> string -> t

val storage_of_unix : op:string -> path:string -> Unix.error -> t
(** Classify a [Unix_error] from the storage layer; [ENOSPC] sets
    [full]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val exit_code : t -> int
(** The CLI exit-code convention: 0 ok, 2 degraded result, 3 budget
    exhausted with nothing to show, 64 bad input ([EX_USAGE]), 74 storage
    failure ([EX_IOERR]). *)

(** The convention's named constants, for CLI code. *)

val exit_ok : int
val exit_degraded : int
val exit_budget : int
val exit_bad_input : int
val exit_io : int
