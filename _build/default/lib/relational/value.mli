(** Atomic values of the relational substrate. *)

type t = Int of int | Str of string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val of_string : string -> t
(** Integers parse as [Int], everything else as [Str]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
