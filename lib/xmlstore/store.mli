(** A labeled, persistable XML document store.

    Indexing a {!Xmltree.Tree.t} assigns every node its preorder rank and
    records, per node, the containment interval [(id, last id)] covering its
    descendants, its level (root = 0), its parent and its child rank — the
    classic region-encoding / Dietz labeling used by native XML engines
    (RadegastXDB and the TwigStack line of work), so the structural
    predicates twig evaluation needs become O(1) integer arithmetic:

    - [is_ancestor a d]   ⟺  [a < d && d <= last a]
    - [is_child p c]      ⟺  [parent c = p]

    Alongside the labels the store keeps one inverted node list per element
    name, in document (preorder) order, laid out CSR-style in two flat
    arrays ([posting_offsets]/[posting_data]).  All numeric columns are
    [Bigarray] int arrays in one contiguous layout, so a labeled document
    can be persisted and later reloaded (memory-mapped when the platform
    allows) without re-parsing or re-labeling the XML.

    A store is cheap to share read-only, but the lazily-built caches
    ([postings], [all_ids]) and the generation-stamped scratch column used
    by child semijoins are not synchronized: use a store from one domain at
    a time (each {!Core.Pool} lane owns its shard). *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  n : int;  (** node count; preorder ids are [0 .. n-1], root is 0 *)
  last : ints;  (** descendants of [i] are exactly ids [i+1 .. last.{i}] *)
  parent : ints;  (** parent id, [-1] for the root *)
  rank : ints;  (** child index of [i] under its parent, [0] for the root *)
  level : ints;  (** depth; root is level [0] *)
  name_ids : ints;  (** interned element-name id of node [i] *)
  posting_offsets : ints;
      (** CSR row starts: name [k]'s nodes live at
          [posting_data.{posting_offsets.{k} .. posting_offsets.{k+1}-1}] *)
  posting_data : ints;  (** concatenated inverted lists, each ascending *)
  names : string array;  (** interned names, in order of first appearance *)
  name_tbl : (string, int) Hashtbl.t;
  mutable posting_cache : int array option array;
  mutable all_ids_cache : int array option;
  mutable stamp : int array;  (** scratch for child semijoins *)
  mutable stamp_gen : int;
}

val of_tree : Xmltree.Tree.t -> t
(** Label a document in one preorder pass: O(n) time, O(n) ints. *)

val size : t -> int
(** Node count. *)

val label : t -> int -> string
(** Element name of a node id. *)

val last : t -> int -> int
val level : t -> int -> int

val parent : t -> int -> int
(** Parent id; [-1] for the root. *)

val is_ancestor : t -> int -> int -> bool
(** [is_ancestor t a d]: is [a] a proper ancestor of [d]?  O(1). *)

val is_child : t -> int -> int -> bool
(** [is_child t p c]: is [c] a child of [p]?  O(1). *)

val name_id : t -> string -> int option
(** Interned id of an element name, if it occurs in the document. *)

val postings : t -> string -> int array
(** Inverted node list for a name, ascending preorder ids; [[||]] if the
    name does not occur.  The returned array is cached and shared — treat
    it as read-only. *)

val all_ids : t -> int array
(** [[|0; 1; ...; n-1|]], cached and shared — treat it as read-only. *)

val path_of_id : t -> int -> Xmltree.Tree.path
(** Stable path address of a node, via the parent/rank columns. *)

val id_of_path : t -> Xmltree.Tree.path -> int option
(** Inverse of {!path_of_id}, walking first-child/next-sibling arithmetic
    ([first child of i] = [i+1], [next sibling of j] = [last j + 1]). *)

val fresh_stamp : t -> int array * int
(** A generation-stamped scratch column over node ids: the pair
    [(stamp, gen)] where [stamp.(i) = gen] marks [i] without clearing. *)

val to_bytes : t -> bytes
(** Serialize to the LQXSTORE on-disk layout (int64 little-endian columns
    behind a fixed 32-byte header, name table at the tail).  Deterministic:
    the same store always produces the same bytes. *)

val of_bytes : bytes -> (t, string) result

val save : ?fsync:bool -> t -> string -> unit
(** Persist to a file; [?fsync] (default [false]) forces the data to disk
    before returning, which is what corpus pipelines overlap with
    evaluation. *)

val load : ?mmap:bool -> string -> (t, string) result
(** Reload a persisted store without re-parsing.  With [mmap] (the
    default) on a 64-bit little-endian platform the numeric columns are
    memory-mapped straight out of the file; otherwise they are decoded
    portably. *)
