lib/benchkit/table.mli:
