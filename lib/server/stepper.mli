(** One interactive learning session, inverted: a state machine the server
    drives one answer at a time.

    [Core.Interact.Make] owns its loop — it calls the oracle.  A server
    cannot: the "oracle" is a remote client that answers whenever it
    pleases, so the loop must be turned inside out.  A stepper holds the
    loop's state between answers: the learner state, the remaining pool,
    and at most one {e open question}.  {!Make.make} replays a recovered
    journal (same semantics as [Interact.run_flaky]'s [resume]: labeled
    answers fold into the state with duplicates as idempotent no-ops,
    refused/timed-out items return to the pool, a trailing [Asked] without
    its [Answered] becomes the open question again {e without}
    re-journaling), then advances to the next question.  Each [answer]
    journals the reply write-ahead, folds it in, and advances — pruning
    newly determined items exactly as the batch loop does — until the pool
    is empty ([Completed] is journaled) or the per-step budget dies
    (terminal {e degraded}: the candidate so far stands, and the journal
    stays resumable).

    Questions are numbered by [qid] — the count of [Asked] records, stable
    across crash and resume.  Answering a [qid] at or below the current one
    when the question has moved on is an {e idempotent no-op} returning the
    current view (a client retrying a reply it already delivered must not
    corrupt the session); a [qid] from the future is a typed error.

    A stepper is single-threaded by construction: the {!Registry} and the
    dispatcher's key-disjoint batches guarantee one thread at a time. *)

type view = {
  engine : string;
  done_ : bool;  (** no open question and none coming *)
  degraded : bool;  (** stopped on step-budget exhaustion *)
  qid : int;  (** id of the open question; count of questions ever asked *)
  question : string option;  (** codec string of the open question *)
  question_text : string option;  (** human rendering of the open question *)
  questions : int;  (** live answers folded in this process *)
  replayed : int;  (** answers replayed from the journal at startup *)
  pruned : int;  (** items never asked: label became determined *)
  refused : int;  (** refused/timed-out questions, set aside this run *)
  query : string option;  (** pretty-printed current candidate *)
}

type peeked = {
  p_engine : string;
  p_done : bool;
  p_degraded : bool;
  p_qid : int;
  p_open : bool;  (** a question is currently posed *)
  p_questions : int;
  p_replayed : int;
  p_pruned : int;
  p_refused : int;
}
(** A counter-only snapshot for introspection ([/debug/sessions]): unlike
    {!view} it never touches the journal, never self-heals a rolled-back
    ask, and never renders the candidate — so it is safe to read from the
    accept loop while the dispatcher owns the session.  The reads are
    plain (weakly consistent), which is fine for a debug endpoint. *)

type t = {
  view : unit -> view;
  peek : unit -> peeked;
  answer : qid:int -> Core.Flaky.reply -> (view, Core.Error.t) result;
  checkpoint : unit -> (unit, Core.Error.t) result;
      (** snapshot the accumulator and compact the journal to
          header + checkpoint (the eviction path); no-op without a journal
          or state codec.  Safe with a question in flight — its [Asked] is
          re-appended after the rewrite. *)
  flush : unit -> unit;  (** force journal buffers to disk (best-effort) *)
  close : unit -> unit;  (** flush + close the journal (drain path) *)
  abort : unit -> unit;  (** crash the journal: buffered records lost *)
}
(** The registry holds steppers of different engines, so the engine type is
    erased behind closures. *)

module Make (S : Core.Interact.SESSION) : sig
  val make :
    ?journal:Core.Journal.t ->
    ?resume:Core.Journal.event list ->
    ?step_budget:(unit -> Core.Budget.t) ->
    ?checkpoint_every:int ->
    ?snapshot:(S.state -> string) ->
    ?restore:(string -> (S.state, string) result) ->
    engine:string ->
    encode:(S.item -> string) ->
    decode:(string -> S.item option) ->
    items:S.item list ->
    unit ->
    (t, Core.Error.t) result
  (** [encode]/[decode] are the journal codec (item identity on the wire
      and in replay).  [step_budget] is drawn fresh for each advance (the
      determined-scan between two questions); default unlimited.  Replay
      events that [decode] rejects are a [Corrupt_journal]-style error.

      [snapshot]/[restore] are the engine's accumulator codec.  When the
      recovered events contain a {!Core.Journal.checkpoint}, [restore]
      rebuilds the state from it and only the tail is replayed; a journal
      bearing a checkpoint but no [restore] codec is refused.
      [checkpoint_every] > 0 (requires both a journal and [snapshot])
      compacts automatically every N labeled answers.  Storage failures
      (ENOSPC, EIO) surface as typed [Error.Storage] results from [answer];
      the journal is never left mid-write — it truncates back to its last
      complete record. *)
end
