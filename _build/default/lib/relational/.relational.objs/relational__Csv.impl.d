lib/relational/csv.ml: Array Buffer List Printf Relation String Value
