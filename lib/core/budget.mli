(** Resource budgets: fuel (step counters), wall-clock deadlines, and
    cooperative cancellation for the super-polynomial learning engines.

    The paper's complexity story (Sections 2–3) is that exact consistency for
    full twig queries is NP-complete, and that when exactness is out of reach
    "some of the annotations might be ignored to be able to compute in
    polynomial time a candidate query".  A budget makes that exact→approximate
    fallback a runtime mechanism: every potentially exponential loop calls
    {!tick}, which raises {!Out_of_budget} once the fuel or the deadline is
    spent, and the caller degrades to a polynomial approximation (see
    [Twiglearn.Fallback], [Joinlearn.Fallback]) instead of hanging.

    A budget is a single mutable token shared by one computation and whoever
    supervises it; {!cancel} from the supervisor makes the next {!tick} raise,
    which is the cooperative-cancellation story. *)

type t

type stats = {
  fuel_spent : int;  (** ticks consumed so far *)
  elapsed : float;  (** wall-clock seconds since {!create} *)
  fuel_limit : int option;
  timeout : float option;
}

type 'a outcome =
  | Done of 'a
  | Exhausted of { partial : 'a option; spent : stats }
      (** The computation ran out of budget; [partial] is whatever result the
          engine had accumulated when it stopped. *)

exception Out_of_budget
(** Raised by {!tick} when the budget is spent or cancelled.  Catch it with
    {!run} at the boundary where a partial result makes sense. *)

val create : ?fuel:int -> ?timeout:float -> unit -> t
(** A fresh budget.  [fuel] bounds the number of ticks; [timeout] is a
    wall-clock deadline in seconds from now.  Omitting both yields an
    unlimited (but still cancellable) budget. *)

val unlimited : unit -> t
(** [create ()]. *)

val is_unlimited : t -> bool
(** No fuel limit and no deadline. *)

val tick : ?cost:int -> t -> unit
(** Spend [cost] (default 1) units of fuel.  @raise Out_of_budget when the
    fuel limit is exceeded, the deadline has passed, or the budget was
    cancelled.  The wall clock is only consulted every few hundred ticks, so
    ticking in an inner loop stays cheap. *)

val cancel : t -> unit
(** Cooperative cancellation: every subsequent {!tick} raises. *)

val exhausted : t -> bool
(** Non-raising check: has the budget tripped (or would the next tick)?  Use
    it where raising mid-state would lose a partial result. *)

val remaining : t -> float option
(** Seconds left before the deadline ([None] when there is none; may be
    negative once it has passed).  Retry policies cap their backoff sleeps
    with it so a retry never outlives the budget. *)

val stats : t -> stats

val run : ?partial:(unit -> 'a option) -> t -> (unit -> 'a) -> 'a outcome
(** [run b f] evaluates [f ()], mapping a normal return to [Done] and an
    escaping {!Out_of_budget} to [Exhausted].  [partial] (queried only on
    exhaustion) recovers whatever the engine had computed — typically a
    closure over the engine's accumulator. *)
