(** A small pool of OCaml 5 domains for data-parallel scans.

    The interactive learners spend most of their time in embarrassingly
    parallel per-item work: the determined-scan over the open pool
    ({!Interact.Make}) and version-space mask tests.  This pool keeps
    [size - 1] worker domains alive across calls (domain spawn costs tens of
    microseconds, far too much to pay once per question) and splits each
    {!map_array} into index chunks claimed from a shared counter.

    {2 Determinism}

    {!map_array} writes result [i] into slot [i] of a pre-sized array: the
    output order is the input order regardless of which domain computed
    which chunk or in what interleaving.  A session driven through the pool
    therefore asks the same questions, in the same order, and writes
    byte-identical journals at every pool size — property-tested in
    [test_twiglearn.ml].

    {2 Sequential fallback}

    A pool of size [<= 1] spawns no domains and {!map_array} degenerates to
    [Array.map] on the calling domain — identical semantics, zero threading.
    The default pool is sequential until {!set_default_size} is called (the
    CLI's [--pool N]); unit tests run sequentially unless they opt in.

    {2 What worker domains may do}

    Worker closures must confine their mutation to their own result slots
    and to domain-local state ([Domain.DLS] — see the twig containment
    cache).  {!Telemetry} is single-domain by design: its entry points
    no-op off the main domain, so instrumented code is safe, if uncounted,
    inside a worker. *)

type t

val create : int -> t
(** [create size] starts a pool of [size] total lanes: the calling domain
    plus [size - 1] spawned workers ([size <= 1] spawns none).  The pool
    must only be driven from the domain that created it. *)

val size : t -> int

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f xs] is [Array.map f xs], computed on all lanes.
    Results are in input order.  If [f] raises, the exception with the
    lowest input index is re-raised on the calling domain after every
    in-flight chunk has drained (so the pool stays usable). *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over a list. *)

val map_array_chunked : t -> chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!map_array}, but one lock round dispatches [chunk] consecutive
    items instead of a pool-derived slice, amortizing dispatch overhead
    for micro-items.  [chunk] is clamped to [>= 1]; results are in input
    order at every pool size and exceptions behave as in {!map_array}. *)

val shutdown : t -> unit
(** Stops and joins the worker domains; idempotent.  Further use of the
    pool is a programming error ([Invalid_argument]). *)

(** {1 The process-default pool}

    One shared pool for code (like {!Interact.Make}) that should not thread
    a pool parameter through every caller.  Starts sequential. *)

val set_default_size : int -> unit
(** Resize the default pool (clamped to [>= 1]).  Tears down the old
    worker domains, if any; the next {!default} call rebuilds lazily.
    Workers are also torn down [at_exit]. *)

val default_size : unit -> int

val default : unit -> t
(** The default pool, built on first use at the configured size. *)

val recommended_size : unit -> int
(** [Domain.recommended_domain_count ()], for [--pool 0 = auto] CLI
    conventions. *)
