lib/uschema/depgraph.ml: Dme List Map Multiplicity Schema Set String Twig
