examples/xpathmark_learning.ml: Array Benchkit Format Lazy List Printf String Sys Twig Twiglearn Uschema Xmltree
