examples/crowd_join.ml: Core Joinlearn List Printf Relational
