lib/uschema/dme.ml: Core Format List Multiplicity Set String
