module type CONCEPT = sig
  type query
  type instance

  val selects : query -> instance -> bool
  val pp_query : Format.formatter -> query -> unit
  val pp_instance : Format.formatter -> instance -> unit
end

module type LEARNER = sig
  include CONCEPT

  val learn : instance Example.t list -> query option
end

module type POSITIVE_LEARNER = sig
  include CONCEPT

  val learn_positive : instance list -> query option
end

module Consistency (C : CONCEPT) = struct
  let check q examples = Example.consistent_with C.selects q examples

  let errors q examples =
    List.filter
      (fun (e : _ Example.t) ->
        match e.polarity with
        | Example.Positive -> not (C.selects q e.value)
        | Example.Negative -> C.selects q e.value)
      examples
end
