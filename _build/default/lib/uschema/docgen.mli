(** Random valid documents of a schema — the sampling substrate behind
    property tests and the schema-relative containment check ({!Qcontain}).

    Generation is top-down: at each node a clause of the label's rule is
    drawn among those whose required labels are productive, then a child
    count per atom within its multiplicity (bounded by [fanout]); near
    [max_depth] the choices collapse to the cheapest ones (nullable atoms
    skipped, minimal counts), so recursion terminates whenever the label is
    productive at all. *)

val generate :
  rng:Core.Prng.t ->
  ?max_depth:int ->
  ?fanout:int ->
  Schema.t ->
  Xmltree.Tree.t option
(** A document valid for the schema ([None] when the root label cannot head
    a finite valid tree, or the depth bound is too tight for it).
    [max_depth] defaults to 8, [fanout] (the cap on a single atom's count)
    to 3.  The result always validates (tested). *)

val subtree :
  rng:Core.Prng.t ->
  ?max_depth:int ->
  ?fanout:int ->
  Schema.t ->
  label:string ->
  Xmltree.Tree.t option
(** Same, rooted at an arbitrary label instead of the schema root. *)
