lib/exchange/mapping.mli: Graphdb Pathlearn Rdf Relational Twig Xmltree
