module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  schema : Schema.t;
  possible : SSet.t SMap.t;
  required : SSet.t SMap.t;
  possible_reach : SSet.t SMap.t;  (** ≥ 1 possible step *)
  guaranteed : SSet.t SMap.t;
      (** [b ∈ guaranteed(a)] iff every valid finite tree rooted at [a] has a
          strict descendant labeled [b] — the disjunction-aware closure of
          the required graph (a required path forces [b], but so does a
          disjunction whose every clause forces it, as in XMark's
          [description → text | parlist] with [text] below both). *)
}

let neighbors table a =
  match SMap.find_opt a table with Some s -> s | None -> SSet.empty

let closure edges labels =
  (* Transitive closure (≥1 step) by iterated propagation; label sets are
     small (tens), so the simple fixpoint is fine. *)
  let init =
    List.fold_left (fun acc l -> SMap.add l (neighbors edges l) acc)
      SMap.empty labels
  in
  let step reach =
    SMap.mapi
      (fun _ direct_and_beyond ->
        SSet.fold
          (fun b acc ->
            SSet.union acc
              (match SMap.find_opt b reach with
              | Some s -> s
              | None -> SSet.empty))
          direct_and_beyond direct_and_beyond)
      reach
  in
  let rec fix reach =
    let reach' = step reach in
    if SMap.equal SSet.equal reach reach' then reach else fix reach'
  in
  fix init

let of_schema schema =
  let labels = Schema.labels schema in
  let possible =
    List.fold_left
      (fun acc a ->
        SMap.add a (SSet.of_list (Dme.alphabet (Schema.rule schema a))) acc)
      SMap.empty labels
  in
  let required =
    List.fold_left
      (fun acc a ->
        let dme = Schema.rule schema a in
        let required_in_clause c =
          List.filter_map
            (fun (l, m) ->
              if Multiplicity.nullable m then None else Some l)
            c
          |> SSet.of_list
        in
        let req =
          match dme with
          | [] -> SSet.empty
          | c :: rest ->
              List.fold_left
                (fun acc c' -> SSet.inter acc (required_in_clause c'))
                (required_in_clause c) rest
        in
        SMap.add a req acc)
      SMap.empty labels
  in
  (* Least fixpoint of: b is guaranteed under a when EVERY clause of a's
     rule has a non-nullable atom x with x = b or b already guaranteed
     under x.  Soundness is by induction on tree height. *)
  let guaranteed =
    let step guar =
      List.fold_left
        (fun acc a ->
          let dme = Schema.rule schema a in
          let candidates =
            List.fold_left
              (fun cs c ->
                List.fold_left
                  (fun cs (x, m) ->
                    if Multiplicity.nullable m then cs
                    else
                      SSet.union cs
                        (SSet.add x
                           (match SMap.find_opt x guar with
                           | Some s -> s
                           | None -> SSet.empty)))
                  cs c)
              SSet.empty dme
          in
          let forced =
            SSet.filter
              (fun b ->
                List.for_all
                  (fun c ->
                    List.exists
                      (fun (x, m) ->
                        (not (Multiplicity.nullable m))
                        && (String.equal x b
                           ||
                           match SMap.find_opt x guar with
                           | Some s -> SSet.mem b s
                           | None -> false))
                      c)
                  dme)
              candidates
          in
          SMap.add a forced acc)
        SMap.empty labels
    in
    let rec fix guar =
      let guar' = step guar in
      if SMap.equal SSet.equal guar guar' then guar else fix guar'
    in
    fix SMap.empty
  in
  {
    schema;
    possible;
    required;
    possible_reach = closure possible labels;
    guaranteed;
  }

let schema g = g.schema

let edge_list table =
  SMap.fold
    (fun a bs acc -> SSet.fold (fun b acc -> (a, b) :: acc) bs acc)
    table []
  |> List.sort compare

let possible_edges g = edge_list g.possible
let required_edges g = edge_list g.required

let test_matches test label =
  match test with
  | Twig.Query.Wildcard -> true
  | Twig.Query.Label l -> String.equal l label

(* Embedding of a filter into a graph from a vertex; recursion is on the
   finite filter tree, so cycles in the graph are harmless. *)
let rec filter_embeds ~direct ~reach (f : Twig.Query.filter) label =
  test_matches f.ftest label
  && List.for_all
       (fun (axis, g) ->
         let candidates =
           match axis with
           | Twig.Query.Child -> neighbors direct label
           | Twig.Query.Descendant -> neighbors reach label
         in
         SSet.exists (fun b -> filter_embeds ~direct ~reach g b) candidates)
       f.fsubs

let satisfiable g (q : Twig.Query.t) =
  let root = Schema.root g.schema in
  let step_ok (s : Twig.Query.step) label =
    test_matches s.test label
    && List.for_all
         (fun (axis, f) ->
           let candidates =
             match axis with
             | Twig.Query.Child -> neighbors g.possible label
             | Twig.Query.Descendant -> neighbors g.possible_reach label
           in
           SSet.exists
             (fun b ->
               filter_embeds ~direct:g.possible ~reach:g.possible_reach f b)
             candidates)
         s.filters
  in
  let rec spine candidates = function
    | [] -> not (SSet.is_empty candidates)
    | (s : Twig.Query.step) :: rest ->
        let here = SSet.filter (step_ok s) candidates in
        if SSet.is_empty here then false
        else
          let next =
            SSet.fold
              (fun a acc ->
                SSet.union acc
                  (match rest with
                  | [] -> SSet.empty
                  | next_step :: _ -> (
                      match next_step.Twig.Query.axis with
                      | Twig.Query.Child -> neighbors g.possible a
                      | Twig.Query.Descendant -> neighbors g.possible_reach a)))
              here SSet.empty
          in
          if rest = [] then true else spine next rest
  in
  match q with
  | [] -> false
  | first :: _ ->
      let start =
        match first.Twig.Query.axis with
        | Twig.Query.Child -> SSet.singleton root
        | Twig.Query.Descendant ->
            SSet.add root (neighbors g.possible_reach root)
      in
      spine start q

let filter_implied g ~at (axis, f) =
  let candidates =
    match axis with
    | Twig.Query.Child -> neighbors g.required at
    | Twig.Query.Descendant -> neighbors g.guaranteed at
  in
  SSet.exists
    (fun b -> filter_embeds ~direct:g.required ~reach:g.guaranteed f b)
    candidates

let label_implied g ~at ~child = SSet.mem child (neighbors g.required at)
