(* Tests for the learning-framework kernel: PRNG, multisets, examples,
   interactive loop, identification in the limit, statistics. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let g1 = Core.Prng.create 42 and g2 = Core.Prng.create 42 in
  let xs1 = List.init 20 (fun _ -> Core.Prng.int g1 1000) in
  let xs2 = List.init 20 (fun _ -> Core.Prng.int g2 1000) in
  check (Alcotest.list Alcotest.int) "same seed, same stream" xs1 xs2

let test_prng_seed_sensitivity () =
  let g1 = Core.Prng.create 1 and g2 = Core.Prng.create 2 in
  let xs1 = List.init 20 (fun _ -> Core.Prng.int g1 1_000_000) in
  let xs2 = List.init 20 (fun _ -> Core.Prng.int g2 1_000_000) in
  Alcotest.(check bool) "different seeds diverge" false (xs1 = xs2)

let prop_prng_int_bounds =
  QCheck.Test.make ~name:"Prng.int stays within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Core.Prng.create seed in
      let x = Core.Prng.int g bound in
      x >= 0 && x < bound)

let test_prng_int_in () =
  let g = Core.Prng.create 7 in
  for _ = 1 to 100 do
    let x = Core.Prng.int_in g 5 9 in
    Alcotest.(check bool) "in range" true (x >= 5 && x <= 9)
  done

let test_prng_invalid_bounds () =
  let g = Core.Prng.create 7 in
  let expect_invalid name fragment f =
    match f () with
    | (_ : int) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (name ^ " names the offending value")
          true (contains msg fragment)
  in
  expect_invalid "int 0" "got 0" (fun () -> Core.Prng.int g 0);
  expect_invalid "int -3" "got -3" (fun () -> Core.Prng.int g (-3));
  expect_invalid "int_in 5 4" "[5, 4]" (fun () -> Core.Prng.int_in g 5 4)

let test_prng_shuffle_permutation () =
  let g = Core.Prng.create 3 in
  let xs = List.init 30 Fun.id in
  let shuffled = Core.Prng.shuffle g xs in
  check
    (Alcotest.list Alcotest.int)
    "same multiset" xs
    (List.sort compare shuffled)

let test_prng_sample_distinct () =
  let g = Core.Prng.create 5 in
  let xs = List.init 20 Fun.id in
  let s = Core.Prng.sample g 8 xs in
  Alcotest.(check int) "8 drawn" 8 (List.length s);
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare s))

let test_prng_sample_exhaust () =
  let g = Core.Prng.create 5 in
  let s = Core.Prng.sample g 99 [ 1; 2; 3 ] in
  check (Alcotest.list Alcotest.int) "whole list" [ 1; 2; 3 ]
    (List.sort compare s)

let test_prng_split_independent () =
  let g = Core.Prng.create 11 in
  let h = Core.Prng.split g in
  let a = List.init 10 (fun _ -> Core.Prng.int g 1000) in
  let b = List.init 10 (fun _ -> Core.Prng.int h 1000) in
  Alcotest.(check bool) "streams differ" false (a = b)

let prop_prng_chance_extremes =
  QCheck.Test.make ~name:"Prng.chance at 0 and 1" ~count:200 QCheck.small_int
    (fun seed ->
      let g = Core.Prng.create seed in
      (not (Core.Prng.chance g 0.0)) && Core.Prng.chance g 1.0)

(* ------------------------------------------------------------------ *)
(* Multiset                                                            *)
(* ------------------------------------------------------------------ *)

module MS = Core.Multiset.Make (String)

let test_multiset_basic () =
  let m = MS.of_list [ "a"; "b"; "a"; "c"; "a" ] in
  Alcotest.(check int) "count a" 3 (MS.count "a" m);
  Alcotest.(check int) "count b" 1 (MS.count "b" m);
  Alcotest.(check int) "count absent" 0 (MS.count "z" m);
  Alcotest.(check int) "cardinal" 5 (MS.cardinal m);
  Alcotest.(check int) "distinct" 3 (MS.distinct m);
  Alcotest.(check (list string)) "support" [ "a"; "b"; "c" ] (MS.support m)

let test_multiset_remove () =
  let m = MS.of_list [ "a"; "a" ] in
  let m = MS.remove "a" m in
  Alcotest.(check int) "one left" 1 (MS.count "a" m);
  let m = MS.remove "a" m in
  Alcotest.(check bool) "empty" true (MS.is_empty m)

let test_multiset_add_count () =
  let m = MS.add ~count:5 "x" MS.empty in
  Alcotest.(check int) "five" 5 (MS.count "x" m);
  Alcotest.(check bool) "zero add is id" true
    (MS.equal m (MS.add ~count:0 "y" m))

let test_multiset_elements () =
  let m = MS.of_list [ "b"; "a"; "b" ] in
  Alcotest.(check (list string)) "elements" [ "a"; "b"; "b" ] (MS.elements m)

let small_multiset =
  QCheck.map MS.of_list QCheck.(list_of_size Gen.(0 -- 8) (printable_string_of_size (Gen.return 1)))

let prop_multiset_sum_cardinal =
  QCheck.Test.make ~name:"sum adds cardinals" ~count:200
    (QCheck.pair small_multiset small_multiset)
    (fun (a, b) ->
      MS.cardinal (MS.sum a b) = MS.cardinal a + MS.cardinal b)

let prop_multiset_subset_refl =
  QCheck.Test.make ~name:"subset is reflexive" ~count:200 small_multiset
    (fun m -> MS.subset m m)

let prop_multiset_subset_sum =
  QCheck.Test.make ~name:"a ⊆ a + b" ~count:200
    (QCheck.pair small_multiset small_multiset)
    (fun (a, b) -> MS.subset a (MS.sum a b))

(* ------------------------------------------------------------------ *)
(* Example                                                             *)
(* ------------------------------------------------------------------ *)

let test_example_partition () =
  let exs =
    [
      Core.Example.positive 1;
      Core.Example.negative 2;
      Core.Example.positive 3;
    ]
  in
  let pos, neg = Core.Example.partition exs in
  check (Alcotest.list Alcotest.int) "positives" [ 1; 3 ] pos;
  check (Alcotest.list Alcotest.int) "negatives" [ 2 ] neg

let test_example_consistency () =
  let selects threshold x = x > threshold in
  let exs = [ Core.Example.positive 5; Core.Example.negative 1 ] in
  Alcotest.(check bool) "threshold 3 consistent" true
    (Core.Example.consistent_with selects 3 exs);
  Alcotest.(check bool) "threshold 0 selects the negative" false
    (Core.Example.consistent_with selects 0 exs);
  Alcotest.(check bool) "threshold 7 misses the positive" false
    (Core.Example.consistent_with selects 7 exs)

(* ------------------------------------------------------------------ *)
(* Interact: a toy number-guessing session                             *)
(* ------------------------------------------------------------------ *)

(* Concept class: thresholds t; an int item is positive iff item >= t.
   Determined: an item above a known positive is positive; below a known
   negative is negative. *)
module Threshold_session = struct
  type query = int
  type item = int
  type state = { min_pos : int option; max_neg : int option }

  let init _ = { min_pos = None; max_neg = None }

  let record st item label =
    if label then
      { st with min_pos = Some (match st.min_pos with None -> item | Some m -> min m item) }
    else
      { st with max_neg = Some (match st.max_neg with None -> item | Some m -> max m item) }

  let determined st item =
    match (st.min_pos, st.max_neg) with
    | Some p, _ when item >= p -> Some true
    | _, Some n when item <= n -> Some false
    | _ -> None

  let candidate st =
    match st.min_pos with Some p -> Some p | None -> None

  let pp_item = Format.pp_print_int
  let pp_query = Format.pp_print_int
end

module Threshold_loop = Core.Interact.Make (Threshold_session)

let test_interact_convergence () =
  let goal = 13 in
  let items = List.init 30 Fun.id in
  let outcome =
    Threshold_loop.run ~oracle:(fun i -> i >= goal) ~items ()
  in
  (match outcome.query with
  | Some q -> Alcotest.(check int) "learned threshold" goal q
  | None -> Alcotest.fail "no candidate");
  Alcotest.(check int) "everything asked or pruned" 30
    (outcome.questions + outcome.pruned)

let test_interact_prunes () =
  let items = List.init 100 Fun.id in
  let outcome = Threshold_loop.run ~oracle:(fun i -> i >= 50) ~items () in
  Alcotest.(check bool) "pruning happened" true (outcome.pruned > 0)

let test_interact_max_questions () =
  let items = List.init 100 Fun.id in
  let outcome =
    Threshold_loop.run ~max_questions:3 ~oracle:(fun i -> i >= 50) ~items ()
  in
  Alcotest.(check bool) "at most 3 questions" true (outcome.questions <= 3)

let test_interact_cost () =
  let items = List.init 10 Fun.id in
  let outcome = Threshold_loop.run ~oracle:(fun i -> i >= 5) ~items () in
  let cost = Threshold_loop.cost ~price_per_question:0.05 outcome in
  Alcotest.(check (float 1e-9)) "cost is price × questions"
    (0.05 *. float_of_int outcome.questions)
    cost

let test_interact_random_strategy () =
  let items = List.init 40 Fun.id in
  let outcome =
    Threshold_loop.run
      ~rng:(Core.Prng.create 1)
      ~strategy:Core.Interact.random_strategy
      ~oracle:(fun i -> i >= 20)
      ~items ()
  in
  match outcome.query with
  | Some q -> Alcotest.(check int) "still converges" 20 q
  | None -> Alcotest.fail "no candidate"

(* ------------------------------------------------------------------ *)
(* Limit                                                               *)
(* ------------------------------------------------------------------ *)

let test_limit_converges () =
  (* Learner: max of positives seen so far; target 7 with stream containing
     a 7 at position 3 (1-indexed). *)
  let learn xs = match xs with [] -> None | _ -> Some (List.fold_left max 0 xs) in
  let verdict =
    Core.Limit.run ~learn ~equiv:Int.equal ~target:7 ~stream:[ 3; 5; 7; 2; 6 ]
  in
  Alcotest.(check (option int)) "converges at 3" (Some 3) verdict.converged_at;
  Alcotest.(check bool) "converged" true (Core.Limit.converged verdict)

let test_limit_no_convergence () =
  let learn xs = match xs with [] -> None | _ -> Some (List.fold_left max 0 xs) in
  let verdict =
    Core.Limit.run ~learn ~equiv:Int.equal ~target:9 ~stream:[ 1; 2; 3 ]
  in
  Alcotest.(check (option int)) "never" None verdict.converged_at

let test_limit_unstable_hypothesis () =
  (* The hypothesis equals the target mid-stream but moves away again: the
     convergence point must not count it. *)
  let learn xs = Some (List.fold_left ( + ) 0 xs) in
  let verdict =
    Core.Limit.run ~learn ~equiv:Int.equal ~target:6 ~stream:[ 6; -1; 1 ]
  in
  Alcotest.(check (option int)) "only stable convergence counts" (Some 3)
    verdict.converged_at

(* ------------------------------------------------------------------ *)
(* Pac: learning thresholds over integers                              *)
(* ------------------------------------------------------------------ *)

(* Concept: x >= t for t in [0, 100); learner: the smallest positive seen
   (consistent, most specific). *)
let threshold_setup =
  {
    Core.Pac.learn =
      (fun examples ->
        match Core.Example.positives examples with
        | [] -> None
        | xs -> Some (List.fold_left min max_int xs));
    selects = (fun t x -> x >= t);
    sample = (fun rng -> Core.Prng.int rng 100);
    target = (fun x -> x >= 42);
  }

let test_pac_error_of_target () =
  let rng = Core.Prng.create 3 in
  Alcotest.(check (float 1e-9)) "target has zero error" 0.
    (Core.Pac.error threshold_setup rng 42 ~samples:500)

let test_pac_error_of_bad_hypothesis () =
  let rng = Core.Prng.create 4 in
  let e = Core.Pac.error threshold_setup rng 90 ~samples:2000 in
  (* Threshold 90 misclassifies x in [42, 90): about 48%. *)
  Alcotest.(check bool) "substantial error" true (e > 0.3 && e < 0.7)

let test_pac_learning_curve_decreases () =
  let curve =
    Core.Pac.learning_curve threshold_setup ~seed:5 ~sizes:[ 2; 64 ]
      ~trials:10 ~test_samples:300 ()
  in
  match curve with
  | [ small; large ] ->
      Alcotest.(check bool) "more data, less error" true
        (large.mean_error <= small.mean_error);
      Alcotest.(check bool) "large sample near-exact" true
        (large.mean_error < 0.05)
  | _ -> Alcotest.fail "two points expected"

let test_pac_sample_complexity () =
  match
    Core.Pac.sample_complexity threshold_setup ~seed:6 ~epsilon:0.1 ~delta:0.2
      ~trials:10 ~test_samples:300 ()
  with
  | None -> Alcotest.fail "threshold class is PAC-learnable"
  | Some m -> Alcotest.(check bool) "reasonable m" true (m >= 2 && m <= 256)

(* ------------------------------------------------------------------ *)
(* Budget deadlines (monotonic clock)                                  *)
(* ------------------------------------------------------------------ *)

let test_budget_remaining () =
  let b = Core.Budget.create ~timeout:5.0 () in
  (match Core.Budget.remaining b with
  | None -> Alcotest.fail "deadline budget has remaining time"
  | Some r -> Alcotest.(check bool) "within (0, 5]" true (r > 0. && r <= 5.));
  Alcotest.(check (option (float 0.))) "no deadline, no remaining" None
    (Core.Budget.remaining (Core.Budget.unlimited ()))

let test_budget_remaining_expired () =
  let b = Core.Budget.create ~timeout:0.0 () in
  (match Core.Budget.remaining b with
  | None -> Alcotest.fail "deadline budget has remaining time"
  | Some r -> Alcotest.(check bool) "spent" true (r <= 0.));
  Alcotest.(check bool) "exhausted" true (Core.Budget.exhausted b)

(* ------------------------------------------------------------------ *)
(* Retry: backoff, classification, circuit breaker                     *)
(* ------------------------------------------------------------------ *)

let retry_policy ?(max_attempts = 3) ?(breaker_threshold = 5) ?(cooldown = 60.)
    () =
  Core.Retry.policy ~max_attempts ~base_delay:0.001 ~max_delay:0.002
    ~breaker_threshold ~cooldown ~sleep:Core.Retry.no_sleep ()

let test_retry_transient_then_ok () =
  let p = retry_policy ~max_attempts:5 () in
  let b = Core.Retry.breaker p in
  let n = ref 0 in
  let f () = incr n; !n in
  let classify v = if v < 3 then `Transient else `Ok in
  (match Core.Retry.call ~rng:(Core.Prng.create 1) p b ~classify f with
  | Core.Retry.Answered (3, 3) -> ()
  | Core.Retry.Answered (v, a) -> Alcotest.failf "answered (%d, %d)" v a
  | _ -> Alcotest.fail "expected Answered");
  Alcotest.(check bool) "breaker stays closed" true
    (Core.Retry.breaker_state b = Core.Retry.Closed)

let test_retry_gives_up () =
  let p = retry_policy ~max_attempts:3 () in
  let b = Core.Retry.breaker p in
  let n = ref 0 in
  match
    Core.Retry.call ~rng:(Core.Prng.create 1) p b
      ~classify:(fun _ -> `Transient)
      (fun () -> incr n)
  with
  | Core.Retry.Gave_up ((), 3) -> Alcotest.(check int) "3 invocations" 3 !n
  | _ -> Alcotest.fail "expected Gave_up after max_attempts"

let test_retry_permanent_stops () =
  let p = retry_policy ~max_attempts:5 () in
  let b = Core.Retry.breaker p in
  let n = ref 0 in
  match
    Core.Retry.call ~rng:(Core.Prng.create 1) p b
      ~classify:(fun _ -> `Permanent)
      (fun () -> incr n)
  with
  | Core.Retry.Gave_up ((), 1) -> Alcotest.(check int) "1 invocation" 1 !n
  | _ -> Alcotest.fail "permanent reply must not be retried"

let test_retry_breaker_opens () =
  let p = retry_policy ~max_attempts:1 ~breaker_threshold:2 () in
  let b = Core.Retry.breaker p in
  let calls = ref 0 in
  let fail () =
    Core.Retry.call ~rng:(Core.Prng.create 1) p b
      ~classify:(fun _ -> `Transient)
      (fun () -> incr calls)
  in
  ignore (fail ());
  Alcotest.(check bool) "closed below threshold" true
    (Core.Retry.breaker_state b = Core.Retry.Closed);
  ignore (fail ());
  Alcotest.(check bool) "open at threshold" true
    (Core.Retry.breaker_state b = Core.Retry.Open);
  (match fail () with
  | Core.Retry.Rejected -> ()
  | _ -> Alcotest.fail "open breaker must reject");
  Alcotest.(check int) "oracle never invoked when open" 2 !calls

let test_retry_half_open_probe () =
  (* cooldown 0: the breaker is half-open as soon as it opens; a successful
     probe closes it, a failed probe reopens it. *)
  let p = retry_policy ~max_attempts:1 ~breaker_threshold:1 ~cooldown:0. () in
  let b = Core.Retry.breaker p in
  ignore
    (Core.Retry.call ~rng:(Core.Prng.create 1) p b
       ~classify:(fun _ -> `Transient)
       (fun () -> ()));
  Alcotest.(check bool) "half-open after cooldown" true
    (Core.Retry.breaker_state b = Core.Retry.Half_open);
  (match
     Core.Retry.call ~rng:(Core.Prng.create 1) p b
       ~classify:(fun _ -> `Ok)
       (fun () -> "probe")
   with
  | Core.Retry.Answered ("probe", 1) -> ()
  | _ -> Alcotest.fail "half-open breaker allows one probe");
  Alcotest.(check bool) "probe success closes" true
    (Core.Retry.breaker_state b = Core.Retry.Closed)

let test_retry_half_open_failed_probe_reopens () =
  (* Regression: a failed half-open probe must re-open the breaker, not
     flap it closed — the server feeds probe outcomes via breaker_failure. *)
  let p = retry_policy ~max_attempts:1 ~breaker_threshold:1 ~cooldown:0. () in
  let b = Core.Retry.breaker p in
  ignore
    (Core.Retry.call ~rng:(Core.Prng.create 1) p b
       ~classify:(fun _ -> `Transient)
       (fun () -> ()));
  Alcotest.(check bool) "half-open after cooldown" true
    (Core.Retry.breaker_state b = Core.Retry.Half_open);
  (match
     Core.Retry.call ~rng:(Core.Prng.create 1) p b
       ~classify:(fun _ -> `Transient)
       (fun () -> ())
   with
  | Core.Retry.Gave_up ((), 1) -> ()
  | _ -> Alcotest.fail "half-open breaker allows exactly one probe");
  (* cooldown is 0, so a re-opened breaker presents as Half_open again; the
     tell is that the *next* failed probe still only gets one attempt and
     the state never reads Closed. *)
  Alcotest.(check bool) "failed probe does not close" true
    (Core.Retry.breaker_state b <> Core.Retry.Closed);
  Core.Retry.breaker_failure b;
  Alcotest.(check bool) "fed failure keeps it open" true
    (Core.Retry.breaker_state b <> Core.Retry.Closed)

let test_retry_half_open_two_probes () =
  (* half_open_probes = 2: one success is not enough to close; two are. *)
  let p =
    Core.Retry.policy ~max_attempts:1 ~base_delay:0.001 ~max_delay:0.002
      ~breaker_threshold:1 ~cooldown:0. ~half_open_probes:2
      ~sleep:Core.Retry.no_sleep ()
  in
  let b = Core.Retry.breaker p in
  Core.Retry.breaker_failure b;
  Alcotest.(check bool) "open after threshold" true
    (Core.Retry.breaker_state b <> Core.Retry.Closed);
  Core.Retry.breaker_success b;
  Alcotest.(check bool) "one success of two keeps it half-open" true
    (Core.Retry.breaker_state b <> Core.Retry.Closed);
  Core.Retry.breaker_success b;
  Alcotest.(check bool) "second success closes" true
    (Core.Retry.breaker_state b = Core.Retry.Closed);
  (* and a failure mid-probe-count resets: open again, one success is not
     enough afterwards either *)
  Core.Retry.breaker_failure b;
  Core.Retry.breaker_success b;
  Alcotest.(check bool) "probe count resets on failure" true
    (Core.Retry.breaker_state b <> Core.Retry.Closed)

let test_retry_budget_stops_retrying () =
  (* An exhausted budget turns a transient reply into an immediate give-up:
     retrying must never outlive the deadline. *)
  let p = retry_policy ~max_attempts:10 () in
  let b = Core.Retry.breaker p in
  let bud = Core.Budget.create ~timeout:0.0 () in
  let n = ref 0 in
  match
    Core.Retry.call ~budget:bud ~rng:(Core.Prng.create 1) p b
      ~classify:(fun _ -> `Transient)
      (fun () -> incr n)
  with
  | Core.Retry.Gave_up ((), 1) -> Alcotest.(check int) "1 invocation" 1 !n
  | _ -> Alcotest.fail "exhausted budget must stop the retry loop"

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Core.Stats.mean [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-9)) "median odd" 2. (Core.Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Core.Stats.median [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Core.Stats.mean []);
  Alcotest.(check (float 1e-9)) "min" 1. (Core.Stats.minimum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "max" 3. (Core.Stats.maximum [ 3.; 1.; 2. ])

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "constant has zero stddev" 0.
    (Core.Stats.stddev [ 5.; 5.; 5. ]);
  Alcotest.(check (float 1e-6)) "known stddev" 2.
    (Core.Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50. (Core.Stats.percentile 0.5 xs);
  Alcotest.(check (float 1e-9)) "p99" 99. (Core.Stats.percentile 0.99 xs)

let test_stats_percentile_edges () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  (* The rank clamp makes the extremes exact, not out-of-range. *)
  Alcotest.(check (float 1e-9)) "p=0 is the minimum" 1.
    (Core.Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p=1 is the maximum" 100.
    (Core.Stats.percentile 1.0 xs);
  Alcotest.(check (float 1e-9)) "empty series" 0.
    (Core.Stats.percentile 0.5 []);
  Alcotest.(check (float 1e-9)) "single sample, p=0" 7.
    (Core.Stats.percentile 0.0 [ 7. ]);
  Alcotest.(check (float 1e-9)) "single sample, p=1" 7.
    (Core.Stats.percentile 1.0 [ 7. ]);
  Alcotest.(check (float 1e-9)) "all equal" 3.
    (Core.Stats.percentile 0.9 [ 3.; 3.; 3.; 3. ])

let test_stats_time () =
  let x, dt = Core.Stats.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (dt >= 0.)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_map_preserves_order () =
  let xs = Array.init 1000 Fun.id in
  let expect = Array.map (fun x -> x * x) xs in
  List.iter
    (fun size ->
      let pool = Core.Pool.create size in
      Fun.protect
        ~finally:(fun () -> Core.Pool.shutdown pool)
        (fun () ->
          check
            (Alcotest.array Alcotest.int)
            (Printf.sprintf "input order at size %d" size)
            expect
            (Core.Pool.map_array pool (fun x -> x * x) xs);
          (* The pool is persistent: a second job reuses the same workers. *)
          check
            (Alcotest.list Alcotest.int)
            (Printf.sprintf "reuse at size %d" size)
            (List.init 100 (fun i -> i + 1))
            (Core.Pool.map_list pool succ (List.init 100 Fun.id))))
    [ 1; 2; 4 ]

let test_pool_empty_and_singleton () =
  let pool = Core.Pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Core.Pool.shutdown pool)
    (fun () ->
      check (Alcotest.array Alcotest.int) "empty" [||]
        (Core.Pool.map_array pool succ [||]);
      check (Alcotest.array Alcotest.int) "singleton" [| 8 |]
        (Core.Pool.map_array pool succ [| 7 |]))

let test_pool_exception_propagates () =
  let pool = Core.Pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Core.Pool.shutdown pool)
    (fun () ->
      let xs = Array.init 1000 Fun.id in
      (* Several items raise; the lowest input index must win, so the
         behavior matches the sequential map. *)
      (match
         Core.Pool.map_array pool
           (fun x -> if x >= 500 then failwith (string_of_int x) else x)
           xs
       with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          check Alcotest.string "lowest-index exception" "500" msg);
      (* The pool survives a failed job. *)
      check (Alcotest.array Alcotest.int) "usable after failure"
        (Array.map succ xs)
        (Core.Pool.map_array pool succ xs))

let test_pool_chunked_deterministic () =
  let xs = Array.init 257 Fun.id in
  let expect = Array.map (fun x -> x * 3) xs in
  List.iter
    (fun size ->
      let pool = Core.Pool.create size in
      Fun.protect
        ~finally:(fun () -> Core.Pool.shutdown pool)
        (fun () ->
          List.iter
            (fun chunk ->
              check
                (Alcotest.array Alcotest.int)
                (Printf.sprintf "pool %d chunk %d" size chunk)
                expect
                (Core.Pool.map_array_chunked pool ~chunk (fun x -> x * 3) xs))
            (* 0 exercises the clamp; 1000 exceeds the input length. *)
            [ 0; 1; 3; 64; 1000 ];
          check
            (Alcotest.array Alcotest.int)
            (Printf.sprintf "empty at pool %d" size)
            [||]
            (Core.Pool.map_array_chunked pool ~chunk:4 succ [||])))
    [ 1; 2; 4 ]

let test_pool_chunked_exception_propagates () =
  let pool = Core.Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Core.Pool.shutdown pool)
    (fun () ->
      let xs = Array.init 100 Fun.id in
      (match
         Core.Pool.map_array_chunked pool ~chunk:7
           (fun x -> if x >= 40 then failwith (string_of_int x) else x)
           xs
       with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          check Alcotest.string "lowest-index exception" "40" msg);
      check (Alcotest.array Alcotest.int) "usable after failure"
        (Array.map succ xs)
        (Core.Pool.map_array_chunked pool ~chunk:7 succ xs))

let test_pool_default_resize () =
  let before = Core.Pool.default_size () in
  Fun.protect
    ~finally:(fun () -> Core.Pool.set_default_size before)
    (fun () ->
      Core.Pool.set_default_size 3;
      check Alcotest.int "resized" 3 (Core.Pool.default_size ());
      check Alcotest.int "default pool has the size" 3
        (Core.Pool.size (Core.Pool.default ()));
      Core.Pool.set_default_size 0;
      check Alcotest.int "clamped to 1" 1 (Core.Pool.default_size ());
      Alcotest.(check bool) "recommended size positive" true
        (Core.Pool.recommended_size () >= 1))

let () =
  Alcotest.run "core"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int_in" `Quick test_prng_int_in;
          Alcotest.test_case "invalid bounds" `Quick test_prng_invalid_bounds;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_prng_sample_distinct;
          Alcotest.test_case "sample exhaust" `Quick test_prng_sample_exhaust;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          qcheck prop_prng_int_bounds;
          qcheck prop_prng_chance_extremes;
        ] );
      ( "multiset",
        [
          Alcotest.test_case "basic" `Quick test_multiset_basic;
          Alcotest.test_case "remove" `Quick test_multiset_remove;
          Alcotest.test_case "add count" `Quick test_multiset_add_count;
          Alcotest.test_case "elements" `Quick test_multiset_elements;
          qcheck prop_multiset_sum_cardinal;
          qcheck prop_multiset_subset_refl;
          qcheck prop_multiset_subset_sum;
        ] );
      ( "example",
        [
          Alcotest.test_case "partition" `Quick test_example_partition;
          Alcotest.test_case "consistency" `Quick test_example_consistency;
        ] );
      ( "interact",
        [
          Alcotest.test_case "convergence" `Quick test_interact_convergence;
          Alcotest.test_case "prunes" `Quick test_interact_prunes;
          Alcotest.test_case "max questions" `Quick test_interact_max_questions;
          Alcotest.test_case "cost" `Quick test_interact_cost;
          Alcotest.test_case "random strategy" `Quick test_interact_random_strategy;
        ] );
      ( "limit",
        [
          Alcotest.test_case "converges" `Quick test_limit_converges;
          Alcotest.test_case "no convergence" `Quick test_limit_no_convergence;
          Alcotest.test_case "unstable hypothesis" `Quick test_limit_unstable_hypothesis;
        ] );
      ( "pac",
        [
          Alcotest.test_case "target error" `Quick test_pac_error_of_target;
          Alcotest.test_case "bad hypothesis error" `Quick test_pac_error_of_bad_hypothesis;
          Alcotest.test_case "curve decreases" `Quick test_pac_learning_curve_decreases;
          Alcotest.test_case "sample complexity" `Quick test_pac_sample_complexity;
        ] );
      ( "budget",
        [
          Alcotest.test_case "remaining" `Quick test_budget_remaining;
          Alcotest.test_case "remaining expired" `Quick
            test_budget_remaining_expired;
        ] );
      ( "retry",
        [
          Alcotest.test_case "transient then ok" `Quick
            test_retry_transient_then_ok;
          Alcotest.test_case "gives up" `Quick test_retry_gives_up;
          Alcotest.test_case "permanent stops" `Quick test_retry_permanent_stops;
          Alcotest.test_case "breaker opens" `Quick test_retry_breaker_opens;
          Alcotest.test_case "half-open probe" `Quick test_retry_half_open_probe;
          Alcotest.test_case "failed half-open probe re-opens" `Quick
            test_retry_half_open_failed_probe_reopens;
          Alcotest.test_case "half_open_probes=2 needs two successes" `Quick
            test_retry_half_open_two_probes;
          Alcotest.test_case "budget stops retrying" `Quick
            test_retry_budget_stops_retrying;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick
            test_pool_map_preserves_order;
          Alcotest.test_case "empty and singleton" `Quick
            test_pool_empty_and_singleton;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "chunked determinism" `Quick
            test_pool_chunked_deterministic;
          Alcotest.test_case "chunked exception propagates" `Quick
            test_pool_chunked_exception_propagates;
          Alcotest.test_case "default resize" `Quick test_pool_default_resize;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile edges" `Quick
            test_stats_percentile_edges;
          Alcotest.test_case "time" `Quick test_stats_time;
        ] );
    ]
