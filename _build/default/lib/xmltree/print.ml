let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let is_attr (n : Tree.t) = String.length n.label > 1 && n.label.[0] = '@'

let attr_name (n : Tree.t) = String.sub n.label 1 (String.length n.label - 1)

let attr_value (n : Tree.t) =
  match n.children with
  | [ v ] -> ( match Tree.text_value v with Some s -> s | None -> "")
  | _ -> ""

let to_xml ?(indent = 2) root =
  let buf = Buffer.create 1024 in
  let pad depth =
    if indent > 0 then Buffer.add_string buf (String.make (depth * indent) ' ')
  in
  let newline () = if indent > 0 then Buffer.add_char buf '\n' in
  let rec emit depth (n : Tree.t) =
    match Tree.text_value n with
    | Some txt ->
        pad depth;
        Buffer.add_string buf (escape txt);
        newline ()
    | None ->
        let attrs, content = List.partition is_attr n.children in
        pad depth;
        Buffer.add_char buf '<';
        Buffer.add_string buf n.label;
        List.iter
          (fun a ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (attr_name a);
            Buffer.add_string buf "=\"";
            Buffer.add_string buf (escape (attr_value a));
            Buffer.add_char buf '"')
          attrs;
        if content = [] then (
          Buffer.add_string buf "/>";
          newline ())
        else (
          Buffer.add_char buf '>';
          newline ();
          List.iter (emit (depth + 1)) content;
          pad depth;
          Buffer.add_string buf "</";
          Buffer.add_string buf n.label;
          Buffer.add_char buf '>';
          newline ())
  in
  emit 0 root;
  Buffer.contents buf

let pp_xml ppf t = Format.pp_print_string ppf (to_xml t)
