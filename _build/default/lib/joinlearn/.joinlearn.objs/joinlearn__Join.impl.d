lib/joinlearn/join.ml: Core List Signature
