(* Pattern view of a query: a single tree with a distinguished output node,
   used for homomorphism checks and canonical-model generation. *)

type pnode = {
  pid : int;
  ptest : Query.test;
  pout : bool;
  psubs : (Query.axis * pnode) list;
}

type pattern = {
  first_axis : Query.axis;  (** edge from the virtual root to [proot] *)
  proot : pnode;
  pcount : int;
  pnodes : pnode array;  (** indexed by [pid] *)
}

let build_pattern ~first_axis ~make_root =
  let counter = ref 0 in
  let acc = ref [] in
  let fresh_id () =
    let id = !counter in
    incr counter;
    id
  in
  let register n =
    acc := n :: !acc;
    n
  in
  let root = make_root fresh_id register in
  let pnodes = Array.make !counter root in
  List.iter (fun n -> pnodes.(n.pid) <- n) !acc;
  { first_axis; proot = root; pcount = !counter; pnodes }

let rec pnode_of_filter fresh_id register (f : Query.filter) =
  let id = fresh_id () in
  let subs =
    List.map (fun (a, g) -> (a, pnode_of_filter fresh_id register g)) f.fsubs
  in
  register { pid = id; ptest = f.ftest; pout = false; psubs = subs }

let pattern_of_query (q : Query.t) =
  match q with
  | [] -> invalid_arg "Contain: empty query"
  | first :: _ ->
      build_pattern ~first_axis:first.axis ~make_root:(fun fresh_id register ->
          let rec spine = function
            | [] -> assert false
            | (s : Query.step) :: rest ->
                let id = fresh_id () in
                let filter_subs =
                  List.map
                    (fun (a, f) -> (a, pnode_of_filter fresh_id register f))
                    s.filters
                in
                let spine_subs =
                  match rest with
                  | [] -> []
                  | next :: _ -> [ (next.axis, spine rest) ]
                in
                register
                  {
                    pid = id;
                    ptest = s.test;
                    pout = rest = [];
                    psubs = filter_subs @ spine_subs;
                  }
          in
          spine q)

let pattern_of_filter (f : Query.filter) =
  build_pattern ~first_axis:Query.Child ~make_root:(fun fresh_id register ->
      pnode_of_filter fresh_id register f)

(* Strict descendants (via any edge kind) of every node of a pattern. *)
let descendants pat =
  let table = Array.make pat.pcount [] in
  let rec go n =
    let below =
      List.concat_map (fun (_, c) -> c :: go_memo c) n.psubs
    in
    table.(n.pid) <- below;
    below
  and go_memo c =
    (* children are processed before parents read their entry *)
    if table.(c.pid) = [] then go c else table.(c.pid)
  in
  ignore (go pat.proot);
  table

(* Homomorphism from pattern [p2] into pattern [p1]; [require_out] demands
   output nodes map to output nodes (containment); filters set it false. *)
let hom_exists ?(require_out = true) p2 p1 =
  let desc1 = descendants p1 in
  let memo = Hashtbl.create 64 in
  let rec can_map (u2 : pnode) (u1 : pnode) =
    let key = (u2.pid, u1.pid) in
    match Hashtbl.find_opt memo key with
    | Some b -> b
    | None ->
        (* Break potential re-entry conservatively: patterns are trees, so
           recursion is well-founded; no placeholder needed. *)
        let test_ok =
          match u2.ptest with
          | Query.Wildcard -> true
          | Query.Label l -> u2.ptest = u1.ptest || u1.ptest = Query.Label l
        in
        let out_ok = (not require_out) || (not u2.pout) || u1.pout in
        let subs_ok =
          test_ok && out_ok
          && List.for_all
               (fun (a, s2) ->
                 match a with
                 | Query.Child ->
                     List.exists
                       (fun (a1, v) -> a1 = Query.Child && can_map s2 v)
                       u1.psubs
                 | Query.Descendant ->
                     List.exists (fun v -> can_map s2 v) desc1.(u1.pid))
               u2.psubs
        in
        Hashtbl.add memo key subs_ok;
        subs_ok
  in
  match p2.first_axis with
  | Query.Child -> p1.first_axis = Query.Child && can_map p2.proot p1.proot
  | Query.Descendant ->
      can_map p2.proot p1.proot
      || List.exists
           (fun v -> can_map p2.proot v)
           (descendants p1).(p1.proot.pid)

(* Containment sits on the hottest path in the repo (millions of calls per
   interactive session via lgg minimization), so it gets counters only —
   spans here would dominate the trace and the runtime. *)
let m_subsumed = Core.Telemetry.Metrics.counter "learnq.twig.contain_calls"

let m_filter_subsumed =
  Core.Telemetry.Metrics.counter "learnq.twig.filter_contain_calls"

let m_semantic =
  Core.Telemetry.Metrics.counter "learnq.twig.semantic_contain_calls"

let subsumed q1 q2 =
  Core.Telemetry.Metrics.incr m_subsumed;
  let p1 = pattern_of_query q1 and p2 = pattern_of_query q2 in
  hom_exists p2 p1

let equiv q1 q2 = subsumed q1 q2 && subsumed q2 q1

let filter_subsumed_uncached (a1, f1) (a2, f2) =
  let p1 = pattern_of_filter f1 and p2 = pattern_of_filter f2 in
  let root_to_root () = hom_exists ~require_out:false p2 p1 in
  let root_to_any () =
    hom_exists ~require_out:false p2 p1
    || List.exists
         (fun v ->
           hom_exists ~require_out:false
             { p2 with first_axis = Query.Child }
             { p1 with proot = v; first_axis = Query.Child })
         (descendants p1).(p1.proot.pid)
  in
  match (a1, a2) with
  | Query.Child, Query.Child -> root_to_root ()
  | Query.Child, Query.Descendant -> root_to_any ()
  | Query.Descendant, Query.Descendant -> root_to_any ()
  | Query.Descendant, Query.Child -> false

(* ------------------------------------------------------------------ *)
(* Memoized filter containment                                         *)
(* ------------------------------------------------------------------ *)

(* [filter_subsumed] keys a per-domain memo table on hash-consed filter ids
   (Hcons): the LGG keeps its filter nodes alive across merges and probes,
   so the same (edge, edge) pairs recur throughout a session and each
   repeat costs one int-pair lookup instead of a homomorphism search.  The
   table is bounded (cleared wholesale at capacity) and tied to the Hcons
   generation, whose clears invalidate the ids it is keyed on. *)

let m_cache_hits = Core.Telemetry.Metrics.counter "learnq.twig.contain_cache_hits"

let m_cache_misses =
  Core.Telemetry.Metrics.counter "learnq.twig.contain_cache_misses"

let cache_on = ref true
let cache_capacity = ref (1 lsl 16)

let set_filter_cache ?enabled ?capacity () =
  Option.iter (fun b -> cache_on := b) enabled;
  Option.iter (fun c -> cache_capacity := max 16 c) capacity

type memo = { tbl : (int * int, bool) Hashtbl.t; mutable m_gen : int }

let memo_dls : memo Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { tbl = Hashtbl.create 4096; m_gen = 0 })

let filter_subsumed ((a1, f1) as e1) ((a2, f2) as e2) =
  Core.Telemetry.Metrics.incr m_filter_subsumed;
  if not !cache_on then filter_subsumed_uncached e1 e2
  else begin
    let memo = Domain.DLS.get memo_dls in
    let gen = Hcons.generation () in
    if memo.m_gen <> gen then begin
      Hashtbl.reset memo.tbl;
      memo.m_gen <- gen
    end;
    let f1c, id1 = Hcons.filter f1 and f2c, id2 = Hcons.filter f2 in
    (* An id re-check: interning may itself have cleared the tables. *)
    let gen' = Hcons.generation () in
    if memo.m_gen <> gen' then begin
      Hashtbl.reset memo.tbl;
      memo.m_gen <- gen'
    end;
    let axis_bit = function Query.Child -> 0 | Query.Descendant -> 1 in
    let key = ((id1 lsl 1) lor axis_bit a1, (id2 lsl 1) lor axis_bit a2) in
    match Hashtbl.find_opt memo.tbl key with
    | Some b ->
        Core.Telemetry.Metrics.incr m_cache_hits;
        b
    | None ->
        Core.Telemetry.Metrics.incr m_cache_misses;
        let b = filter_subsumed_uncached (a1, f1c) (a2, f2c) in
        if Hashtbl.length memo.tbl >= !cache_capacity then
          Hashtbl.reset memo.tbl;
        Hashtbl.add memo.tbl key b;
        b
  end

(* ------------------------------------------------------------------ *)
(* Canonical models                                                    *)
(* ------------------------------------------------------------------ *)

let fresh_label_for q =
  let used = Query.labels q in
  let rec pick i =
    let candidate = if i = 0 then "_fresh_" else Printf.sprintf "_fresh%d_" i in
    if List.mem candidate used then pick (i + 1) else candidate
  in
  pick 0

let canonical_instances ?(max_variants = 64) q =
  let fresh = fresh_label_for q in
  let pat = pattern_of_query q in
  (* Collect descendant edges: the virtual-root edge (if descendant) plus
     every descendant edge in the pattern, indexed for variant bits. *)
  let edge_count = ref 0 in
  let edge_ids = Hashtbl.create 16 in
  (if pat.first_axis = Query.Descendant then (
     Hashtbl.add edge_ids (-1, -1) !edge_count;
     incr edge_count));
  let rec collect n =
    List.iter
      (fun (a, c) ->
        if a = Query.Descendant then (
          Hashtbl.add edge_ids (n.pid, c.pid) !edge_count;
          incr edge_count);
        collect c)
      n.psubs
  in
  collect pat.proot;
  let k = !edge_count in
  let variants =
    if k = 0 then [ [||] ]
    else if 1 lsl k <= max_variants then
      List.init (1 lsl k) (fun bits ->
          Array.init k (fun i -> bits land (1 lsl i) <> 0))
    else [ Array.make k false; Array.make k true ]
  in
  let instance bits =
    let lbl = function Query.Label l -> l | Query.Wildcard -> fresh in
    let out_path = ref [] in
    (* Build bottom-up, tracking the child index of each emitted child and
       the path to the output node. *)
    let rec build path (n : pnode) : Xmltree.Tree.t =
      let children = ref [] in
      let idx = ref 0 in
      List.iter
        (fun (a, c) ->
          let wrapped =
            match a with
            | Query.Child -> build (path @ [ !idx ]) c
            | Query.Descendant ->
                let eid = Hashtbl.find edge_ids (n.pid, c.pid) in
                if bits.(eid) then
                  Xmltree.Tree.node fresh [ build (path @ [ !idx; 0 ]) c ]
                else build (path @ [ !idx ]) c
          in
          children := wrapped :: !children;
          incr idx)
        n.psubs;
      if n.pout then out_path := path;
      Xmltree.Tree.node (lbl n.ptest) (List.rev !children)
    in
    let tree =
      match pat.first_axis with
      | Query.Child -> build [] pat.proot
      | Query.Descendant ->
          let eid = Hashtbl.find edge_ids (-1, -1) in
          if bits.(eid) then
            Xmltree.Tree.node fresh [ build [ 0 ] pat.proot ]
          else build [] pat.proot
    in
    (tree, !out_path)
  in
  List.map instance variants

let subsumed_semantic ?max_variants q1 q2 =
  Core.Telemetry.Metrics.incr m_semantic;
  List.for_all
    (fun (tree, out) -> Eval.selects q2 tree out)
    (canonical_instances ?max_variants q1)
