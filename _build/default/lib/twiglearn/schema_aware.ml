type instance = Xmltree.Annotated.t

open Twig.Query

(* Prune implied sub-filters inside a filter rooted at a known label. *)
let rec prune_filter g (f : filter) =
  match f.ftest with
  | Wildcard -> f
  | Label host ->
      let kept =
        List.filter
          (fun edge -> not (Uschema.Depgraph.filter_implied g ~at:host edge))
          f.fsubs
      in
      { f with fsubs = List.map (fun (a, sub) -> (a, prune_filter g sub)) kept }

let prune g (q : t) : t =
  List.map
    (fun (s : step) ->
      match s.test with
      | Wildcard -> s
      | Label host ->
          let kept =
            List.filter
              (fun edge ->
                not (Uschema.Depgraph.filter_implied g ~at:host edge))
              s.filters
          in
          {
            s with
            filters = List.map (fun (a, f) -> (a, prune_filter g f)) kept;
          })
    q

let learn ~schema examples =
  match Positive.learn_positive examples with
  | None -> None
  | Some q ->
      let g = Uschema.Depgraph.of_schema schema in
      Some (prune g q)

let size_reduction ~schema examples =
  match Positive.learn_positive examples with
  | None -> None
  | Some q ->
      let g = Uschema.Depgraph.of_schema schema in
      Some (Twig.Query.size q, Twig.Query.size (prune g q))
