test/test_benchkit.ml: Alcotest Benchkit Core List Printf QCheck QCheck_alcotest String Twig Uschema Xmltree
