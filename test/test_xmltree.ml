(* Tests for the XML data model: trees, parsing, printing, annotations. *)

open Xmltree

let qcheck = QCheck_alcotest.to_alcotest
let tree_testable = Alcotest.testable Tree.pp Tree.equal

let sample = Parse.term "site(regions(africa(item(name,location)),asia),people)"

let test_tree_basic () =
  Alcotest.(check int) "size" 8 (Tree.size sample);
  Alcotest.(check int) "depth" 5 (Tree.depth sample);
  Alcotest.(check (list string)) "labels"
    [ "africa"; "asia"; "item"; "location"; "name"; "people"; "regions"; "site" ]
    (Tree.labels sample)

let test_node_at () =
  (match Tree.node_at sample [ 0; 0; 0 ] with
  | Some n -> Alcotest.(check string) "item node" "item" n.label
  | None -> Alcotest.fail "path should exist");
  Alcotest.(check bool) "missing path" true (Tree.node_at sample [ 5 ] = None);
  match Tree.node_at sample [] with
  | Some n -> Alcotest.(check string) "root" "site" n.label
  | None -> Alcotest.fail "root exists"

let test_all_paths_preorder () =
  let paths = Tree.all_paths sample in
  Alcotest.(check int) "one per node" (Tree.size sample) (List.length paths);
  Alcotest.(check (list (list int))) "prefix order"
    [ []; [ 0 ]; [ 0; 0 ]; [ 0; 0; 0 ]; [ 0; 0; 0; 0 ]; [ 0; 0; 0; 1 ]; [ 0; 1 ]; [ 1 ] ]
    paths

let test_paths_with_label () =
  Alcotest.(check (list (list int))) "items" [ [ 0; 0; 0 ] ]
    (Tree.paths_with_label sample "item")

let test_parent_path () =
  Alcotest.(check (option (list int))) "parent" (Some [ 0; 0 ])
    (Tree.parent_path [ 0; 0; 3 ]);
  Alcotest.(check (option (list int))) "root has none" None
    (Tree.parent_path [])

let test_descendants () =
  let ds = Tree.descendant_paths sample [ 0 ] in
  Alcotest.(check int) "regions has 5 descendants" 5 (List.length ds)

let test_text_nodes () =
  let t = Tree.node "name" [ Tree.text "Ciucanu" ] in
  Alcotest.(check (option string)) "value" (Some "Ciucanu") (Tree.value_of t);
  Alcotest.(check int) "element children" 0
    (List.length (Tree.element_children t));
  Alcotest.(check bool) "text detection" true (Tree.is_text (Tree.text "x"))

let test_equal_unordered () =
  let t1 = Parse.term "a(b,c(d,e))" and t2 = Parse.term "a(c(e,d),b)" in
  Alcotest.(check bool) "unordered equal" true (Tree.equal_unordered t1 t2);
  Alcotest.(check bool) "ordered differ" false (Tree.equal t1 t2);
  let t3 = Parse.term "a(b,c(d,d))" in
  Alcotest.(check bool) "different multisets" false (Tree.equal_unordered t1 t3)

(* ------------------------------------------------------------------ *)
(* XML parser                                                          *)
(* ------------------------------------------------------------------ *)

let test_parse_xml_simple () =
  let t = Parse.xml "<a><b/><c><d/></c></a>" in
  Alcotest.check tree_testable "structure" (Parse.term "a(b,c(d))") t

let test_parse_xml_attributes () =
  let t = Parse.xml {|<item id="i1" featured="yes"><name>Phone</name></item>|} in
  Alcotest.(check int) "three children" 3 (List.length t.children);
  match t.children with
  | [ a1; a2; name ] ->
      Alcotest.(check string) "@id" "@id" a1.label;
      Alcotest.(check string) "@featured" "@featured" a2.label;
      Alcotest.(check (option string)) "name text" (Some "Phone")
        (Tree.value_of name)
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_xml_text_and_entities () =
  let t = Parse.xml "<p>Tom &amp; Jerry &lt;3</p>" in
  Alcotest.(check (option string)) "unescaped" (Some "Tom & Jerry <3")
    (Tree.value_of t)

let test_parse_xml_declaration_comment () =
  let t =
    Parse.xml
      "<?xml version=\"1.0\"?><!-- a comment --><root><!-- inner --><x/></root>"
  in
  Alcotest.check tree_testable "skips misc" (Parse.term "root(x)") t

let test_parse_xml_cdata () =
  let t = Parse.xml "<a><![CDATA[1 < 2]]></a>" in
  Alcotest.(check (option string)) "cdata" (Some "1 < 2") (Tree.value_of t)

let test_parse_xml_errors () =
  let bad input =
    match Parse.xml input with
    | exception Parse.Syntax_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "mismatched tag" true (bad "<a></b>");
  Alcotest.(check bool) "unterminated" true (bad "<a>");
  Alcotest.(check bool) "trailing garbage" true (bad "<a/><b/>");
  Alcotest.(check bool) "no element" true (bad "just text")

let test_parse_xml_result_positions () =
  let pos input =
    match Parse.xml_result input with
    | Ok _ -> Alcotest.fail "expected a parse error"
    | Error (Core.Error.Parse { position = Some p; _ }) -> (p.line, p.column)
    | Error e -> Alcotest.fail ("error without position: " ^ Core.Error.to_string e)
  in
  (* Truncated element: the scanner stops at the end of line 2. *)
  Alcotest.(check (pair int int)) "truncated" (2, 5) (pos "<a>\n<bad");
  (* The mismatched closing tag sits on line 3. *)
  Alcotest.(check int) "mismatch line" 3 (fst (pos "<a>\n<b></b>\n</c>"));
  match Parse.xml_result ~source:"doc.xml" "garbage" with
  | Error e ->
      let msg = Core.Error.to_string e in
      Alcotest.(check bool) "names the source" true
        (String.length msg >= 7 && String.sub msg 0 7 = "doc.xml")
  | Ok _ -> Alcotest.fail "garbage must not parse"

(* Adversarial totality, via the fuzzing harness's structured generators
   rather than uniform string soup: structural junk (a charset biased
   toward markup metacharacters) and near-miss inputs (valid prints with a
   few random edits — the class that actually finds scanner bugs) must come
   back as [Error], never as an exception. *)
let prop_xml_result_total_on_adversarial_input =
  QCheck.Test.make ~name:"xml_result total on junk and near-miss input"
    ~count:500 QCheck.small_int (fun seed ->
      let g = Core.Prng.create seed in
      let input =
        if Core.Prng.bool g then Fuzz.Gen.junk g ~size:40
        else
          Fuzz.Gen.mutate_string g
            (Print.to_xml (Fuzz.Gen.xml_tree g ~size:8))
      in
      match Parse.xml_result input with
      | Ok _ | Error (Core.Error.Parse _) -> true
      | Error _ -> false)

(* The full representable XML surface — attributes (pulled into the tag by
   the printer), escaped text, mixed children — survives print/parse at
   both indentations, not just the label-only trees of [arbitrary_tree]. *)
let prop_xml_full_surface_roundtrip =
  QCheck.Test.make ~name:"xml print/parse roundtrip (full surface)"
    ~count:300 QCheck.small_int (fun seed ->
      let g = Core.Prng.create seed in
      let t = Fuzz.Gen.xml_tree g ~size:(1 + Core.Prng.int g 25) in
      Tree.equal t (Parse.xml (Print.to_xml t))
      && Tree.equal t (Parse.xml (Print.to_xml ~indent:0 t)))

let test_print_roundtrip () =
  let doc =
    Parse.xml
      {|<site><regions><africa><item id="i1"><name>Drum</name></item></africa></regions></site>|}
  in
  let reparsed = Parse.xml (Print.to_xml doc) in
  Alcotest.check tree_testable "print/parse roundtrip" doc reparsed

let test_print_escapes () =
  let doc = Tree.node "a" [ Tree.text "x<y&z" ] in
  let reparsed = Parse.xml (Print.to_xml doc) in
  Alcotest.check tree_testable "escaped roundtrip" doc reparsed

(* Random label-only trees roundtrip through the XML printer/parser. *)
let gen_tree =
  let open QCheck.Gen in
  let label = oneofl [ "a"; "b"; "c"; "d" ] in
  sized_size (1 -- 25)
  @@ fix (fun self n ->
         if n <= 1 then map Tree.leaf label
         else map2 Tree.node label (list_size (0 -- 3) (self (n / 4))))

let arbitrary_tree = QCheck.make ~print:Tree.to_string gen_tree

let prop_xml_roundtrip =
  QCheck.Test.make ~name:"xml print/parse roundtrip" ~count:200 arbitrary_tree
    (fun t -> Tree.equal t (Parse.xml (Print.to_xml t)))

let prop_term_roundtrip =
  QCheck.Test.make ~name:"term print/parse roundtrip" ~count:200 arbitrary_tree
    (fun t -> Tree.equal t (Parse.term (Tree.to_string t)))

let prop_size_positive =
  QCheck.Test.make ~name:"size ≥ depth ≥ 1" ~count:200 arbitrary_tree (fun t ->
      Tree.size t >= Tree.depth t && Tree.depth t >= 1)

let prop_paths_resolve =
  QCheck.Test.make ~name:"all_paths all resolve" ~count:100 arbitrary_tree
    (fun t ->
      List.for_all (fun p -> Tree.node_at t p <> None) (Tree.all_paths t))

(* ------------------------------------------------------------------ *)
(* Annotated                                                           *)
(* ------------------------------------------------------------------ *)

let test_annotated_make () =
  let a = Annotated.make sample [ 0; 0; 0 ] in
  Alcotest.(check string) "target label" "item" (Annotated.target_node a).label;
  match Annotated.make sample [ 9; 9 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad path must be rejected"

let test_annotated_examples_of_answers () =
  let exs = Annotated.examples_of_answers sample ~answers:[ [ 0; 0; 0 ] ] in
  Alcotest.(check int) "one per node" (Tree.size sample) (List.length exs);
  let pos = List.filter Core.Example.is_positive exs in
  Alcotest.(check int) "one positive" 1 (List.length pos)

let () =
  Alcotest.run "xmltree"
    [
      ( "tree",
        [
          Alcotest.test_case "basic" `Quick test_tree_basic;
          Alcotest.test_case "node_at" `Quick test_node_at;
          Alcotest.test_case "all_paths preorder" `Quick test_all_paths_preorder;
          Alcotest.test_case "paths_with_label" `Quick test_paths_with_label;
          Alcotest.test_case "parent_path" `Quick test_parent_path;
          Alcotest.test_case "descendants" `Quick test_descendants;
          Alcotest.test_case "text nodes" `Quick test_text_nodes;
          Alcotest.test_case "unordered equality" `Quick test_equal_unordered;
          qcheck prop_size_positive;
          qcheck prop_paths_resolve;
        ] );
      ( "parse-print",
        [
          Alcotest.test_case "simple xml" `Quick test_parse_xml_simple;
          Alcotest.test_case "attributes" `Quick test_parse_xml_attributes;
          Alcotest.test_case "text and entities" `Quick test_parse_xml_text_and_entities;
          Alcotest.test_case "declaration and comments" `Quick test_parse_xml_declaration_comment;
          Alcotest.test_case "cdata" `Quick test_parse_xml_cdata;
          Alcotest.test_case "errors" `Quick test_parse_xml_errors;
          Alcotest.test_case "result positions" `Quick
            test_parse_xml_result_positions;
          qcheck prop_xml_result_total_on_adversarial_input;
          Alcotest.test_case "print roundtrip" `Quick test_print_roundtrip;
          Alcotest.test_case "print escapes" `Quick test_print_escapes;
          qcheck prop_xml_roundtrip;
          qcheck prop_term_roundtrip;
          qcheck prop_xml_full_surface_roundtrip;
        ] );
      ( "annotated",
        [
          Alcotest.test_case "make" `Quick test_annotated_make;
          Alcotest.test_case "examples of answers" `Quick test_annotated_examples_of_answers;
        ] );
    ]
