(** Regular expressions over string symbols (edge labels of graph
    databases).  Words are symbol lists; matching is by Brzozowski
    derivatives, so no automaton construction is needed for one-off tests. *)

type t =
  | Empty  (** ∅ *)
  | Eps  (** ε *)
  | Sym of string
  | Alt of t * t
  | Cat of t * t
  | Star of t

val nullable : t -> bool
val deriv : t -> string -> t
val matches : t -> string list -> bool

val simplify : t -> t
(** Algebraic normalization (units, zeros, idempotence, nested stars). *)

val alphabet : t -> string list
(** Symbols mentioned, sorted. *)

val size : t -> int

exception Syntax_error of string

val parse : string -> t
(** Grammar: alternation [|], concatenation [.] or juxtaposition with
    whitespace, postfix [*] and [+] and [?], parentheses; symbols are
    identifiers.  Example: ["highway+ . (road | ferry)?"].
    @raise Syntax_error on malformed input. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
(** Syntactic equality after {!simplify} (not language equivalence — see
    {!Dfa.equal_language}). *)
