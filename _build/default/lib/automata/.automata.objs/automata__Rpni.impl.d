lib/automata/rpni.ml: Array Dfa Fun Hashtbl List Map Set String
