(* Tests for the write-ahead session journal: record framing, CRC rejection,
   the torn-tail truncation property, resume, and deterministic replay of
   interactive sessions (including an in-process crash). *)

let temp_path () = Filename.temp_file "learnq_journal" ".wal"

let with_temp f =
  let path = temp_path () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let header = { Core.Journal.seed = 42; engine = "learn-test"; config = "k=3" }

let sample_events =
  Core.Journal.
    [
      Asked "/0/1";
      Answered ("/0/1", Core.Flaky.Label true);
      Asked "i:j with spaces\nand a newline";
      Answered ("i:j with spaces\nand a newline", Core.Flaky.Label false);
      Asked "r";
      Answered ("r", Core.Flaky.Refused);
      Answered ("t", Core.Flaky.Timed_out);
      Completed;
    ]

let write_sample path =
  let j = Core.Journal.create ~sync:Core.Journal.Off ~path header in
  List.iter (Core.Journal.append j) sample_events;
  Core.Journal.close j

let recovered_ok = function
  | Ok (r : Core.Journal.recovered) -> r
  | Error e -> Alcotest.failf "unexpected journal error: %s" (Core.Error.to_string e)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let test_crc32_check_value () =
  (* The standard CRC-32 check value ("123456789" -> 0xCBF43926). *)
  Alcotest.(check int) "empty" 0 (Core.Journal.crc32 "");
  Alcotest.(check int) "check value" 0xCBF43926 (Core.Journal.crc32 "123456789")

(* ------------------------------------------------------------------ *)
(* Roundtrip                                                           *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  with_temp (fun path ->
      write_sample path;
      let r = recovered_ok (Core.Journal.recover ~path) in
      Alcotest.(check bool) "header survives" true (r.header = Some header);
      Alcotest.(check bool) "events survive in order" true
        (r.events = sample_events);
      Alcotest.(check int) "nothing dropped" 0 r.dropped_bytes;
      Alcotest.(check int) "valid bytes = file size" r.valid_bytes
        (String.length (read_file path)))

let test_answered_order () =
  with_temp (fun path ->
      write_sample path;
      let r = recovered_ok (Core.Journal.recover ~path) in
      Alcotest.(check bool) "answered extracts replies in order" true
        (Core.Journal.answered r
        = [
            ("/0/1", Core.Flaky.Label true);
            ("i:j with spaces\nand a newline", Core.Flaky.Label false);
            ("r", Core.Flaky.Refused);
            ("t", Core.Flaky.Timed_out);
          ]))

(* ------------------------------------------------------------------ *)
(* The truncation property: any byte-cut yields the surviving prefix   *)
(* ------------------------------------------------------------------ *)

let is_prefix shorter longer =
  let rec go = function
    | [], _ -> true
    | x :: xs, y :: ys -> x = y && go (xs, ys)
    | _ :: _, [] -> false
  in
  go (shorter, longer)

let test_every_truncation_recovers () =
  with_temp (fun path ->
      write_sample path;
      let bytes = read_file path in
      let full = recovered_ok (Core.Journal.parse ~source:path bytes) in
      for cut = 0 to String.length bytes do
        let r =
          recovered_ok
            (Core.Journal.parse ~source:path (String.sub bytes 0 cut))
        in
        if not (is_prefix r.events full.events) then
          Alcotest.failf "cut at %d: events are not a prefix" cut;
        Alcotest.(check int)
          (Printf.sprintf "cut at %d accounts for every byte" cut)
          cut
          (r.valid_bytes + r.dropped_bytes)
      done)

let prop_truncation =
  (* Random journals (random items, random cut): the surviving prefix always
     parses, never errors. *)
  let item_gen =
    QCheck.Gen.(string_size ~gen:(char_range '\x01' '\xff') (0 -- 20))
  in
  let event_gen =
    QCheck.Gen.(
      item_gen >>= fun item ->
      oneofl
        Core.Journal.
          [
            Asked item;
            Answered (item, Core.Flaky.Label true);
            Answered (item, Core.Flaky.Label false);
            Answered (item, Core.Flaky.Refused);
            Answered (item, Core.Flaky.Timed_out);
            Completed;
          ])
  in
  let arb =
    QCheck.make
      QCheck.Gen.(pair (list_size (0 -- 12) event_gen) (0 -- 1000))
  in
  QCheck.Test.make ~name:"journal survives any truncation" ~count:40 arb
    (fun (events, cut_raw) ->
      with_temp (fun path ->
          let j = Core.Journal.create ~sync:Core.Journal.Off ~path header in
          List.iter (Core.Journal.append j) events;
          Core.Journal.close j;
          let bytes = read_file path in
          let cut = cut_raw mod (String.length bytes + 1) in
          match Core.Journal.parse ~source:path (String.sub bytes 0 cut) with
          | Error _ -> false
          | Ok r ->
              is_prefix r.events events && r.valid_bytes + r.dropped_bytes = cut))

(* ------------------------------------------------------------------ *)
(* Corruption is rejected with a positioned error                      *)
(* ------------------------------------------------------------------ *)

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

let test_crc_mismatch_rejected () =
  with_temp (fun path ->
      write_sample path;
      let bytes = read_file path in
      (* Corrupt one payload byte of the header record, which starts right
         after the 8-byte magic; its payload starts 8 framing bytes later. *)
      let record_offset = 8 in
      let corrupted = flip_byte bytes (record_offset + 8) in
      match Core.Journal.parse ~source:path corrupted with
      | Ok _ -> Alcotest.fail "corrupted record accepted"
      | Error (Core.Error.Corrupt_journal { offset; path = p; _ }) ->
          Alcotest.(check int) "error positioned at record start" record_offset
            offset;
          Alcotest.(check string) "error names the file" path p
      | Error e ->
          Alcotest.failf "wrong error class: %s" (Core.Error.to_string e))

let test_corrupt_mid_file_keeps_nothing_after () =
  with_temp (fun path ->
      write_sample path;
      let bytes = read_file path in
      (* Corrupt the last byte: it belongs to the final record's payload. *)
      let corrupted = flip_byte bytes (String.length bytes - 1) in
      match Core.Journal.parse ~source:path corrupted with
      | Ok _ -> Alcotest.fail "corrupted tail record accepted"
      | Error (Core.Error.Corrupt_journal _) -> ()
      | Error e ->
          Alcotest.failf "wrong error class: %s" (Core.Error.to_string e))

let test_wrong_magic_rejected () =
  match Core.Journal.parse ~source:"x" "NOTAJRNL:also not a journal" with
  | Ok _ -> Alcotest.fail "garbage accepted as a journal"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Resume: torn tail truncated away, appends continue the prefix       *)
(* ------------------------------------------------------------------ *)

let test_resume_after_torn_tail () =
  with_temp (fun path ->
      write_sample path;
      let bytes = read_file path in
      (* Tear the last record: drop its final 3 bytes. *)
      write_file path (String.sub bytes 0 (String.length bytes - 3));
      match Core.Journal.resume ~sync:Core.Journal.Off ~path () with
      | Error e -> Alcotest.failf "resume failed: %s" (Core.Error.to_string e)
      | Ok (j, r) ->
          Alcotest.(check bool) "tail dropped" true (r.dropped_bytes > 0);
          Alcotest.(check int) "one event lost"
            (List.length sample_events - 1)
            (List.length r.events);
          Core.Journal.append j (Core.Journal.Asked "again");
          Core.Journal.close j;
          let r2 = recovered_ok (Core.Journal.recover ~path) in
          Alcotest.(check bool) "appended past the valid prefix" true
            (r2.events
            = List.filteri (fun i _ -> i < List.length sample_events - 1)
                sample_events
              @ [ Core.Journal.Asked "again" ]);
          Alcotest.(check int) "clean after repair" 0 r2.dropped_bytes)

let test_resume_without_header_fails () =
  with_temp (fun path ->
      (* Only the magic survived: nothing to resume. *)
      write_file path "LQJRNL1\n";
      match Core.Journal.resume ~path () with
      | Ok _ -> Alcotest.fail "resumed a journal with no header"
      | Error (Core.Error.Invalid_input _) -> ()
      | Error e ->
          Alcotest.failf "wrong error class: %s" (Core.Error.to_string e))

(* ------------------------------------------------------------------ *)
(* Replay: a toy threshold session, journaled, replayed, crashed       *)
(* ------------------------------------------------------------------ *)

(* Same concept class as test_core's interact tests: an int item is positive
   iff item >= t. *)
module Threshold_session = struct
  type query = int
  type item = int
  type state = { min_pos : int option; max_neg : int option }

  let init _ = { min_pos = None; max_neg = None }

  let record st item label =
    if label then
      { st with min_pos = Some (match st.min_pos with None -> item | Some m -> min m item) }
    else
      { st with max_neg = Some (match st.max_neg with None -> item | Some m -> max m item) }

  let determined st item =
    match (st.min_pos, st.max_neg) with
    | Some p, _ when item >= p -> Some true
    | _, Some n when item <= n -> Some false
    | _ -> None

  let candidate st = st.min_pos
  let pp_item = Format.pp_print_int
  let pp_query = Format.pp_print_int
end

module Threshold_loop = Core.Interact.Make (Threshold_session)

let encode_item = string_of_int
let decode_item s = int_of_string s
let items = List.init 30 Fun.id
let goal = 13
let oracle i = Core.Flaky.Label (i >= goal)

let decode_replies events =
  List.map (fun (s, reply) -> (decode_item s, reply)) events

let test_replay_equals_live () =
  with_temp (fun path ->
      (* Live journaled session … *)
      let j = Core.Journal.create ~sync:Core.Journal.Off ~path header in
      let live = Threshold_loop.run_flaky ~journal:(j, encode_item) ~oracle ~items () in
      Core.Journal.close j;
      (* … replayed in full: same query, zero live questions. *)
      let r = recovered_ok (Core.Journal.recover ~path) in
      let resume = decode_replies (Core.Journal.answered r) in
      let replayed = Threshold_loop.run_flaky ~resume ~oracle ~items () in
      Alcotest.(check (option int)) "same query" live.query replayed.query;
      Alcotest.(check int) "no live question on full replay" 0
        replayed.questions;
      Alcotest.(check int) "every answer replayed" live.questions
        replayed.replayed;
      Alcotest.(check bool) "completed record present" true
        (List.mem Core.Journal.Completed r.events))

let test_replay_is_idempotent () =
  with_temp (fun path ->
      let j = Core.Journal.create ~sync:Core.Journal.Off ~path header in
      let live = Threshold_loop.run_flaky ~journal:(j, encode_item) ~oracle ~items () in
      Core.Journal.close j;
      let r = recovered_ok (Core.Journal.recover ~path) in
      let resume = decode_replies (Core.Journal.answered r) in
      (* Duplicate every answer: the fold must treat repeats as no-ops. *)
      let doubled = List.concat_map (fun a -> [ a; a ]) resume in
      let replayed = Threshold_loop.run_flaky ~resume:doubled ~oracle ~items () in
      Alcotest.(check (option int)) "same query" live.query replayed.query;
      Alcotest.(check int) "duplicates not re-recorded" (List.length resume)
        replayed.replayed)

exception Crash

let test_crash_then_resume () =
  with_temp (fun path ->
      (* The uninterrupted reference run. *)
      let full = Threshold_loop.run_flaky ~oracle ~items () in
      (* A run whose oracle dies after k answers, mid-session. *)
      let k = 2 in
      let j = Core.Journal.create ~sync:Core.Journal.Off ~path header in
      let answers = ref 0 in
      let crashing i =
        if !answers >= k then raise Crash;
        incr answers;
        oracle i
      in
      (match
         Threshold_loop.run_flaky ~journal:(j, encode_item) ~oracle:crashing
           ~items ()
       with
      | _ -> Alcotest.fail "crash did not propagate"
      | exception Crash -> Core.Journal.close j);
      (* Resume: replay the journal, finish against the healthy oracle. *)
      match Core.Journal.resume ~sync:Core.Journal.Off ~path () with
      | Error e -> Alcotest.failf "resume failed: %s" (Core.Error.to_string e)
      | Ok (j2, r) ->
          let resume = decode_replies (Core.Journal.answered r) in
          let resumed =
            Threshold_loop.run_flaky ~journal:(j2, encode_item) ~resume ~oracle
              ~items ()
          in
          Core.Journal.close j2;
          Alcotest.(check (option int)) "same query as uninterrupted"
            full.query resumed.query;
          Alcotest.(check int) "crashed answers replayed, not re-asked" k
            resumed.replayed;
          Alcotest.(check int) "remaining questions asked live"
            (full.questions - k) resumed.questions;
          (* No item was asked twice across replay + live. *)
          let asked_items = List.map fst resumed.asked in
          Alcotest.(check int) "no duplicate question"
            (List.length asked_items)
            (List.length (List.sort_uniq compare asked_items)))

let test_refused_records_return_to_pool () =
  with_temp (fun path ->
      (* A journal whose only answers are a refusal and a timeout: on resume
         both items must be asked again (they return to the pool). *)
      let j = Core.Journal.create ~sync:Core.Journal.Off ~path header in
      Core.Journal.append j (Core.Journal.Asked (encode_item 5));
      Core.Journal.append j
        (Core.Journal.Answered (encode_item 5, Core.Flaky.Refused));
      Core.Journal.append j (Core.Journal.Asked (encode_item 20));
      Core.Journal.append j
        (Core.Journal.Answered (encode_item 20, Core.Flaky.Timed_out));
      Core.Journal.close j;
      let r = recovered_ok (Core.Journal.recover ~path) in
      let resume = decode_replies (Core.Journal.answered r) in
      let resumed = Threshold_loop.run_flaky ~resume ~oracle ~items () in
      let reference = Threshold_loop.run_flaky ~oracle ~items () in
      Alcotest.(check int) "nothing replayed" 0 resumed.replayed;
      Alcotest.(check int) "full session ran live" reference.questions
        resumed.questions;
      Alcotest.(check (option int)) "same query" reference.query resumed.query)

(* ------------------------------------------------------------------ *)
(* Checkpoints and compaction                                          *)
(* ------------------------------------------------------------------ *)

let sample_ck =
  {
    Core.Journal.ck_qid = 4;
    ck_questions = 4;
    ck_pruned = 7;
    ck_refused = 1;
    ck_answered = [ "/0/1"; "i:j with spaces\nand a newline" ];
    (* The engine state is opaque and may itself contain NULs. *)
    ck_state = "twig1\n+/0/1\x00a second\x00NUL-packed field";
  }

let journal_ok = function
  | Ok j -> j
  | Error e -> Alcotest.failf "unexpected journal error: %s" (Core.Error.to_string e)

let test_checkpoint_roundtrip () =
  with_temp (fun path ->
      let j = Core.Journal.create ~sync:Core.Journal.Off ~path header in
      Core.Journal.append j (Core.Journal.Asked "a");
      Core.Journal.append_checkpoint j sample_ck;
      Core.Journal.append j (Core.Journal.Asked "b");
      Core.Journal.close j;
      let r = recovered_ok (Core.Journal.recover ~path) in
      Alcotest.(check bool) "checkpoint survives verbatim" true
        (r.events
        = [
            Core.Journal.Asked "a";
            Core.Journal.Checkpoint sample_ck;
            Core.Journal.Asked "b";
          ]))

let test_split_checkpoint_takes_last () =
  with_temp (fun path ->
      let j = Core.Journal.create ~sync:Core.Journal.Off ~path header in
      Core.Journal.append j (Core.Journal.Asked "pre");
      Core.Journal.append_checkpoint j { sample_ck with ck_qid = 1 };
      Core.Journal.append j (Core.Journal.Asked "mid");
      Core.Journal.append_checkpoint j sample_ck;
      Core.Journal.append j (Core.Journal.Asked "post");
      Core.Journal.close j;
      let r = recovered_ok (Core.Journal.recover ~path) in
      let ck, tail = Core.Journal.split_checkpoint r in
      Alcotest.(check bool) "the last checkpoint wins" true
        (ck = Some sample_ck);
      Alcotest.(check bool) "only post-checkpoint events remain" true
        (tail = [ Core.Journal.Asked "post" ]))

let test_split_checkpoint_none () =
  with_temp (fun path ->
      write_sample path;
      let r = recovered_ok (Core.Journal.recover ~path) in
      let ck, tail = Core.Journal.split_checkpoint r in
      Alcotest.(check bool) "no checkpoint" true (ck = None);
      Alcotest.(check bool) "full event list returned" true
        (tail = sample_events))

let test_compact_shrinks_then_resumes () =
  with_temp (fun path ->
      Sys.remove path;
      let j =
        journal_ok
          (Core.Journal.create_result ~sync:Core.Journal.Off ~path header)
      in
      for _ = 1 to 5 do
        List.iter (Core.Journal.append j) sample_events
      done;
      Core.Journal.flush j;
      let before = (Unix.stat path).Unix.st_size in
      (match Core.Journal.compact j sample_ck with
      | Ok () -> ()
      | Error e -> Alcotest.failf "compact: %s" (Core.Error.to_string e));
      let after = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool) "the journal shrank" true (after < before);
      (* The compacted journal keeps accepting appends… *)
      Core.Journal.append j (Core.Journal.Asked "later");
      Core.Journal.close j;
      (* …and resumes as header + checkpoint + tail. *)
      let r = recovered_ok (Core.Journal.recover ~path) in
      Alcotest.(check bool) "header survives compaction" true
        (r.header = Some header);
      let ck, tail = Core.Journal.split_checkpoint r in
      Alcotest.(check bool) "the checkpoint is the snapshot" true
        (ck = Some sample_ck);
      Alcotest.(check bool) "the tail is the post-compaction append" true
        (tail = [ Core.Journal.Asked "later" ]);
      Alcotest.(check bool) "no write-aside residue" false
        (Sys.file_exists (path ^ ".compact")))

let test_compact_failure_leaves_journal_intact () =
  with_temp (fun path ->
      Sys.remove path;
      let vfs = Core.Vfs.faulty ~seed:1 Core.Flaky.no_disk_faults in
      let j =
        journal_ok
          (Core.Journal.create_result ~sync:Core.Journal.Always ~vfs ~path
             header)
      in
      List.iter (Core.Journal.append j) sample_events;
      Core.Vfs.set_full vfs true;
      (match Core.Journal.compact j sample_ck with
      | Ok () -> Alcotest.fail "compaction succeeded on a full disk"
      | Error (Core.Error.Storage { full; _ }) ->
          Alcotest.(check bool) "classified as disk-full" true full
      | Error e -> Alcotest.failf "wrong error: %s" (Core.Error.to_string e));
      (* The old journal is untouched and still appendable once the disk
         recovers. *)
      Core.Vfs.set_full vfs false;
      Core.Journal.append j (Core.Journal.Asked "after");
      Core.Journal.close j;
      let r = recovered_ok (Core.Journal.recover ~path) in
      Alcotest.(check bool) "every record survives the failed compaction"
        true
        (r.events = sample_events @ [ Core.Journal.Asked "after" ]))

(* ------------------------------------------------------------------ *)
(* Locking: one writer per journal, across processes                    *)
(* ------------------------------------------------------------------ *)

let test_lock_second_create_refused () =
  with_temp (fun path ->
      Sys.remove path;
      let j = journal_ok (Core.Journal.create_result ~path header) in
      Fun.protect
        ~finally:(fun () -> Core.Journal.close j)
        (fun () ->
          match Core.Journal.create_result ~path header with
          | Error (Core.Error.Journal_locked { pid; _ }) ->
              Alcotest.(check int) "lock names the holder" (Unix.getpid ()) pid
          | Ok j2 ->
              Core.Journal.close j2;
              Alcotest.fail "second writer acquired a held lock"
          | Error e ->
              Alcotest.failf "wrong error: %s" (Core.Error.to_string e)))

let test_lock_resume_while_open_refused () =
  with_temp (fun path ->
      Sys.remove path;
      let j = journal_ok (Core.Journal.create_result ~path header) in
      Fun.protect
        ~finally:(fun () -> Core.Journal.close j)
        (fun () ->
          match Core.Journal.resume ~path () with
          | Error (Core.Error.Journal_locked _) -> ()
          | Ok (j2, _) ->
              Core.Journal.close j2;
              Alcotest.fail "resumed a journal whose writer is live"
          | Error e ->
              Alcotest.failf "wrong error: %s" (Core.Error.to_string e)))

let test_lock_released_on_close () =
  with_temp (fun path ->
      Sys.remove path;
      let j = journal_ok (Core.Journal.create_result ~path header) in
      Core.Journal.append j (Core.Journal.Asked "x");
      Core.Journal.close j;
      Alcotest.(check bool) "lock file removed" false
        (Sys.file_exists (path ^ ".lock"));
      let j2, recovered = journal_ok (Core.Journal.resume ~path ()) in
      Core.Journal.close j2;
      Alcotest.(check int) "events survived" 1
        (List.length recovered.Core.Journal.events))

let test_lock_stale_holder_stolen () =
  (* A lock whose pid is dead is stale: fork a child, reap it, and plant
     its (now free) pid in the lock file. *)
  with_temp (fun path ->
      Sys.remove path;
      let dead_pid =
        match Unix.fork () with
        | 0 -> Unix._exit 0
        | pid ->
            ignore (Unix.waitpid [] pid);
            pid
      in
      write_file (path ^ ".lock") (string_of_int dead_pid);
      let j = journal_ok (Core.Journal.create_result ~path header) in
      Core.Journal.close j)

let test_lock_pid_reuse_stolen () =
  (* Regression for PID recycling: the lock stamp is pid:starttime, so a
     recorded holder with our (live) pid but an impossible starttime is a
     dead process whose pid was reborn — the lock is stale and stolen. *)
  with_temp (fun path ->
      Sys.remove path;
      write_file (path ^ ".lock") (Printf.sprintf "%d:1" (Unix.getpid ()));
      let j = journal_ok (Core.Journal.create_result ~path header) in
      Core.Journal.close j)

let test_lock_bare_pid_alive_refused () =
  (* A stamp-less (old-format) lock naming a live pid cannot be told apart
     from pid reuse, so it is never stolen: corrupting a live journal is
     worse than making an operator delete a stale lock. *)
  with_temp (fun path ->
      Sys.remove path;
      write_file (path ^ ".lock") (string_of_int (Unix.getpid ()));
      match Core.Journal.create_result ~path header with
      | Error (Core.Error.Journal_locked { pid; _ }) ->
          Alcotest.(check int) "names the live holder" (Unix.getpid ()) pid
      | Ok j ->
          Core.Journal.close j;
          Alcotest.fail "stole a bare-pid lock held by a live process"
      | Error e -> Alcotest.failf "wrong error: %s" (Core.Error.to_string e))

let test_lock_two_processes () =
  (* The real contest: a forked child must lose the lock race with a typed
     Journal_locked, not corrupt the file or hang. *)
  with_temp (fun path ->
      Sys.remove path;
      let j = journal_ok (Core.Journal.create_result ~path header) in
      Fun.protect
        ~finally:(fun () -> Core.Journal.close j)
        (fun () ->
          match Unix.fork () with
          | 0 ->
              let code =
                match Core.Journal.create_result ~path header with
                | Error (Core.Error.Journal_locked _) -> 0
                | Ok _ -> 1
                | Error _ -> 2
              in
              Unix._exit code
          | pid -> (
              match Unix.waitpid [] pid with
              | _, Unix.WEXITED 0 -> ()
              | _, Unix.WEXITED 1 ->
                  Alcotest.fail "child process acquired a held lock"
              | _, Unix.WEXITED n ->
                  Alcotest.failf "child saw the wrong error (exit %d)" n
              | _ -> Alcotest.fail "child died abnormally")))

let () =
  Alcotest.run "journal"
    [
      ( "format",
        [
          Alcotest.test_case "crc32 check value" `Quick test_crc32_check_value;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "answered order" `Quick test_answered_order;
          Alcotest.test_case "wrong magic" `Quick test_wrong_magic_rejected;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "every cut recovers" `Quick
            test_every_truncation_recovers;
          QCheck_alcotest.to_alcotest prop_truncation;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "crc mismatch positioned" `Quick
            test_crc_mismatch_rejected;
          Alcotest.test_case "corrupt tail record" `Quick
            test_corrupt_mid_file_keeps_nothing_after;
        ] );
      ( "resume",
        [
          Alcotest.test_case "after torn tail" `Quick
            test_resume_after_torn_tail;
          Alcotest.test_case "no header" `Quick test_resume_without_header_fails;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "split takes the last" `Quick
            test_split_checkpoint_takes_last;
          Alcotest.test_case "split without checkpoint" `Quick
            test_split_checkpoint_none;
          Alcotest.test_case "compaction shrinks then resumes" `Quick
            test_compact_shrinks_then_resumes;
          Alcotest.test_case "failed compaction leaves journal intact" `Quick
            test_compact_failure_leaves_journal_intact;
        ] );
      ( "replay",
        [
          Alcotest.test_case "replay equals live" `Quick test_replay_equals_live;
          Alcotest.test_case "idempotent" `Quick test_replay_is_idempotent;
          Alcotest.test_case "crash then resume" `Quick test_crash_then_resume;
          Alcotest.test_case "refusals return to pool" `Quick
            test_refused_records_return_to_pool;
        ] );
      ( "locking",
        [
          Alcotest.test_case "second create refused" `Quick
            test_lock_second_create_refused;
          Alcotest.test_case "resume while open refused" `Quick
            test_lock_resume_while_open_refused;
          Alcotest.test_case "released on close" `Quick
            test_lock_released_on_close;
          Alcotest.test_case "stale holder stolen" `Quick
            test_lock_stale_holder_stolen;
          Alcotest.test_case "pid reuse stolen" `Quick
            test_lock_pid_reuse_stolen;
          Alcotest.test_case "bare live pid refused" `Quick
            test_lock_bare_pid_alive_refused;
          Alcotest.test_case "two processes" `Quick test_lock_two_processes;
        ] );
    ]
