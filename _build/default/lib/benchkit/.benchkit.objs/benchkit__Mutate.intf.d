lib/benchkit/mutate.mli: Core Uschema Xmltree
