type 'q verdict = {
  converged_at : int option;
  hypotheses : 'q option list;
}

let run ~learn ~equiv ~target ~stream =
  let n = List.length stream in
  let hypotheses =
    List.init n (fun i ->
        let prefix = List.filteri (fun j _ -> j <= i) stream in
        learn prefix)
  in
  (* Convergence point: earliest prefix length k such that every hypothesis
     from k onwards is equivalent to the target. *)
  let ok = function Some h -> equiv h target | None -> false in
  let rec find idx = function
    | [] -> None
    | h :: rest ->
        if ok h && List.for_all ok rest then Some (idx + 1) else find (idx + 1) rest
  in
  { converged_at = find 0 hypotheses; hypotheses }

let converged v = v.converged_at <> None
