lib/xmltree/print.mli: Format Tree
