(* Observability soak for `learnq serve` (PR 8).

   One in-process daemon, a fixed population of mixed twig/join/path
   sessions driven concurrently over HTTP by client threads with
   deterministic per-question faults.  A sampler thread emits a
   time-series of sessions/sec and the sliding-window p99 request latency
   (the same series /metrics exposes) while the soak runs.

   The workload is driven twice: once with observability fully on (flight
   recorder recording, traces minted, labeled metrics — the default), and
   once with the recorder and telemetry off.  Gates:

   - zero lost sessions: /stats still counts every session at the end;
   - the stall watchdog never trips;
   - the /debug introspection surface answers 200 mid-soak;
   - enabled observability costs at most 5% wall-clock vs disabled
     (best-of-N trials each, damping scheduler noise).

   Results land in BENCH_PR8.json; the flight-recorder dump of the final
   observed pass is saved to FLIGHT_PR8.json (the CI debug-smoke lane
   uploads it as an artifact). *)

module Engines = Server.Engines
module Client = Server.Client
module Json = Server.Json
module Daemon = Server.Daemon
module Prng = Core.Prng
module Obs = Core.Obs

let getenv_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

let sessions_n () = getenv_int "LEARNQ_SOAK8_SESSIONS" 40
let threads_n () = getenv_int "LEARNQ_SOAK8_THREADS" 8
let trials () = getenv_int "LEARNQ_SOAK8_TRIALS" 2
let sample_every = 0.25 (* seconds between time-series samples *)
let overhead_budget = 0.05

(* permille fault rates — enough to exercise refusal/timeout paths *)
let refusal = 80
let timeout = 40
let noise = 30

let now = Core.Monotonic.now

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

type sess = {
  id : string;
  spec : Engines.spec;
  truth : string -> bool;
}

let sessions () =
  List.init (sessions_n ()) (fun i ->
      let engine = [| "twig"; "join"; "path" |].(i mod 3) in
      let spec =
        { Engines.engine; seed = 3000 + i; scale = 0.03; rows = 5; cities = 6 }
      in
      let goal =
        match engine with
        | "twig" -> "//person/name"
        | "join" -> "planted"
        | _ -> "highway*"
      in
      let truth =
        match Engines.oracle spec ~goal with
        | Ok f -> f
        | Error e -> failwith ("soak: bad goal: " ^ Core.Error.to_string e)
      in
      { id = Printf.sprintf "k%03d" i; spec; truth })

(* Same question, same reply — the soak is deterministic up to thread
   interleaving, so the on/off passes do identical learning work. *)
let reply_for s key =
  let g = Prng.create (s.spec.Engines.seed lxor Hashtbl.hash key) in
  let roll = Prng.int g 1000 in
  if roll < refusal then Core.Flaky.Refused
  else if roll < refusal + timeout then Core.Flaky.Timed_out
  else
    let label = s.truth key in
    Core.Flaky.Label (if Prng.int g 1000 < noise then not label else label)

let json_of_reply = function
  | Core.Flaky.Label b -> Json.Bool b
  | Core.Flaky.Refused -> Json.Str "refused"
  | Core.Flaky.Timed_out -> Json.Str "timed_out"

let with_temp_dir prefix f =
  let path = Filename.temp_file prefix ".d" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun e ->
             try Sys.remove (Filename.concat path e) with Sys_error _ -> ())
           (Sys.readdir path)
       with Sys_error _ -> ());
      try Unix.rmdir path with Unix.Unix_error _ -> ())
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* One soak pass against an in-process daemon                          *)
(* ------------------------------------------------------------------ *)

type sample = {
  sm_t : float;  (** seconds since pass start *)
  sm_done : int;  (** sessions completed so far *)
  sm_rate : float;  (** completions/sec over the last interval *)
  sm_p99_ms : float;  (** sliding-window p99 request latency *)
}

type pass = {
  p_elapsed : float;
  p_samples : sample list;
  p_zero_lost : bool;
  p_stalled : int;
  p_debug_ok : bool;
  p_flight : string option;  (** /debug/flightrecorder body (observed pass) *)
}

let wire_view j =
  ( Option.value ~default:false (Json.get_bool "done" j),
    Option.value ~default:0 (Json.get_int "qid" j),
    Json.mem "question" j |> Fun.flip Option.bind Json.str )

let drive_http ~port ~completed s =
  let rec connect () =
    match Client.connect ~host:"127.0.0.1" ~port with
    | Ok c -> c
    | Error _ ->
        Thread.delay 0.05;
        connect ()
  in
  let c = connect () in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let rec create () =
        match
          Client.request c ~meth:"POST" ~path:"/v1/sessions" ~tenant:"soak"
            ~body:
              (Json.Obj
                 (("id", Json.Str s.id)
                 :: (match Engines.json_of_spec s.spec with
                    | Json.Obj fields -> fields
                    | _ -> [])))
            ()
        with
        | Ok (200, j) -> wire_view j
        | Ok ((503 | 429), _) ->
            Thread.delay 0.05;
            create ()
        | Ok (code, j) ->
            failwith
              (Printf.sprintf "soak: create %s -> %d %s" s.id code
                 (Json.to_string j))
        | Error e -> failwith ("soak: create: " ^ e)
      in
      let refresh () =
        match
          Client.request c ~meth:"GET" ~path:("/v1/sessions/" ^ s.id)
            ~tenant:"soak" ()
        with
        | Ok (200, j) -> wire_view j
        | Ok (code, j) ->
            failwith
              (Printf.sprintf "soak: view %s -> %d %s" s.id code
                 (Json.to_string j))
        | Error e -> failwith ("soak: view: " ^ e)
      in
      let rec step (done_, qid, question) =
        if done_ then ()
        else
          match question with
          | None -> ()
          | Some key -> (
              match
                Client.request c ~meth:"POST"
                  ~path:("/v1/sessions/" ^ s.id ^ "/answers")
                  ~tenant:"soak"
                  ~body:
                    (Json.Obj
                       [
                         ("qid", Json.of_int qid);
                         ("reply", json_of_reply (reply_for s key));
                       ])
                  ()
              with
              | Ok (200, j) -> step (wire_view j)
              | Ok (409, _) -> step (refresh ())
              | Ok ((503 | 429), _) ->
                  Thread.delay 0.05;
                  step (refresh ())
              | Ok (code, j) ->
                  failwith
                    (Printf.sprintf "soak: answer %s -> %d %s" s.id code
                       (Json.to_string j))
              | Error e -> failwith ("soak: answer: " ^ e))
      in
      step (create ());
      Atomic.incr completed)

(* The sampler reads the same labeled series /metrics serves; sampling
   in-process keeps the scrape itself out of the measured request path. *)
let p99_ms () =
  Obs.Labeled.window_percentile "learnq_request_seconds"
    [ ("tenant", "soak") ]
    0.99
  *. 1e3

let run_pass ~observe ~keep_flight sess =
  with_temp_dir "learnq-soak8" (fun dir ->
      Obs.reset ();
      Obs.Recorder.set_recording observe;
      Core.Telemetry.set_enabled observe;
      let port_box = ref 0 in
      let port_m = Mutex.create () in
      let port_cv = Condition.create () in
      let cfg =
        {
          Daemon.default_config with
          Daemon.state_dir = dir;
          port = 0;
          pool = 2;
          drain_grace = 3.0;
          sync = Core.Journal.Batch;
          slow_ms = 250.;
          on_listen =
            (fun p ->
              Mutex.lock port_m;
              port_box := p;
              Condition.broadcast port_cv;
              Mutex.unlock port_m);
        }
      in
      let daemon = Daemon.create cfg in
      let serve_result = ref (Ok ()) in
      let server_thread =
        Thread.create (fun () -> serve_result := Daemon.serve daemon) ()
      in
      Fun.protect
        ~finally:(fun () ->
          Daemon.drain daemon;
          Thread.join server_thread;
          Core.Telemetry.set_enabled false;
          Obs.Recorder.set_recording true)
        (fun () ->
          Mutex.lock port_m;
          while !port_box = 0 do
            Condition.wait port_cv port_m
          done;
          let port = !port_box in
          Mutex.unlock port_m;
          let completed = Atomic.make 0 in
          let t0 = now () in
          let nthreads = threads_n () in
          let workers =
            List.init nthreads (fun w ->
                let mine = List.filteri (fun i _ -> i mod nthreads = w) sess in
                Thread.create
                  (fun () -> List.iter (drive_http ~port ~completed) mine)
                  ())
          in
          (* Time-series sampler: runs until every session completes. *)
          let total = List.length sess in
          let samples = ref [] in
          let sampler =
            Thread.create
              (fun () ->
                let prev_done = ref 0 and prev_t = ref (now ()) in
                let rec tick () =
                  let d = Atomic.get completed in
                  if d < total then begin
                    Thread.delay sample_every;
                    let t = now () in
                    let d = Atomic.get completed in
                    let rate =
                      float_of_int (d - !prev_done) /. (t -. !prev_t)
                    in
                    prev_done := d;
                    prev_t := t;
                    samples :=
                      {
                        sm_t = t -. t0;
                        sm_done = d;
                        sm_rate = rate;
                        sm_p99_ms = (if observe then p99_ms () else 0.);
                      }
                      :: !samples;
                    tick ()
                  end
                in
                tick ())
              ()
          in
          List.iter Thread.join workers;
          Thread.join sampler;
          let elapsed = now () -. t0 in
          (* Post-soak introspection over the same wire the operator uses. *)
          let c =
            match Client.connect ~host:"127.0.0.1" ~port with
            | Ok c -> c
            | Error e -> failwith ("soak: reconnect: " ^ e)
          in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let get path =
                match Client.request c ~meth:"GET" ~path () with
                | Ok (code, j) -> (code, j)
                | Error e -> failwith ("soak: GET " ^ path ^ ": " ^ e)
              in
              let _, stats = get "/stats" in
              let live = Option.value ~default:(-1) (Json.get_int "sessions" stats) in
              let stalled =
                Option.value ~default:(-1) (Json.get_int "stalled" stats)
              in
              let debug_ok =
                List.for_all
                  (fun p -> fst (get p) = 200)
                  [ "/debug/sessions"; "/debug/tenants"; "/debug/slow";
                    "/metrics"; "/healthz" ]
              in
              let flight =
                if keep_flight then
                  match get "/debug/flightrecorder" with
                  | 200, j -> Some (Json.to_string j)
                  | _ -> None
                else None
              in
              {
                p_elapsed = elapsed;
                p_samples = List.rev !samples;
                p_zero_lost = live = total;
                p_stalled = stalled;
                p_debug_ok = debug_ok;
                p_flight = flight;
              })))

(* ------------------------------------------------------------------ *)

let best_of n f =
  let rec go best k =
    if k = 0 then Option.get best
    else
      let p = f () in
      let best =
        match best with
        | Some b when b.p_elapsed <= p.p_elapsed -> Some b
        | _ -> Some p
      in
      go best (k - 1)
  in
  go None n

let run () =
  print_endline "== learnq serve: observability soak (PR 8) ==";
  let sess = sessions () in
  let total = List.length sess in
  let tr = trials () in
  (* Disabled baseline first, so the observed pass's flight recorder is
     the one that lands in the artifact. *)
  let off = best_of tr (fun () -> run_pass ~observe:false ~keep_flight:false sess) in
  Printf.printf "observability off: %.2f s (%.1f sessions/s)\n%!" off.p_elapsed
    (float_of_int total /. off.p_elapsed);
  let on = best_of tr (fun () -> run_pass ~observe:true ~keep_flight:true sess) in
  Printf.printf "observability on:  %.2f s (%.1f sessions/s)\n%!" on.p_elapsed
    (float_of_int total /. on.p_elapsed);
  let overhead = (on.p_elapsed -. off.p_elapsed) /. off.p_elapsed in
  Printf.printf
    "overhead %.1f%% (budget %.0f%%)  zero_lost=%b stalled=%d debug_ok=%b\n%!"
    (overhead *. 100.) (overhead_budget *. 100.) on.p_zero_lost on.p_stalled
    on.p_debug_ok;
  (match on.p_flight with
  | Some body ->
      let oc = open_out "FLIGHT_PR8.json" in
      output_string oc body;
      output_string oc "\n";
      close_out oc;
      print_endline "wrote FLIGHT_PR8.json (flight-recorder dump)"
  | None -> prerr_endline "soak: no flight-recorder dump captured");
  let samples_json =
    Json.Arr
      (List.map
         (fun s ->
           Json.Obj
             [
               ("t_s", Json.Num s.sm_t);
               ("done_sessions", Json.of_int s.sm_done);
               ("sessions_per_sec", Json.Num s.sm_rate);
               ("p99_ms", Json.Num s.sm_p99_ms);
             ])
         on.p_samples)
  in
  let overhead_ok = overhead <= overhead_budget in
  let watchdog_ok = on.p_stalled = 0 && off.p_stalled = 0 in
  let j =
    Json.Obj
      [
        ("bench", Json.Str "serve-soak");
        ("sessions", Json.of_int total);
        ("threads", Json.of_int (threads_n ()));
        ("trials", Json.of_int tr);
        ("elapsed_on_s", Json.Num on.p_elapsed);
        ("elapsed_off_s", Json.Num off.p_elapsed);
        ("sessions_per_sec", Json.Num (float_of_int total /. on.p_elapsed));
        ("observability_overhead_pct", Json.Num (overhead *. 100.));
        ("overhead_within_budget", Json.Bool overhead_ok);
        ("zero_lost_sessions", Json.Bool (on.p_zero_lost && off.p_zero_lost));
        ("watchdog_stalls", Json.of_int on.p_stalled);
        ("watchdog_clean", Json.Bool watchdog_ok);
        ("debug_endpoints_ok", Json.Bool on.p_debug_ok);
        ("timeseries", samples_json);
      ]
  in
  let oc = open_out "BENCH_PR8.json" in
  output_string oc (Json.to_string j);
  output_string oc "\n";
  close_out oc;
  let ok =
    overhead_ok && on.p_zero_lost && off.p_zero_lost && watchdog_ok
    && on.p_debug_ok
  in
  Printf.printf "wrote BENCH_PR8.json (all green: %b)\n%!" ok
