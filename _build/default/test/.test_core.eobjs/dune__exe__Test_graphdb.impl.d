test/test_graphdb.ml: Alcotest Automata Core Fun Graphdb List QCheck QCheck_alcotest
