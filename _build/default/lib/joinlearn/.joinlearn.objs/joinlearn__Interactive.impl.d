lib/joinlearn/interactive.ml: Array Core Format Join List Relational Signature
