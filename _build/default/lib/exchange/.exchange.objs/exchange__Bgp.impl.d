lib/exchange/bgp.ml: Format List Option Printf Rdf Set String
