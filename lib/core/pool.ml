(* Persistent domain pool.  Jobs are monomorphic chunk runners
   ([int -> unit]); polymorphism lives in [map_array], which closes over the
   typed input/output arrays so workers only ever see chunk indices.  Workers
   idle in [Condition.wait] between jobs — no spinning. *)

type t = {
  psize : int;
  mutable workers : unit Domain.t list;
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;  (* runner for the current job *)
  mutable next : int;  (* next unclaimed chunk *)
  mutable total : int;  (* chunks in the current job *)
  mutable unfinished : int;  (* chunks claimed or pending *)
  mutable stopped : bool;
}

let size t = t.psize

(* One worker: claim chunks while a job has some, otherwise sleep.  The
   runner is exception-free by construction (map_array catches per item), but
   a stray raise must not kill the domain mid-job, so it is contained here
   too. *)
let worker t () =
  Mutex.lock t.m;
  let rec loop () =
    if t.stopped then ()
    else
      match t.job with
      | Some run when t.next < t.total ->
          let i = t.next in
          t.next <- t.next + 1;
          Mutex.unlock t.m;
          (try run i with _ -> ());
          Mutex.lock t.m;
          t.unfinished <- t.unfinished - 1;
          if t.unfinished = 0 then Condition.broadcast t.work_done;
          loop ()
      | _ ->
          Condition.wait t.work_ready t.m;
          loop ()
  in
  loop ();
  Mutex.unlock t.m

let create psize =
  let t =
    {
      psize = max 1 psize;
      workers = [];
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      next = 0;
      total = 0;
      unfinished = 0;
      stopped = false;
    }
  in
  if t.psize > 1 then
    t.workers <- List.init (t.psize - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  if not t.stopped then begin
    Mutex.lock t.m;
    t.stopped <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

(* Drive one job of [chunks] chunks through [run]; the calling domain
   participates, so a size-1 pool is purely sequential. *)
let drive t ~chunks run =
  if t.stopped then invalid_arg "Pool: pool is shut down";
  if chunks > 0 then begin
    Mutex.lock t.m;
    t.job <- Some run;
    t.next <- 0;
    t.total <- chunks;
    t.unfinished <- chunks;
    Condition.broadcast t.work_ready;
    let rec claim () =
      if t.next < t.total then begin
        let i = t.next in
        t.next <- t.next + 1;
        Mutex.unlock t.m;
        (try run i with _ -> ());
        Mutex.lock t.m;
        t.unfinished <- t.unfinished - 1;
        claim ()
      end
    in
    claim ();
    while t.unfinished > 0 do
      Condition.wait t.work_done t.m
    done;
    t.job <- None;
    Mutex.unlock t.m
  end

let map_array t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.psize <= 1 || n = 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    (* More chunks than lanes so an expensive item doesn't serialize its
       whole lane; chunk [ci] covers [ci*n/chunks, (ci+1)*n/chunks). *)
    let chunks = min n (t.psize * 4) in
    let run ci =
      let lo = ci * n / chunks and hi = (ci + 1) * n / chunks in
      for i = lo to hi - 1 do
        match f xs.(i) with
        | y -> results.(i) <- Some y
        | exception e -> errors.(i) <- Some e
      done
    in
    drive t ~chunks run;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some y -> y | None -> assert false) results
  end

let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))

(* Chunked dispatch: the caller fixes how many items one lock round
   hands out.  [map_array] always cuts psize*4 chunks, which is right for
   chunky items; for micro-items (a containment test, a verdict merge)
   the per-chunk mutex round dominates, so callers pick a [chunk] big
   enough to amortize it.  Work is still claimed dynamically — a slow
   chunk doesn't serialize its lane — and results land in input slots, so
   output order is input order at every pool size. *)
let map_array_chunked t ~chunk f xs =
  let n = Array.length xs in
  let chunk = max 1 chunk in
  if n = 0 then [||]
  else if t.psize <= 1 || n <= chunk then Array.map f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let chunks = (n + chunk - 1) / chunk in
    let run ci =
      let lo = ci * chunk in
      let hi = min n (lo + chunk) in
      for i = lo to hi - 1 do
        match f xs.(i) with
        | y -> results.(i) <- Some y
        | exception e -> errors.(i) <- Some e
      done
    in
    drive t ~chunks run;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some y -> y | None -> assert false) results
  end

(* ------------------------------------------------------------------ *)
(* Default pool                                                        *)
(* ------------------------------------------------------------------ *)

let default_size_ref = ref 1
let default_pool : t option ref = ref None
let at_exit_registered = ref false

let teardown_default () =
  match !default_pool with
  | Some p ->
      default_pool := None;
      shutdown p
  | None -> ()

let set_default_size n =
  let n = max 1 n in
  if n <> !default_size_ref then begin
    teardown_default ();
    default_size_ref := n
  end

let default_size () = !default_size_ref

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create !default_size_ref in
      default_pool := Some p;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit teardown_default
      end;
      p

let recommended_size () = Domain.recommended_domain_count ()
