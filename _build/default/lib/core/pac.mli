(** PAC-style evaluation of learners (Valiant 1984, cited by the paper as
    the approximate framework to adopt when exact consistency is
    intractable: "the learned query may select some negative examples and
    omit some positive ones", Section 2).

    A {!setup} packages a learner with an instance distribution and a target
    labeling; the harness estimates generalization error, traces learning
    curves, and searches empirically for the sample size achieving an
    (ε, δ) guarantee. *)

type ('q, 'i) setup = {
  learn : 'i Example.t list -> 'q option;
  selects : 'q -> 'i -> bool;
  sample : Prng.t -> 'i;  (** draws an instance from the distribution D *)
  target : 'i -> bool;  (** the concept being learned *)
}

val draw_sample : ('q, 'i) setup -> Prng.t -> int -> 'i Example.t list
(** [m] labeled instances drawn i.i.d. from D. *)

val error : ('q, 'i) setup -> Prng.t -> 'q -> samples:int -> float
(** Monte-Carlo estimate of [P_D(selects q x ≠ target x)]. *)

type curve_point = {
  train_size : int;
  mean_error : float;  (** across trials; a failed learner counts as error 1 *)
  max_error : float;
  failures : int;  (** trials where the learner returned [None] *)
}

val learning_curve :
  ('q, 'i) setup ->
  seed:int ->
  sizes:int list ->
  ?trials:int ->
  ?test_samples:int ->
  unit ->
  curve_point list
(** For each training-set size, [trials] (default 10) independent runs, each
    scored on [test_samples] (default 200) fresh draws. *)

val sample_complexity :
  ('q, 'i) setup ->
  seed:int ->
  epsilon:float ->
  delta:float ->
  ?trials:int ->
  ?test_samples:int ->
  ?max_size:int ->
  unit ->
  int option
(** Smallest power-of-two training size (doubling search up to [max_size],
    default 256) at which the fraction of trials with error above [epsilon]
    drops to [delta] or below — the empirical (ε, δ) point. *)
