lib/benchkit/xmark.ml: Automata Core List Printf Tree Uschema Xmltree
