test/test_joinlearn.mli:
