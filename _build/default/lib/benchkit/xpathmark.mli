(** An XPathMark-style query workload over the {!Xmark} documents.

    XPathMark (Franceschet, XSym 2005) defines functional XPath queries over
    XMark data; the paper reports that the positive-example twig learner
    "is able to learn 15% of the queries from XPathMark" — most XPathMark
    queries use reverse axes, positional predicates, boolean connectives or
    value joins that fall outside the twig fragment.  This module
    transcribes a representative workload with the same skew: each entry
    records the XPath surface syntax, whether it lies inside the twig
    fragment (and then its parsed {!Twig.Query.t}), and why not otherwise.
    Experiment E2 measures the learnable fraction against the paper's 15%. *)

type entry = {
  id : string;  (** e.g. "A4" *)
  xpath : string;
  twig : Twig.Query.t option;  (** the query, when inside the fragment *)
  reason : string option;  (** why it is outside the fragment *)
}

val queries : entry list
(** The workload, in id order. *)

val expressible : entry list
(** Entries inside the twig fragment. *)
