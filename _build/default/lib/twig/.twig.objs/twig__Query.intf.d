lib/twig/query.mli: Format Xmltree
