test/test_pathlearn.mli:
