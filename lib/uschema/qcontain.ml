type verdict = [ `Yes | `No of Xmltree.Tree.t | `Unknown ]

(* Certification via pruning: if dropping schema-implied filters from both
   queries yields homomorphism containment, then containment holds on every
   valid document (implied filters never exclude a valid node). *)
let prune_implied g (q : Twig.Query.t) : Twig.Query.t =
  let rec prune_filter (f : Twig.Query.filter) =
    match f.ftest with
    | Twig.Query.Wildcard -> f
    | Twig.Query.Label host ->
        let kept =
          List.filter
            (fun edge -> not (Depgraph.filter_implied g ~at:host edge))
            f.fsubs
        in
        { f with fsubs = List.map (fun (a, sub) -> (a, prune_filter sub)) kept }
  in
  List.map
    (fun (s : Twig.Query.step) ->
      match s.test with
      | Twig.Query.Wildcard -> s
      | Twig.Query.Label host ->
          let kept =
            List.filter
              (fun edge -> not (Depgraph.filter_implied g ~at:host edge))
              s.filters
          in
          { s with filters = List.map (fun (a, f) -> (a, prune_filter f)) kept })
    q

let refute ~budget ~samples ~seed g q1 q2 =
  let rng = Core.Prng.create seed in
  let schema = Depgraph.schema g in
  let rec search i =
    if i >= samples then None
    else begin
      (* One tick per sampled document: document generation plus two query
         evaluations is the unit of work of the refutation loop. *)
      Core.Budget.tick budget;
      match Docgen.generate ~rng ~max_depth:10 schema with
      | None -> None
      | Some doc ->
          let a1 = Twig.Eval.select q1 doc and a2 = Twig.Eval.select q2 doc in
          if List.for_all (fun p -> List.mem p a2) a1 then search (i + 1)
          else Some doc
    end
  in
  search 0

let contained_wrt ?budget ?(samples = 50) ?(seed = 0) g q1 q2 =
  let budget =
    match budget with Some b -> b | None -> Core.Budget.unlimited ()
  in
  (* Budget exhaustion degrades to `Unknown — the verdict the procedure
     already reserves for "not decided within the sampling budget", so a
     deadline is sound by construction. *)
  match
    if not (Depgraph.satisfiable g q1) then `Yes
    else if Twig.Contain.subsumed q1 q2 then `Yes
    else if Twig.Contain.subsumed (prune_implied g q1) (prune_implied g q2)
    then `Yes
    else
      match refute ~budget ~samples ~seed g q1 q2 with
      | Some doc -> `No doc
      | None -> `Unknown
  with
  | v -> v
  | exception Core.Budget.Out_of_budget -> `Unknown

let equivalent_wrt ?budget ?samples ?seed g q1 q2 =
  match contained_wrt ?budget ?samples ?seed g q1 q2 with
  | `Yes -> (
      match contained_wrt ?budget ?samples ?seed g q2 q1 with
      | `Yes -> `Yes
      | (`No _ | `Unknown) as v -> v)
  | (`No _ | `Unknown) as v -> v
