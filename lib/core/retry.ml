type policy = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  breaker_threshold : int;
  cooldown : float;
  half_open_probes : int;
  sleep : float -> unit;
}

let policy ?(max_attempts = 3) ?(base_delay = 0.05) ?(max_delay = 2.0)
    ?(breaker_threshold = 5) ?(cooldown = 30.0) ?(half_open_probes = 1)
    ?(sleep = Unix.sleepf) () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts must be >= 1";
  if breaker_threshold < 1 then
    invalid_arg "Retry.policy: breaker_threshold must be >= 1";
  if half_open_probes < 1 then
    invalid_arg "Retry.policy: half_open_probes must be >= 1";
  {
    max_attempts;
    base_delay;
    max_delay;
    breaker_threshold;
    cooldown;
    half_open_probes;
    sleep;
  }

let no_sleep (_ : float) = ()

type breaker = {
  threshold : int;
  b_cooldown : float;
  probes_needed : int;
  mutable consecutive_failures : int;
  mutable opened : bool;
  mutable opened_at : float;
  mutable probe_successes : int;
      (* consecutive successful half-open probes since the breaker opened;
         [probes_needed] of them close it *)
}

type breaker_state = Closed | Open | Half_open

let m_attempts = Telemetry.Metrics.counter "learnq.retry.attempts"
let m_gave_up = Telemetry.Metrics.counter "learnq.retry.gave_up"
let m_rejected = Telemetry.Metrics.counter "learnq.retry.rejected"
let m_breaker_opened = Telemetry.Metrics.counter "learnq.retry.breaker_opened"

let breaker p =
  {
    threshold = p.breaker_threshold;
    b_cooldown = p.cooldown;
    probes_needed = p.half_open_probes;
    consecutive_failures = 0;
    opened = false;
    opened_at = 0.;
    probe_successes = 0;
  }

let breaker_state b =
  if not b.opened then Closed
  else if Monotonic.now () -. b.opened_at >= b.b_cooldown then Half_open
  else Open

let record_success b =
  if b.opened then begin
    (* A successful half-open probe: the breaker only closes after
       [probes_needed] consecutive successes, so a single lucky reply can't
       flap it closed while the oracle is still mostly down. *)
    b.probe_successes <- b.probe_successes + 1;
    if b.probe_successes >= b.probes_needed then begin
      b.opened <- false;
      b.consecutive_failures <- 0;
      b.probe_successes <- 0
    end
  end
  else b.consecutive_failures <- 0

let record_failure b =
  b.consecutive_failures <- b.consecutive_failures + 1;
  b.probe_successes <- 0;
  (* A failed half-open probe reopens regardless of the count. *)
  if b.opened || b.consecutive_failures >= b.threshold then begin
    if not b.opened then begin
      (* Closed -> Open transition (a half-open reopen keeps [opened] set and
         is not a new transition). *)
      Telemetry.Metrics.incr m_breaker_opened;
      Telemetry.Log.warn
        ~kv:[ ("failures", string_of_int b.consecutive_failures) ]
        "circuit breaker opened: oracle looks down"
    end;
    b.opened <- true;
    b.opened_at <- Monotonic.now ()
  end

let breaker_success = record_success
let breaker_failure = record_failure

type 'a outcome = Answered of 'a * int | Gave_up of 'a * int | Rejected

let call ?budget ~rng p b ~classify f =
  match breaker_state b with
  | Open ->
      Telemetry.Metrics.incr m_rejected;
      Rejected
  | (Closed | Half_open) as st ->
      let max_attempts = if st = Half_open then 1 else p.max_attempts in
      let time_left () =
        match budget with
        | None -> infinity
        | Some bud ->
            if Budget.exhausted bud then 0.
            else ( match Budget.remaining bud with
              | None -> infinity
              | Some r -> r)
      in
      let rec go attempt prev_delay =
        Telemetry.Metrics.incr m_attempts;
        let r = f () in
        match classify r with
        | `Ok ->
            record_success b;
            Answered (r, attempt)
        | `Permanent ->
            record_failure b;
            Telemetry.Metrics.incr m_gave_up;
            Gave_up (r, attempt)
        | `Transient ->
            let left = time_left () in
            if attempt >= max_attempts || left <= 0. then begin
              record_failure b;
              Telemetry.Metrics.incr m_gave_up;
              Gave_up (r, attempt)
            end
            else begin
              (* Decorrelated jitter: spread retries out so a fleet of
                 sessions hitting the same slow oracle doesn't resynchronize. *)
              let span = (prev_delay *. 3.) -. p.base_delay in
              let d =
                p.base_delay +. (if span > 0. then Prng.float rng span else 0.)
              in
              let d = Float.min d p.max_delay in
              p.sleep (Float.min d left);
              go (attempt + 1) d
            end
      in
      go 1 p.base_delay
