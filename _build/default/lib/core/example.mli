(** Labeled examples for query learning.

    Every learner in this repository consumes examples carrying a polarity:
    positive examples must be selected by the learned query, negative examples
    must not (the paper, Section 1: "whether the algorithms take as input only
    positive or both positive and negative examples"). *)

type polarity = Positive | Negative

type 'a t = { value : 'a; polarity : polarity }

val positive : 'a -> 'a t
val negative : 'a -> 'a t
val is_positive : 'a t -> bool
val is_negative : 'a t -> bool

val of_labeled : ('a * bool) -> 'a t
(** [of_labeled (v, b)] is positive iff [b]. *)

val partition : 'a t list -> 'a list * 'a list
(** [(positives, negatives)], preserving order. *)

val positives : 'a t list -> 'a list
val negatives : 'a t list -> 'a list

val consistent_with : ('q -> 'a -> bool) -> 'q -> 'a t list -> bool
(** [consistent_with selects q examples] iff [q] selects every positive and
    no negative example. *)

val map : ('a -> 'b) -> 'a t -> 'b t
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
