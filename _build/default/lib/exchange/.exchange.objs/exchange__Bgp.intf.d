lib/exchange/bgp.mli: Format Rdf
