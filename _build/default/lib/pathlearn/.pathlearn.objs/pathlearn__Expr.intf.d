lib/pathlearn/expr.mli: Automata Format
