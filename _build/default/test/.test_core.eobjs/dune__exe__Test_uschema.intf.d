test/test_uschema.mli:
