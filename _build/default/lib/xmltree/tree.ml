type t = { label : string; children : t list }
type path = int list

let node label children = { label; children }
let leaf label = { label; children = [] }
let text s = leaf ("#" ^ s)
let is_text n = String.length n.label > 0 && n.label.[0] = '#'

let text_value n =
  if is_text n then Some (String.sub n.label 1 (String.length n.label - 1))
  else None

let element_children n = List.filter (fun c -> not (is_text c)) n.children

let value_of n =
  let texts = List.filter_map text_value n.children in
  match texts with [] -> None | ts -> Some (String.concat "" ts)

let rec size n = 1 + List.fold_left (fun acc c -> acc + size c) 0 n.children

let rec depth n =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 n.children

let labels n =
  let module S = Set.Make (String) in
  let rec collect acc n =
    List.fold_left collect (S.add n.label acc) n.children
  in
  S.elements (collect S.empty n)

let rec node_at n = function
  | [] -> Some n
  | i :: rest -> (
      match List.nth_opt n.children i with
      | None -> None
      | Some c -> node_at c rest)

let parent_path = function
  | [] -> None
  | p ->
      let rec drop_last = function
        | [] | [ _ ] -> []
        | x :: rest -> x :: drop_last rest
      in
      Some (drop_last p)

let fold f n init =
  let rec go path n acc =
    let acc = f (List.rev path) n acc in
    List.fold_left
      (fun (i, acc) c -> (i + 1, go (i :: path) c acc))
      (0, acc) n.children
    |> snd
  in
  go [] n init

let all_paths n = List.rev (fold (fun p _ acc -> p :: acc) n [])

let paths_with_label n label =
  List.rev
    (fold (fun p m acc -> if m.label = label then p :: acc else acc) n [])

let descendant_paths n path =
  match node_at n path with
  | None -> []
  | Some sub ->
      let subpaths = all_paths sub in
      List.filter_map
        (function [] -> None | p -> Some (path @ p))
        subpaths

let rec equal a b =
  String.equal a.label b.label
  && List.length a.children = List.length b.children
  && List.for_all2 equal a.children b.children

let rec compare a b =
  let c = String.compare a.label b.label in
  if c <> 0 then c else List.compare compare a.children b.children

let rec equal_unordered a b =
  String.equal a.label b.label
  && List.length a.children = List.length b.children
  &&
  (* Sort children by a canonical key and compare pointwise; the canonical
     key is itself order-insensitive because we sort recursively. *)
  let rec canon n =
    { n with children = List.sort compare (List.map canon n.children) }
  in
  List.equal equal_unordered
    (List.sort compare (List.map canon a.children))
    (List.sort compare (List.map canon b.children))

let rec pp ppf n =
  match n.children with
  | [] -> Format.pp_print_string ppf n.label
  | cs ->
      Format.fprintf ppf "%s(@[%a@])" n.label
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           pp)
        cs

let to_string n = Format.asprintf "%a" pp n

let pp_path ppf p =
  Format.fprintf ppf "/%s"
    (String.concat "/" (List.map string_of_int p))
