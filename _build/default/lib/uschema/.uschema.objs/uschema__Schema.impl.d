lib/uschema/schema.ml: Dme Format List Map Multiplicity Set String Xmltree
