(* Request-scoped observability: trace ids, an always-on flight recorder,
   and labeled sliding-window metrics.

   Telemetry (PR3) is the *engine* instrumentation layer: single-domain
   mutable state behind a master switch, zero-cost when disabled, built for
   the innermost enumeration loops.  Obs is the *server* layer: every
   structure here is independently thread- and domain-safe, because the
   daemon runs connection systhreads on the main domain and session work on
   Pool worker domains, and a trace must survive the hop between them.

   Design constraints, in order:
   - Correct under concurrency (mutexes, not domain-local magic: connection
     threads are systhreads that all share the main domain, so Domain.DLS
     cannot tell two requests apart — storage is keyed by thread id).
   - Near-zero cost when idle.  The flight recorder's disabled check is one
     atomic load; recording itself happens only at request boundaries,
     fsyncs, faults and evictions — never inside engine loops.
   - Zero effect on engine behaviour: nothing here touches a journal or a
     question sequence (the telemetry-transparency fuzz oracle holds us to
     that). *)

(* ------------------------------------------------------------------ *)
(* Trace ids                                                           *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  (* Keyed by (domain, thread): systhreads within the main domain get
     distinct slots, and a worker domain re-installing a captured trace
     around a session job gets its own.  One global mutex is fine — the
     table is touched a handful of times per request, never per probe. *)
  let mu = Mutex.create ()
  let tbl : (int * int, string) Hashtbl.t = Hashtbl.create 64
  let ctr = Atomic.make 0

  let key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

  let mint () =
    let n = Atomic.fetch_and_add ctr 1 in
    Printf.sprintf "t%04x-%06x" (Unix.getpid () land 0xffff) n

  let valid id =
    id <> ""
    && String.length id <= 64
    && String.for_all
         (function
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
           | _ -> false)
         id

  let set = function
    | None -> Mutex.protect mu (fun () -> Hashtbl.remove tbl (key ()))
    | Some id -> Mutex.protect mu (fun () -> Hashtbl.replace tbl (key ()) id)

  let current () = Mutex.protect mu (fun () -> Hashtbl.find_opt tbl (key ()))

  let with_trace id f =
    let k = key () in
    let prev = Mutex.protect mu (fun () -> Hashtbl.find_opt tbl k) in
    Mutex.protect mu (fun () -> Hashtbl.replace tbl k id);
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect mu (fun () ->
            match prev with
            | None -> Hashtbl.remove tbl k
            | Some p -> Hashtbl.replace tbl k p))
      f
end

(* ------------------------------------------------------------------ *)
(* JSON helpers (Obs sits below Telemetry, so no sharing)              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Recorder = struct
  type phase = Instant | Begin | End

  type event = {
    ev_ns : int64;
    ev_dom : int;
    ev_trace : string option;
    ev_name : string;
    ev_detail : string;
    ev_phase : phase;
  }

  (* Slots spread writer contention: a writer locks only the slot its
     domain hashes to, so pool domains never contend with the accept loop.
     Within the main domain all connection systhreads share slot 0 — the
     critical section is a couple of array stores, short enough that this
     is still "lock-cheap". *)
  let nslots = 8

  type slot = {
    s_mu : Mutex.t;
    mutable s_buf : event option array;
    mutable s_pos : int;
  }

  let default_capacity = 4096
  let per_slot total = max 4 (total / nslots)

  let slots =
    Array.init nslots (fun _ ->
        {
          s_mu = Mutex.create ();
          s_buf = Array.make (per_slot default_capacity) None;
          s_pos = 0;
        })

  let recording = Atomic.make true
  let set_recording b = Atomic.set recording b
  let is_recording () = Atomic.get recording

  let set_capacity total =
    let n = per_slot total in
    Array.iter
      (fun s ->
        Mutex.protect s.s_mu (fun () ->
            s.s_buf <- Array.make n None;
            s.s_pos <- 0))
      slots

  let clear () =
    Array.iter
      (fun s ->
        Mutex.protect s.s_mu (fun () ->
            Array.fill s.s_buf 0 (Array.length s.s_buf) None;
            s.s_pos <- 0))
      slots

  let record ?(detail = "") ?(phase = Instant) name =
    if Atomic.get recording then begin
      let dom = (Domain.self () :> int) in
      let ev =
        {
          ev_ns = Monotonic.now_ns ();
          ev_dom = dom;
          ev_trace = Trace.current ();
          ev_name = name;
          ev_detail = detail;
          ev_phase = phase;
        }
      in
      let s = slots.(dom mod nslots) in
      Mutex.protect s.s_mu (fun () ->
          s.s_buf.(s.s_pos) <- Some ev;
          s.s_pos <- (s.s_pos + 1) mod Array.length s.s_buf)
    end

  (* Paired begin/end events rather than Telemetry-style frames: frames
     need a per-thread stack, and the ring survives wraparound better when
     each event stands alone.  Chrome's B/E phases reassemble the tree. *)
  let with_span ?detail name f =
    if not (Atomic.get recording) then f ()
    else begin
      record ?detail ~phase:Begin name;
      Fun.protect ~finally:(fun () -> record ~phase:End name) f
    end

  let events () =
    let all =
      Array.fold_left
        (fun acc s ->
          Mutex.protect s.s_mu (fun () ->
              (* Oldest first within the slot: pos .. end, then 0 .. pos. *)
              let n = Array.length s.s_buf in
              let out = ref acc in
              for i = 0 to n - 1 do
                match s.s_buf.((s.s_pos + i) mod n) with
                | Some ev -> out := ev :: !out
                | None -> ()
              done;
              !out))
        [] slots
    in
    List.sort (fun a b -> Int64.compare a.ev_ns b.ev_ns) all

  let phase_code = function Instant -> "i" | Begin -> "B" | End -> "E"

  let dump_json () =
    let evs = events () in
    let t0 = match evs with [] -> 0L | e :: _ -> e.ev_ns in
    let buf = Buffer.create (1024 + (128 * List.length evs)) in
    Buffer.add_string buf "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
    let first = ref true in
    List.iter
      (fun e ->
        if !first then first := false else Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf
             "\n{\"name\":\"%s\",\"cat\":\"flight\",\"ph\":\"%s\",%s\
              \"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{"
             (json_escape e.ev_name) (phase_code e.ev_phase)
             (match e.ev_phase with Instant -> "\"s\":\"t\"," | _ -> "")
             (Int64.to_float (Int64.sub e.ev_ns t0) /. 1e3)
             e.ev_dom);
        let args =
          (match e.ev_trace with Some t -> [ ("trace", t) ] | None -> [])
          @ if e.ev_detail = "" then [] else [ ("detail", e.ev_detail) ]
        in
        Buffer.add_string buf
          (String.concat ","
             (List.map
                (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" k (json_escape v))
                args));
        Buffer.add_string buf "}}")
      evs;
    Buffer.add_string buf "\n]\n}\n";
    Buffer.contents buf

  let dump_to_file path =
    try
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (dump_json ()))
    with Sys_error _ -> ()

  let trace_events trace =
    List.filter (fun e -> e.ev_trace = Some trace) (events ())
end

(* ------------------------------------------------------------------ *)
(* Labeled metrics with sliding windows                                *)
(* ------------------------------------------------------------------ *)

module Labeled = struct
  (* Same log-scale bucket geometry as Telemetry.Metrics (2 per octave
     from 1e-9), restated here because Obs sits below Telemetry in the
     dependency order. *)
  let nbuckets = 142
  let bucket_lo = 1e-9
  let per_octave = 2.

  let bucket_of v =
    if v <= bucket_lo then 0
    else
      let i = 1 + int_of_float (Float.log2 (v /. bucket_lo) *. per_octave) in
      if i >= nbuckets then nbuckets - 1 else i

  let bucket_mid i =
    if i = 0 then bucket_lo
    else bucket_lo *. Float.exp2 ((float_of_int i -. 0.5) /. per_octave)

  (* One sub-window of a sliding histogram.  [w_epoch] is which span-sized
     interval of time the data belongs to; a reader or writer that finds a
     stale epoch zeroes the window before using it (lazy rotation — no
     ticker thread). *)
  type wwin = {
    mutable w_epoch : int;
    mutable w_count : int;
    mutable w_sum : float;
    mutable w_min : float;
    mutable w_max : float;
    w_buckets : int array;
  }

  type kind =
    | Counter
    | Window of float (* sub-window span in seconds *)

  type series = {
    sr_labels : (string * string) list;
    mutable sr_value : int; (* counters *)
    sr_wins : wwin array; (* window histograms *)
  }

  type family = {
    f_name : string;
    f_kind : kind;
    f_series : (string, series) Hashtbl.t;
    mutable f_order : string list; (* series keys, newest first *)
  }

  let mu = Mutex.create ()
  let families : (string, family) Hashtbl.t = Hashtbl.create 16
  let forder : string list ref = ref []

  (* Cardinality guard: a tenant-labeled family can't grow without bound
     just because tenants can name themselves freely.  Past the cap all
     new label sets collapse into one overflow series, which also makes
     the overflow visible instead of silently dropping samples. *)
  let default_max_series = 64
  let max_series = ref default_max_series
  let set_max_series n = Mutex.protect mu (fun () -> max_series := max 1 n)
  let overflow_labels = [ ("overflow", "true") ]

  (* Test hook: a settable clock drives window rotation deterministically.
     Production uses the monotonic clock. *)
  let clock : (unit -> float) option ref = ref None
  let set_clock c = Mutex.protect mu (fun () -> clock := c)
  let now () = match !clock with Some f -> f () | None -> Monotonic.now ()

  let default_windows = 6
  let default_span = 10.

  let series_key labels =
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
    String.concat "\x00" (List.map (fun (k, v) -> k ^ "\x01" ^ v) sorted)

  let fresh_win () =
    {
      w_epoch = min_int;
      w_count = 0;
      w_sum = 0.;
      w_min = infinity;
      w_max = neg_infinity;
      w_buckets = Array.make nbuckets 0;
    }

  let family name kind =
    match Hashtbl.find_opt families name with
    | Some f -> f
    | None ->
        let f =
          { f_name = name; f_kind = kind; f_series = Hashtbl.create 8;
            f_order = [] }
        in
        Hashtbl.add families name f;
        forder := name :: !forder;
        f

  let series f labels =
    let k = series_key labels in
    match Hashtbl.find_opt f.f_series k with
    | Some s -> s
    | None ->
        let labels, k =
          if Hashtbl.length f.f_series >= !max_series then
            (overflow_labels, series_key overflow_labels)
          else (labels, k)
        in
        (match Hashtbl.find_opt f.f_series k with
        | Some s -> s
        | None ->
            let nw =
              match f.f_kind with
              | Counter -> 0
              | Window _ -> default_windows
            in
            let s =
              {
                sr_labels = labels;
                sr_value = 0;
                sr_wins = Array.init nw (fun _ -> fresh_win ());
              }
            in
            Hashtbl.add f.f_series k s;
            f.f_order <- k :: f.f_order;
            s)

  let incr ?(by = 1) name labels =
    Mutex.protect mu (fun () ->
        let s = series (family name Counter) labels in
        s.sr_value <- s.sr_value + by)

  let counter_value name labels =
    Mutex.protect mu (fun () ->
        match Hashtbl.find_opt families name with
        | None -> 0
        | Some f -> (
            match Hashtbl.find_opt f.f_series (series_key labels) with
            | None -> 0
            | Some s -> s.sr_value))

  (* Rotate-then-use: the sub-window owning the current instant is zeroed
     if its data belongs to an older epoch. *)
  let live_win s span =
    let e = int_of_float (now () /. span) in
    let w = s.sr_wins.(e mod Array.length s.sr_wins) in
    if w.w_epoch <> e then begin
      w.w_epoch <- e;
      w.w_count <- 0;
      w.w_sum <- 0.;
      w.w_min <- infinity;
      w.w_max <- neg_infinity;
      Array.fill w.w_buckets 0 nbuckets 0
    end;
    w

  let observe ?(span = default_span) name labels v =
    Mutex.protect mu (fun () ->
        let s = series (family name (Window span)) labels in
        let w = live_win s span in
        w.w_count <- w.w_count + 1;
        w.w_sum <- w.w_sum +. v;
        if v < w.w_min then w.w_min <- v;
        if v > w.w_max then w.w_max <- v;
        let b = bucket_of v in
        w.w_buckets.(b) <- w.w_buckets.(b) + 1)

  (* The live view of a windowed series: merge every sub-window whose
     epoch falls inside the sliding window ending now.  Stale sub-windows
     (not yet rotated over) are excluded by the epoch test, which is what
     makes lazy rotation sound. *)
  let merged s span =
    let e = int_of_float (now () /. span) in
    let nw = Array.length s.sr_wins in
    let count = ref 0
    and sum = ref 0.
    and mn = ref infinity
    and mx = ref neg_infinity in
    let buckets = Array.make nbuckets 0 in
    Array.iter
      (fun w ->
        if w.w_epoch > e - nw && w.w_epoch <= e then begin
          count := !count + w.w_count;
          sum := !sum +. w.w_sum;
          if w.w_min < !mn then mn := w.w_min;
          if w.w_max > !mx then mx := w.w_max;
          Array.iteri (fun i n -> buckets.(i) <- buckets.(i) + n) w.w_buckets
        end)
      s.sr_wins;
    (!count, !sum, !mn, !mx, buckets)

  let percentile_of ~count ~mn ~mx buckets p =
    if count = 0 then 0.
    else if p <= 0. then mn
    else if p >= 1. then mx
    else begin
      let rank =
        let r = int_of_float (ceil (p *. float_of_int count)) in
        if r < 1 then 1 else if r > count then count else r
      in
      let rec find i cum =
        if i >= nbuckets then mx
        else
          let cum = cum + buckets.(i) in
          if cum >= rank then bucket_mid i else find (i + 1) cum
      in
      let est = find 0 0 in
      Float.min mx (Float.max mn est)
    end

  let window_span f = match f.f_kind with Window s -> s | Counter -> 0.

  let window_stats name labels =
    Mutex.protect mu (fun () ->
        match Hashtbl.find_opt families name with
        | None -> None
        | Some f -> (
            match Hashtbl.find_opt f.f_series (series_key labels) with
            | None -> None
            | Some s ->
                let span = window_span f in
                let count, sum, mn, mx, buckets = merged s span in
                Some
                  ( count,
                    sum,
                    percentile_of ~count ~mn ~mx buckets 0.5,
                    percentile_of ~count ~mn ~mx buckets 0.9,
                    percentile_of ~count ~mn ~mx buckets 0.99 )))

  let window_count name labels =
    match window_stats name labels with
    | Some (c, _, _, _, _) -> c
    | None -> 0

  let window_percentile name labels p =
    Mutex.protect mu (fun () ->
        match Hashtbl.find_opt families name with
        | None -> 0.
        | Some f -> (
            match Hashtbl.find_opt f.f_series (series_key labels) with
            | None -> 0.
            | Some s ->
                let span = window_span f in
                let count, _, mn, mx, buckets = merged s span in
                percentile_of ~count ~mn ~mx buckets p))

  let series_count name =
    Mutex.protect mu (fun () ->
        match Hashtbl.find_opt families name with
        | None -> 0
        | Some f -> Hashtbl.length f.f_series)

  let prom_name name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name

  let prom_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let prom_labels ?extra labels =
    let labels = labels @ Option.value ~default:[] extra in
    if labels = [] then ""
    else
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (prom_name k) (prom_escape v))
             labels)
      ^ "}"

  let prometheus () =
    Mutex.protect mu (fun () ->
        let buf = Buffer.create 1024 in
        List.iter
          (fun name ->
            let f = Hashtbl.find families name in
            let n = prom_name f.f_name in
            let each fn =
              List.iter
                (fun k -> fn (Hashtbl.find f.f_series k))
                (List.rev f.f_order)
            in
            match f.f_kind with
            | Counter ->
                Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
                each (fun s ->
                    Buffer.add_string buf
                      (Printf.sprintf "%s%s %d\n" n (prom_labels s.sr_labels)
                         s.sr_value))
            | Window span ->
                Buffer.add_string buf
                  (Printf.sprintf
                     "# TYPE %s summary\n# window: %gs sliding (%d x %gs)\n" n
                     (span *. float_of_int default_windows)
                     default_windows span);
                each (fun s ->
                    let count, sum, mn, mx, buckets = merged s span in
                    List.iter
                      (fun q ->
                        Buffer.add_string buf
                          (Printf.sprintf "%s%s %.9g\n" n
                             (prom_labels s.sr_labels
                                ~extra:
                                  [ ("quantile", Printf.sprintf "%g" q) ])
                             (percentile_of ~count ~mn ~mx buckets q)))
                      [ 0.5; 0.9; 0.99 ];
                    Buffer.add_string buf
                      (Printf.sprintf "%s_sum%s %.9g\n%s_count%s %d\n" n
                         (prom_labels s.sr_labels)
                         sum n
                         (prom_labels s.sr_labels)
                         count)))
          (List.rev !forder);
        Buffer.contents buf)

  let reset () =
    Mutex.protect mu (fun () ->
        Hashtbl.reset families;
        forder := [];
        max_series := default_max_series;
        clock := None)
end

let reset () =
  Recorder.clear ();
  Recorder.set_recording true;
  Labeled.reset ()
