exception Syntax_error of string

(* Internal: a record-level failure tagged with its 1-based line number, so
   [parse_result] can build a positioned {!Core.Error.t} while the legacy
   [parse] keeps its historical messages. *)
exception Located of string * int

(* Internal: the line on which the unterminated record started. *)
exception Unterminated of int

(* Character-level scanner: quoted fields may contain separators, escaped
   quotes ([""]) and newlines, so records cannot be recovered by splitting
   on ['\n'] first.  Yields records paired with their starting 1-based line
   number (blank lines are skipped, CRLF record terminators accepted), so
   errors keep pointing at the right place. *)
let scan_records separator contents =
  let n = String.length contents in
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  (* [blank] tracks whether the record so far is whitespace-only outside
     quotes — those are skipped, like the blank lines they render as. *)
  let blank = ref true in
  let line = ref 1 in
  let start_line = ref 1 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let end_record () =
    flush_field ();
    let fs = List.rev !fields in
    fields := [];
    if not !blank then records := (!start_line, fs) :: !records;
    blank := true
  in
  let rec plain i =
    if i >= n then begin
      (* Final record without a trailing newline; strip a dangling CR so a
         CRLF file truncated after the CR still parses like its lines. *)
      let len = Buffer.length buf in
      if len > 0 && Buffer.nth buf (len - 1) = '\r' then
        Buffer.truncate buf (len - 1)
    end
    else
      match contents.[i] with
      | '\r' when i + 1 < n && contents.[i + 1] = '\n' -> newline (i + 2)
      | '\n' -> newline (i + 1)
      | c when c = separator ->
          blank := false;
          flush_field ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 ->
          blank := false;
          quoted (i + 1)
      | c ->
          if not (c = ' ' || c = '\t' || c = '\r') then blank := false;
          Buffer.add_char buf c;
          plain (i + 1)
  and newline i =
    end_record ();
    incr line;
    start_line := !line;
    plain i
  and quoted i =
    if i >= n then raise (Unterminated !start_line)
    else
      match contents.[i] with
      | '"' ->
          if i + 1 < n && contents.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            quoted (i + 2)
          end
          else plain (i + 1)
      | '\n' ->
          incr line;
          Buffer.add_char buf '\n';
          quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  if not (!blank && !fields = [] && Buffer.length buf = 0) then end_record ();
  List.rev !records

let parse_located ?(separator = ',') ~name contents =
  match scan_records separator contents with
  | exception Unterminated line ->
      raise (Located ("unterminated quoted field", line))
  | [] -> raise (Located ("empty input: a header row is required", 1))
  | (_, attrs) :: rows ->
      let width = List.length attrs in
      let tuples =
        List.map
          (fun (lineno, fields) ->
            if List.length fields <> width then
              raise
                (Located
                   ( Printf.sprintf "row %d has %d fields, expected %d" lineno
                       (List.length fields) width,
                     lineno ));
            Array.of_list (List.map Value.of_string fields))
          rows
      in
      Relation.make ~name ~attrs tuples

let parse ?separator ~name contents =
  try parse_located ?separator ~name contents with
  | Located (msg, _) -> raise (Syntax_error msg)

let parse_result ?separator ?(source = "<csv>") ~name contents =
  match parse_located ?separator ~name contents with
  | r -> Ok r
  | exception Located (msg, line) ->
      Error
        (Core.Error.parse_error ~source
           ~position:{ Core.Error.line; column = 1 }
           msg)
  | exception Invalid_argument msg ->
      (* Relation.make rejects duplicate header names. *)
      Error (Core.Error.parse_error ~source msg)

(* Empty and whitespace-only fields are quoted too: a row of bare ones
   would render as a blank line, which the parser skips. *)
let needs_quoting separator s =
  String.trim s = ""
  || String.exists (fun c -> c = separator || c = '"' || c = '\n') s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string ?(separator = ',') r =
  let field s = if needs_quoting separator s then quote s else s in
  let sep = String.make 1 separator in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat sep
       (List.map field (Array.to_list (Relation.attrs r))));
  Buffer.add_char buf '\n';
  List.iter
    (fun t ->
      Buffer.add_string buf
        (String.concat sep
           (List.map
              (fun v -> field (Value.to_string v))
              (Array.to_list t)));
      Buffer.add_char buf '\n')
    (Relation.tuples r);
  Buffer.contents buf
