type instance = Xmltree.Annotated.t

module Concept = struct
  type query = Twig.Query.t
  type nonrec instance = instance

  let selects = Twig.Eval.selects_example
  let pp_query = Twig.Query.pp
  let pp_instance = Xmltree.Annotated.pp
end

(* ------------------------------------------------------------------ *)
(* Characteristic queries, memoized                                    *)
(* ------------------------------------------------------------------ *)

(* [determined] probes recompute the characteristic of the same pool items
   once per round, and the items of a session all come from one document —
   so the memo is (document, path ↦ query), keyed per domain (pool workers
   each warm their own copy) and reset whenever a different document shows
   up.  Physical equality on the document is the session-identity test:
   items built by [Interactive.items_of_doc] share their document node. *)

let m_char_hits =
  Core.Telemetry.Metrics.counter "learnq.twiglearn.char_cache_hits"

let m_char_misses =
  Core.Telemetry.Metrics.counter "learnq.twiglearn.char_cache_misses"

type char_memo = {
  mutable cm_doc : Xmltree.Tree.t option;
  cm_tbl : (Xmltree.Tree.path, Twig.Query.t) Hashtbl.t;
}

let char_memo_capacity = 1 lsl 16

let char_dls : char_memo Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { cm_doc = None; cm_tbl = Hashtbl.create 512 })

(* Ablation (bench pr4): with the memo off, [characteristic] rebuilds the
   query from the document every call — the PR 3 behavior. *)
let char_cache_on = ref true
let set_char_cache b = char_cache_on := b

let characteristic (a : instance) =
  if not !char_cache_on then Twig.Query.of_example a.doc a.target
  else
  let memo = Domain.DLS.get char_dls in
  let same_doc = match memo.cm_doc with Some d -> d == a.doc | None -> false in
  if not same_doc then begin
    memo.cm_doc <- Some a.doc;
    Hashtbl.reset memo.cm_tbl
  end;
  match if same_doc then Hashtbl.find_opt memo.cm_tbl a.target else None with
  | Some q ->
      Core.Telemetry.Metrics.incr m_char_hits;
      q
  | None ->
      Core.Telemetry.Metrics.incr m_char_misses;
      let q = Twig.Query.of_example a.doc a.target in
      if Hashtbl.length memo.cm_tbl >= char_memo_capacity then
        Hashtbl.reset memo.cm_tbl;
      Hashtbl.add memo.cm_tbl a.target q;
      q

(* ------------------------------------------------------------------ *)
(* Batch learning                                                      *)
(* ------------------------------------------------------------------ *)

let m_lgg = Core.Telemetry.Metrics.counter "learnq.twiglearn.lgg_calls"

let learn_positive = function
  | [] -> None
  | examples -> (
      Core.Telemetry.Metrics.incr m_lgg;
      Core.Telemetry.with_span "twig.lgg" @@ fun () ->
      let queries = List.map characteristic examples in
      match Twig.Lgg.lgg_all queries with
      | None -> None
      | Some merged ->
          let q = Twig.Lgg.minimize merged in
          if Twig.Query.is_anchored q then Some q else None)

let learn_path examples =
  match learn_positive examples with
  | None -> None
  | Some q -> Some (Twig.Query.strip_filters q)

(* ------------------------------------------------------------------ *)
(* Incremental learning                                                *)
(* ------------------------------------------------------------------ *)

module Incremental = struct
  (* The accumulator is the raw running LGG of the examples added so far,
     in arrival order and unminimized: exactly the intermediate value of
     [learn_positive]'s fold, so [candidate (add ... (add empty x1) ... xn)]
     computes the same query as [learn_positive [x1; ...; xn]] — one
     [Lgg.lgg] per addition instead of refolding the whole history. *)
  type acc = Twig.Query.t option

  let empty : acc = None
  let raw : acc -> Twig.Query.t option = Fun.id

  let m_inc = Core.Telemetry.Metrics.counter "learnq.twiglearn.lgg_inc_calls"

  (* Counter only, no span: [add] runs once per determined-probe via
     [extend_consistent] — the same too-hot-for-spans regime as
     [Contain.filter_subsumed].  [Interactive.Session.record] wraps its
     (once-per-answer) call in the [twig.lgg.inc] span. *)
  let add (acc : acc) item : acc =
    Core.Telemetry.Metrics.incr m_inc;
    let c = characteristic item in
    match acc with None -> Some c | Some raw -> Some (Twig.Lgg.lgg raw c)

  let candidate = function
    | None -> None
    | Some raw ->
        let q = Twig.Lgg.minimize raw in
        if Twig.Query.is_anchored q then Some q else None

  (* Anchoredness commutes with minimization here: characteristic queries
     are label-and-child only, and every [Lgg.lgg] result has passed
     [Query.anchor], so the only anchoredness question left is the output
     test — which minimization (filter pruning) never touches.  Selection
     behavior is likewise invariant (minimize drops only implied filters),
     so determined-probes can use the raw query and skip the minimize that
     used to dominate them. *)
  let extend_consistent (acc : acc) item =
    match add acc item with
    | Some raw when Twig.Query.is_anchored raw -> Some raw
    | _ -> None
end
