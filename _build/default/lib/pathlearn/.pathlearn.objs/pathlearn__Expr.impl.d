lib/pathlearn/expr.ml: Array Automata Format List String
