bench/experiments.ml: Automata Benchkit Core Exchange Format Fun Graphdb Joinlearn Lazy List Pathlearn Printf Relational String Twig Twiglearn Uschema Xmltree
