lib/joinlearn/semijoin_interactive.ml: Core Format Fun Relational Semijoin Signature
