lib/core/interact.ml: Format List Prng
