(** Twig-query containment in the presence of a schema — the static-analysis
    problem the paper maps out around its optimization: "when we add a filter
    to the learned query … we do not know whether the query with the filter
    is equivalent in the presence of schema with the same query without the
    filter.  The optimization that we propose is of interest because query
    implication is a tractable problem, while query containment is not"
    (Section 2; coNP-complete already for disjunction-free multiplicity
    schemas, EXPTIME-complete for DTDs).

    Accordingly this module is a sound, incomplete decision procedure with
    three verdicts:

    - [`Yes] — certified: the first query is unsatisfiable w.r.t. the schema
      (vacuous), or absolute containment holds (homomorphism), or every
      filter distinguishing the queries is schema-implied at its host;
    - [`No doc] — refuted by a concrete valid document on which the answer
      sets differ (randomized search via {!Docgen});
    - [`Unknown] — neither side found within the sampling budget, as must
      happen sometimes for an intractable problem. *)

type verdict = [ `Yes | `No of Xmltree.Tree.t | `Unknown ]

val contained_wrt :
  ?budget:Core.Budget.t ->
  ?samples:int ->
  ?seed:int ->
  Depgraph.t ->
  Twig.Query.t ->
  Twig.Query.t ->
  verdict
(** [contained_wrt g q1 q2]: does every valid document's q1-answer set sit
    inside its q2-answer set?  [samples] (default 50) bounds the randomized
    refutation search; [budget] (one tick per sampled document) additionally
    bounds it in fuel/wall-clock, degrading to [`Unknown] — never raising —
    when it runs out. *)

val equivalent_wrt :
  ?budget:Core.Budget.t ->
  ?samples:int ->
  ?seed:int ->
  Depgraph.t ->
  Twig.Query.t ->
  Twig.Query.t ->
  verdict
(** Containment both ways; [`No doc] carries a document distinguishing
    them. *)
