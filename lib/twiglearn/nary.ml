open Xmltree

type projection = Twig.Query.test list
type t = { anchor : Twig.Query.t; columns : projection list }
type example = { doc : Tree.t; nodes : Tree.path list }

let example doc nodes =
  if nodes = [] then invalid_arg "Nary.example: empty tuple";
  List.iter
    (fun p ->
      if Tree.node_at doc p = None then
        invalid_arg "Nary.example: path not in document")
    nodes;
  { doc; nodes }

let lca = function
  | [] -> invalid_arg "Nary.lca: empty tuple"
  | first :: rest ->
      let rec common p q =
        match (p, q) with
        | a :: p', b :: q' when a = b -> a :: common p' q'
        | _ -> []
      in
      List.fold_left common first rest

(* The labels along the path from the node at [prefix] down to [full]. *)
let relative_labels doc ~prefix ~full =
  let rec drop p f =
    match (p, f) with
    | [], f -> f
    | a :: p', b :: f' when a = b -> drop p' f'
    | _ -> invalid_arg "Nary: component does not extend the anchor"
  in
  let suffix = drop prefix full in
  let rec walk node acc = function
    | [] -> List.rev acc
    | i :: rest -> (
        match List.nth_opt node.Tree.children i with
        | None -> invalid_arg "Nary: dangling component path"
        | Some c -> walk c (c.Tree.label :: acc) rest)
  in
  match Tree.node_at doc prefix with
  | None -> invalid_arg "Nary: anchor path not in document"
  | Some anchor_node -> walk anchor_node [] suffix

let merge_projection (p1 : projection) (p2 : projection) : projection option =
  if List.length p1 <> List.length p2 then None
  else
    Some
      (List.map2
         (fun t1 t2 ->
           if Twig.Query.tests_equal t1 t2 then t1 else Twig.Query.Wildcard)
         p1 p2)

let learn ?budget examples =
  let budget =
    match budget with Some b -> b | None -> Core.Budget.unlimited ()
  in
  match examples with
  | [] -> None
  | first :: rest ->
      let arity = List.length first.nodes in
      if List.exists (fun e -> List.length e.nodes <> arity) rest then None
      else
        let anchors =
          List.map (fun e -> Annotated.make e.doc (lca e.nodes)) examples
        in
        match Positive.learn_positive anchors with
        | None -> None
        | Some anchor ->
            let column i =
              let paths =
                List.map
                  (fun e ->
                    Core.Budget.tick budget;
                    let prefix = lca e.nodes in
                    relative_labels e.doc ~prefix ~full:(List.nth e.nodes i)
                    |> List.map (fun l -> Twig.Query.Label l))
                  examples
              in
              match paths with
              | [] -> None
              | p :: ps ->
                  List.fold_left
                    (fun acc p' ->
                      match acc with
                      | None -> None
                      | Some a -> merge_projection a p')
                    (Some p) ps
            in
            let rec columns i acc =
              if i >= arity then Some (List.rev acc)
              else
                match column i with
                | None -> None
                | Some c -> columns (i + 1) (c :: acc)
            in
            Option.map (fun columns -> { anchor; columns }) (columns 0 [])

let test_matches test label =
  match test with
  | Twig.Query.Wildcard -> true
  | Twig.Query.Label l -> String.equal l label

(* All nodes reached from [path] by following the projection's child
   steps. *)
let project ~budget doc path (proj : projection) =
  let rec go node path = function
    | [] -> [ path ]
    | test :: rest ->
        List.concat
          (List.mapi
             (fun i (c : Tree.t) ->
               Core.Budget.tick budget;
               if (not (Tree.is_text c)) && test_matches test c.Tree.label then
                 go c (path @ [ i ]) rest
               else [])
             node.Tree.children)
  in
  match Tree.node_at doc path with None -> [] | Some n -> go n path proj

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let extract ?budget q doc =
  let budget =
    match budget with Some b -> b | None -> Core.Budget.unlimited ()
  in
  if q.columns = [] then invalid_arg "Nary.extract: arity-0 query";
  List.concat_map
    (fun anchor_path ->
      Core.Budget.tick budget;
      let per_column =
        List.map (fun proj -> project ~budget doc anchor_path proj) q.columns
      in
      if List.exists (fun c -> c = []) per_column then []
      else begin
        let tuples = cartesian per_column in
        (* The per-anchor answer set is the cartesian product of the column
           matches — the one place an n-ary query blows up. *)
        Core.Budget.tick ~cost:(List.length tuples) budget;
        tuples
      end)
    (Twig.Eval.select q.anchor doc)

let extract_values q doc =
  extract q doc
  |> List.map
       (List.map (fun path ->
            match Tree.node_at doc path with
            | None -> ""
            | Some n -> ( match Tree.value_of n with Some v -> v | None -> "")))

let to_relation ~name ~attrs q doc =
  if List.length attrs <> List.length q.columns then
    invalid_arg "Nary.to_relation: attribute count mismatch";
  Relational.Relation.make ~name ~attrs
    (List.map
       (fun vs -> Array.of_list (List.map Relational.Value.of_string vs))
       (extract_values q doc))

let pp ppf q =
  Format.fprintf ppf "@[%a -> (%s)@]" Twig.Query.pp q.anchor
    (String.concat ", "
       (List.map
          (fun proj ->
            if proj = [] then "."
            else
              String.concat "/"
                (List.map
                   (function
                     | Twig.Query.Label l -> l
                     | Twig.Query.Wildcard -> "*")
                   proj))
          q.columns))
