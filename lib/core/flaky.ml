type reply = Label of bool | Refused | Timed_out
type profile = { noise : float; refusal : float; timeout : float }

let reliable = { noise = 0.; refusal = 0.; timeout = 0. }

let rate name r =
  if r < 0. || r > 1. then
    invalid_arg (Printf.sprintf "Flaky: %s rate %g not in [0,1]" name r)

let profile ?(noise = 0.) ?(refusal = 0.) ?(timeout = 0.) () =
  rate "noise" noise;
  rate "refusal" refusal;
  rate "timeout" timeout;
  if refusal +. timeout > 1. then
    invalid_arg "Flaky.profile: refusal + timeout exceeds 1";
  { noise; refusal; timeout }

let wrap ?(profile = reliable) ~rng oracle item =
  let r = Prng.float rng 1.0 in
  if r < profile.refusal then Refused
  else if r < profile.refusal +. profile.timeout then Timed_out
  else
    let label = oracle item in
    Label (if Prng.chance rng profile.noise then not label else label)

(* ------------------------------------------------------------------ *)
(* Fault plans: one seeded description of everything that can go wrong *)
(* ------------------------------------------------------------------ *)

(* PR 1 injected oracle faults here and PR 7 injects disk faults in
   {!Vfs}; a [plan] carries both under a single seed so a chaos run (or a
   fuzz case) is reproduced by one integer.  The oracle side draws from a
   [Prng] stream derived from the seed; the disk side hands its rates to
   [Vfs.faulty], which derives its own stream — the two fault sources are
   independent but jointly deterministic. *)

type disk = {
  enospc : float;
  eio : float;
  short_write : float;
  lying_fsync : float;
  torn : float;
}

let no_disk_faults =
  { enospc = 0.; eio = 0.; short_write = 0.; lying_fsync = 0.; torn = 0. }

let disk ?(enospc = 0.) ?(eio = 0.) ?(short_write = 0.) ?(lying_fsync = 0.)
    ?(torn = 0.) () =
  rate "enospc" enospc;
  rate "eio" eio;
  rate "short_write" short_write;
  rate "lying_fsync" lying_fsync;
  rate "torn" torn;
  { enospc; eio; short_write; lying_fsync; torn }

type plan = { seed : int; oracle : profile; disk : disk }

let plan ?(seed = 0) ?noise ?refusal ?timeout ?enospc ?eio ?short_write
    ?lying_fsync ?torn () =
  {
    seed;
    oracle = profile ?noise ?refusal ?timeout ();
    disk = disk ?enospc ?eio ?short_write ?lying_fsync ?torn ();
  }

let no_faults = plan ()

let wrap_plan p oracle =
  let rng = Prng.create p.seed in
  wrap ~profile:p.oracle ~rng oracle
