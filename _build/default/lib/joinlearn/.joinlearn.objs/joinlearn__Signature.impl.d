lib/joinlearn/signature.ml: Array Format List Printf Relational String
