type item = { src : int; dst : int; word : string list }

module Session = struct
  type query = Words.hypothesis
  type nonrec item = item

  type state = {
    pos : string list list;
    neg : string list list;
    hyp : Words.hypothesis option;
  }

  let init _items = { pos = []; neg = []; hyp = None }

  let m_rows = Core.Telemetry.Metrics.counter "learnq.path.words_labeled"

  let record st item label =
    Core.Telemetry.Metrics.incr m_rows;
    let st =
      if label then { st with pos = item.word :: st.pos }
      else { st with neg = item.word :: st.neg }
    in
    { st with hyp = Words.learn ~pos:st.pos ~neg:st.neg }

  (* A word already labeled — on any path — needs no second question. *)
  let determined st item =
    if List.mem item.word st.pos then Some true
    else if List.mem item.word st.neg then Some false
    else None

  let candidate st = st.hyp

  let pp_item ppf it =
    Format.fprintf ppf "n%d→n%d via [%s]" it.src it.dst
      (String.concat " " it.word)

  let pp_query ppf q = Words.pp ppf q
end

module Loop = Core.Interact.Make (Session)

let m_walks = Core.Telemetry.Metrics.counter "learnq.path.walks"

let items_of_graph ?(max_len = 4) ?(per_source = 30) ~rng g =
  Core.Telemetry.with_span "path.walks" @@ fun () ->
  let n = Graphdb.Graph.node_count g in
  let items =
    List.concat
      (List.init n (fun src ->
         let paths = Graphdb.Rpq.paths_from g ~src ~max_len in
         let items =
           List.filter_map
             (fun (nodes, word) ->
               match List.rev nodes with
               | dst :: _ when word <> [] -> Some { src; dst; word }
               | _ -> None)
             paths
         in
         let items = List.sort_uniq compare items in
         if List.length items <= per_source then items
         else Core.Prng.sample rng per_source items))
  in
  if Core.Telemetry.enabled () then
    Core.Telemetry.Metrics.incr m_walks ~by:(List.length items);
  items

let shortest_first items =
  List.sort (fun a b -> compare (List.length a.word) (List.length b.word)) items

let workload_strategy ~prior _rng _st items =
  let preferred =
    List.filter
      (fun it -> List.exists (fun d -> Automata.Dfa.accepts d it.word) prior)
      items
  in
  match shortest_first (if preferred = [] then items else preferred) with
  | it :: _ -> it
  | [] -> invalid_arg "workload_strategy: no informative item"

(* Journal codec: a walk is its endpoints and word; edge labels never contain
   spaces, so a space-separated line round-trips. *)
let encode_item (it : item) =
  Printf.sprintf "%d %d %s" it.src it.dst (String.concat " " it.word)

let decode_item s =
  match String.split_on_char ' ' s with
  | src :: dst :: (_ :: _ as word) -> (
      match (int_of_string_opt src, int_of_string_opt dst) with
      | Some src, Some dst -> Some { src; dst; word }
      | _ -> None)
  | _ -> None

(* Checkpoint codec: the state is the labeled word sets; the hypothesis is
   recomputed by ONE [Words.learn] call on decode — where a plain journal
   replay re-runs the learner once per recorded answer.  That single call is
   what makes resume-from-checkpoint an order of magnitude cheaper than
   replay for long path sessions. *)
let encode_state (st : Session.state) =
  let line sign w = sign ^ String.concat " " w in
  String.concat "\n"
    (("path1" :: List.map (line "+") st.Session.pos)
    @ List.map (line "-") st.Session.neg)

let decode_state s =
  match String.split_on_char '\n' s with
  | "path1" :: lines -> (
      let parse line =
        if String.length line < 2 then Error (Printf.sprintf "bad line %S" line)
        else
          let word =
            String.sub line 1 (String.length line - 1)
            |> String.split_on_char ' '
            |> List.filter (fun t -> t <> "")
          in
          if word = [] then Error (Printf.sprintf "empty word in %S" line)
          else
            match line.[0] with
            | '+' -> Ok (`Pos word)
            | '-' -> Ok (`Neg word)
            | _ -> Error (Printf.sprintf "bad label in %S" line)
      in
      let rec collect pos neg = function
        | [] ->
            (* [pos]/[neg] were accumulated reversed; restore the stored
               (newest-first) order before the single learn call. *)
            let pos = List.rev pos and neg = List.rev neg in
            Ok { Session.pos; neg; hyp = Words.learn ~pos ~neg }
        | line :: rest -> (
            match parse line with
            | Error _ as e -> e
            | Ok (`Pos w) -> collect (w :: pos) neg rest
            | Ok (`Neg w) -> collect pos (w :: neg) rest)
      in
      collect [] [] lines)
  | _ -> Error "not a path state snapshot"

let run_with_goal ?(rng = Core.Prng.create 0) ?strategy ?budget ?profile ?retry
    ?max_len ~graph ~goal () =
  let items = items_of_graph ?max_len ~rng graph in
  let oracle (it : item) = Automata.Dfa.accepts goal it.word in
  match profile with
  | None -> Loop.run ~rng ?strategy ?budget ~oracle ~items ()
  | Some profile ->
      Loop.run_flaky ~rng ?strategy ?budget ?retry
        ~oracle:(Core.Flaky.wrap ~profile ~rng oracle)
        ~items ()
