/* poll(2) for the connection multiplexer.
 *
 * OCaml's Unix module only exposes select(2), whose fd_set caps out at
 * FD_SETSIZE (1024) — useless for a server parking thousands of idle
 * keep-alive connections.  poll has no such limit and is POSIX, which is
 * all this stub assumes.
 *
 * The interface keeps OCaml portable: interest and readiness are tiny
 * bitmasks (1 = read, 2 = write, 4 = error/hangup) translated here, so no
 * platform poll constants leak across the FFI.
 *
 * The runtime lock is released around the poll call itself; the pollfd
 * array is copied out of the heap first, because the arrays may move once
 * the lock is gone.
 */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/threads.h>

#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <errno.h>

#define LQ_READ 1
#define LQ_WRITE 2
#define LQ_ERR 4

CAMLprim value learnq_poll(value v_fds, value v_events, value v_revents,
                           value v_timeout_ms)
{
  CAMLparam4(v_fds, v_events, v_revents, v_timeout_ms);
  mlsize_t n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds = NULL;
  int r;
  mlsize_t i;

  if (Wosize_val(v_events) != n || Wosize_val(v_revents) != n)
    caml_invalid_argument("learnq_poll: array length mismatch");

  if (n > 0) {
    pfds = calloc(n, sizeof(struct pollfd));
    if (pfds == NULL) caml_raise_out_of_memory();
    for (i = 0; i < n; i++) {
      int interest = Int_val(Field(v_events, i));
      pfds[i].fd = Int_val(Field(v_fds, i));
      pfds[i].events = 0;
      if (interest & LQ_READ) pfds[i].events |= POLLIN;
      if (interest & LQ_WRITE) pfds[i].events |= POLLOUT;
    }
  }

  caml_release_runtime_system();
  r = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (r < 0) {
    int err = errno;
    free(pfds);
    if (err == EINTR || err == EAGAIN) CAMLreturn(Val_int(0));
    caml_failwith("poll failed");
  }

  for (i = 0; i < n; i++) {
    int ready = 0;
    short re = pfds[i].revents;
    if (re & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) ready |= LQ_READ;
    if (re & (POLLOUT | POLLHUP | POLLERR | POLLNVAL)) ready |= LQ_WRITE;
    if (re & (POLLHUP | POLLERR | POLLNVAL)) ready |= LQ_ERR;
    Store_field(v_revents, i, Val_int(ready));
  }
  free(pfds);
  CAMLreturn(Val_int(r));
}
