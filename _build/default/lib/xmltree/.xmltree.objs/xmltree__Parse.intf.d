lib/xmltree/parse.mli: Tree
