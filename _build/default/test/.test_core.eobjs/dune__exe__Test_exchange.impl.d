test/test_exchange.ml: Alcotest Array Automata Benchkit Core Exchange Graphdb Joinlearn List QCheck_alcotest Relational String Twig Xmltree
