lib/pathlearn/interactive.mli: Automata Core Graphdb Words
