(** The four cross-model data-exchange scenarios of Figure 1, each driven by
    a {e learned} source query: "in the process of data exchange, the user
    having exact knowledge of the source schema can be replaced by a
    learning algorithm, trained by a non-expert user.  The query on the
    source database can thus be inferred from examples instead of being
    explicitly written" (paper, Section 1).

    Every scenario returns both the learned source query and the exchanged
    target instance, so callers can compare against the goal query's direct
    evaluation (experiment E8). *)

(** Scenario 1 — relational → XML publishing: learn a join predicate from
    labeled tuple pairs, evaluate the equi-join, publish the result. *)
module Rel_to_xml : sig
  type result = {
    predicate : Relational.Algebra.predicate;
    published : Xmltree.Tree.t;
  }

  val run :
    left:Relational.Relation.t ->
    right:Relational.Relation.t ->
    examples:
      ((Relational.Relation.tuple * Relational.Relation.tuple) * bool) list ->
    result option
end

(** Scenario 2 — XML → relational shredding: learn the row-selecting twig
    from annotated nodes, shred each row's children into a relation. *)
module Xml_to_rel : sig
  type result = { query : Twig.Query.t; shredded : Relational.Relation.t }

  val run :
    doc:Xmltree.Tree.t ->
    annotations:Xmltree.Tree.path list ->
    name:string ->
    columns:(string * string) list ->
    result option
end

(** Scenario 3 — XML → RDF shredding: learn the scope twig, shred the
    selected subtrees into triples. *)
module Xml_to_rdf : sig
  type result = { query : Twig.Query.t; triples : Rdf.t }

  val run :
    doc:Xmltree.Tree.t ->
    annotations:Xmltree.Tree.path list ->
    result option
end

(** Scenario 4 — graph → XML publishing: learn a path query from labeled
    node pairs, publish every answer path. *)
module Graph_to_xml : sig
  type result = { query : Pathlearn.Words.hypothesis; published : Xmltree.Tree.t }

  val run :
    graph:Graphdb.Graph.t ->
    examples:((int * int) * bool) list ->
    result option
end
