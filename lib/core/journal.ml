let magic = "LQJRNL1\n"

type header = { seed : int; engine : string; config : string }

type event =
  | Asked of string
  | Answered of string * Flaky.reply
  | Completed

type t = { fd : Unix.file_descr; sync : bool; mutable closed : bool }

(* ------------------------------------------------------------------ *)
(* CRC-32 (polynomial 0xEDB88320, the zlib/PNG one)                    *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Payload encoding                                                    *)
(* ------------------------------------------------------------------ *)

(* One tag byte, then the encoded item.  The header packs its fields with
   NUL separators (items and configs are produced by this code base and
   never contain NUL). *)

let encode_header h = Printf.sprintf "H%d\x00%s\x00%s" h.seed h.engine h.config

let decode_header payload =
  (* payload starts after the 'H' tag *)
  match String.split_on_char '\x00' payload with
  | seed :: engine :: rest -> (
      match int_of_string_opt seed with
      | Some seed -> Some { seed; engine; config = String.concat "\x00" rest }
      | None -> None)
  | _ -> None

let encode_event = function
  | Asked item -> "?" ^ item
  | Answered (item, Flaky.Label true) -> "+" ^ item
  | Answered (item, Flaky.Label false) -> "-" ^ item
  | Answered (item, Flaky.Refused) -> "R" ^ item
  | Answered (item, Flaky.Timed_out) -> "T" ^ item
  | Completed -> "C"

let decode_event payload =
  if payload = "" then None
  else
    let rest () = String.sub payload 1 (String.length payload - 1) in
    match payload.[0] with
    | '?' -> Some (Asked (rest ()))
    | '+' -> Some (Answered (rest (), Flaky.Label true))
    | '-' -> Some (Answered (rest (), Flaky.Label false))
    | 'R' -> Some (Answered (rest (), Flaky.Refused))
    | 'T' -> Some (Answered (rest (), Flaky.Timed_out))
    | 'C' when String.length payload = 1 -> Some Completed
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Record framing                                                      *)
(* ------------------------------------------------------------------ *)

let put_le32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_le32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  put_le32 buf (String.length payload);
  put_le32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let append_raw t s =
  if t.closed then invalid_arg "Journal.append: journal is closed";
  write_all t.fd s;
  if t.sync then Unix.fsync t.fd

let append t event = append_raw t (frame (encode_event event))

let create ?(sync = true) ~path header =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let t = { fd; sync; closed = false } in
  append_raw t (magic ^ frame (encode_header header));
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

type recovered = {
  header : header option;
  events : event list;
  valid_bytes : int;
  dropped_bytes : int;
}

let parse ~source input =
  let len = String.length input in
  let magic_len = String.length magic in
  let prefix_of_magic =
    len < magic_len && String.equal input (String.sub magic 0 len)
  in
  if prefix_of_magic then
    (* The crash happened while the very first write was in flight. *)
    Ok { header = None; events = []; valid_bytes = 0; dropped_bytes = len }
  else if len < magic_len || not (String.equal (String.sub input 0 magic_len) magic)
  then
    Error
      (Error.parse_error ~source:"journal"
         (Printf.sprintf "%s is not a learnq session journal" source))
  else
    let rec records pos header events =
      let finish dropped =
        Ok
          {
            header;
            events = List.rev events;
            valid_bytes = pos;
            dropped_bytes = dropped;
          }
      in
      if len - pos < 8 then finish (len - pos)
      else
        let plen = get_le32 input pos in
        let crc = get_le32 input (pos + 4) in
        if plen < 0 || pos + 8 + plen > len then
          (* Torn tail: the length prefix promises more bytes than exist.
             (An in-place corruption of the length field is indistinguishable
             from a torn write, so it too is treated as truncation.) *)
          finish (len - pos)
        else
          let payload = String.sub input (pos + 8) plen in
          if crc32 payload <> crc then
            Error
              (Error.corrupt_journal ~path:source ~offset:pos
                 "record checksum mismatch")
          else
            let next = pos + 8 + plen in
            if plen > 0 && payload.[0] = 'H' then
              match decode_header (String.sub payload 1 (plen - 1)) with
              | Some h when pos = magic_len && header = None ->
                  records next (Some h) events
              | Some _ ->
                  Error
                    (Error.corrupt_journal ~path:source ~offset:pos
                       "unexpected header record")
              | None ->
                  Error
                    (Error.corrupt_journal ~path:source ~offset:pos
                       "undecodable header record")
            else begin
              match decode_event payload with
              | Some ev -> records next header (ev :: events)
              | None ->
                  Error
                    (Error.corrupt_journal ~path:source ~offset:pos
                       "undecodable record payload")
            end
    in
    records magic_len None []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let recover ~path =
  match read_file path with
  | exception Sys_error msg ->
      Error (Error.invalid_input ~what:"--journal" msg)
  | input -> parse ~source:path input

let resume ?(sync = true) ~path () =
  match recover ~path with
  | Error e -> Error e
  | Ok r -> (
      match r.header with
      | None ->
          Error
            (Error.invalid_input ~what:"--journal"
               (path ^ " has no intact header record; nothing to resume"))
      | Some _ ->
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd r.valid_bytes;
          ignore (Unix.lseek fd 0 Unix.SEEK_END);
          Ok ({ fd; sync; closed = false }, r))

let answered r =
  List.filter_map
    (function Answered (item, reply) -> Some (item, reply) | _ -> None)
    r.events
