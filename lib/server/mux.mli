(** Readiness-driven connection multiplexer.

    One mux thread owns every socket: it polls (via a poll(2) stub, so the
    connection count is not capped by [FD_SETSIZE]) for readable parked
    connections and writable blocked responses, feeds bytes to each
    connection's {!Http.incremental} parser, and hands complete requests to
    a bounded pool of [io_threads] workers.  Idle keep-alive connections
    therefore cost {e zero} threads — the server's thread budget is
    [io_threads + 1] regardless of how many thousands of clients stay
    connected.

    Ownership protocol: sockets are closed only on the mux thread.  While a
    request runs, its connection is in state [Running] and excluded from
    the poll set — the worker owns the socket, writes the response
    (non-blockingly; if the write would block, the mux finishes it), then
    returns ownership.  This makes descriptor recycling races impossible.

    Slow-request deadline: a connection counts as {e mid-request} from its
    first buffered byte ({!Http.mid_request}); if the request is still
    incomplete [request_deadline] seconds later the client gets a 408 and
    the socket is closed — a 1-byte-per-second slow-loris never stalls
    anyone and never costs a thread. *)

type config = {
  io_threads : int;  (** worker threads running request handlers *)
  max_conns : int;  (** beyond this, accepts are shed with 503 *)
  max_idle_conns : int;  (** parked keep-alive cap; oldest evicted beyond *)
  request_deadline : float;  (** seconds from first request byte to 408 *)
  drain_grace : float;  (** seconds before mid-request conns are cut *)
  max_head : int;
  max_body : int;
  handler : Http.request -> Http.response;
      (** runs on a worker thread; exceptions become 500s *)
  keep_alive : Http.request -> Http.response -> bool;
  draining : unit -> bool;
      (** polled each loop; once true: stop accepting, close idle conns,
          finish in-flight requests, exit when the table is empty *)
  tick : unit -> unit;  (** called once per loop (≥4/s); for housekeeping *)
  accept_fn : Unix.file_descr -> Unix.file_descr * Unix.sockaddr;
      (** injectable for fault tests (e.g. raising [EMFILE]) *)
}

val default_config : config

type t

val create : config -> t

val run : t -> listen_fd:Unix.file_descr -> unit
(** Runs the loop on the calling thread until [draining] turns true and the
    last connection closes.  Spawns and joins the worker pool internally. *)

val wake : t -> unit
(** Nudges the loop out of its poll wait.  Async-signal-safe (one byte down
    a non-blocking pipe); call after flipping the drain flag. *)

type stats = {
  s_conns : int;
  s_parked : int;  (** idle keep-alive connections costing zero threads *)
  s_busy : int;  (** workers currently inside the handler *)
  s_threads : int;  (** mux loop + workers — the whole I/O thread budget *)
  s_accepted : int;
  s_shed : int;  (** connections refused with 503 (capacity or EMFILE) *)
  s_emfile : int;  (** accept(2) hit descriptor exhaustion *)
  s_timeouts : int;  (** slow-request 408s *)
  s_idle_closed : int;  (** parked conns evicted beyond [max_idle_conns] *)
}

val stats : t -> stats
(** Callable from any thread. *)
