test/test_twig.ml: Alcotest Contain Eval Lgg List Option Parse QCheck QCheck_alcotest Query String Tree Twig Xmltree
