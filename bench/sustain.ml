(* Sustained-load soak for the connection multiplexer (PR 10).

   Phase A — the mux under open-loop load with a parked herd.  One
   in-process daemon (mux + bounded worker pool); first a herd of
   keep-alive connections each completes one request and then sits idle,
   proving that parked connections cost zero threads; then the seeded
   open-loop generator ({!Loadgen}) drives the full session population
   through the same daemon while a sampler records sessions/sec, the
   sliding-window p50/p99, and the /stats connection/thread gauges.
   Gates:

   - zero lost sessions: every arrival completes and /stats still counts
     each one at the end;
   - thread bound: with >= 500 connections parked, the HTTP thread
     budget stays at io_threads + 1 in every sample (parking is free);
   - p99 within budget (default 500 ms, [LEARNQ_SOAK_P99_BUDGET_MS]) —
     deliberately generous, catching order-of-magnitude regressions on
     any hardware; the CI lane additionally diffs p99 against the
     committed baseline for finer drift.

   Phase B — chaos regression: the PR 6 harness (real binary, SIGKILL at
   ~40% progress, restart on the same state dir) re-run against the mux
   build, gating that resumed sessions still converge to the transcripts
   of uninterrupted runs and the drain still exits 0.

   Results land in BENCH_PR10.json; the sustained-soak CI lane greps the
   gates and diffs p99 against the committed baseline. *)

module Client = Server.Client
module Json = Server.Json
module Daemon = Server.Daemon
module Tenant = Server.Tenant
module Obs = Core.Obs

let getenv_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

let getenv_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some x when x > 0.0 -> x
  | _ -> default

let sessions_n () = getenv_int "LEARNQ_SOAK_SESSIONS" 1000
let duration_s () = getenv_float "LEARNQ_SOAK_SECONDS" 60.0
let herd_n () = getenv_int "LEARNQ_SOAK_HERD" 600
let workers_n () = getenv_int "LEARNQ_SOAK_WORKERS" 16
let io_threads_n () = getenv_int "LEARNQ_SOAK_IO_THREADS" 4
let p99_budget_ms () = getenv_float "LEARNQ_SOAK_P99_BUDGET_MS" 500.0
let herd_bound = 500 (* the invariant's floor, regardless of herd size *)

let with_temp_dir prefix f =
  let path = Filename.temp_file prefix ".d" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun e ->
             try Sys.remove (Filename.concat path e) with Sys_error _ -> ())
           (Sys.readdir path)
       with Sys_error _ -> ());
      try Unix.rmdir path with Unix.Unix_error _ -> ())
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Phase A                                                             *)
(* ------------------------------------------------------------------ *)

type phase_a = {
  a_result : Loadgen.result;
  a_live : int;  (** /stats sessions after the run *)
  a_herd_parked : int;  (** parked gauge once the herd settled *)
  a_parked_min : int;  (** min parked across load samples *)
  a_threads_max : int;  (** max /stats threads across load samples *)
  a_proc_threads : int option;
      (** OS threads in the whole process with the herd parked (daemon +
          bench harness together) — the thread-per-connection design this
          PR replaced would put this above the herd size *)
}

(* Linux-only corroboration of the mux's own gauge; [None] elsewhere. *)
let proc_threads () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | line ->
            if String.length line > 8 && String.sub line 0 8 = "Threads:" then
              int_of_string_opt
                (String.trim (String.sub line 8 (String.length line - 8)))
            else scan ()
        | exception End_of_file -> None
      in
      let r = scan () in
      close_in ic;
      r

let stats_int c key =
  match Client.request c ~meth:"GET" ~path:"/stats" () with
  | Ok (200, j) -> Option.value ~default:(-1) (Json.get_int key j)
  | _ -> -1

let rec connect_retry ~port =
  match Client.connect ~host:"127.0.0.1" ~port with
  | Ok c -> c
  | Error _ ->
      Thread.delay 0.05;
      connect_retry ~port

let run_phase_a () =
  with_temp_dir "learnq-sustain" (fun dir ->
      Obs.reset ();
      let io_threads = io_threads_n () in
      let herd = herd_n () in
      let port_box = ref 0 in
      let port_m = Mutex.create () in
      let port_cv = Condition.create () in
      let cfg =
        {
          Daemon.default_config with
          Daemon.state_dir = dir;
          port = 0;
          pool = 2;
          io_threads;
          max_conns = herd + workers_n () + 64;
          max_idle_conns = 0;
          drain_grace = 5.0;
          sync = Core.Journal.Batch;
          tenants =
            Tenant.make
              ~default:(Tenant.quota ~max_sessions:1_000_000 ())
              [];
          on_listen =
            (fun p ->
              Mutex.lock port_m;
              port_box := p;
              Condition.broadcast port_cv;
              Mutex.unlock port_m);
        }
      in
      let daemon = Daemon.create cfg in
      let server_thread =
        Thread.create (fun () -> ignore (Daemon.serve daemon)) ()
      in
      Fun.protect
        ~finally:(fun () ->
          Daemon.drain daemon;
          Thread.join server_thread)
        (fun () ->
          Mutex.lock port_m;
          while !port_box = 0 do
            Condition.wait port_cv port_m
          done;
          let port = !port_box in
          Mutex.unlock port_m;
          (* The herd: each connection completes one real request and
             then parks.  They stay open for the whole load phase. *)
          let herd_conns =
            List.init herd (fun _ ->
                let c = connect_retry ~port in
                (match Client.request c ~meth:"GET" ~path:"/healthz" () with
                | Ok (200, _) -> ()
                | _ -> failwith "sustain: herd healthz failed");
                c)
          in
          Fun.protect
            ~finally:(fun () -> List.iter Client.close herd_conns)
            (fun () ->
              let sc = connect_retry ~port in
              Fun.protect
                ~finally:(fun () -> Client.close sc)
                (fun () ->
                  (* Wait for every herd connection to park. *)
                  let deadline = Core.Monotonic.now () +. 30.0 in
                  let rec settle () =
                    let p = stats_int sc "parked" in
                    if p >= herd then p
                    else if Core.Monotonic.now () > deadline then p
                    else begin
                      Thread.delay 0.1;
                      settle ()
                    end
                  in
                  let herd_parked = settle () in
                  let procs = proc_threads () in
                  Printf.printf
                    "herd parked: %d connections, /stats threads = %d, process threads = %s\n%!"
                    herd_parked (stats_int sc "threads")
                    (match procs with
                    | Some n -> string_of_int n
                    | None -> "n/a");
                  let result =
                    Loadgen.run
                      {
                        Loadgen.lg_host = "127.0.0.1";
                        lg_port = port;
                        lg_tenant = "sustain";
                        lg_seed = 0x10ad;
                        lg_sessions = sessions_n ();
                        lg_duration = duration_s ();
                        lg_workers = workers_n ();
                        lg_sample_every = 0.5;
                      }
                  in
                  let live = stats_int sc "sessions" in
                  let parked_min, threads_max =
                    List.fold_left
                      (fun (pmin, tmax) s ->
                        ( min pmin s.Loadgen.sm_parked,
                          max tmax s.Loadgen.sm_threads ))
                      (max_int, 0) result.Loadgen.r_samples
                  in
                  let parked_min =
                    if parked_min = max_int then herd_parked else parked_min
                  in
                  {
                    a_result = result;
                    a_live = live;
                    a_herd_parked = herd_parked;
                    a_parked_min = parked_min;
                    a_threads_max = threads_max;
                    a_proc_threads = procs;
                  }))))

(* ------------------------------------------------------------------ *)

let run () =
  print_endline "== learnq serve: sustained-load soak (PR 10) ==";
  let total = sessions_n () in
  Printf.printf
    "phase A: %d sessions over %.0f s (open-loop), %d workers, %d-conn idle herd, io-threads %d\n%!"
    total (duration_s ()) (workers_n ()) (herd_n ()) (io_threads_n ());
  let a = run_phase_a () in
  let r = a.a_result in
  Printf.printf
    "phase A: %.1f s, %d/%d completed (%d failed), %d answers, p50 %.1f ms p99 %.1f ms\n%!"
    r.Loadgen.r_elapsed r.Loadgen.r_completed total r.Loadgen.r_failed
    r.Loadgen.r_answers r.Loadgen.r_p50_ms r.Loadgen.r_p99_ms;
  Printf.printf
    "phase A: parked >= %d throughout, /stats threads <= %d (budget %d), pickup lag max %.0f ms\n%!"
    a.a_parked_min a.a_threads_max
    (io_threads_n () + 1)
    r.Loadgen.r_lag_max_ms;
  let zero_lost =
    r.Loadgen.r_completed = total && r.Loadgen.r_failed = 0
    && a.a_live = total
  in
  let thread_bound = io_threads_n () + 1 in
  let idle_thread_ok =
    a.a_herd_parked >= herd_bound
    && a.a_parked_min >= herd_bound
    && a.a_threads_max <= thread_bound
    (* Corroborate with the OS where we can: the whole process (daemon
       plus harness) must hold far fewer threads than parked herd
       connections — thread-per-connection would need one each. *)
    && (match a.a_proc_threads with Some n -> n < herd_bound / 4 | None -> true)
  in
  let p99_ok = r.Loadgen.r_p99_ms <= p99_budget_ms () in
  (* Phase B: the PR 6 chaos harness against the mux build. *)
  print_endline "phase B: chaos regression (SIGKILL + restart, real binary)";
  let sess = Serve.sessions () in
  let refs = Serve.reference_runs sess in
  let b =
    with_temp_dir "learnq-sustain-chaos" (fun dir ->
        Serve.run_phase_a sess refs dir)
  in
  Printf.printf
    "phase B: killed=%b zero_lost=%b match=%b drain_clean=%b (%.1f s)\n%!"
    b.Serve.a_killed b.Serve.a_zero_lost b.Serve.a_match b.Serve.a_drain_clean
    b.Serve.a_elapsed;
  let chaos_ok =
    b.Serve.a_killed && b.Serve.a_zero_lost && b.Serve.a_match
    && b.Serve.a_drain_clean
  in
  let all_green = zero_lost && idle_thread_ok && p99_ok && chaos_ok in
  let j =
    Json.Obj
      [
        ("bench", Json.Str "serve-sustain");
        ("sessions", Json.of_int total);
        ("duration_s", Json.Num (duration_s ()));
        ("workers", Json.of_int (workers_n ()));
        ("herd_conns", Json.of_int (herd_n ()));
        ("io_threads", Json.of_int (io_threads_n ()));
        ("elapsed_s", Json.Num r.Loadgen.r_elapsed);
        ( "sessions_per_sec",
          Json.Num (float_of_int total /. r.Loadgen.r_elapsed) );
        ("completed", Json.of_int r.Loadgen.r_completed);
        ("failed", Json.of_int r.Loadgen.r_failed);
        ("answers", Json.of_int r.Loadgen.r_answers);
        ("p50_ms", Json.Num r.Loadgen.r_p50_ms);
        ("p99_ms", Json.Num r.Loadgen.r_p99_ms);
        ("p99_budget_ms", Json.Num (p99_budget_ms ()));
        ("p99_within_budget", Json.Bool p99_ok);
        ("zero_lost_sessions", Json.Bool zero_lost);
        ("herd_parked", Json.of_int a.a_herd_parked);
        ("parked_min_under_load", Json.of_int a.a_parked_min);
        ("threads_max_under_load", Json.of_int a.a_threads_max);
        ("thread_bound", Json.of_int thread_bound);
        ( "process_threads_with_herd",
          match a.a_proc_threads with
          | Some n -> Json.of_int n
          | None -> Json.Null );
        ("idle_thread_bound_ok", Json.Bool idle_thread_ok);
        ("arrival_lag_max_ms", Json.Num r.Loadgen.r_lag_max_ms);
        ("timeseries", Loadgen.samples_json r.Loadgen.r_samples);
        ( "chaos",
          Json.Obj
            [
              ("killed", Json.Bool b.Serve.a_killed);
              ("zero_lost", Json.Bool b.Serve.a_zero_lost);
              ("resumed_matches_uninterrupted", Json.Bool b.Serve.a_match);
              ("drain_clean", Json.Bool b.Serve.a_drain_clean);
              ("sessions_per_sec", Json.Num b.Serve.a_sessions_per_sec);
              ("p99_ms", Json.Num b.Serve.a_p99_ms);
            ] );
        ("all_green", Json.Bool all_green);
      ]
  in
  let oc = open_out "BENCH_PR10.json" in
  output_string oc (Json.to_string j);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_PR10.json (all green: %b)\n%!" all_green
