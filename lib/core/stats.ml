let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
        /. float_of_int (List.length xs)
      in
      sqrt var

let sorted xs = List.sort Float.compare xs

let median xs =
  match sorted xs with
  | [] -> 0.
  | s ->
      let n = List.length s in
      if n mod 2 = 1 then List.nth s (n / 2)
      else (List.nth s ((n / 2) - 1) +. List.nth s (n / 2)) /. 2.

let percentile p xs =
  match sorted xs with
  | [] -> 0.
  | s ->
      let n = List.length s in
      let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
      let rank = max 0 (min (n - 1) rank) in
      List.nth s rank

let minimum = function [] -> 0. | xs -> List.fold_left Float.min infinity xs
let maximum = function
  | [] -> 0.
  | xs -> List.fold_left Float.max neg_infinity xs

let mean_int xs = mean (List.map float_of_int xs)
let median_int xs = median (List.map float_of_int xs)

(* Timed on the monotonic clock: benchmark intervals must not jump with NTP
   adjustments or manual clock steps the way gettimeofday does. *)
let time f =
  let t0 = Monotonic.now () in
  let result = f () in
  let t1 = Monotonic.now () in
  (result, t1 -. t0)

let time_median ?(repeats = 5) f =
  let runs = List.init (max 1 repeats) (fun _ -> snd (time f)) in
  median runs
