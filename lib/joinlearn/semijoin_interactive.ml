type item = Relational.Relation.tuple

(* The session needs the semijoin context (right relation), which the
   generic SESSION interface cannot thread through [init]; stash it in the
   state via a mutable slot set by [run_with_goal] before the loop starts. *)
let current_context : (Semijoin.t * int) option ref = ref None

module Session = struct
  type query = Signature.mask
  type nonrec item = item

  type state = {
    ctx : Semijoin.t;
    node_limit : int;
    labeled : (item * bool) list;
  }

  let init _items =
    match !current_context with
    | Some (ctx, node_limit) -> { ctx; node_limit; labeled = [] }
    | None ->
        invalid_arg
          "Semijoin_interactive: run through run_with_goal (context unset)"

  let m_rows = Core.Telemetry.Metrics.counter "learnq.semijoin.rows_labeled"

  let m_tests =
    Core.Telemetry.Metrics.counter "learnq.semijoin.signature_tests"

  let record st item label =
    Core.Telemetry.Metrics.incr m_rows;
    { st with labeled = (item, label) :: st.labeled }

  let consistent_with st extra =
    Core.Telemetry.Metrics.incr m_tests;
    Semijoin.consistent_exact ~node_limit:st.node_limit st.ctx
      (extra @ st.labeled)

  let determined st item =
    (* A label is forced when assuming the opposite leaves no consistent
       predicate; an incomplete (node-limited) search never forces. *)
    let as_pos = consistent_with st [ (item, true) ] in
    if as_pos.theta = None && as_pos.complete then Some false
    else
      let as_neg = consistent_with st [ (item, false) ] in
      if as_neg.theta = None && as_neg.complete then Some true else None

  let candidate st = (consistent_with st []).theta

  let pp_item = Relational.Relation.pp_tuple
  let pp_query ppf _ = Format.pp_print_string ppf "<semijoin predicate>"
end

module Loop = Core.Interact.Make (Session)

let make_session_context left right = Semijoin.make left right

(* Journal codec: items are left tuples, encoded by row index. *)
let encode_item ~left (t : item) =
  let rec go i = function
    | [] -> invalid_arg "Semijoin_interactive.encode_item: tuple not in relation"
    | x :: rest -> if x = t then string_of_int i else go (i + 1) rest
  in
  go 0 (Relational.Relation.tuples left)

let decode_item ~left s =
  Option.bind (int_of_string_opt s) (fun i ->
      List.nth_opt (Relational.Relation.tuples left) i)

let run_with_goal ?rng ?strategy ?(node_limit = 20_000) ~left ~right ~goal () =
  let ctx = Semijoin.make left right in
  current_context := Some (ctx, node_limit);
  Fun.protect
    ~finally:(fun () -> current_context := None)
    (fun () ->
      let theta =
        Signature.of_predicate (Semijoin.space ctx) goal
      in
      let oracle t = Semijoin.selects ctx theta t in
      Loop.run ?rng ?strategy ~oracle
        ~items:(Relational.Relation.tuples left)
        ())
