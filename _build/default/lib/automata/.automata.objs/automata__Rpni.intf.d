lib/automata/rpni.mli: Dfa
