test/test_relational.ml: Alcotest Algebra Array Core Csv Generator List QCheck QCheck_alcotest Relation Relational Value
