type t = One | Opt | Plus | Star

let interval = function
  | One -> (1, Some 1)
  | Opt -> (0, Some 1)
  | Plus -> (1, None)
  | Star -> (0, None)

let satisfies m count =
  let lo, hi = interval m in
  count >= lo && match hi with None -> true | Some h -> count <= h

let nullable m = fst (interval m) = 0

let leq m1 m2 =
  let lo1, hi1 = interval m1 and lo2, hi2 = interval m2 in
  lo1 >= lo2
  &&
  match (hi1, hi2) with
  | _, None -> true
  | None, Some _ -> false
  | Some h1, Some h2 -> h1 <= h2

let of_counts ~lo ~hi =
  if lo < 0 || hi < lo || lo + hi = 0 then
    invalid_arg "Multiplicity.of_counts";
  match (lo, hi) with
  | 0, 1 -> Opt
  | 1, 1 -> One
  | 0, _ -> Star
  | _, 1 -> One
  | _, _ -> Plus

let pp ppf = function
  | One -> ()
  | Opt -> Format.pp_print_char ppf '?'
  | Plus -> Format.pp_print_char ppf '+'
  | Star -> Format.pp_print_char ppf '*'

let parse_suffix = function
  | '?' -> Some Opt
  | '+' -> Some Plus
  | '*' -> Some Star
  | _ -> None
