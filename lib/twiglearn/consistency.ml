type instance = Xmltree.Annotated.t

let m_checks =
  Core.Telemetry.Metrics.counter "learnq.twiglearn.consistency_checks"

let anchored examples =
  let positives = Core.Example.positives examples in
  match Positive.learn_positive positives with
  | None -> None
  | Some q ->
      if Core.Example.consistent_with Twig.Eval.selects_example q examples
      then Some q
      else None

let anchored_consistent examples = anchored examples <> None

let bounded ?budget ?filter_depth ?max_filters_per_node ~max_size examples =
  let budget =
    match budget with Some b -> b | None -> Core.Budget.unlimited ()
  in
  let alphabet =
    let module S = Set.Make (String) in
    List.fold_left
      (fun acc (e : instance Core.Example.t) ->
        List.fold_left
          (fun acc l -> S.add l acc)
          acc
          (Xmltree.Tree.labels e.value.doc))
      S.empty examples
    |> S.elements
    (* Text labels cannot appear in sensible queries. *)
    |> List.filter (fun l -> String.length l = 0 || l.[0] <> '#')
  in
  Core.Telemetry.with_span "twiglearn.enumerate.search"
    ~attrs:
      [
        ("alphabet", string_of_int (List.length alphabet));
        ("max_size", string_of_int max_size);
      ]
  @@ fun () ->
  Seq.find
    (fun q ->
      (* One tick per consistency check: candidate testing dominates the
         enumeration itself on non-trivial samples. *)
      Core.Budget.tick budget;
      Core.Telemetry.Metrics.incr m_checks;
      Core.Example.consistent_with Twig.Eval.selects_example q examples)
    (Enumerate.queries ~budget ?filter_depth ?max_filters_per_node ~alphabet
       ~max_nodes:max_size ())
