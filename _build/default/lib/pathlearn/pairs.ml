type example = (int * int) Core.Example.t

let selects h g pair = Graphdb.Rpq.selects h.Words.dfa g pair

let learn ?(max_len = 6) ?(rounds = 8) g examples =
  let positives, negatives = Core.Example.partition examples in
  let words_between (u, v) =
    Graphdb.Rpq.words_between g ~src:u ~dst:v ~max_len
    |> List.sort (fun a b -> compare (List.length a) (List.length b))
  in
  (* Phase 0 — generate-and-test over path expressions seeded by the first
     positive's connecting words: the target class is narrow enough that a
     single well-chosen witness usually pins it down, sidestepping the
     witness-selection trap (a short unrelated path between a positive
     pair).  Candidates are checked against the PAIR semantics directly. *)
  let consistent_on_pairs dfa =
    List.for_all (fun p -> Graphdb.Rpq.selects dfa g p) positives
    && List.for_all (fun p -> not (Graphdb.Rpq.selects dfa g p)) negatives
  in
  let phase0 =
    match positives with
    | [] -> None
    | first :: _ ->
        words_between first
        |> List.filteri (fun i _ -> i < 20)
        |> List.concat_map (fun word ->
               [
                 List.map (fun a -> Expr.Sym a) word;
                 Expr.generalize_word word;
                 Expr.star_all word;
               ])
        |> List.sort_uniq compare
        |> List.sort (fun e1 e2 -> compare (Expr.size e1) (Expr.size e2))
        |> List.find_map (fun expr ->
               let dfa = Automata.Dfa.minimize (Expr.to_dfa expr) in
               if consistent_on_pairs dfa then
                 Some { Words.dfa; expr = Some expr }
               else None)
  in
  match phase0 with
  | Some h -> Some h
  | None ->
  let neg_words =
    List.concat_map words_between negatives |> List.sort_uniq compare
  in
  (* Witness per positive: the shortest connecting word not already known
     negative. *)
  let pos_words =
    List.map
      (fun pair ->
        words_between pair
        |> List.find_opt (fun w -> not (List.mem w neg_words)))
      positives
  in
  if List.exists (fun w -> w = None) pos_words then None
  else
    let pos_words = List.filter_map Fun.id pos_words in
    let rec refine neg_words round =
      match Words.learn ~pos:pos_words ~neg:neg_words with
      | None -> None
      | Some h ->
          let offending =
            List.filter_map
              (fun (u, v) ->
                if selects h g (u, v) then
                  Graphdb.Rpq.witness h.Words.dfa g ~src:u ~dst:v
                else None)
              negatives
            |> List.filter (fun w -> not (List.mem w neg_words))
          in
          if offending = [] then Some h
          else if round >= rounds then None
          else refine (List.sort_uniq compare (offending @ neg_words)) (round + 1)
    in
    refine neg_words 0
