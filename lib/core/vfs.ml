(* A narrow file-I/O seam under Journal and the registry's lock dance.
   [real] is a passthrough to Unix.  [faulty] injects, with seeded
   probabilities from a {!Flaky.disk} plan, the failure modes real disks
   exhibit and PR2/PR6's crash-safety work never met: ENOSPC, EIO, short
   writes, fsyncs that lie, and — at the crash itself — torn multi-byte
   writes.

   The faulty backend operates on real files in a real directory (tests and
   the chaos bench hand it a temp dir) and tracks, per path, how many bytes
   are *written* vs *durable*.  [fsync] normally promotes written to durable
   (with probability [lying_fsync] it reports success without promoting);
   [crash] then truncates every file back to its durable length — except
   that with probability [torn] it keeps a fuzzed strict prefix of the lost
   tail instead, modeling a sector-level tear of an in-flight multi-byte
   write.  Recovery code on top must treat whatever survives as a real
   post-crash image.

   Every injected fault is logged; the chaos gates use the log to check
   that each quarantined journal traces back to an injected fault and never
   to a bug in the recovery path itself. *)

type fault_kind =
  | Enospc
  | Eio
  | Short_write of int  (** bytes that made it before the error *)
  | Lying_fsync
  | Torn of int  (** bytes of unfsynced tail kept by the crash *)

type fault = { f_path : string; f_op : string; f_kind : fault_kind }

let kind_to_string = function
  | Enospc -> "enospc"
  | Eio -> "eio"
  | Short_write n -> Printf.sprintf "short-write:%d" n
  | Lying_fsync -> "lying-fsync"
  | Torn n -> Printf.sprintf "torn:%d" n

let fault_to_string f =
  Printf.sprintf "%s(%s) on %s" f.f_op (kind_to_string f.f_kind) f.f_path

type faulty = {
  rng : Prng.t;
  disk : Flaky.disk;
  mutable full : bool;  (* scripted ENOSPC: every allocation refused *)
  mutable stall_s : float;  (* scripted latency: every fsync sleeps this *)
  written : (string, int) Hashtbl.t;  (* path -> bytes the app wrote *)
  durable : (string, int) Hashtbl.t;  (* path -> bytes that survive a crash *)
  mutable log : fault list;  (* newest first *)
  m : Mutex.t;
}

type t = Real | Faulty of faulty

type fh = {
  fh_path : string;
  fh_fd : Unix.file_descr;
  mutable fh_closed : bool;
}

let real = Real

let faulty ?(seed = 0) disk =
  Faulty
    {
      rng = Prng.create seed;
      disk;
      full = false;
      stall_s = 0.;
      written = Hashtbl.create 16;
      durable = Hashtbl.create 16;
      log = [];
      m = Mutex.create ();
    }

(* The plan's seed feeds both the oracle stream (Flaky.wrap_plan) and this
   one; xor-folding a constant in keeps the two streams decorrelated while
   the pair stays reproducible from the single plan seed. *)
let of_plan (p : Flaky.plan) = faulty ~seed:(p.seed lxor 0x56f5) p.disk

let is_faulty = function Real -> false | Faulty _ -> true

let locked st f =
  Mutex.lock st.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.m) f

let note st path op kind =
  let f = { f_path = path; f_op = op; f_kind = kind } in
  st.log <- f :: st.log;
  (* Flight-recorder breadcrumb: when a request later shows up slow or a
     journal quarantined, the injected fault is visible in the same dump,
     stamped with the request's trace id. *)
  Obs.Recorder.record ~detail:(fault_to_string f) "vfs.fault"

let faults = function
  | Real -> []
  | Faulty st -> locked st (fun () -> List.rev st.log)

let fault_count = function
  | Real -> 0
  | Faulty st -> locked st (fun () -> List.length st.log)

let set_full t full =
  match t with
  | Real -> ()
  | Faulty st -> locked st (fun () -> st.full <- full)

let set_stall t s =
  match t with
  | Real -> ()
  | Faulty st -> locked st (fun () -> st.stall_s <- Float.max 0. s)

(* ------------------------------------------------------------------ *)
(* Write-side operations (where faults live)                           *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let openf ?(trunc = false) t path =
  (match t with
  | Real -> ()
  | Faulty st ->
      locked st (fun () ->
          (* Creating a directory entry needs space; appending to an
             existing file is refused per-write in [append] instead. *)
          if st.full && not (Sys.file_exists path) then begin
            note st path "open" Enospc;
            raise (Unix.Unix_error (Unix.ENOSPC, "open", path))
          end));
  let flags =
    Unix.O_WRONLY :: Unix.O_CREAT :: (if trunc then [ Unix.O_TRUNC ] else [])
  in
  let fd = Unix.openfile path flags 0o644 in
  let len = if trunc then 0 else (Unix.fstat fd).st_size in
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  (match t with
  | Real -> ()
  | Faulty st ->
      locked st (fun () ->
          (* Bytes that predate this open already survived at least one
             close/crash boundary: count them durable. *)
          Hashtbl.replace st.written path len;
          Hashtbl.replace st.durable path len));
  { fh_path = path; fh_fd = fd; fh_closed = false }

let append t fh s =
  if fh.fh_closed then invalid_arg "Vfs.append: closed handle";
  if s = "" then ()
  else
    match t with
    | Real -> write_all fh.fh_fd s
    | Faulty st -> (
        let verdict =
          locked st (fun () ->
              let d = st.disk in
              if st.full then begin
                note st fh.fh_path "append" Enospc;
                `Fail Unix.ENOSPC
              end
              else if Prng.chance st.rng d.enospc then begin
                note st fh.fh_path "append" Enospc;
                `Fail Unix.ENOSPC
              end
              else if Prng.chance st.rng d.eio then begin
                note st fh.fh_path "append" Eio;
                `Fail Unix.EIO
              end
              else if String.length s > 1 && Prng.chance st.rng d.short_write
              then begin
                let n = Prng.int_in st.rng 1 (String.length s - 1) in
                note st fh.fh_path "append" (Short_write n);
                `Short n
              end
              else `Write)
        in
        match verdict with
        | `Fail err -> raise (Unix.Unix_error (err, "write", fh.fh_path))
        | `Short n ->
            (* The disk took a prefix, then ran out: the file really does
               hold the torn bytes, exactly what recovery must cope with. *)
            write_all fh.fh_fd (String.sub s 0 n);
            locked st (fun () ->
                let cur =
                  Option.value ~default:0 (Hashtbl.find_opt st.written fh.fh_path)
                in
                Hashtbl.replace st.written fh.fh_path (cur + n));
            raise (Unix.Unix_error (Unix.ENOSPC, "write", fh.fh_path))
        | `Write ->
            write_all fh.fh_fd s;
            locked st (fun () ->
                let cur =
                  Option.value ~default:0 (Hashtbl.find_opt st.written fh.fh_path)
                in
                Hashtbl.replace st.written fh.fh_path (cur + String.length s)))

let fsync t fh =
  if fh.fh_closed then invalid_arg "Vfs.fsync: closed handle";
  (match t with
  | Real -> ()
  | Faulty st ->
      (* Scripted stall: the sleep happens outside the state lock so other
         handles keep working — only this fsync (and its request) drags. *)
      let stall = locked st (fun () -> st.stall_s) in
      if stall > 0. then begin
        Obs.Recorder.record
          ~detail:(Printf.sprintf "%s %.3fs" fh.fh_path stall)
          "vfs.stall";
        Unix.sleepf stall
      end);
  Unix.fsync fh.fh_fd;
  match t with
  | Real -> ()
  | Faulty st ->
      locked st (fun () ->
          if Prng.chance st.rng st.disk.lying_fsync then
            (* The drive acked the barrier without writing through: the
               caller believes these bytes are safe; [crash] will drop
               them anyway. *)
            note st fh.fh_path "fsync" Lying_fsync
          else
            match Hashtbl.find_opt st.written fh.fh_path with
            | Some l -> Hashtbl.replace st.durable fh.fh_path l
            | None -> ())

let ftruncate t fh n =
  if fh.fh_closed then invalid_arg "Vfs.ftruncate: closed handle";
  Unix.ftruncate fh.fh_fd n;
  ignore (Unix.lseek fh.fh_fd 0 Unix.SEEK_END);
  match t with
  | Real -> ()
  | Faulty st ->
      locked st (fun () ->
          Hashtbl.replace st.written fh.fh_path n;
          match Hashtbl.find_opt st.durable fh.fh_path with
          | Some d when d > n -> Hashtbl.replace st.durable fh.fh_path n
          | _ -> ())

let close _t fh =
  if not fh.fh_closed then begin
    fh.fh_closed <- true;
    Unix.close fh.fh_fd
  end

(* ------------------------------------------------------------------ *)
(* Metadata operations                                                 *)
(* ------------------------------------------------------------------ *)

let link t src dst =
  (match t with
  | Real -> ()
  | Faulty st ->
      locked st (fun () ->
          if st.full then begin
            note st dst "link" Enospc;
            raise (Unix.Unix_error (Unix.ENOSPC, "link", dst))
          end));
  Unix.link src dst

let rename t src dst =
  Unix.rename src dst;
  match t with
  | Real -> ()
  | Faulty st ->
      locked st (fun () ->
          let move tbl =
            (match Hashtbl.find_opt tbl src with
            | Some l ->
                Hashtbl.replace tbl dst l;
                Hashtbl.remove tbl src
            | None -> Hashtbl.remove tbl dst)
          in
          move st.written;
          move st.durable)

let unlink t path =
  Unix.unlink path;
  match t with
  | Real -> ()
  | Faulty st ->
      locked st (fun () ->
          Hashtbl.remove st.written path;
          Hashtbl.remove st.durable path)

let exists _t path = Sys.file_exists path
let size _t path = (Unix.stat path).Unix.st_size
let readdir _t dir = Sys.readdir dir

let mkdir t path =
  (match t with
  | Real -> ()
  | Faulty st ->
      locked st (fun () ->
          if st.full then begin
            note st path "mkdir" Enospc;
            raise (Unix.Unix_error (Unix.ENOSPC, "mkdir", path))
          end));
  Unix.mkdir path 0o755

(* ------------------------------------------------------------------ *)
(* Read-side operations (always faithful: recovery must be able to     *)
(* trust what it reads, so faults are injected on the write path only) *)
(* ------------------------------------------------------------------ *)

let read_file _t path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let pread t path ~off ~len =
  let whole = read_file t path in
  let n = String.length whole in
  if off >= n then ""
  else String.sub whole off (min len (n - off))

(* ------------------------------------------------------------------ *)
(* Crash simulation                                                    *)
(* ------------------------------------------------------------------ *)

let crash t =
  match t with
  | Real -> ()
  | Faulty st ->
      locked st (fun () ->
          Hashtbl.iter
            (fun path written ->
              let durable =
                Option.value ~default:0 (Hashtbl.find_opt st.durable path)
              in
              if written > durable && Sys.file_exists path then begin
                let keep =
                  if written - durable > 1 && Prng.chance st.rng st.disk.torn
                  then begin
                    (* Tear: a strict prefix of the lost tail survives,
                       splitting a framed record at a fuzzed offset. *)
                    let k = Prng.int_in st.rng 1 (written - durable - 1) in
                    note st path "crash" (Torn k);
                    durable + k
                  end
                  else durable
                in
                let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
                Unix.ftruncate fd keep;
                Unix.close fd
              end)
            st.written;
          Hashtbl.reset st.written;
          Hashtbl.reset st.durable)
