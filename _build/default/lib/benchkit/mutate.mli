(** Fault injection for schema validators: structured mutations of valid
    documents.

    Three mutation families produce documents the schema must {e reject}
    (dropping a required child, duplicating a bounded one, inserting a
    foreign label), and one produces documents an {e unordered} schema must
    keep accepting while an ordered DTD rejects them (sibling permutation) —
    the separation at the heart of the paper's case for unordered-XML
    schemas. *)

val permute_children : Core.Prng.t -> Xmltree.Tree.t -> Xmltree.Tree.t
(** Shuffles the children of every node (recursively).  Order-insensitive
    validators are unaffected. *)

val drop_required :
  Core.Prng.t -> Uschema.Schema.t -> Xmltree.Tree.t -> Xmltree.Tree.t option
(** Removes one child the schema requires; [None] when no node has a
    removable required child.  The result is schema-invalid (checked). *)

val duplicate_child :
  Core.Prng.t -> Uschema.Schema.t -> Xmltree.Tree.t -> Xmltree.Tree.t option
(** Duplicates a child whose multiplicity the schema bounds at one, making
    the result invalid (checked). *)

val insert_foreign :
  Core.Prng.t -> Uschema.Schema.t -> Xmltree.Tree.t -> Xmltree.Tree.t option
(** Inserts a child with a label unknown to the schema under a random
    element node; invalid by construction (checked). *)

val invalidating_mutants :
  Core.Prng.t -> Uschema.Schema.t -> Xmltree.Tree.t -> Xmltree.Tree.t list
(** All the invalidating mutations that apply to the document (up to one
    per family). *)
