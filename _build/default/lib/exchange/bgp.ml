type term = Var of string | Const of string
type pattern = { subj : term; pred : term; obj : term }
type query = pattern list
type binding = (string * string) list

let lookup binding v = List.assoc_opt v binding

let resolve binding = function
  | Const c -> Some c
  | Var v -> lookup binding v

(* Number of terms already determined under the binding: evaluation picks
   the most-bound pattern next, the textbook join-ordering heuristic. *)
let boundness binding p =
  List.length
    (List.filter
       (fun t -> resolve binding t <> None)
       [ p.subj; p.pred; p.obj ])

let extend binding term value =
  match term with
  | Const c -> if String.equal c value then Some binding else None
  | Var v -> (
      match lookup binding v with
      | Some bound -> if String.equal bound value then Some binding else None
      | None -> Some ((v, value) :: binding))

let match_triple binding p (t : Rdf.triple) =
  Option.bind (extend binding p.subj t.subj) (fun b ->
      Option.bind (extend b p.pred t.pred) (fun b -> extend b p.obj t.obj))

let eval store query =
  let triples = Rdf.to_list store in
  let rec go binding remaining acc =
    match remaining with
    | [] -> List.sort compare binding :: acc
    | _ ->
        let next =
          List.fold_left
            (fun best p ->
              match best with
              | None -> Some p
              | Some b ->
                  if boundness binding p > boundness binding b then Some p
                  else best)
            None remaining
        in
        let p = Option.get next in
        let rest = List.filter (fun p' -> p' != p) remaining in
        List.fold_left
          (fun acc t ->
            match match_triple binding p t with
            | Some binding' -> go binding' rest acc
            | None -> acc)
          acc triples
  in
  go [] query [] |> List.sort_uniq compare

let ask store query = eval store query <> []

let select ~vars store query =
  eval store query
  |> List.map (fun binding ->
         List.map
           (fun v -> match lookup binding v with Some x -> x | None -> "")
           vars)
  |> List.sort_uniq compare

let vars_of query =
  let module S = Set.Make (String) in
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc t -> match t with Var v -> S.add v acc | Const _ -> acc)
        acc
        [ p.subj; p.pred; p.obj ])
    S.empty query
  |> S.elements

exception Parse_error of string

let parse input =
  let term tok =
    if String.length tok = 0 then raise (Parse_error "empty term")
    else if tok.[0] = '?' then
      if String.length tok = 1 then raise (Parse_error "bare '?'")
      else Var (String.sub tok 1 (String.length tok - 1))
    else Const tok
  in
  let pattern chunk =
    match
      String.split_on_char ' ' (String.trim chunk)
      |> List.filter (fun t -> t <> "")
    with
    | [ s; p; o ] -> { subj = term s; pred = term p; obj = term o }
    | toks ->
        raise
          (Parse_error
             (Printf.sprintf "expected 3 terms, got %d in %S"
                (List.length toks) chunk))
  in
  match
    String.split_on_char '.' input
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  with
  | [] -> raise (Parse_error "empty query")
  | chunks -> List.map pattern chunks

let pp_binding ppf binding =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map (fun (v, x) -> Printf.sprintf "?%s=%s" v x) binding))
