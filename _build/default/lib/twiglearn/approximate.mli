(** Approximate twig learning from noisy or inconsistent samples.

    The paper's escape hatch when exact consistency is out of reach
    (Section 2 for twigs, Section 3 for semijoins): "the learned query may
    select some negative examples and omit some positive ones" and "some of
    the annotations might be ignored to be able to compute in polynomial
    time a candidate query".

    The learner greedily discards the annotations that block consistency:
    starting from the full sample, as long as the LGG of the kept positives
    selects a kept negative, it removes whichever single annotation (the
    offending negative, or a positive whose removal sharpens the LGG most)
    reduces the number of conflicts the most.  Polynomial, and exact on
    consistent samples (nothing is dropped). *)

type instance = Xmltree.Annotated.t

type result = {
  query : Twig.Query.t;
  dropped : instance Core.Example.t list;  (** ignored annotations *)
  training_errors : int;
      (** kept examples the query still misclassifies (0 unless the positive
          set became empty-able); dropped ones are not counted *)
}

val learn :
  ?max_dropped:int -> instance Core.Example.t list -> result option
(** [None] when there is no positive example left to generalize from or the
    anchored LGG fails.  [max_dropped] (default: a third of the sample)
    bounds the discards. *)
