(** Containment of disjunctive multiplicity expressions and schemas — the
    paper's headline static-analysis result ("a technical contribution is the
    polynomial algorithm for testing containment of two disjunctive
    multiplicity schemas").

    Decision procedure.  Every atom's denotation is an integer interval with
    endpoints in [{0, 1, ∞}], so a clause denotes a box of count vectors over
    its alphabet.  If [E1 ⊄ E2] then a counterexample multiset exists whose
    per-label counts lie in [{0, 1, 2}]: clamping any counterexample at 2
    preserves membership in every such box.  We therefore check, for each
    clause of [E1], the grid of its count vectors clamped to [{0,1,2}]
    against [E2].  A clause-wise inclusion shortcut ([clause_leq] into a
    single clause of [E2]) resolves the common case polynomially; the grid
    is exponential only in one clause's alphabet width (≤ a dozen labels in
    every workload here — see DESIGN.md §4). *)

val clause_leq : Dme.clause -> Dme.clause -> bool
(** Per-label interval inclusion over the union alphabet. *)

val dme_leq : Dme.t -> Dme.t -> bool
(** [dme_leq e1 e2] iff every multiset satisfying [e1] satisfies [e2]. *)

val dme_equiv : Dme.t -> Dme.t -> bool

val counterexample : Dme.t -> Dme.t -> Dme.Labels.t option
(** A multiset satisfying the first DME but not the second, if any. *)

val schema_leq : Schema.t -> Schema.t -> bool
(** [schema_leq s1 s2] iff every document valid for [s1] is valid for [s2]:
    roots coincide and, for every label reachable and productive in [s1],
    the [s1]-rule is contained in the [s2]-rule. *)

val schema_equiv : Schema.t -> Schema.t -> bool
