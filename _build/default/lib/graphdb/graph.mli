(** Edge-labeled directed graphs — the graph data model of Section 3 of the
    paper ("the vertices represent cities and the edges store information
    such as … the type of road linking the cities").

    Nodes are dense integers with optional string names; edges carry a
    label.  The triple view ([(subject, predicate, object)]) is the RDF face
    of the same structure, used by the data-exchange scenarios. *)

type t

val make : ?names:string array -> nodes:int -> (int * string * int) list -> t
(** @raise Invalid_argument on out-of-range endpoints or a [names] array of
    the wrong length. *)

val node_count : t -> int
val edge_count : t -> int
val name : t -> int -> string
(** Defaults to ["n<i>"]. *)

val node_of_name : t -> string -> int option
val successors : t -> int -> (string * int) list
(** Outgoing [(label, target)] pairs. *)

val edges : t -> (int * string * int) list
val labels : t -> string list
(** Distinct edge labels, sorted. *)

val has_edge : t -> int -> string -> int -> bool
val pp : Format.formatter -> t -> unit
