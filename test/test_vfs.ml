(* Tests for the fault-injectable storage seam (Core.Vfs): the passthrough
   backend, scripted disk-full episodes, short writes, lying fsyncs, and
   crash truncation back to the durable prefix. *)

module Vfs = Core.Vfs

let with_temp_dir f =
  let dir = Filename.temp_file "learnq_vfs" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let no_faults = Core.Flaky.no_disk_faults

(* ------------------------------------------------------------------ *)
(* Passthrough                                                         *)
(* ------------------------------------------------------------------ *)

let test_real_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "a" in
      let vfs = Vfs.real in
      let fh = Vfs.openf vfs path in
      Vfs.append vfs fh "hello ";
      Vfs.append vfs fh "world";
      Vfs.fsync vfs fh;
      Vfs.close vfs fh;
      Alcotest.(check bool) "exists" true (Vfs.exists vfs path);
      Alcotest.(check int) "size" 11 (Vfs.size vfs path);
      Alcotest.(check string) "contents" "hello world" (Vfs.read_file vfs path);
      Alcotest.(check string) "pread" "world"
        (Vfs.pread vfs path ~off:6 ~len:5);
      let path2 = Filename.concat dir "b" in
      Vfs.rename vfs path path2;
      Alcotest.(check bool) "renamed away" false (Vfs.exists vfs path);
      Alcotest.(check string) "renamed contents" "hello world"
        (Vfs.read_file vfs path2);
      Vfs.unlink vfs path2;
      Alcotest.(check bool) "unlinked" false (Vfs.exists vfs path2);
      Alcotest.(check int) "real injects nothing" 0 (Vfs.fault_count vfs))

let test_faulty_clean_plan_is_faithful () =
  (* With every rate at zero the faulty backend must behave like the real
     one — except that a crash drops whatever was never fsynced. *)
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j" in
      let vfs = Vfs.faulty ~seed:7 no_faults in
      let fh = Vfs.openf vfs path in
      Vfs.append vfs fh "durable";
      Vfs.fsync vfs fh;
      Vfs.append vfs fh "-volatile";
      Vfs.close vfs fh;
      Alcotest.(check string) "both writes visible before the crash"
        "durable-volatile" (Vfs.read_file vfs path);
      Vfs.crash vfs;
      Alcotest.(check string) "crash keeps exactly the fsynced prefix"
        "durable" (Vfs.read_file vfs path);
      Alcotest.(check int) "no faults injected" 0 (Vfs.fault_count vfs))

(* ------------------------------------------------------------------ *)
(* Scripted disk-full (ENOSPC)                                         *)
(* ------------------------------------------------------------------ *)

let test_set_full_refuses_allocations () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j" in
      let vfs = Vfs.faulty ~seed:1 no_faults in
      let fh = Vfs.openf vfs path in
      Vfs.append vfs fh "ok";
      Vfs.set_full vfs true;
      (match Vfs.append vfs fh "more" with
      | () -> Alcotest.fail "append succeeded on a full disk"
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
      (match Vfs.openf vfs (Filename.concat dir "new") with
      | _ -> Alcotest.fail "created a file on a full disk"
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
      (match Vfs.link vfs path (Filename.concat dir "j.lock") with
      | () -> Alcotest.fail "linked a lock file on a full disk"
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
      (* The episode ends: the same operations succeed. *)
      Vfs.set_full vfs false;
      Vfs.append vfs fh "more";
      Vfs.close vfs fh;
      Alcotest.(check string) "post-heal append landed" "okmore"
        (Vfs.read_file vfs path);
      Alcotest.(check bool) "ENOSPC faults were logged" true
        (List.exists
           (fun f -> f.Vfs.f_kind = Vfs.Enospc)
           (Vfs.faults vfs)))

(* ------------------------------------------------------------------ *)
(* Short writes                                                        *)
(* ------------------------------------------------------------------ *)

let test_short_write_leaves_torn_prefix () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j" in
      let vfs =
        Vfs.faulty ~seed:3 (Core.Flaky.disk ~short_write:1.0 ())
      in
      let fh = Vfs.openf vfs path in
      let payload = "0123456789" in
      (match Vfs.append vfs fh payload with
      | () -> Alcotest.fail "short write reported success"
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
      Vfs.close vfs fh;
      let landed = Vfs.read_file vfs path in
      Alcotest.(check bool) "a strict prefix landed" true
        (String.length landed > 0
        && String.length landed < String.length payload
        && String.equal landed (String.sub payload 0 (String.length landed)));
      Alcotest.(check bool) "the tear was logged with its length" true
        (List.exists
           (fun f ->
             match f.Vfs.f_kind with
             | Vfs.Short_write n -> n = String.length landed
             | _ -> false)
           (Vfs.faults vfs)))

(* ------------------------------------------------------------------ *)
(* Lying fsync                                                         *)
(* ------------------------------------------------------------------ *)

let test_lying_fsync_loses_acked_bytes () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j" in
      let vfs =
        Vfs.faulty ~seed:5 (Core.Flaky.disk ~lying_fsync:1.0 ())
      in
      let fh = Vfs.openf vfs path in
      Vfs.append vfs fh "acked-but-lost";
      Vfs.fsync vfs fh;
      Vfs.close vfs fh;
      Vfs.crash vfs;
      Alcotest.(check string) "the acked bytes are gone" ""
        (Vfs.read_file vfs path);
      Alcotest.(check bool) "the lie was logged" true
        (List.exists
           (fun f -> f.Vfs.f_kind = Vfs.Lying_fsync)
           (Vfs.faults vfs)))

(* ------------------------------------------------------------------ *)
(* Torn crash truncation                                               *)
(* ------------------------------------------------------------------ *)

let test_torn_crash_keeps_strict_prefix_of_tail () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j" in
      let vfs = Vfs.faulty ~seed:11 (Core.Flaky.disk ~torn:1.0 ()) in
      let fh = Vfs.openf vfs path in
      Vfs.append vfs fh "safe|";
      Vfs.fsync vfs fh;
      Vfs.append vfs fh "in-flight-record";
      Vfs.close vfs fh;
      Vfs.crash vfs;
      let survived = Vfs.read_file vfs path in
      Alcotest.(check bool) "durable prefix intact" true
        (String.length survived >= 5
        && String.sub survived 0 5 = "safe|");
      Alcotest.(check bool) "a strict prefix of the tail was kept" true
        (String.length survived < String.length "safe|in-flight-record");
      Alcotest.(check bool) "the tear was logged" true
        (List.exists
           (fun f -> match f.Vfs.f_kind with Vfs.Torn _ -> true | _ -> false)
           (Vfs.faults vfs)))

let test_reopen_after_crash_counts_survivors_durable () =
  (* Bytes present at open predate the crash boundary: they must survive
     the next crash even without a new fsync. *)
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j" in
      let vfs = Vfs.faulty ~seed:13 no_faults in
      let fh = Vfs.openf vfs path in
      Vfs.append vfs fh "first";
      Vfs.fsync vfs fh;
      Vfs.close vfs fh;
      Vfs.crash vfs;
      let fh2 = Vfs.openf vfs path in
      Vfs.append vfs fh2 "-second";
      Vfs.close vfs fh2;
      Vfs.crash vfs;
      Alcotest.(check string) "pre-existing bytes survive, new tail dropped"
        "first" (Vfs.read_file vfs path))

let () =
  Alcotest.run "vfs"
    [
      ( "passthrough",
        [
          Alcotest.test_case "real roundtrip" `Quick test_real_roundtrip;
          Alcotest.test_case "clean faulty plan is faithful" `Quick
            test_faulty_clean_plan_is_faithful;
        ] );
      ( "faults",
        [
          Alcotest.test_case "disk-full refuses allocations" `Quick
            test_set_full_refuses_allocations;
          Alcotest.test_case "short write leaves a torn prefix" `Quick
            test_short_write_leaves_torn_prefix;
          Alcotest.test_case "lying fsync loses acked bytes" `Quick
            test_lying_fsync_loses_acked_bytes;
        ] );
      ( "crash",
        [
          Alcotest.test_case "torn crash keeps a strict tail prefix" `Quick
            test_torn_crash_keeps_strict_prefix_of_tail;
          Alcotest.test_case "reopened bytes count durable" `Quick
            test_reopen_after_crash_counts_survivors_durable;
        ] );
    ]
