(** Interactive semijoin inference — the intractable half of the paper's
    Section 3 programme: "in the case of relational queries for which
    consistency checking is intractable for positive and negative examples
    (e.g., semijoins), the problem is even harder … the goal is to design
    strategies minimizing the number of interactions with the user."

    Items are {e left} tuples.  Without a unique most-specific candidate,
    the determined-label test runs the exact consistency search twice per
    item (once assuming each label): a label whose assumption kills every
    consistent predicate is forced the other way.  Each test is a worst-case
    exponential search — tamed here by the same branch-and-prune that makes
    E5's exact checker fast on non-adversarial instances, and bounded by a
    node limit that degrades gracefully to "not determined". *)

type item = Relational.Relation.tuple

module Session :
  Core.Interact.SESSION
    with type query = Signature.mask
     and type item = item

module Loop : module type of Core.Interact.Make (Session)

val make_session_context :
  Relational.Relation.t -> Relational.Relation.t -> Semijoin.t
(** The context items are judged against (left/right relations). *)

val encode_item : left:Relational.Relation.t -> item -> string
(** Journal codec: the tuple's row index in [left].
    @raise Invalid_argument when the tuple is not in it. *)

val decode_item : left:Relational.Relation.t -> string -> item option
(** Inverse of {!encode_item}; [None] on an out-of-range index. *)

val run_with_goal :
  ?rng:Core.Prng.t ->
  ?strategy:(Session.state, item) Core.Interact.strategy ->
  ?node_limit:int ->
  left:Relational.Relation.t ->
  right:Relational.Relation.t ->
  goal:Relational.Algebra.predicate ->
  unit ->
  Loop.outcome
(** The oracle labels a left tuple positive iff some right tuple agrees with
    it on [goal].  [node_limit] (default 20_000) bounds each determinism
    check's search. *)
