(** Crowdsourced join inference (paper, Section 3, after Marcus et al.):
    each question to the crowd is a Human Intelligence Task with a price, so
    "minimizing the number of interactions with the user is equivalent to
    minimizing the financial cost of the process".

    This wraps the interactive join learner with a budget: the session stops
    when the budget is exhausted or nothing informative remains, and reports
    money spent alongside the learned predicate. *)

type report = {
  outcome : Interactive.Loop.outcome;
  spent : float;
  exhausted : bool;  (** stopped by budget rather than by convergence *)
}

val run :
  ?rng:Core.Prng.t ->
  ?strategy:(Interactive.Session.state, Interactive.item) Core.Interact.strategy ->
  price_per_hit:float ->
  budget:float ->
  left:Relational.Relation.t ->
  right:Relational.Relation.t ->
  goal:Relational.Algebra.predicate ->
  unit ->
  report
