lib/uschema/infer.ml: Dme List Map Multiplicity Schema Set String Xmltree
