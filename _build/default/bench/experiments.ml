(* The experiment harness: regenerates every quantified claim of the paper
   as a table (see DESIGN.md §3 for the per-experiment index and
   EXPERIMENTS.md for paper-vs-measured).  All experiments are seeded and
   deterministic. *)

let fmt_bool b = if b then "yes" else "no"
let fmt_opt_int = function Some k -> string_of_int k | None -> "—"

(* ------------------------------------------------------------------ *)
(* Shared XML corpora                                                  *)
(* ------------------------------------------------------------------ *)

let training_docs =
  lazy (List.init 10 (fun i -> Benchkit.Xmark.generate ~scale:2.0 ~seed:(100 + i) ()))

let fresh_docs =
  lazy (List.init 5 (fun i -> Benchkit.Xmark.generate ~scale:2.0 ~seed:(500 + i) ()))

let semantic_equiv q1 q2 docs =
  List.for_all (fun d -> Twig.Eval.select q1 d = Twig.Eval.select q2 d) docs

type sweep_result = {
  entry : Benchkit.Xpathmark.entry;
  converged_at : int option;  (** #examples to semantic convergence *)
  learned_size : int;  (** at convergence (or with all examples) *)
  pruned_size : int;
  pruned_equiv : bool;
}

(* One learning sweep per expressible XPathMark query: draw one annotated
   example per training document, grow the example set until the learned
   query agrees with the goal on every fresh document. *)
let learning_sweep =
  lazy
    (let docs = Lazy.force training_docs and fresh = Lazy.force fresh_docs in
     let g = Uschema.Depgraph.of_schema Benchkit.Xmark.schema in
     List.filter_map
       (fun (entry : Benchkit.Xpathmark.entry) ->
         match entry.twig with
         | None -> None
         | Some goal ->
             let examples =
               List.filter_map
                 (fun d ->
                   match Twig.Eval.select goal d with
                   | p :: _ -> Some (Xmltree.Annotated.make d p)
                   | [] -> None)
                 docs
             in
             let rec sweep k =
               if k > List.length examples then None
               else
                 let sub = List.filteri (fun i _ -> i < k) examples in
                 match Twiglearn.Positive.learn_positive sub with
                 | None -> None
                 | Some learned ->
                     if semantic_equiv learned goal fresh then Some (k, learned)
                     else sweep (k + 1)
             in
             let result =
               match sweep 2 with
               | Some (k, learned) ->
                   let pruned = Twiglearn.Schema_aware.prune g learned in
                   {
                     entry;
                     converged_at = Some k;
                     learned_size = Twig.Query.size learned;
                     pruned_size = Twig.Query.size pruned;
                     pruned_equiv = semantic_equiv pruned goal fresh;
                   }
               | None ->
                   let all =
                     match Twiglearn.Positive.learn_positive examples with
                     | Some learned -> learned
                     | None -> goal
                   in
                   let pruned = Twiglearn.Schema_aware.prune g all in
                   {
                     entry;
                     converged_at = None;
                     learned_size = Twig.Query.size all;
                     pruned_size = Twig.Query.size pruned;
                     pruned_equiv = false;
                   }
             in
             Some result)
       Benchkit.Xpathmark.queries)

(* ------------------------------------------------------------------ *)
(* E1: examples to convergence                                         *)
(* ------------------------------------------------------------------ *)

let e1 () =
  let t =
    Benchkit.Table.make ~title:"E1: examples needed to learn the goal twig"
      ~header:[ "query"; "xpath"; "#examples"; "learned size"; "goal size" ]
  in
  let results = Lazy.force learning_sweep in
  List.iter
    (fun r ->
      let goal_size =
        match r.entry.twig with Some q -> Twig.Query.size q | None -> 0
      in
      Benchkit.Table.add_row t
        [
          r.entry.id;
          r.entry.xpath;
          fmt_opt_int r.converged_at;
          string_of_int r.learned_size;
          string_of_int goal_size;
        ])
    results;
  let ks = List.filter_map (fun r -> r.converged_at) results in
  Benchkit.Table.add_row t
    [
      "median";
      "";
      Benchkit.Table.cell_float ~digits:1 (Core.Stats.median_int ks);
      "";
      "";
    ];
  Benchkit.Table.print t;
  Printf.printf
    "Paper: \"the algorithms are able to learn a query equivalent to the \
     goal query from a small number of examples (generally two)\".\n\n"

(* ------------------------------------------------------------------ *)
(* E2: fraction of XPathMark learnable                                 *)
(* ------------------------------------------------------------------ *)

let e2 () =
  let results = Lazy.force learning_sweep in
  let total = List.length Benchkit.Xpathmark.queries in
  let expressible = List.length results in
  let learnable =
    List.length (List.filter (fun r -> r.converged_at <> None) results)
  in
  let t =
    Benchkit.Table.make ~title:"E2: XPathMark queries learnable by the twig learner"
      ~header:[ "measure"; "count"; "fraction" ]
  in
  Benchkit.Table.add_row t [ "workload queries"; string_of_int total; "100%" ];
  Benchkit.Table.add_row t
    [
      "twig-expressible";
      string_of_int expressible;
      Benchkit.Table.cell_pct (float_of_int expressible /. float_of_int total);
    ];
  Benchkit.Table.add_row t
    [
      "learned (≡ goal on fresh docs)";
      string_of_int learnable;
      Benchkit.Table.cell_pct (float_of_int learnable /. float_of_int total);
    ];
  Benchkit.Table.print t;
  Printf.printf
    "Paper: \"the algorithms from [36] are able to learn 15%% of the queries \
     from XPathMark\" — a minority-learnable skew this workload preserves.\n\n"

(* ------------------------------------------------------------------ *)
(* E3: query size with vs without the schema                           *)
(* ------------------------------------------------------------------ *)

let e3 () =
  let results = Lazy.force learning_sweep in
  let t =
    Benchkit.Table.make
      ~title:"E3: schema-aware learning — query size before/after pruning"
      ~header:[ "query"; "without schema"; "with schema"; "decrease"; "still ≡ goal" ]
  in
  let decreases = ref [] in
  List.iter
    (fun r ->
      let d =
        1. -. (float_of_int r.pruned_size /. float_of_int r.learned_size)
      in
      decreases := d :: !decreases;
      Benchkit.Table.add_row t
        [
          r.entry.id;
          string_of_int r.learned_size;
          string_of_int r.pruned_size;
          Benchkit.Table.cell_pct d;
          fmt_bool r.pruned_equiv;
        ])
    results;
  Benchkit.Table.add_row t
    [
      "mean";
      "";
      "";
      Benchkit.Table.cell_pct (Core.Stats.mean !decreases);
      "";
    ];
  Benchkit.Table.print t;
  Printf.printf
    "Paper: learned queries are overspecialized with schema-implied \
     fragments; pruning filters \"not implied by the schema\" shrinks them.\n\n"

(* ------------------------------------------------------------------ *)
(* E4: DMS containment and validation scale polynomially               *)
(* ------------------------------------------------------------------ *)

let random_dme rng ~alphabet ~clauses =
  let labels = List.init alphabet (fun i -> Printf.sprintf "l%d" i) in
  let clause () =
    let k = 1 + Core.Prng.int rng (min 4 alphabet) in
    Core.Prng.sample rng k labels
    |> List.map (fun l ->
           ( l,
             Core.Prng.pick rng
               Uschema.Multiplicity.[ One; Opt; Plus; Star ] ))
    |> Uschema.Dme.clause
  in
  Uschema.Dme.make (List.init clauses (fun _ -> clause ()))

let e4 () =
  let rng = Core.Prng.create 7 in
  let t =
    Benchkit.Table.make ~title:"E4: DMS containment & validation cost"
      ~header:[ "alphabet"; "clauses"; "containment (µs)"; "doc nodes"; "validation (µs)" ]
  in
  List.iter
    (fun (alphabet, clauses, scale) ->
      let pairs =
        List.init 40 (fun _ ->
            (random_dme rng ~alphabet ~clauses, random_dme rng ~alphabet ~clauses))
      in
      let contain_time =
        Core.Stats.time_median ~repeats:5 (fun () ->
            List.iter
              (fun (e1, e2) -> ignore (Uschema.Containment.dme_leq e1 e2))
              pairs)
        /. float_of_int (List.length pairs)
      in
      let doc = Benchkit.Xmark.generate ~scale ~seed:3 () in
      let validate_time =
        Core.Stats.time_median ~repeats:5 (fun () ->
            ignore (Uschema.Schema.valid Benchkit.Xmark.schema doc))
      in
      Benchkit.Table.add_row t
        [
          string_of_int alphabet;
          string_of_int clauses;
          Benchkit.Table.cell_float (contain_time *. 1e6);
          string_of_int (Xmltree.Tree.size doc);
          Benchkit.Table.cell_float (validate_time *. 1e6);
        ])
    [ (4, 2, 1.0); (6, 3, 2.0); (8, 4, 4.0); (10, 5, 8.0); (12, 6, 16.0) ];
  Benchkit.Table.print t;
  Printf.printf
    "Paper: \"the polynomial algorithm for testing containment of two \
     disjunctive multiplicity schemas\"; validation is linear in the \
     document.\n\n"

(* ------------------------------------------------------------------ *)
(* E5: join consistency is cheap, semijoin consistency blows up        *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let t =
    Benchkit.Table.make
      ~title:"E5: consistency checking — natural join (PTIME) vs semijoin (NP-complete)"
      ~header:
        [
          "#examples";
          "join (µs)";
          "semijoin exact (µs)";
          "search nodes";
          "greedy ok";
        ]
  in
  List.iter
    (fun n ->
      let trials = List.init 5 (fun s -> s + 1) in
      let join_times = ref []
      and semi_times = ref []
      and nodes = ref []
      and greedy_ok = ref 0 in
      List.iter
        (fun seed ->
          let rng = Core.Prng.create (1000 * seed) in
          let inst =
            Relational.Generator.pair_instance ~rng ~left_rows:(2 * n)
              ~right_rows:16 ~domain:3 ()
          in
          let space =
            Joinlearn.Signature.space
              ~left_arity:(Relational.Relation.arity inst.left)
              ~right_arity:(Relational.Relation.arity inst.right)
          in
          let goal = Joinlearn.Signature.of_predicate space inst.planted in
          (* Join side: n labeled tuple pairs. *)
          let pair_examples =
            Joinlearn.Interactive.items_of space inst.left inst.right
            |> List.filteri (fun i _ -> i mod 17 = 0)
            |> List.filteri (fun i _ -> i < n)
            |> List.map (fun (it : Joinlearn.Interactive.item) ->
                   Core.Example.of_labeled
                     (it.mask, Joinlearn.Signature.subset goal it.mask))
          in
          (* Loop the (sub-microsecond) join check to beat clock
             resolution. *)
          let reps = 1000 in
          let _, jt =
            Core.Stats.time (fun () ->
                for _ = 1 to reps do
                  ignore (Joinlearn.Join.learn space pair_examples)
                done)
          in
          join_times := (jt /. float_of_int reps) :: !join_times;
          (* Semijoin side: n labeled left tuples. *)
          let ctx = Joinlearn.Semijoin.make inst.left inst.right in
          let labeled =
            Relational.Relation.tuples inst.left
            |> List.filteri (fun i _ -> i < n)
            |> List.map (fun r ->
                   (r, Joinlearn.Semijoin.selects ctx goal r))
          in
          let out, st =
            Core.Stats.time (fun () ->
                Joinlearn.Semijoin.consistent_exact ctx labeled)
          in
          semi_times := st :: !semi_times;
          nodes := out.explored :: !nodes;
          if Joinlearn.Semijoin.consistent_greedy ctx labeled <> None then
            incr greedy_ok)
        trials;
      Benchkit.Table.add_row t
        [
          string_of_int n;
          Benchkit.Table.cell_float (Core.Stats.mean !join_times *. 1e6);
          Benchkit.Table.cell_float (Core.Stats.mean !semi_times *. 1e6);
          Benchkit.Table.cell_float ~digits:0 (Core.Stats.mean_int !nodes);
          Printf.sprintf "%d/%d" !greedy_ok (List.length trials);
        ])
    [ 2; 4; 6; 8; 10; 12 ];
  Benchkit.Table.print t;
  Printf.printf
    "Paper: consistency is tractable for natural joins and intractable for \
     semijoins; the greedy variant trades completeness for polynomial time.\n\n"

(* ------------------------------------------------------------------ *)
(* E6: interactive strategies minimize the number of interactions      *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let t =
    Benchkit.Table.make
      ~title:"E6: interactive join inference — questions per strategy (30×30 instance, 900 pairs)"
      ~header:[ "strategy"; "mean questions"; "mean pruned"; "crowd cost @$0.05" ]
  in
  let strategies =
    [
      ("pool order", Core.Interact.first_strategy);
      ("random", Core.Interact.random_strategy);
      ("lattice descent", Joinlearn.Interactive.lattice_strategy);
      ("greedy split", Joinlearn.Interactive.split_strategy ());
    ]
  in
  List.iter
    (fun (name, strategy) ->
      let questions = ref [] and pruned = ref [] in
      List.iter
        (fun seed ->
          let rng = Core.Prng.create seed in
          let inst = Relational.Generator.pair_instance ~rng () in
          let outcome =
            Joinlearn.Interactive.run_with_goal ~rng ~strategy ~left:inst.left
              ~right:inst.right ~goal:inst.planted ()
          in
          questions := outcome.questions :: !questions;
          pruned := outcome.pruned :: !pruned)
        (List.init 8 (fun i -> i + 1));
      Benchkit.Table.add_row t
        [
          name;
          Benchkit.Table.cell_float ~digits:1 (Core.Stats.mean_int !questions);
          Benchkit.Table.cell_float ~digits:1 (Core.Stats.mean_int !pruned);
          Printf.sprintf "$%.2f" (0.05 *. Core.Stats.mean_int !questions);
        ])
    strategies;
  Benchkit.Table.print t;
  Printf.printf
    "Paper: \"the goal is to minimize the number of interactions with the \
     user\" — equivalently the financial cost of the crowdsourcing HITs.\n\n"

(* ------------------------------------------------------------------ *)
(* E7: path queries on the geographic graph                            *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let t =
    Benchkit.Table.make
      ~title:"E7: learning path queries on road networks (goal: highway+)"
      ~header:
        [ "cities"; "questions"; "pruned"; "hypothesis"; "≡ goal"; "pairs F1" ]
  in
  let goal = Automata.Dfa.of_regex (Automata.Regex.parse "highway highway*") in
  (* Graph paths are non-empty, so hypotheses are compared modulo ε: the
     learner cannot observe the empty path. *)
  let sigma_plus =
    Automata.Dfa.of_regex
      (Automata.Regex.parse
         "(highway | road | ferry) (highway | road | ferry)*")
  in
  let equal_on_paths d1 d2 =
    Automata.Dfa.equal_language
      (Automata.Dfa.intersect d1 sigma_plus)
      (Automata.Dfa.intersect d2 sigma_plus)
  in
  List.iter
    (fun cities ->
      let rng = Core.Prng.create (cities * 13) in
      let graph = Graphdb.Generators.geo ~rng ~cities () in
      let outcome =
        Pathlearn.Interactive.run_with_goal ~rng ~max_len:3 ~graph ~goal ()
      in
      let hyp_str, equiv =
        match outcome.query with
        | Some h ->
            ( Format.asprintf "%a" Pathlearn.Words.pp h,
              equal_on_paths h.dfa goal )
        | None -> ("—", false)
      in
      (* Pair-level learning: a few labeled pairs, then F1 over all pairs. *)
      let answers = Graphdb.Rpq.eval goal graph in
      let non_answers =
        List.concat_map
          (fun u -> List.init cities (fun v -> (u, v)))
          (List.init cities Fun.id)
        |> List.filter (fun p -> not (List.mem p answers))
      in
      (* A trivial (u,u) negative rules out star-only hypotheses, which
         accept every node pair through the empty path. *)
      let diagonal_negative =
        List.filter (fun (u, v) -> u = v) non_answers
        |> List.filteri (fun i _ -> i < 1)
      in
      let examples =
        (List.filteri (fun i _ -> i < 6) answers
        |> List.map Core.Example.positive)
        @ List.map Core.Example.negative diagonal_negative
        @ (List.filteri (fun i _ -> i mod 7 = 0 && i < 42) non_answers
          |> List.map Core.Example.negative)
      in
      let f1 =
        match Pathlearn.Pairs.learn graph examples with
        | None -> 0.
        | Some h ->
            let predicted = Graphdb.Rpq.eval h.dfa graph in
            let inter =
              List.length (List.filter (fun p -> List.mem p answers) predicted)
            in
            if predicted = [] || answers = [] then 0.
            else
              let p = float_of_int inter /. float_of_int (List.length predicted) in
              let r = float_of_int inter /. float_of_int (List.length answers) in
              if p +. r = 0. then 0. else 2. *. p *. r /. (p +. r)
      in
      Benchkit.Table.add_row t
        [
          string_of_int cities;
          string_of_int outcome.questions;
          string_of_int outcome.pruned;
          hyp_str;
          fmt_bool equiv;
          Benchkit.Table.cell_float f1;
        ])
    [ 10; 16; 24 ];
  Benchkit.Table.print t;
  Printf.printf
    "Paper: the geographic use case — learn path restrictions such as \
     \"highway\" roads from labeled paths, with few interactions.\n\n"

(* ------------------------------------------------------------------ *)
(* E8: the four data-exchange scenarios of Figure 1                    *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let t =
    Benchkit.Table.make
      ~title:"E8: cross-model exchange with learned source queries (Figure 1)"
      ~header:[ "scenario"; "learned query"; "target size"; "≡ direct evaluation" ]
  in
  (* 1: relational → XML *)
  (let rng = Core.Prng.create 11 in
   let inst = Relational.Generator.pair_instance ~rng () in
   let space =
     Joinlearn.Signature.space
       ~left_arity:(Relational.Relation.arity inst.left)
       ~right_arity:(Relational.Relation.arity inst.right)
   in
   let goal = Joinlearn.Signature.of_predicate space inst.planted in
   let examples =
     Joinlearn.Interactive.items_of space inst.left inst.right
     |> List.filteri (fun i _ -> i mod 5 = 0)
     |> List.map (fun (it : Joinlearn.Interactive.item) ->
            ((it.left, it.right), Joinlearn.Signature.subset goal it.mask))
   in
   match Exchange.Mapping.Rel_to_xml.run ~left:inst.left ~right:inst.right ~examples with
   | None -> Benchkit.Table.add_row t [ "1 rel→XML"; "failed"; "—"; "no" ]
   | Some result ->
       let direct =
         Exchange.Publish.relation_to_xml
           (Relational.Algebra.equijoin inst.left inst.right inst.planted)
       in
       Benchkit.Table.add_row t
         [
           "1 rel→XML";
           Format.asprintf "⋈ %a"
             (Joinlearn.Signature.pp space)
             (Joinlearn.Signature.of_predicate space result.predicate);
           string_of_int (Xmltree.Tree.size result.published);
           fmt_bool (Xmltree.Tree.equal_unordered result.published direct);
         ]);
  (* 2: XML → relational *)
  (let doc = Benchkit.Xmark.generate ~scale:2.0 ~seed:21 () in
   let goal = Twig.Parse.query "//person" in
   let annotations = Twig.Eval.select goal doc in
   match
     Exchange.Mapping.Xml_to_rel.run ~doc ~annotations ~name:"person"
       ~columns:[ ("name", "name"); ("email", "emailaddress") ]
   with
   | None -> Benchkit.Table.add_row t [ "2 XML→rel"; "failed"; "—"; "no" ]
   | Some result ->
       let direct =
         Exchange.Publish.xml_to_relation ~name:"person" ~row_query:goal
           ~columns:[ ("name", "name"); ("email", "emailaddress") ]
           doc
       in
       Benchkit.Table.add_row t
         [
           "2 XML→rel";
           Twig.Query.to_string
             (Twiglearn.Schema_aware.prune
                (Uschema.Depgraph.of_schema Benchkit.Xmark.schema)
                result.query);
           string_of_int (Relational.Relation.cardinal result.shredded);
           fmt_bool (Relational.Relation.equal_contents result.shredded direct);
         ]);
  (* 3: XML → RDF *)
  (let doc = Benchkit.Xmark.generate ~scale:1.0 ~seed:31 () in
   let goal = Twig.Parse.query "//person/address" in
   let annotations = Twig.Eval.select goal doc in
   if annotations = [] then
     Benchkit.Table.add_row t [ "3 XML→RDF"; "no witnesses"; "—"; "no" ]
   else
     match Exchange.Mapping.Xml_to_rdf.run ~doc ~annotations with
     | None -> Benchkit.Table.add_row t [ "3 XML→RDF"; "failed"; "—"; "no" ]
     | Some result ->
         let direct = Exchange.Publish.xml_to_rdf ~scope:goal doc in
         Benchkit.Table.add_row t
           [
             "3 XML→RDF";
             Twig.Query.to_string
               (Twiglearn.Schema_aware.prune
                  (Uschema.Depgraph.of_schema Benchkit.Xmark.schema)
                  result.query);
             string_of_int (Exchange.Rdf.cardinal result.triples);
             fmt_bool (Exchange.Rdf.equal result.triples direct);
           ]);
  (* 4: graph → XML *)
  (let rng = Core.Prng.create 41 in
   let graph = Graphdb.Generators.geo ~rng ~cities:10 () in
   let goal = Automata.Dfa.of_regex (Automata.Regex.parse "highway highway*") in
   let answers = Graphdb.Rpq.eval goal graph in
   let non_answers =
     List.concat_map (fun u -> List.init 10 (fun v -> (u, v))) (List.init 10 Fun.id)
     |> List.filter (fun p -> not (List.mem p answers))
   in
   let examples =
     List.map (fun p -> (p, true)) (List.filteri (fun i _ -> i < 4) answers)
     @ List.map (fun p -> (p, false)) (List.filteri (fun i _ -> i < 4) non_answers)
   in
   match Exchange.Mapping.Graph_to_xml.run ~graph ~examples with
   | None -> Benchkit.Table.add_row t [ "4 graph→XML"; "failed"; "—"; "no" ]
   | Some result ->
       let direct = Exchange.Publish.graph_paths_to_xml graph goal in
       Benchkit.Table.add_row t
         [
           "4 graph→XML";
           Format.asprintf "%a" Pathlearn.Words.pp result.query;
           string_of_int (Xmltree.Tree.size result.published);
           fmt_bool (Xmltree.Tree.equal_unordered result.published direct);
         ]);
  Benchkit.Table.print t;
  Printf.printf
    "Paper, Figure 1: publishing and shredding between the relational, XML \
     and RDF models, with the source query learned from examples.\n\n"

(* ------------------------------------------------------------------ *)
(* E9: schema inference in the limit                                   *)
(* ------------------------------------------------------------------ *)

let e9 () =
  let t =
    Benchkit.Table.make
      ~title:"E9: DMS identification in the limit from positive examples"
      ~header:[ "target schema"; "stream"; "converged at"; "inferred ≡ target"; "fresh docs valid" ]
  in
  (* Miniature target with a genuine disjunction. *)
  (let hidden =
     Uschema.Schema.make ~root:"r"
       ~rules:
         [
           ("r", Uschema.Dme.parse "a+ b?");
           ("a", Uschema.Dme.parse "c | d e*");
         ]
   in
   let rng = Core.Prng.create 5 in
   let gen_doc () =
     let gen_a () =
       if Core.Prng.bool rng then Xmltree.Parse.term "a(c)"
       else
         Xmltree.Tree.node "a"
           (Xmltree.Tree.leaf "d"
           :: List.init (Core.Prng.int rng 3) (fun _ -> Xmltree.Tree.leaf "e"))
     in
     Xmltree.Tree.node "r"
       (List.init (1 + Core.Prng.int rng 3) (fun _ -> gen_a ())
       @ (if Core.Prng.bool rng then [ Xmltree.Tree.leaf "b" ] else []))
   in
   let stream = List.init 12 (fun _ -> gen_doc ()) in
   let verdict =
     Core.Limit.run ~learn:Uschema.Infer.infer
       ~equiv:Uschema.Containment.schema_equiv ~target:hidden ~stream
   in
   let fresh_ok =
     match Uschema.Infer.infer stream with
     | None -> false
     | Some inferred ->
         List.init 10 (fun _ -> gen_doc ())
         |> List.for_all (Uschema.Schema.valid inferred)
   in
   Benchkit.Table.add_row t
     [
       "a+ b? / (c | d e*)";
       "12 docs";
       fmt_opt_int verdict.converged_at;
       fmt_bool (Core.Limit.converged verdict);
       fmt_bool fresh_ok;
     ]);
  (* The XMark schema itself needs a richer stream: optional-children
     combinations (a person with every optional part present, an empty
     catgraph, ...) must all be exhibited before the clause-merging
     generalization reaches the target. *)
  (let stream =
     List.init 30 (fun i -> Benchkit.Xmark.generate ~scale:3.0 ~seed:(700 + i) ())
   in
   let verdict =
     Core.Limit.run ~learn:Uschema.Infer.infer
       ~equiv:Uschema.Containment.schema_equiv ~target:Benchkit.Xmark.schema
       ~stream
   in
   let fresh_ok =
     match Uschema.Infer.infer stream with
     | None -> false
     | Some inferred ->
         List.init 5 (fun i -> Benchkit.Xmark.generate ~scale:2.0 ~seed:(800 + i) ())
         |> List.for_all (Uschema.Schema.valid inferred)
   in
   Benchkit.Table.add_row t
     [
       "XMark DMS";
       "30 docs";
       fmt_opt_int verdict.converged_at;
       fmt_bool (Core.Limit.converged verdict);
       fmt_bool fresh_ok;
     ]);
  Benchkit.Table.print t;
  Printf.printf
    "Paper: \"the disjunctive multiplicity schemas are identifiable in the \
     limit from positive examples only\".\n\n"

(* ------------------------------------------------------------------ *)
(* E10: DMS vs ordered DTD on XMark                                    *)
(* ------------------------------------------------------------------ *)

let e10 () =
  let t =
    Benchkit.Table.make
      ~title:"E10: the XMark DTD vs its DMS (order-obliviousness)"
      ~header:[ "document class"; "docs"; "DMS accepts"; "DTD accepts" ]
  in
  let docs =
    List.init 10 (fun i -> Benchkit.Xmark.generate ~scale:1.5 ~seed:(50 + i) ())
  in
  let count pred docs = List.length (List.filter pred docs) in
  let n = List.length docs in
  let fmt k = Printf.sprintf "%d/%d" k n in
  Benchkit.Table.add_row t
    [
      "generated (ordered)";
      string_of_int n;
      fmt (count (Uschema.Schema.valid Benchkit.Xmark.schema) docs);
      fmt (count (Uschema.Dtd.valid Benchkit.Xmark.dtd) docs);
    ];
  let rng = Core.Prng.create 77 in
  let permuted = List.map (Benchkit.Mutate.permute_children rng) docs in
  Benchkit.Table.add_row t
    [
      "sibling-permuted";
      string_of_int n;
      fmt (count (Uschema.Schema.valid Benchkit.Xmark.schema) permuted);
      fmt (count (Uschema.Dtd.valid Benchkit.Xmark.dtd) permuted);
    ];
  let mutants =
    List.concat_map
      (Benchkit.Mutate.invalidating_mutants rng Benchkit.Xmark.schema)
      docs
  in
  let m = List.length mutants in
  Benchkit.Table.add_row t
    [
      "structure-mutated";
      string_of_int m;
      Printf.sprintf "%d/%d"
        (List.length
           (List.filter (Uschema.Schema.valid Benchkit.Xmark.schema) mutants))
        m;
      Printf.sprintf "%d/%d"
        (List.length (List.filter (Uschema.Dtd.valid Benchkit.Xmark.dtd) mutants))
        m;
    ];
  Benchkit.Table.print t;
  let dms_self =
    Core.Stats.time_median ~repeats:3 (fun () ->
        ignore
          (Uschema.Containment.schema_leq Benchkit.Xmark.schema
             Benchkit.Xmark.schema))
  in
  let dtd_self =
    Core.Stats.time_median ~repeats:3 (fun () ->
        ignore (Uschema.Dtd.leq Benchkit.Xmark.dtd Benchkit.Xmark.dtd))
  in
  Printf.printf
    "Containment self-check: DMS %.1f µs (grid procedure) vs DTD %.1f µs \
     (DFA products).\n" (dms_self *. 1e6) (dtd_self *. 1e6);
  Printf.printf
    "Paper: \"the disjunctive multiplicity schema can express the DTD from \
     XMark\", while ignoring \"the relative order among the elements\" — \
     permutations stay valid under the DMS only.\n\n"

(* ------------------------------------------------------------------ *)
(* E11: PAC learning curves                                            *)
(* ------------------------------------------------------------------ *)

let e11 () =
  let t =
    Benchkit.Table.make
      ~title:"E11: PAC learning curves (mean generalization error)"
      ~header:[ "m"; "twig error"; "twig fails"; "join error"; "join fails" ]
  in
  (* Twig setup: instances are annotated XMark nodes, half drawn from the
     goal's answers (the annotator looks at relevant nodes), half uniform. *)
  let corpus =
    List.init 12 (fun i -> Benchkit.Xmark.generate ~scale:1.5 ~seed:(600 + i) ())
  in
  let goal = Twig.Parse.query "//person[profile]/name" in
  let twig_setup =
    {
      Core.Pac.learn =
        (fun examples ->
          Twiglearn.Positive.learn_positive (Core.Example.positives examples));
      selects = Twig.Eval.selects_example;
      sample =
        (fun rng ->
          let doc = Core.Prng.pick rng corpus in
          let answers = Twig.Eval.select goal doc in
          let path =
            if answers <> [] && Core.Prng.bool rng then
              Core.Prng.pick rng answers
            else Core.Prng.pick rng (Xmltree.Tree.all_paths doc)
          in
          Xmltree.Annotated.make doc path);
      target = (fun a -> Twig.Eval.selects_example goal a);
    }
  in
  (* Join setup: instances are tuple-pair signatures of a fixed instance. *)
  let join_inst =
    Relational.Generator.pair_instance ~rng:(Core.Prng.create 99) ()
  in
  let join_space =
    Joinlearn.Signature.space
      ~left_arity:(Relational.Relation.arity join_inst.left)
      ~right_arity:(Relational.Relation.arity join_inst.right)
  in
  let join_goal = Joinlearn.Signature.of_predicate join_space join_inst.planted in
  let join_items =
    Joinlearn.Interactive.items_of join_space join_inst.left join_inst.right
    |> List.map (fun (it : Joinlearn.Interactive.item) -> it.mask)
  in
  (* Balance the distribution (uniform pairs are ~97% negative, which would
     make even the trivial learner look good). *)
  let join_pos, join_neg =
    List.partition (fun m -> Joinlearn.Signature.subset join_goal m) join_items
  in
  let join_setup =
    {
      Core.Pac.learn = (fun examples -> Joinlearn.Join.learn join_space examples);
      selects = (fun theta mask -> Joinlearn.Signature.subset theta mask);
      sample =
        (fun rng ->
          if Core.Prng.bool rng && join_pos <> [] then
            Core.Prng.pick rng join_pos
          else Core.Prng.pick rng join_neg);
      target = (fun mask -> Joinlearn.Signature.subset join_goal mask);
    }
  in
  let sizes = [ 2; 4; 8; 16; 32; 64 ] in
  let twig_curve =
    Core.Pac.learning_curve twig_setup ~seed:1 ~sizes ~trials:6
      ~test_samples:150 ()
  in
  let join_curve =
    Core.Pac.learning_curve join_setup ~seed:2 ~sizes ~trials:10
      ~test_samples:300 ()
  in
  List.iter2
    (fun (tc : Core.Pac.curve_point) (jc : Core.Pac.curve_point) ->
      Benchkit.Table.add_row t
        [
          string_of_int tc.train_size;
          Benchkit.Table.cell_pct tc.mean_error;
          string_of_int tc.failures;
          Benchkit.Table.cell_pct jc.mean_error;
          string_of_int jc.failures;
        ])
    twig_curve join_curve;
  Benchkit.Table.print t;
  let m_join =
    Core.Pac.sample_complexity join_setup ~seed:3 ~epsilon:0.05 ~delta:0.2
      ~trials:10 ~test_samples:300 ()
  in
  Printf.printf
    "Empirical sample complexity (join, ε=0.05, δ=0.2): m = %s.\n"
    (fmt_opt_int m_join);
  Printf.printf
    "Paper: the PAC framework as the fallback when exact consistency is \
     intractable — \"the learned query may select some negative examples \
     and omit some positive ones\".\n\n"

(* ------------------------------------------------------------------ *)
(* E12: chains of joins                                                *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let t =
    Benchkit.Table.make
      ~title:"E12: interactive learning of join chains R1 ⋈ … ⋈ Rk"
      ~header:
        [ "k"; "pool size"; "questions"; "pruned"; "goal recovered"; "join rows" ]
  in
  List.iter
    (fun k ->
      let rng = Core.Prng.create (100 + k) in
      let relations =
        List.init k (fun i ->
            Relational.Generator.random_relation ~rng
              ~name:(Printf.sprintf "R%d" (i + 1))
              ~attrs:
                (List.init 3 (fun a -> Printf.sprintf "r%d_%d" (i + 1) a))
              ~rows:5 ~domain:3)
      in
      let goal =
        List.init (k - 1) (fun i -> [ ((i + i) mod 3, (i + 1) mod 3) ])
      in
      let outcome =
        Joinlearn.Chain.run_with_goal ~rng ~relations ~goal ()
      in
      let chain = Joinlearn.Chain.make relations in
      let goal_vec = Joinlearn.Chain.of_predicates chain goal in
      let recovered =
        match outcome.query with
        | None -> false
        | Some learned ->
            List.for_all
              (fun (it : Joinlearn.Chain.item) ->
                Joinlearn.Chain.selects learned it.mask
                = Joinlearn.Chain.selects goal_vec it.mask)
              (Joinlearn.Chain.items_of chain relations)
      in
      let joined = Relational.Algebra.chain_join relations goal in
      Benchkit.Table.add_row t
        [
          string_of_int k;
          string_of_int (outcome.questions + outcome.pruned);
          string_of_int outcome.questions;
          string_of_int outcome.pruned;
          fmt_bool recovered;
          string_of_int (Relational.Relation.cardinal joined);
        ])
    [ 2; 3; 4 ];
  Benchkit.Table.print t;
  Printf.printf
    "Paper: \"we want to extend our approach to other operators and also to \
     chains of joins between many relations\" — the per-link version space \
     keeps every decision polynomial while the pool grows geometrically.\n\n"

(* ------------------------------------------------------------------ *)
(* E13: ablation of the LGG design choices                             *)
(* ------------------------------------------------------------------ *)

let e13 () =
  let t =
    Benchkit.Table.make
      ~title:"E13: ablation — LGG filter-product design (goal //person[profile]/name and A4)"
      ~header:
        [ "configuration"; "goal"; "#examples"; "size"; "≡ goal on fresh docs" ]
  in
  let docs = Lazy.force training_docs and fresh = Lazy.force fresh_docs in
  let goals =
    [
      ("B7", Twig.Parse.query "//person[profile/@income]/name");
      ("A4",
       Twig.Parse.query
         "/site/closed_auctions/closed_auction[annotation/description//keyword]/date");
    ]
  in
  let configs =
    [
      ("label-guided + rescue (default)", true, true);
      ("label-guided, no rescue", true, false);
      ("naive product", false, true);
    ]
  in
  List.iter
    (fun (cname, label_guided, rescue) ->
      List.iter
        (fun (gname, goal) ->
          let examples =
            List.filter_map
              (fun d ->
                match Twig.Eval.select goal d with
                | p :: _ -> Some (Twig.Query.of_example d p)
                | [] -> None)
              docs
          in
          let rec sweep k =
            if k > List.length examples then None
            else
              let sub = List.filteri (fun i _ -> i < k) examples in
              match Twig.Lgg.lgg_all ~label_guided ~rescue sub with
              | None -> None
              | Some merged ->
                  let q = Twig.Lgg.minimize merged in
                  if
                    Twig.Query.is_anchored q
                    && semantic_equiv q goal fresh
                  then Some (k, q)
                  else sweep (k + 1)
          in
          match sweep 2 with
          | Some (k, q) ->
              Benchkit.Table.add_row t
                [
                  cname;
                  gname;
                  string_of_int k;
                  string_of_int (Twig.Query.size q);
                  "yes";
                ]
          | None ->
              let size =
                match Twig.Lgg.lgg_all ~label_guided ~rescue examples with
                | Some q -> Twig.Query.size (Twig.Lgg.minimize q)
                | None -> 0
              in
              Benchkit.Table.add_row t
                [ cname; gname; "—"; string_of_int size; "no" ])
        goals)
    configs;
  Benchkit.Table.print t;
  Printf.printf
    "The label-guided product is what makes few-example convergence \
     possible; the descendant rescue is what preserves structure buried at \
     different depths (A4's //keyword).  DESIGN.md §4 records both \
     choices.\n\n"

(* ------------------------------------------------------------------ *)
(* E14: interactive twig learning by node annotation                   *)
(* ------------------------------------------------------------------ *)

let e14 () =
  let t =
    Benchkit.Table.make
      ~title:"E14: interactive twig learning — document order vs. label-diverse questions"
      ~header:
        [
          "goal";
          "doc nodes";
          "doc-order Q";
          "label-diverse Q";
          "pruned (diverse)";
          "answers recovered";
        ]
  in
  let goals =
    [
      "//person/name";
      "//item/location";
      "//open_auction[bidder]/current";
      "//closed_auction/annotation";
    ]
  in
  List.iter
    (fun xpath ->
      let goal = Twig.Parse.query xpath in
      let doc = Benchkit.Xmark.generate ~scale:1.5 ~seed:314 () in
      let naive = Twiglearn.Interactive.run_with_goal ~doc ~goal () in
      let diverse =
        Twiglearn.Interactive.run_with_goal
          ~strategy:Twiglearn.Interactive.label_diverse_strategy ~doc ~goal ()
      in
      let recovered =
        match diverse.query with
        | None -> false
        | Some q -> Twig.Eval.select q doc = Twig.Eval.select goal doc
      in
      Benchkit.Table.add_row t
        [
          xpath;
          string_of_int (Xmltree.Tree.size doc);
          string_of_int naive.questions;
          string_of_int diverse.questions;
          string_of_int diverse.pruned;
          fmt_bool recovered;
        ])
    goals;
  Benchkit.Table.print t;
  Printf.printf
    "Paper: \"develop a practical system able to learn twig queries from \
     interaction with the user\" — the anchored fragment's unique LGG makes \
     most nodes' labels inferable, so they are never asked.\n\n"

(* ------------------------------------------------------------------ *)
(* E15: unions of twig queries                                         *)
(* ------------------------------------------------------------------ *)

let e15 () =
  let t =
    Benchkit.Table.make
      ~title:"E15: learning unions of twig queries (greedy clustering)"
      ~header:
        [ "goal union"; "clusters found"; "consistent"; "answers recovered" ]
  in
  let doc = Benchkit.Xmark.generate ~scale:1.5 ~seed:42 () in
  let goals =
    [
      [ "//person/name"; "//item/location" ];
      [ "//open_auction/initial"; "//closed_auction/price" ];
      [ "//keyword"; "//person/emailaddress"; "//category/name" ];
    ]
  in
  List.iter
    (fun union_goal ->
      let queries = List.map Twig.Parse.query union_goal in
      let answers =
        List.concat_map (fun q -> Twig.Eval.select q doc) queries
        |> List.sort_uniq compare
      in
      let examples = Xmltree.Annotated.examples_of_answers doc ~answers in
      (* Thin the negatives (the full complement is large). *)
      let examples =
        List.filteri
          (fun i (e : _ Core.Example.t) ->
            Core.Example.is_positive e || i mod 5 = 0)
          examples
      in
      match Twiglearn.Union.learn examples with
      | None -> Benchkit.Table.add_row t [ String.concat " ∪ " union_goal; "—"; "no"; "no" ]
      | Some union ->
          let consistent =
            List.for_all
              (fun (e : _ Core.Example.t) ->
                Twiglearn.Union.selects union e.value
                = Core.Example.is_positive e)
              examples
          in
          let recovered =
            let selected =
              List.filter
                (fun p ->
                  Twiglearn.Union.selects union (Xmltree.Annotated.make doc p))
                (Xmltree.Tree.all_paths doc)
            in
            selected = answers
          in
          Benchkit.Table.add_row t
            [
              String.concat " ∪ " union_goal;
              string_of_int (List.length union);
              fmt_bool consistent;
              fmt_bool recovered;
            ])
    goals;
  Benchkit.Table.print t;
  Printf.printf
    "Paper: \"richer query languages e.g., unions of twig queries for which \
     testing consistency is trivial but learnability remains an open \
     question\" — the greedy clustering learner answers it affirmatively on \
     these workloads.\n\n"

(* ------------------------------------------------------------------ *)
(* E16: interactive semijoin inference                                 *)
(* ------------------------------------------------------------------ *)

let e16 () =
  let t =
    Benchkit.Table.make
      ~title:"E16: interactive semijoin inference (questions over left tuples)"
      ~header:[ "left rows"; "questions"; "pruned"; "goal classification recovered" ]
  in
  List.iter
    (fun rows ->
      let rng = Core.Prng.create (rows * 31) in
      let inst =
        Relational.Generator.pair_instance ~rng ~left_arity:3 ~right_arity:3
          ~left_rows:rows ~right_rows:8 ~domain:4 ()
      in
      let outcome =
        Joinlearn.Semijoin_interactive.run_with_goal ~rng ~left:inst.left
          ~right:inst.right ~goal:inst.planted ()
      in
      let recovered =
        match outcome.query with
        | None -> false
        | Some learned ->
            let ctx = Joinlearn.Semijoin.make inst.left inst.right in
            let goal =
              Joinlearn.Signature.of_predicate (Joinlearn.Semijoin.space ctx)
                inst.planted
            in
            List.for_all
              (fun tuple ->
                Joinlearn.Semijoin.selects ctx goal tuple
                = Joinlearn.Semijoin.selects ctx learned tuple)
              (Relational.Relation.tuples inst.left)
      in
      Benchkit.Table.add_row t
        [
          string_of_int (Relational.Relation.cardinal inst.left);
          string_of_int outcome.questions;
          string_of_int outcome.pruned;
          fmt_bool recovered;
        ])
    [ 8; 14; 20 ];
  Benchkit.Table.print t;
  Printf.printf
    "Paper: for operators with intractable consistency (semijoins), design \
     interactive strategies anyway — here each determined-label test runs \
     the exact search under both assumed labels.\n\n"

(* ------------------------------------------------------------------ *)
(* E17: twig consistency with negatives — the exponential frontier     *)
(* ------------------------------------------------------------------ *)

let e17 () =
  let t =
    Benchkit.Table.make
      ~title:"E17: twig consistency with negative examples — anchored PTIME vs bounded exact search"
      ~header:
        [
          "query size bound";
          "candidate twigs";
          "search (ms)";
          "anchored check (ms)";
        ]
  in
  (* A sample where the anchored check and the search agree (consistent). *)
  let doc =
    Xmltree.Parse.term
      "r(item(location,name),item(name),gadget(name),item(location))"
  in
  let examples =
    [
      Core.Example.positive (Xmltree.Annotated.make doc [ 0 ]);
      Core.Example.positive (Xmltree.Annotated.make doc [ 3 ]);
      Core.Example.negative (Xmltree.Annotated.make doc [ 1 ]);
      Core.Example.negative (Xmltree.Annotated.make doc [ 2 ]);
    ]
  in
  let anchored_ms =
    Core.Stats.time_median ~repeats:5 (fun () ->
        ignore (Twiglearn.Consistency.anchored examples))
    *. 1e3
  in
  List.iter
    (fun max_size ->
      let alphabet = [ "r"; "item"; "location"; "name"; "gadget" ] in
      let candidates =
        Twiglearn.Enumerate.count ~alphabet ~max_nodes:max_size ()
      in
      let dt =
        Core.Stats.time_median ~repeats:3 (fun () ->
            ignore (Twiglearn.Consistency.bounded ~max_size examples))
      in
      Benchkit.Table.add_row t
        [
          string_of_int max_size;
          string_of_int candidates;
          Benchkit.Table.cell_float (dt *. 1e3);
          Benchkit.Table.cell_float anchored_ms;
        ])
    [ 2; 3; 4; 5 ];
  Benchkit.Table.print t;
  Printf.printf
    "Paper: with negative examples, twig consistency is NP-complete in \
     general, but \"when considering the restriction that the sets … have a \
     bounded size, the problem becomes tractable\" — the candidate space \
     grows exponentially with the size bound while the anchored-fragment \
     check stays constant.\n\n"

let all = [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
            ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
            ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14);
            ("e15", e15); ("e16", e16); ("e17", e17) ]
