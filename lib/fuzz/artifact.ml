type t = {
  oracle : string;
  seed : int;
  size : int;
  steps : int;
  shrunk_size : int;
  reason : string;
  input : string;
}

let magic = "learnq-fuzz-artifact v1"
let input_marker = "--- input ---"

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let to_string a =
  String.concat "\n"
    [ magic;
      "oracle: " ^ a.oracle;
      "seed: " ^ string_of_int a.seed;
      "size: " ^ string_of_int a.size;
      "steps: " ^ string_of_int a.steps;
      "shrunk-size: " ^ string_of_int a.shrunk_size;
      "reason: " ^ one_line a.reason;
      input_marker;
      a.input;
    ]

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | m :: rest when String.trim m = magic -> (
      let field name line =
        let prefix = name ^ ": " in
        let plen = String.length prefix in
        if String.length line >= plen && String.sub line 0 plen = prefix then
          Some (String.sub line plen (String.length line - plen))
        else None
      in
      let rec header acc = function
        | [] -> (acc, [])
        | l :: rest when String.trim l = input_marker -> (acc, rest)
        | l :: rest -> header (l :: acc) rest
      in
      let hdr, input_lines = header [] rest in
      let find name =
        List.find_map (field name) (List.rev hdr)
      in
      let int_field name =
        match find name with
        | Some v -> int_of_string_opt v
        | None -> None
      in
      match (find "oracle", int_field "seed", int_field "size") with
      | Some oracle, Some seed, Some size ->
          Ok
            { oracle;
              seed;
              size;
              steps = Option.value ~default:0 (int_field "steps");
              shrunk_size = Option.value ~default:0 (int_field "shrunk-size");
              reason = Option.value ~default:"" (find "reason");
              input = String.concat "\n" input_lines;
            }
      | _ -> Error "artifact: missing oracle/seed/size header field")
  | _ -> Error ("artifact: bad magic (expected \"" ^ magic ^ "\")")

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write ~dir a =
  mkdir_p dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "%s-seed%d.counterexample" a.oracle a.seed)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string a));
  path

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg
