(** The [learnq serve] daemon: sockets, threads, routing, and the drain
    choreography.

    {2 Thread model}

    One {!Mux} thread (the caller of {!serve}) owns {e every} socket via a
    poll(2) readiness loop: it accepts, parks idle keep-alive connections
    at zero thread cost, feeds bytes to each connection's incremental
    parser, and hands complete requests to a bounded pool of [io_threads]
    workers.  The whole I/O thread budget is [io_threads + 1] no matter
    how many thousands of clients stay connected.  Workers parse and
    validate only; all session work is submitted to {!Admission} and
    executed by the one dispatcher thread, which runs each key-disjoint
    batch across a {!Core.Pool} of domains ({e one domain per batch of
    sessions}) — so two requests never race on one session, and
    fsync-bound sessions overlap with compute-bound ones.

    Slow requests hit the mux's [request_deadline] (measured from a
    request's first byte) and get a 408 without ever occupying a worker;
    connections beyond [max_conns] are shed with 503; parked connections
    beyond [max_idle_conns] are closed oldest-first.

    {2 Wire protocol}

    Line-delimited JSON over HTTP/1.1 keep-alive; the tenant rides in the
    [x-learnq-tenant] header (default ["anon"]).

    {v POST   /v1/sessions              {"id":..,"engine":..,"seed":..}  create/resume
       GET    /v1/sessions/ID                                            current view
       POST   /v1/sessions/ID/answers   {"qid":N,"reply":true|false|"refused"|"timed_out"}
       DELETE /v1/sessions/ID                                            close + forget
       GET    /healthz | /stats | /metrics                               inline, never queued
       GET    /debug/sessions | /debug/tenants | /debug/slow
              /debug/flightrecorder              when [debug_endpoints] v}

    Views are [{"engine","done","degraded","qid","question","question_text",
    "questions","replayed","pruned","refused","query"}]; errors are
    [{"error":msg,"trace":id}] with 400 (malformed), 404 (unknown session),
    409 (conflicting spec / stale qid), 429 (quota or breaker, with
    [Retry-After]), 503 (shedding or draining, with [Retry-After]), 507
    (disk full).

    {2 Observability}

    Every request gets a trace id — a well-formed inbound [X-Learnq-Trace]
    is honored, otherwise one is minted — installed in {!Core.Obs.Trace}
    for the connection thread, captured into the admission job, and
    re-installed on the pool domain that executes it: log lines, error
    bodies, flight-recorder events (journal fsyncs, vfs faults, question
    asked/answered, evictions, breaker trips) and the [X-Learnq-Trace]
    response header all carry the same id.  Request latencies feed labeled
    sliding-window metrics ([learnq_request_seconds{tenant=…}],
    [learnq_requests_total{route=…,outcome=…,tenant=…}]) appended to
    [/metrics].  Requests at or over [slow_ms] land in a 64-entry ring
    served by [/debug/slow].  A stall watchdog (on the accept loop's tick)
    flags requests in flight longer than [stall_after]: it bumps
    [learnq_watchdog_stalled_total] and the [/stats] [stalled] counter,
    records the event, and dumps the flight recorder to
    [<state_dir>/flightrecorder-stall.json] — it never kills the request.

    {2 Storage robustness}

    Sessions checkpoint + compact their journals every [checkpoint_every]
    answers; {!Registry.evict_idle} (run by the dispatcher between
    batches) closes sessions beyond [max_live_sessions] or idle past
    [idle_evict_after], and requests touching an evicted session resume it
    transparently from its journal.  The first ENOSPC flips the daemon
    into {e degraded read-only mode}: creates are refused with 507 (and,
    under [sync = Off], steps too — an unsynced append can lie about a
    full disk); a ~1/s write-fsync probe in the accept loop leaves the
    mode as soon as the disk takes allocations again.  Corrupt journals
    are quarantined ([<name>.quarantine]) rather than retried forever;
    [/stats] reports [degraded], [evicted], [resumed], [quarantined].

    {2 Drain}

    {!drain} (async-signal-safe: a flag write) starts the choreography:
    stop accepting, answer session requests 503, let the dispatcher finish
    the queued backlog, wait up to [drain_grace] for connection threads,
    journal-sync every live session ({!Registry.drain}), shut the pool
    down, return from {!serve}.  The process exits 0 with every journal
    flushed — the next start resumes them. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (reported via [on_listen]) *)
  state_dir : string;
  pool : int;  (** domains for batch execution and recovery *)
  max_queue : int;  (** admission backlog bound *)
  max_conns : int;  (** concurrent connections; excess get 503 *)
  io_threads : int;  (** mux worker threads running request handlers *)
  max_idle_conns : int;
      (** parked keep-alive cap; oldest evicted beyond it; 0 = unlimited *)
  request_deadline : float;
      (** seconds from a request's first byte to its 408; slow-loris
          clients are cut here without costing a thread *)
  sync : Core.Journal.sync;
  tenants : Tenant.t;
  step_fuel : int option;
  step_timeout : float option;
  drain_grace : float;  (** seconds to wait for connections on drain *)
  on_listen : int -> unit;  (** called with the bound port *)
  vfs : Core.Vfs.t;
      (** storage backend; the chaos harness swaps in {!Core.Vfs.faulty} *)
  checkpoint_every : int;
      (** compact each session's journal every N answers; 0 = never *)
  max_live_sessions : int;  (** LRU-evict beyond this many; 0 = unlimited *)
  idle_evict_after : float;  (** evict sessions idle this long; 0 = never *)
  slow_ms : float;
      (** requests at/over this many milliseconds land in the /debug/slow
          ring *)
  stall_after : float;
      (** watchdog deadline (seconds) for in-flight requests *)
  flight_recorder_size : int;
      (** total flight-recorder event capacity; 0 keeps the default *)
  debug_endpoints : bool;  (** serve the [/debug/*] routes *)
}

val default_config : config
(** 127.0.0.1:0, ["./learnq-state"], pool 2, queue 256, 128 conns, 4 io
    threads, unlimited idle conns, 30s request deadline, [Batch] sync,
    default tenants, no step caps, 5s grace, real storage, no checkpoints,
    unbounded residency, 250ms slow threshold, 30s watchdog, default
    recorder capacity, debug endpoints on. *)

type t

val create : config -> t

val serve : t -> (unit, string) result
(** Binds, recovers the state directory, and serves until {!drain}.
    [Error] is a bind/listen failure. *)

val drain : t -> unit
(** Idempotent; callable from a signal handler or another thread. *)

val draining : t -> bool

val degraded : t -> bool
(** The daemon is in degraded read-only mode (disk full, not yet healed). *)

val registry : t -> Registry.t
(** Exposed for in-process tests and the chaos harness. *)

val stalled : t -> int
(** Lifetime watchdog trips (also in [/stats] as ["stalled"]). *)
