module Error = Core.Error
module Telemetry = Core.Telemetry
module Obs = Core.Obs

type config = {
  host : string;
  port : int;
  state_dir : string;
  pool : int;
  max_queue : int;
  max_conns : int;
  io_threads : int;  (** mux worker threads running request handlers *)
  max_idle_conns : int;
      (** parked keep-alive connections beyond this are evicted oldest
          first; 0 = unlimited *)
  request_deadline : float;
      (** seconds from a request's first byte to its 408 *)
  sync : Core.Journal.sync;
  tenants : Tenant.t;
  step_fuel : int option;
  step_timeout : float option;
  drain_grace : float;
  on_listen : int -> unit;
  vfs : Core.Vfs.t;  (** storage backend (chaos harness swaps in faults) *)
  checkpoint_every : int;  (** compact sessions every N answers; 0 = off *)
  max_live_sessions : int;  (** LRU-evict beyond this; 0 = unlimited *)
  idle_evict_after : float;  (** evict sessions idle this long; 0 = off *)
  slow_ms : float;  (** requests at/over this land in the slow ring *)
  stall_after : float;  (** watchdog deadline for in-flight requests *)
  flight_recorder_size : int;  (** total recorder events; 0 = default *)
  debug_endpoints : bool;  (** serve /debug/\{sessions,tenants,slow,…\} *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    state_dir = "./learnq-state";
    pool = 2;
    max_queue = 256;
    max_conns = 128;
    io_threads = 4;
    max_idle_conns = 0;
    request_deadline = 30.0;
    sync = Core.Journal.Batch;
    tenants = Tenant.make [];
    step_fuel = None;
    step_timeout = None;
    drain_grace = 5.0;
    on_listen = (fun _ -> ());
    vfs = Core.Vfs.real;
    checkpoint_every = 0;
    max_live_sessions = 0;
    idle_evict_after = 0.;
    slow_ms = 250.;
    stall_after = 30.;
    flight_recorder_size = 0;
    debug_endpoints = true;
  }

type slow_entry = {
  sl_trace : string;
  sl_route : string;
  sl_tenant : string;
  sl_status : int;
  sl_ms : float;
  sl_at : float;  (** wall clock, for the /debug/slow listing *)
}

type inflight = {
  if_trace : string;
  if_route : string;
  if_tenant : string;
  if_started : float;  (** monotonic *)
  mutable if_flagged : bool;  (** already counted by the watchdog *)
}

type t = {
  cfg : config;
  registry : Registry.t;
  admission : Admission.t;
  drain_flag : bool Atomic.t;
  degraded_flag : bool Atomic.t;
      (** the disk said ENOSPC: refuse writes until the probe heals *)
  mutable mux : Mux.t option;  (** set by [serve] before the loop starts *)
  requests : int Atomic.t;
  req_seq : int Atomic.t;  (** in-flight table key generator *)
  slow_mu : Mutex.t;
  slow_ring : slow_entry option array;  (** newest overwrite oldest *)
  mutable slow_pos : int;
  inflight_mu : Mutex.t;
  inflight : (int, inflight) Hashtbl.t;
  stalled : int Atomic.t;  (** watchdog trips, lifetime *)
}

let m_requests = Telemetry.Metrics.counter "learnq.serve.requests"
let m_shed = Telemetry.Metrics.counter "learnq.serve.shed"
let m_tripped = Telemetry.Metrics.counter "learnq.serve.tripped"
let m_faults = Telemetry.Metrics.counter "learnq.serve.client_faults"
let m_request_s = Telemetry.Metrics.histogram "learnq.serve.request_s"
let g_sessions = Telemetry.Metrics.gauge "learnq.serve.sessions"

let m_degraded = Telemetry.Metrics.counter "learnq.serve.degraded_entered"

let create cfg =
  let registry =
    Registry.create
      {
        Registry.dir = cfg.state_dir;
        sync = cfg.sync;
        tenants = cfg.tenants;
        step_fuel = cfg.step_fuel;
        step_timeout = cfg.step_timeout;
        vfs = cfg.vfs;
        checkpoint_every = cfg.checkpoint_every;
        max_live = cfg.max_live_sessions;
        idle_evict_after = cfg.idle_evict_after;
      }
  in
  let admission = Admission.create ~max_queue:cfg.max_queue () in
  if cfg.flight_recorder_size > 0 then
    Obs.Recorder.set_capacity cfg.flight_recorder_size;
  {
    cfg;
    registry;
    admission;
    drain_flag = Atomic.make false;
    degraded_flag = Atomic.make false;
    mux = None;
    requests = Atomic.make 0;
    req_seq = Atomic.make 0;
    slow_mu = Mutex.create ();
    slow_ring = Array.make 64 None;
    slow_pos = 0;
    inflight_mu = Mutex.create ();
    inflight = Hashtbl.create 32;
    stalled = Atomic.make 0;
  }

(* Order matters: the admission queue must refuse before the atomic flag
   flips, because the dispatcher exits on [draining && pending = 0] — if a
   submit could still enqueue after that check, its waiter would block
   forever.  Seeing drain_flag = true implies Admission.drain completed,
   which implies any job counted by a later [pending] read was enqueued
   before the refusal point. *)
let drain t =
  Admission.drain t.admission;
  Atomic.set t.drain_flag true;
  (* Nudge the two sleepers that check the flag: the dispatcher (blocked in
     take_batch) and the mux (blocked in poll). *)
  Admission.wake t.admission;
  match t.mux with Some m -> Mux.wake m | None -> ()

let draining t = Atomic.get t.drain_flag
let registry t = t.registry
let stalled t = Atomic.get t.stalled

(* Degraded read-only mode: the first ENOSPC flips the flag; session
   creation is refused outright (507) and — under [sync = Off], where an
   append can land in the page cache without the disk ever admitting it has
   no room for it — steps are refused too.  Under Always/Batch a step's own
   fsync surfaces the disk state, so steps stay admitted and either succeed
   (space came back) or return the honest 507. *)
let degraded t = Atomic.get t.degraded_flag

let enter_degraded t =
  if not (Atomic.exchange t.degraded_flag true) && Telemetry.enabled ()
  then begin
    Telemetry.Metrics.incr m_degraded;
    Telemetry.Log.warn "disk full: entering degraded read-only mode"
  end

(* Self-heal: a tiny write-fsync-unlink round trip in the state directory.
   Success means the disk takes allocations again — leave degraded mode. *)
let probe_disk t =
  if degraded t then begin
    let vfs = t.cfg.vfs in
    let path = Filename.concat t.cfg.state_dir ".heal-probe" in
    match
      let fh = Core.Vfs.openf ~trunc:true vfs path in
      Fun.protect
        ~finally:(fun () -> try Core.Vfs.close vfs fh with Unix.Unix_error _ -> ())
        (fun () ->
          Core.Vfs.append vfs fh "ok";
          Core.Vfs.fsync vfs fh);
      Core.Vfs.unlink vfs path
    with
    | () ->
        Atomic.set t.degraded_flag false;
        if Telemetry.enabled () then
          Telemetry.Log.info "disk recovered: leaving degraded mode"
    | exception Unix.Unix_error _ -> ()
    | exception Sys_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let json_response ?(headers = []) status j =
  { Http.status; headers; body = Json.to_string j }

(* Error bodies carry the trace id so a client's error report names the
   exact request in the server's logs, slow ring, and flight recorder.
   Works on connection threads and — because the dispatcher re-installs
   the job's trace — on pool domains too. *)
let error_response ?headers status msg =
  let fields = [ ("error", Json.Str msg) ] in
  let fields =
    match Obs.Trace.current () with
    | Some id -> fields @ [ ("trace", Json.Str id) ]
    | None -> fields
  in
  json_response ?headers status (Json.Obj fields)

let retry_after_headers ra =
  [ ("Retry-After", string_of_int (max 1 (int_of_float (Float.ceil ra)))) ]

let status_of_error = function
  | Error.Over_quota _ -> 429
  | Error.Journal_locked _ -> 409
  | Error.Invalid_input { what = "session"; _ } -> 409
  | Error.Invalid_input { what = "qid"; _ } -> 409
  | Error.Invalid_input _ | Error.Parse _ -> 400
  | Error.Budget_exhausted _ -> 503
  | Error.Corrupt_journal _ -> 500
  (* 507 Insufficient Storage: retryable once space returns; other storage
     failures (EIO) are plain 500s. *)
  | Error.Storage { full = true; _ } -> 507
  | Error.Storage _ -> 500

let of_error e = error_response (status_of_error e) (Error.to_string e)

let view_json (v : Stepper.view) =
  Json.Obj
    [
      ("engine", Json.Str v.engine);
      ("done", Json.Bool v.done_);
      ("degraded", Json.Bool v.degraded);
      ("qid", Json.of_int v.qid);
      ("question", Json.of_opt (fun s -> Json.Str s) v.question);
      ("question_text", Json.of_opt (fun s -> Json.Str s) v.question_text);
      ("questions", Json.of_int v.questions);
      ("replayed", Json.of_int v.replayed);
      ("pruned", Json.of_int v.pruned);
      ("refused", Json.of_int v.refused);
      ("query", Json.of_opt (fun s -> Json.Str s) v.query);
    ]

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

(* Paths: /v1/sessions[/ID[/answers]] *)
let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

(* Metric label for a route: session ids are collapsed so the label set
   stays small (the Obs cardinality cap would fold an id-per-series
   explosion into an overflow bucket, but there is no reason to get near
   it). *)
let route_label meth parts =
  match (meth, parts) with
  | "POST", [ "v1"; "sessions" ] -> "/v1/sessions"
  | ("GET" | "DELETE"), [ "v1"; "sessions"; _ ] -> "/v1/sessions/:id"
  | "POST", [ "v1"; "sessions"; _; "answers" ] -> "/v1/sessions/:id/answers"
  | "GET", [ "healthz" ] -> "/healthz"
  | "GET", [ "stats" ] -> "/stats"
  | "GET", [ "metrics" ] -> "/metrics"
  | "GET", "debug" :: _ -> "/debug"
  | _ -> "other"

let outcome_label status =
  if status < 300 then "2xx"
  else if status < 400 then "3xx"
  else if status < 500 then "4xx"
  else "5xx"

let tenant_of req =
  match Http.header "x-learnq-tenant" req with
  | Some ten when ten <> "" -> ten
  | _ -> "anon"

(* ------------------------------------------------------------------ *)
(* Request accounting: labeled metrics, slow ring, in-flight watchdog  *)
(* ------------------------------------------------------------------ *)

let track_inflight t ~trace ~route ~tenant =
  let seq = Atomic.fetch_and_add t.req_seq 1 in
  let e =
    {
      if_trace = trace;
      if_route = route;
      if_tenant = tenant;
      if_started = Core.Monotonic.now ();
      if_flagged = false;
    }
  in
  Mutex.protect t.inflight_mu (fun () -> Hashtbl.replace t.inflight seq e);
  seq

let untrack_inflight t seq =
  Mutex.protect t.inflight_mu (fun () -> Hashtbl.remove t.inflight seq)

(* The stall watchdog: called from the accept loop's select tick.  An
   in-flight request older than the deadline is flagged exactly once —
   the alertable counter bumps, the event lands in the flight recorder,
   and the recorder is dumped next to the state dir for the post-mortem.
   The request itself is left alone: it may still complete (a slow disk),
   and killing it would turn an incident into data loss. *)
let watchdog t =
  let now = Core.Monotonic.now () in
  let tripped =
    Mutex.protect t.inflight_mu (fun () ->
        Hashtbl.fold
          (fun _ e acc ->
            if (not e.if_flagged) && now -. e.if_started >= t.cfg.stall_after
            then begin
              e.if_flagged <- true;
              e :: acc
            end
            else acc)
          t.inflight [])
  in
  List.iter
    (fun e ->
      Atomic.incr t.stalled;
      Obs.Labeled.incr "learnq_watchdog_stalled_total"
        [ ("tenant", e.if_tenant); ("route", e.if_route) ];
      Obs.Recorder.record
        ~detail:(Printf.sprintf "%s %s age>%.1fs" e.if_trace e.if_route
                   t.cfg.stall_after)
        "watchdog.stall";
      Obs.Recorder.dump_to_file
        (Filename.concat t.cfg.state_dir "flightrecorder-stall.json");
      Telemetry.Log.warn
        ~kv:
          [
            ("trace", e.if_trace);
            ("route", e.if_route);
            ("tenant", e.if_tenant);
          ]
        "request stalled past the watchdog deadline")
    tripped

let observe_request t ~trace ~route ~tenant ~status ~dur =
  Obs.Labeled.incr "learnq_requests_total"
    [ ("route", route); ("outcome", outcome_label status); ("tenant", tenant) ];
  Obs.Labeled.observe "learnq_request_seconds" [ ("tenant", tenant) ] dur;
  let ms = dur *. 1e3 in
  if ms >= t.cfg.slow_ms then begin
    Obs.Recorder.record
      ~detail:(Printf.sprintf "%s %s %.1fms" route tenant ms)
      "http.slow";
    let e =
      {
        sl_trace = trace;
        sl_route = route;
        sl_tenant = tenant;
        sl_status = status;
        sl_ms = ms;
        sl_at = Unix.gettimeofday ();
      }
    in
    Mutex.protect t.slow_mu (fun () ->
        t.slow_ring.(t.slow_pos) <- Some e;
        t.slow_pos <- (t.slow_pos + 1) mod Array.length t.slow_ring)
  end

let reply_of_json j =
  match Json.mem "reply" j with
  | Some (Json.Bool b) -> Ok (Core.Flaky.Label b)
  | Some (Json.Str "refused") -> Ok Core.Flaky.Refused
  | Some (Json.Str "timed_out") -> Ok Core.Flaky.Timed_out
  | _ -> Error "reply must be true, false, \"refused\", or \"timed_out\""

(* Build the work closure for a session route; [None] means the route
   needs no queue (handled inline by the caller). *)
let session_job t ~tenant (req : Http.request) parts body =
  match (req.meth, parts) with
  | "POST", [ "v1"; "sessions" ] -> (
      match body with
      | Error msg -> Error (error_response 400 ("bad json: " ^ msg))
      | Ok j -> (
          match Json.get_str "id" j with
          | None -> Error (error_response 400 "missing session \"id\"")
          | Some id -> (
              match Engines.spec_of_json j with
              | Error msg -> Error (error_response 400 msg)
              | Ok spec ->
                  Ok
                    ( id,
                      fun () ->
                        if degraded t then
                          error_response 507
                            "degraded: disk full, not creating sessions"
                        else
                          match
                            Registry.create_session t.registry ~tenant ~id
                              spec
                          with
                          | Ok view ->
                              Obs.Labeled.incr "learnq_sessions_created_total"
                                [
                                  ("engine", spec.Engines.engine);
                                  ("tenant", tenant);
                                ];
                              json_response 200 (view_json view)
                          | Error e -> of_error e ))))
  | "GET", [ "v1"; "sessions"; id ] ->
      Ok
        ( id,
          fun () ->
            match Registry.find_or_resume t.registry ~tenant ~id with
            | Ok None -> error_response 404 "unknown session"
            | Ok (Some s) -> json_response 200 (view_json (s.Stepper.view ()))
            | Error e -> of_error e )
  | "DELETE", [ "v1"; "sessions"; id ] ->
      Ok
        ( id,
          fun () ->
            if Registry.delete t.registry ~tenant ~id then
              json_response 200 (Json.Obj [ ("deleted", Json.Bool true) ])
            else error_response 404 "unknown session" )
  | "POST", [ "v1"; "sessions"; id; "answers" ] -> (
      match body with
      | Error msg -> Error (error_response 400 ("bad json: " ^ msg))
      | Ok j -> (
          match (Json.get_int "qid" j, reply_of_json j) with
          | None, _ -> Error (error_response 400 "missing integer \"qid\"")
          | _, Error msg -> Error (error_response 400 msg)
          | Some qid, Ok reply ->
              Ok
                ( id,
                  fun () ->
                    if degraded t && t.cfg.sync = Core.Journal.Off then
                      error_response 507
                        "degraded: disk full, refusing unsynced steps"
                    else
                      match Registry.find_or_resume t.registry ~tenant ~id with
                      | Ok None -> error_response 404 "unknown session"
                      | Error e -> of_error e
                      | Ok (Some s) -> (
                          match s.Stepper.answer ~qid reply with
                          | Ok view -> json_response 200 (view_json view)
                          | Error e -> of_error e ) )))
  | _, _ -> Error (error_response 404 "no such route")

let stats_json t =
  let a = Admission.stats t.admission in
  let r = Registry.stats t.registry in
  let m =
    match t.mux with
    | Some m -> Mux.stats m
    | None ->
        {
          Mux.s_conns = 0;
          s_parked = 0;
          s_busy = 0;
          s_threads = 0;
          s_accepted = 0;
          s_shed = 0;
          s_emfile = 0;
          s_timeouts = 0;
          s_idle_closed = 0;
        }
  in
  Json.Obj
    [
      ("sessions", Json.of_int r.Registry.live);
      ("draining", Json.Bool (draining t));
      ("degraded", Json.Bool (degraded t));
      ("evicted", Json.of_int r.Registry.evicted);
      ("resumed", Json.of_int r.Registry.resumed);
      ("quarantined", Json.of_int r.Registry.quarantined);
      ("connections", Json.of_int m.Mux.s_conns);
      ("parked", Json.of_int m.Mux.s_parked);
      ("io_busy", Json.of_int m.Mux.s_busy);
      ("io_threads", Json.of_int (max 1 t.cfg.io_threads));
      ("threads", Json.of_int m.Mux.s_threads);
      ("accepted", Json.of_int m.Mux.s_accepted);
      ("shed_conns", Json.of_int m.Mux.s_shed);
      ("emfile", Json.of_int m.Mux.s_emfile);
      ("http_timeouts", Json.of_int m.Mux.s_timeouts);
      ("idle_conns_closed", Json.of_int m.Mux.s_idle_closed);
      ("requests", Json.of_int (Atomic.get t.requests));
      ("queued", Json.of_int a.Admission.queued);
      ("shed", Json.of_int a.Admission.shed);
      ("tripped", Json.of_int a.Admission.tripped);
      ("dispatched", Json.of_int a.Admission.dispatched);
      ("stalled", Json.of_int (Atomic.get t.stalled));
    ]

(* /healthz: a load balancer's (and the soak harness's) one-glance view —
   draining and degraded are the two states where sending more traffic
   here is a mistake.  Always 200: "unhealthy but alive" is for /stats. *)
let healthz_json t =
  let r = Registry.stats t.registry in
  Json.Obj
    [
      ("ok", Json.Bool ((not (draining t)) && not (degraded t)));
      ("draining", Json.Bool (draining t));
      ("degraded", Json.Bool (degraded t));
      ("sessions", Json.of_int r.Registry.live);
      ("evicted", Json.of_int r.Registry.evicted);
      ("stalled", Json.of_int (Atomic.get t.stalled));
    ]

let debug_sessions_json t =
  Json.Obj
    [
      ( "sessions",
        Json.Arr
          (List.map
             (fun (d : Registry.session_debug) ->
               Json.Obj
                 [
                   ("tenant", Json.Str d.Registry.sd_tenant);
                   ("id", Json.Str d.Registry.sd_id);
                   ("engine", Json.Str d.Registry.sd_engine);
                   ("done", Json.Bool d.Registry.sd_done);
                   ("degraded", Json.Bool d.Registry.sd_degraded);
                   ("qid", Json.of_int d.Registry.sd_qid);
                   ("open_question", Json.Bool d.Registry.sd_open);
                   ("questions", Json.of_int d.Registry.sd_questions);
                   ("replayed", Json.of_int d.Registry.sd_replayed);
                   ("journal_bytes", Json.of_int d.Registry.sd_journal_bytes);
                   ("idle_s", Json.Num d.Registry.sd_idle_s);
                 ])
             (Registry.debug_sessions t.registry)) );
    ]

let debug_tenants_json t =
  Json.Obj
    [
      ( "tenants",
        Json.Arr
          (List.map
             (fun (d : Admission.tenant_debug) ->
               Json.Obj
                 [
                   ("tenant", Json.Str d.Admission.td_tenant);
                   ("queued", Json.of_int d.Admission.td_queued);
                   ("breaker", Json.Str d.Admission.td_breaker);
                   ( "live_sessions",
                     Json.of_int
                       (Registry.tenant_count t.registry d.Admission.td_tenant)
                   );
                 ])
             (Admission.debug_tenants t.admission)) );
    ]

let debug_slow_json t =
  let entries =
    Mutex.protect t.slow_mu (fun () ->
        let n = Array.length t.slow_ring in
        let out = ref [] in
        (* Oldest first from the ring, so the accumulated list is newest
           first. *)
        for i = 0 to n - 1 do
          match t.slow_ring.((t.slow_pos + i) mod n) with
          | Some e -> out := e :: !out
          | None -> ()
        done;
        !out)
  in
  Json.Obj
    [
      ("slow_ms", Json.Num t.cfg.slow_ms);
      ( "requests",
        Json.Arr
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("trace", Json.Str e.sl_trace);
                   ("route", Json.Str e.sl_route);
                   ("tenant", Json.Str e.sl_tenant);
                   ("status", Json.of_int e.sl_status);
                   ("ms", Json.Num e.sl_ms);
                   ("at", Json.Num e.sl_at);
                 ])
             entries) );
    ]

let handle t (req : Http.request) =
  Atomic.incr t.requests;
  if Telemetry.enabled () then Telemetry.Metrics.incr m_requests;
  let parts = split_path req.path in
  match (req.meth, parts) with
  | "GET", [ "healthz" ] -> json_response 200 (healthz_json t)
  | "GET", [ "stats" ] -> json_response 200 (stats_json t)
  | "GET", [ "metrics" ] ->
      {
        Http.status = 200;
        headers = [ ("Content-Type", "text/plain; version=0.0.4") ];
        (* Process-wide since-boot metrics (PR3 registry) followed by the
           labeled, sliding-window series — one scrape gets both. *)
        body =
          Telemetry.Metrics.metrics_prometheus () ^ Obs.Labeled.prometheus ();
      }
  | "GET", [ "debug"; sub ] when t.cfg.debug_endpoints -> (
      match sub with
      | "sessions" -> json_response 200 (debug_sessions_json t)
      | "tenants" -> json_response 200 (debug_tenants_json t)
      | "slow" -> json_response 200 (debug_slow_json t)
      | "flightrecorder" ->
          {
            Http.status = 200;
            headers = [ ("Content-Type", "application/json") ];
            body = Obs.Recorder.dump_json ();
          }
      | _ -> error_response 404 "no such debug endpoint")
  | _ ->
      let tenant = tenant_of req in
      if draining t then
        error_response
          ~headers:(retry_after_headers (Admission.retry_suggestion t.admission))
          503 "draining: not admitting session work"
      else
        let body =
          if req.body = "" then Ok (Json.Obj []) else Json.parse req.body
        in
        let outcome =
          match session_job t ~tenant req parts body with
          | Error resp -> resp
          | Ok (id, run) -> (
              let key = tenant ^ "/" ^ id in
              match Admission.submit t.admission ~tenant ~key run with
              | Admission.Enqueued job -> Admission.wait job
              | Admission.Shed ra ->
                  if Telemetry.enabled () then Telemetry.Metrics.incr m_shed;
                  error_response ~headers:(retry_after_headers ra) 503
                    "overloaded: admission queue is full"
              | Admission.Tripped ra ->
                  if Telemetry.enabled () then
                    Telemetry.Metrics.incr m_tripped;
                  error_response ~headers:(retry_after_headers ra) 429
                    "tenant breaker open: too many malformed requests"
              | Admission.Draining ra ->
                  error_response ~headers:(retry_after_headers ra) 503
                    "draining: not admitting session work")
        in
        (match outcome.Http.status with
        | 400 | 404 | 405 | 409 ->
            if Telemetry.enabled () then Telemetry.Metrics.incr m_faults;
            Admission.fault t.admission ~tenant
        | s when s < 400 -> Admission.ok t.admission ~tenant
        | _ -> ());
        (* 507 is only ever minted from an ENOSPC ([Error.Storage full]):
           the disk is out of room, flip read-only until the probe heals. *)
        if outcome.Http.status = 507 then enter_degraded t;
        outcome

(* ------------------------------------------------------------------ *)
(* Request handler (runs on a mux worker thread)                       *)
(* ------------------------------------------------------------------ *)

(* The mux hands over a complete, parsed request; this wrapper owns the
   request's trace id — a well-formed inbound X-Learnq-Trace is honored
   (so a client or proxy can stitch its own ids through), one is minted
   otherwise.  Installed on the worker thread for the whole request;
   captured into the admission job for the pool hop; echoed back in the
   response header either way. *)
let request_handler t (req : Http.request) =
  let trace =
    match Http.header "x-learnq-trace" req with
    | Some id when Obs.Trace.valid id -> id
    | _ -> Obs.Trace.mint ()
  in
  Obs.Trace.set (Some trace);
  let route = route_label req.meth (split_path req.path) in
  let tenant = tenant_of req in
  let seq = track_inflight t ~trace ~route ~tenant in
  let t0 = Unix.gettimeofday () in
  let resp =
    Obs.Recorder.with_span
      ~detail:(req.meth ^ " " ^ req.path)
      "http.request"
      (fun () ->
        match handle t req with
        | resp -> resp
        | exception exn ->
            error_response 500 ("internal error: " ^ Printexc.to_string exn))
  in
  let dur = Unix.gettimeofday () -. t0 in
  untrack_inflight t seq;
  observe_request t ~trace ~route ~tenant ~status:resp.Http.status ~dur;
  Obs.Trace.set None;
  if Telemetry.enabled () then Telemetry.Metrics.observe m_request_s dur;
  { resp with Http.headers = ("X-Learnq-Trace", trace) :: resp.Http.headers }

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                          *)
(* ------------------------------------------------------------------ *)

(* The dispatcher owns all session mutation: it pulls key-disjoint batches
   and runs each batch across the pool — "one domain per batch of
   sessions".  On one core this still wins: a session blocked in [fsync]
   releases the runtime lock while another session's determined-scan
   computes. *)
let dispatcher t pool () =
  let batch_size = max 1 (Core.Pool.size pool * 2) in
  let rec loop () =
    let batch =
      Admission.take_batch t.admission ~max:batch_size ~block:true
    in
    (match batch with
    | [] -> ()
    | batch ->
        let results =
          Core.Pool.map_list pool
            (fun (job : Admission.job) ->
              (* Re-install the submitting request's trace on this pool
                 domain: journal fsyncs, vfs faults, and error bodies
                 produced inside the job all stamp the same id the client
                 saw in its X-Learnq-Trace header. *)
              let go () =
                Obs.Recorder.with_span ~detail:job.Admission.key "serve.job"
                  (fun () ->
                    match job.Admission.run () with
                    | resp -> resp
                    | exception exn ->
                        error_response 500
                          ("internal error: " ^ Printexc.to_string exn))
              in
              match job.Admission.trace with
              | Some id -> Obs.Trace.with_trace id go
              | None -> go ())
            batch
        in
        List.iter2 Admission.finish batch results;
        (* Eviction rides the batch boundary: the dispatcher owns all
           session mutation, so right here no stepper is mid-answer and a
           checkpoint+close cannot race a step. *)
        if not (draining t) then ignore (Registry.evict_idle t.registry);
        if Telemetry.enabled () then
          Telemetry.Metrics.set g_sessions
            (float_of_int (Registry.count t.registry)));
    if draining t && Admission.pending t.admission = 0 then ()
    else loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve t =
  let cfg = t.cfg in
  let pool = Core.Pool.create (max 1 cfg.pool) in
  let recovered, errors = Registry.recover_all t.registry ~pool in
  if Telemetry.enabled () then begin
    if recovered > 0 || errors <> [] then
      Telemetry.Log.info
        ~kv:
          [
            ("recovered", string_of_int recovered);
            ("errors", string_of_int (List.length errors));
          ]
        "state directory recovery"
  end;
  List.iter
    (fun (f, e) ->
      if Telemetry.enabled () then
        Telemetry.Log.warn
          ~kv:[ ("journal", f); ("error", Error.to_string e) ]
          "unresumable journal left in place")
    errors;
  let listen_result =
    match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | fd -> (
        try
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          let addr = Unix.inet_addr_of_string cfg.host in
          Unix.bind fd (Unix.ADDR_INET (addr, cfg.port));
          Unix.listen fd 128;
          let port =
            match Unix.getsockname fd with
            | Unix.ADDR_INET (_, p) -> p
            | _ -> cfg.port
          in
          Ok (fd, port)
        with
        | Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error (Unix.error_message e)
        | Failure msg ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error msg)
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  match listen_result with
  | Error _ as e ->
      Core.Pool.shutdown pool;
      e
  | Ok (listen_fd, port) ->
      cfg.on_listen port;
      let disp = Thread.create (dispatcher t pool) () in
      (* The heal probe and the stall watchdog piggyback on the mux loop's
         tick so they run even when no requests arrive; throttled to
         ~1/s. *)
      let last_probe = ref 0. in
      let tick () =
        let now = Unix.gettimeofday () in
        if now -. !last_probe >= 1.0 then begin
          last_probe := now;
          probe_disk t;
          watchdog t
        end
      in
      let mux =
        Mux.create
          {
            Mux.io_threads = max 1 cfg.io_threads;
            max_conns = cfg.max_conns;
            max_idle_conns =
              (if cfg.max_idle_conns <= 0 then max_int
               else cfg.max_idle_conns);
            request_deadline = cfg.request_deadline;
            drain_grace = cfg.drain_grace;
            max_head = 16 * 1024;
            max_body = 1024 * 1024;
            handler = (fun req -> request_handler t req);
            keep_alive =
              (fun req _ ->
                (not (draining t))
                && Http.header "connection" req <> Some "close");
            draining = (fun () -> draining t);
            tick;
            accept_fn = (fun fd -> Unix.accept fd);
          }
      in
      t.mux <- Some mux;
      (* The mux runs on this thread until drain completes: it stops
         accepting, closes idle connections, lets in-flight requests
         finish (the dispatcher keeps executing the queued backlog
         concurrently), and force-closes stragglers after [drain_grace]. *)
      Mux.run mux ~listen_fd;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Thread.join disp;
      Registry.drain t.registry;
      Core.Pool.shutdown pool;
      Ok ()
