(* The hot-path performance pass (PR 4): incremental LGG, memoized
   characteristics, the hash-consed containment cache, and the multicore
   determined-scan, measured end-to-end on the interactive learn-twig
   session that BENCH_PR3 profiled ([twig.lgg] was 62% of wall time there).

   Every configuration plays the *same* deterministic session — the
   ablation switches and the pool size change how fast the answers are
   computed, never which questions are asked; [questions_agree] in the
   output asserts it.  The baseline configuration restores the PR 3 code
   paths exactly: batch refold per answer and per probe, no characteristic
   memo, no containment cache, sequential scan.

   Results go to BENCH_PR4.json — machine-readable, for the CI artifact and
   the >= 2x learn-twig speedup gate (target 3x). *)

module T = Core.Telemetry

let time f =
  let t0 = Core.Monotonic.now () in
  let x = f () in
  (x, Core.Monotonic.now () -. t0)

let reps = 5
let warmup = 2

let median xs =
  let a = List.sort compare xs in
  List.nth a (List.length a / 2)

(* ------------------------------------------------------------------ *)
(* Workload: the BENCH_PR3 learn-twig session                          *)
(* ------------------------------------------------------------------ *)

let twig_workload () =
  let doc = Benchkit.Xmark.generate ~scale:1.0 ~seed:1 () in
  let goal = Twig.Parse.query "//person[profile/education]/name" in
  let items = Twiglearn.Interactive.items_of_doc doc in
  let oracle it = Core.Flaky.Label (Twig.Eval.selects_example goal it) in
  fun () ->
    let o =
      Twiglearn.Interactive.Loop.run_flaky ~rng:(Core.Prng.create 1) ~oracle
        ~items ()
    in
    o.Twiglearn.Interactive.Loop.questions

(* ------------------------------------------------------------------ *)
(* Configurations                                                      *)
(* ------------------------------------------------------------------ *)

type config = {
  c_name : string;
  c_batch : bool;  (* refold the positives per answer/probe (PR 3 path) *)
  c_caches : bool;  (* characteristic memo + containment cache *)
  c_pool : int;  (* determined-scan lanes *)
  c_xmlstore : bool;  (* index-backed evaluator (PR 9) vs tree walk *)
}

(* The PR 4 rows keep the tree-walk evaluator — "baseline" restores the
   PR 3 code paths exactly, and the speedup gate compares against the same
   ladder it always has.  The xmlstore row stacks the PR 9 index-backed
   evaluator on top of the best PR 4 configuration; at this document scale
   the session is learner-bound (see bench pr9), so its contribution here
   is visibility, not the gate. *)
let configs =
  [
    { c_name = "baseline"; c_batch = true; c_caches = false; c_pool = 1;
      c_xmlstore = false };
    { c_name = "incremental"; c_batch = false; c_caches = true; c_pool = 1;
      c_xmlstore = false };
    { c_name = "incremental+pool2"; c_batch = false; c_caches = true;
      c_pool = 2; c_xmlstore = false };
    { c_name = "incremental+pool4"; c_batch = false; c_caches = true;
      c_pool = 4; c_xmlstore = false };
    { c_name = "incremental+xmlstore"; c_batch = false; c_caches = true;
      c_pool = 1; c_xmlstore = true };
  ]

let apply c =
  Twiglearn.Interactive.set_batch_lgg c.c_batch;
  Twiglearn.Positive.set_char_cache c.c_caches;
  Twig.Contain.set_filter_cache ~enabled:c.c_caches ();
  Twig.Eval.set_xmlstore c.c_xmlstore;
  Core.Pool.set_default_size c.c_pool

let restore_defaults () =
  Twiglearn.Interactive.set_batch_lgg false;
  Twiglearn.Positive.set_char_cache true;
  Twig.Contain.set_filter_cache ~enabled:true ();
  Twig.Eval.set_xmlstore true;
  Core.Pool.set_default_size 1

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type span_line = { s_name : string; s_count : int; s_total : float; s_self : float }

type result = {
  r_config : config;
  r_questions : int;
  r_median_s : float;
  r_lgg_spans : span_line list;  (* twig.lgg / twig.lgg.inc aggregates *)
  r_lgg_calls : int;  (* batch refolds *)
  r_inc_calls : int;  (* incremental merges *)
  r_char_hits : int;
  r_char_misses : int;
  r_contain_hits : int;
  r_contain_misses : int;
}

let counter_value name = T.Metrics.counter_value (T.Metrics.counter name)

let measure run c =
  apply c;
  (* Timed reps run with telemetry disabled — we are measuring the engine,
     not the instrumentation (BENCH_PR3's subject). *)
  T.set_enabled false;
  let questions = ref 0 in
  for _ = 1 to warmup do
    questions := run ()
  done;
  let median_s =
    median
      (List.init reps (fun _ ->
           let q, dt = time run in
           questions := q;
           dt))
  in
  (* One instrumented run for the span/counter evidence: where did the
     [twig.lgg] self-time go? *)
  T.reset ();
  T.set_enabled true;
  ignore (run ());
  if Sys.getenv_opt "LEARNQ_PR4_SPANS" <> None then begin
    Printf.printf "pr4: spans for %s:\n" c.c_name;
    List.iteri
      (fun i (name, count, total, self) ->
        if i < 12 then
          Printf.printf "pr4:   %-28s n=%-6d total %7.1f ms, self %7.1f ms\n"
            name count (total *. 1e3) (self *. 1e3))
      (T.span_aggregates ())
  end;
  let lgg_spans =
    T.span_aggregates ()
    |> List.filter_map (fun (s_name, s_count, s_total, s_self) ->
           if s_name = "twig.lgg" || s_name = "twig.lgg.inc" then
             Some { s_name; s_count; s_total; s_self }
           else None)
  in
  let r =
    {
      r_config = c;
      r_questions = !questions;
      r_median_s = median_s;
      r_lgg_spans = lgg_spans;
      r_lgg_calls = counter_value "learnq.twiglearn.lgg_calls";
      r_inc_calls = counter_value "learnq.twiglearn.lgg_inc_calls";
      r_char_hits = counter_value "learnq.twiglearn.char_cache_hits";
      r_char_misses = counter_value "learnq.twiglearn.char_cache_misses";
      r_contain_hits = counter_value "learnq.twig.contain_cache_hits";
      r_contain_misses = counter_value "learnq.twig.contain_cache_misses";
    }
  in
  T.reset ();
  T.set_enabled false;
  restore_defaults ();
  r

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let output = "BENCH_PR4.json"

let span_json s =
  Printf.sprintf
    {|        { "name": %S, "count": %d, "total_s": %.6f, "self_s": %.6f }|}
    s.s_name s.s_count s.s_total s.s_self

let result_json ~baseline_s r =
  Printf.sprintf
    {|    { "config": %S, "batch_lgg": %b, "caches": %b, "pool": %d,
      "xmlstore": %b,
      "questions": %d, "median_s": %.6f, "speedup": %.2f,
      "lgg_refolds": %d, "lgg_incremental_merges": %d,
      "char_cache": { "hits": %d, "misses": %d },
      "contain_cache": { "hits": %d, "misses": %d },
      "lgg_spans": [
%s
      ] }|}
    r.r_config.c_name r.r_config.c_batch r.r_config.c_caches r.r_config.c_pool
    r.r_config.c_xmlstore r.r_questions r.r_median_s
    (if r.r_median_s > 0. then baseline_s /. r.r_median_s else 0.)
    r.r_lgg_calls r.r_inc_calls r.r_char_hits r.r_char_misses r.r_contain_hits
    r.r_contain_misses
    (String.concat ",\n" (List.map span_json r.r_lgg_spans))

let run () =
  let run_session = twig_workload () in
  let results = List.map (measure run_session) configs in
  let baseline =
    match results with r :: _ -> r | [] -> assert false
  in
  let baseline_s = baseline.r_median_s in
  let best =
    List.fold_left
      (fun acc r -> if r.r_median_s < acc.r_median_s then r else acc)
      baseline results
  in
  let speedup_best =
    if best.r_median_s > 0. then baseline_s /. best.r_median_s else 0.
  in
  let questions_agree =
    List.for_all (fun r -> r.r_questions = baseline.r_questions) results
  in
  let span_self name r =
    List.fold_left
      (fun acc s -> if s.s_name = name then acc +. s.s_self else acc)
      0. r.r_lgg_spans
  in
  let json =
    Printf.sprintf
      {|{
  "bench": "pr4_hot_path",
  "generated_by": "dune exec bench/main.exe -- pr4",
  "workload": "learn-twig, xmark scale 1.0 seed 1, //person[profile/education]/name",
  "reps_per_point": %d,
  "warmup_per_point": %d,
  "configs": [
%s
  ],
  "questions": %d,
  "questions_agree": %b,
  "baseline_s": %.6f,
  "best_config": %S,
  "speedup_twig": %.2f,
  "speedup_twig_ok": %b,
  "speedup_twig_target_3x": %b,
  "lgg_self_s_baseline": %.6f,
  "lgg_self_s_optimized": %.6f
}
|}
      reps warmup
      (String.concat ",\n" (List.map (result_json ~baseline_s) results))
      baseline.r_questions questions_agree baseline_s best.r_config.c_name
      speedup_best
      (questions_agree && speedup_best >= 2.0)
      (speedup_best >= 3.0)
      (span_self "twig.lgg" baseline)
      (span_self "twig.lgg.inc" best +. span_self "twig.lgg" best)
  in
  let oc = open_out output in
  output_string oc json;
  close_out oc;
  List.iter
    (fun r ->
      Printf.printf
        "pr4: %-18s %4d questions — %7.1f ms (%.2fx); %d refolds, %d merges\n"
        r.r_config.c_name r.r_questions (r.r_median_s *. 1e3)
        (if r.r_median_s > 0. then baseline_s /. r.r_median_s else 0.)
        r.r_lgg_calls r.r_inc_calls)
    results;
  Printf.printf "pr4: best %s at %.2fx (gate >= 2x: %b); wrote %s\n"
    best.r_config.c_name speedup_best
    (questions_agree && speedup_best >= 2.0)
    output
