module Journal = Core.Journal
module Budget = Core.Budget
module Flaky = Core.Flaky
module Error = Core.Error

type view = {
  engine : string;
  done_ : bool;
  degraded : bool;
  qid : int;
  question : string option;
  question_text : string option;
  questions : int;
  replayed : int;
  pruned : int;
  refused : int;
  query : string option;
}

type peeked = {
  p_engine : string;
  p_done : bool;
  p_degraded : bool;
  p_qid : int;
  p_open : bool;
  p_questions : int;
  p_replayed : int;
  p_pruned : int;
  p_refused : int;
}

type t = {
  view : unit -> view;
  peek : unit -> peeked;
  answer : qid:int -> Core.Flaky.reply -> (view, Core.Error.t) result;
  checkpoint : unit -> (unit, Core.Error.t) result;
  flush : unit -> unit;
  close : unit -> unit;
  abort : unit -> unit;
}

module Make (S : Core.Interact.SESSION) = struct
  type internal = {
    engine : string;
    encode : S.item -> string;
    journal : Journal.t option;
    step_budget : unit -> Budget.t;
    snapshot : (S.state -> string) option;
    checkpoint_every : int;  (** 0 = never automatically *)
    answered : (string, unit) Hashtbl.t;  (** labeled item keys *)
    mutable answered_rev : string list;  (** same keys, newest first *)
    mutable since_ck : int;  (** labels since the last checkpoint *)
    mutable st : S.state;
    mutable pool : S.item list;  (** unasked items, original order *)
    mutable current : (int * S.item) option;
    mutable qid : int;  (** count of Asked records ever (incl. replayed) *)
    mutable questions : int;
    mutable replayed : int;
    mutable pruned : int;
    mutable refused : int;
    mutable done_ : bool;
    mutable degraded : bool;
  }

  let jappend i ev =
    match i.journal with None -> () | Some j -> Journal.append j ev

  (* Counter-only snapshot for the introspection endpoints: no journal
     touch, no self-heal advance, no candidate rendering — safe to call
     from the accept loop while the dispatcher owns the session, at the
     price of weak consistency (plain reads of mutable scalars). *)
  let peek i =
    {
      p_engine = i.engine;
      p_done = i.done_;
      p_degraded = i.degraded;
      p_qid = i.qid;
      p_open = i.current <> None;
      p_questions = i.questions;
      p_replayed = i.replayed;
      p_pruned = i.pruned;
      p_refused = i.refused;
    }

  let view i =
    {
      engine = i.engine;
      done_ = i.done_;
      degraded = i.degraded;
      qid = i.qid;
      question = Option.map (fun (_, it) -> i.encode it) i.current;
      question_text =
        Option.map (fun (_, it) -> Format.asprintf "%a" S.pp_item it) i.current;
      questions = i.questions;
      replayed = i.replayed;
      pruned = i.pruned;
      refused = i.refused;
      query =
        Option.map (Format.asprintf "%a" S.pp_query) (S.candidate i.st);
    }

  (* Advance to the next open question: prune determined items, pick the
     first informative one (pool order — deterministic, so a crash/resume
     re-derives the same question sequence), journal the ask.  Mirrors the
     [Interact.Make] loop body exactly. *)
  let advance i =
    if not (i.done_ || i.current <> None) then begin
      let b = i.step_budget () in
      match
        List.partition
          (fun it ->
            Budget.tick b;
            S.determined i.st it = None)
          i.pool
      with
      | exception Budget.Out_of_budget ->
          (* Terminal degradation: keep the candidate so far; no
             [Completed] record, so the journal stays resumable under a
             bigger budget. *)
          i.done_ <- true;
          i.degraded <- true
      | opens, determined ->
          i.pruned <- i.pruned + List.length determined;
          i.pool <- opens;
          (match opens with
          | [] ->
              jappend i Journal.Completed;
              (match i.journal with None -> () | Some j -> Journal.flush j);
              i.done_ <- true
          | item :: _ ->
              (* The ask is journaled before it is exposed; when storage
                 refuses the record the question rolls back whole (item
                 still pooled, qid unbumped), so a later advance re-derives
                 the same question instead of wedging the session. *)
              i.qid <- i.qid + 1;
              (try jappend i (Journal.Asked (i.encode item))
               with e ->
                 i.qid <- i.qid - 1;
                 raise e);
              i.pool <- List.filter (fun it -> it != item) opens;
              i.current <- Some (i.qid, item);
              Core.Obs.Recorder.record
                ~detail:(Printf.sprintf "%s qid=%d" i.engine i.qid)
                "session.asked")
    end

  (* Snapshot the accumulator and atomically compact the journal down to
     header + checkpoint.  Callable at any point — including with a question
     in flight: the open [Asked] would be erased by compaction, so it is
     excluded from [ck_qid] and re-appended afterwards, keeping the resumed
     qid sequence identical to the uninterrupted one.  (Should that
     re-append fail, resume still re-derives the same question
     deterministically from the pool — it just re-journals the ask.)  On
     failure the old journal and the live session are untouched. *)
  let take_checkpoint i =
    match (i.journal, i.snapshot) with
    | Some j, Some snap -> (
        let open_key = Option.map (fun (_, it) -> i.encode it) i.current in
        let ck =
          {
            Journal.ck_qid = (i.qid - if open_key = None then 0 else 1);
            ck_questions = i.questions + i.replayed;
            ck_pruned = i.pruned;
            ck_refused = i.refused;
            ck_answered = List.rev i.answered_rev;
            ck_state = snap i.st;
          }
        in
        match Journal.compact j ck with
        | Error _ as e -> e
        | Ok () -> (
            i.since_ck <- 0;
            match open_key with
            | None -> Ok ()
            | Some key -> (
                try
                  Journal.append j (Journal.Asked key);
                  Ok ()
                with Journal.Io e -> Error e)))
    | _ -> Ok () (* no journal or no state codec: nothing to compact *)

  let answer i ~qid reply =
    match i.current with
    | Some (cq, item) when qid = cq -> (
        try
          jappend i (Journal.Answered (i.encode item, reply));
          Core.Obs.Recorder.record
            ~detail:(Printf.sprintf "%s qid=%d" i.engine qid)
            "session.answered";
          (match reply with
          | Flaky.Label label ->
              i.st <- S.record i.st item label;
              i.questions <- i.questions + 1;
              let key = i.encode item in
              if not (Hashtbl.mem i.answered key) then begin
                Hashtbl.replace i.answered key ();
                i.answered_rev <- key :: i.answered_rev
              end;
              i.since_ck <- i.since_ck + 1
          | Flaky.Refused | Flaky.Timed_out ->
              (* Set aside for this run; a resume puts it back in the pool,
                 exactly as [Interact.run_flaky] replay does. *)
              i.refused <- i.refused + 1);
          i.current <- None;
          (* Periodic compaction rides on the answer that crossed the
             threshold; its storage error (ENOSPC above all) surfaces as
             this answer's error — the answer itself is journaled and
             applied, so the client's retry is an idempotent no-op. *)
          let ck_result =
            if
              i.checkpoint_every > 0
              && i.since_ck >= i.checkpoint_every
              && not i.done_
            then take_checkpoint i
            else Ok ()
          in
          match ck_result with
          | Error _ as e -> e
          | Ok () ->
              advance i;
              Ok (view i)
        with Journal.Io e -> Error e)
    | Some (cq, _) when qid < cq -> Ok (view i) (* duplicate: no-op *)
    | None when qid <= i.qid -> Ok (view i) (* late duplicate: no-op *)
    | _ ->
        Error
          (Error.invalid_input ~what:"qid"
             (Printf.sprintf
                "answer for question %d but only %d have been asked" qid i.qid))

  let make ?journal ?(resume = []) ?step_budget ?(checkpoint_every = 0)
      ?snapshot ?restore ~engine ~encode ~decode ~items () =
    let step_budget =
      match step_budget with Some f -> f | None -> Budget.unlimited
    in
    let i =
      {
        engine;
        encode;
        journal;
        step_budget;
        snapshot;
        checkpoint_every;
        answered = Hashtbl.create 64;
        answered_rev = [];
        since_ck = 0;
        st = S.init items;
        pool = items;
        current = None;
        qid = 0;
        questions = 0;
        replayed = 0;
        pruned = 0;
        refused = 0;
        done_ = false;
        degraded = false;
      }
    in
    let decode_or_fail key =
      match decode key with
      | Some it -> Ok it
      | None ->
          Error
            (Error.invalid_input ~what:"journal"
               (Printf.sprintf "undecodable replay item %S for engine %s" key
                  engine))
    in
    (* Restore-then-replay: the last checkpoint (if any) replaces replaying
       from record zero — the engine decodes its state snapshot, counters
       and answered keys come back verbatim — and only the events after it
       are folded.  [pruned]/[refused] restart at zero exactly as a plain
       replay leaves them: the next [advance] re-derives pruned from the
       remaining pool (determination is monotone, so the recount equals the
       uninterrupted cumulative count), and refused items are back in the
       pool awaiting another chance. *)
    let ck, tail =
      let rec split ck tail = function
        | [] -> (ck, List.rev tail)
        | Journal.Checkpoint c :: rest -> split (Some c) [] rest
        | ev :: rest -> split ck (ev :: tail) rest
      in
      split None [] resume
    in
    let restored =
      match ck with
      | None -> Ok ()
      | Some c -> (
          match restore with
          | None ->
              Error
                (Error.invalid_input ~what:"journal"
                   (Printf.sprintf
                      "journal has a checkpoint but engine %s provides no \
                       state decoder"
                      engine))
          | Some restore_state -> (
              match restore_state c.Journal.ck_state with
              | Error msg ->
                  Error
                    (Error.invalid_input ~what:"journal"
                       ("undecodable checkpoint state: " ^ msg))
              | Ok st ->
                  i.st <- st;
                  i.qid <- c.Journal.ck_qid;
                  i.replayed <- c.Journal.ck_questions;
                  List.iter
                    (fun key ->
                      if not (Hashtbl.mem i.answered key) then begin
                        Hashtbl.replace i.answered key ();
                        i.answered_rev <- key :: i.answered_rev
                      end)
                    c.Journal.ck_answered;
                  Ok ()))
    in
    match restored with
    | Error _ as e -> e
    | Ok () -> (
        (* Replay the tail: labeled answers rebuild the state (duplicates are
           idempotent no-ops); refused/timed-out items stay in the pool; a
           trailing [Asked] with no [Answered] is the open question, re-posed
           without re-journaling. *)
        let rec replay pending = function
          | [] -> Ok pending
          | Journal.Asked key :: rest ->
              i.qid <- i.qid + 1;
              replay (Some key) rest
          | Journal.Answered (key, reply) :: rest -> (
              match reply with
              | Flaky.Refused | Flaky.Timed_out -> replay None rest
              | Flaky.Label label ->
                  if Hashtbl.mem i.answered key then replay None rest
                  else (
                    Hashtbl.replace i.answered key ();
                    i.answered_rev <- key :: i.answered_rev;
                    match decode_or_fail key with
                    | Error _ as e -> e
                    | Ok it ->
                        i.st <- S.record i.st it label;
                        i.replayed <- i.replayed + 1;
                        replay None rest))
          | Journal.Checkpoint _ :: rest ->
              (* Cannot appear after the split above; ignore defensively. *)
              replay None rest
          | Journal.Completed :: rest ->
              i.done_ <- true;
              replay None rest
        in
        match replay None tail with
        | Error _ as e -> e
        | Ok pending -> (
            if Hashtbl.length i.answered > 0 then
              i.pool <-
                List.filter
                  (fun it -> not (Hashtbl.mem i.answered (encode it)))
                  i.pool;
            let finish () =
              match
                if i.current = None && not i.done_ then advance i
              with
              | exception Journal.Io e -> Error e
              | () ->
                  Ok
                    {
                      view =
                        (fun () ->
                          (* Self-heal a rolled-back ask: once the disk
                             accepts records again, the next poll re-derives
                             the question. *)
                          if i.current = None && not i.done_ then
                            (try advance i with Journal.Io _ -> ());
                          view i);
                      peek = (fun () -> peek i);
                      answer = (fun ~qid reply -> answer i ~qid reply);
                      checkpoint = (fun () -> take_checkpoint i);
                      flush =
                        (fun () ->
                          (* Best-effort durability nudge between batches; a
                             failing flush keeps its buffer and the next
                             answer surfaces the storage error properly. *)
                          match i.journal with
                          | None -> ()
                          | Some j -> (
                              try Journal.flush j with Journal.Io _ -> ()));
                      close =
                        (fun () ->
                          match i.journal with
                          | None -> ()
                          | Some j -> (
                              try Journal.close j with Journal.Io _ -> ()));
                      abort =
                        (fun () ->
                          match i.journal with
                          | None -> ()
                          | Some j -> Journal.abort j);
                    }
              in
            match pending with
            | Some _ when i.done_ -> finish ()
            | Some key -> (
                match decode_or_fail key with
                | Error _ as e -> e
                | Ok it ->
                    (* The crash lost the answer in flight: re-pose the same
                       question under its original qid.  The [Asked] record is
                       already on disk — appending another would double-count. *)
                    i.pool <- List.filter (fun it' -> encode it' <> key) i.pool;
                    i.current <- Some (i.qid, it);
                    finish ())
            | None -> finish ()))
end
