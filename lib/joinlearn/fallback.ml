type outcome = {
  theta : Signature.mask;
  degraded : bool;
  training_errors : int;
  ignored : int;
  spent : Core.Budget.stats;
}

let learn ?budget space examples =
  let budget =
    match budget with Some b -> b | None -> Core.Budget.unlimited ()
  in
  let exact =
    Core.Budget.run budget (fun () ->
        Core.Budget.tick ~cost:(List.length examples) budget;
        Join.learn space examples)
  in
  match exact with
  | Core.Budget.Done (Some theta) ->
      {
        theta;
        degraded = false;
        training_errors = 0;
        ignored = 0;
        spent = Core.Budget.stats budget;
      }
  (* Inconsistent sample or budget trip: maximize agreement instead. *)
  | Core.Budget.Done None | Core.Budget.Exhausted _ ->
      let r = Robust.learn ~budget space examples in
      {
        theta = r.theta;
        degraded = true;
        training_errors = r.training_errors;
        ignored = r.ignored;
        spent = Core.Budget.stats budget;
      }
