(** Disjunctive multiplicity expressions (DMEs).

    A DME constrains the {e multiset} of labels of a node's children — the
    order-oblivious schema formalism the paper introduces for unordered XML.
    It is a disjunction of clauses; a clause is an unordered concatenation of
    atoms [label^multiplicity] over distinct labels.  A multiset [w]
    satisfies a clause when, for every atom [a^m], the count of [a] in [w]
    satisfies [m], and [w] contains no label outside the clause.  [w]
    satisfies the DME when it satisfies some clause.

    A DME is {e disjunction-free} when it has exactly one clause — the
    restriction for which the paper obtains PTIME query satisfiability and
    implication. *)

type clause = (string * Multiplicity.t) list
(** Sorted by label; labels distinct. *)

type t = clause list
(** Non-empty list of clauses. *)

val clause : (string * Multiplicity.t) list -> clause
(** Sorts and validates distinctness.  @raise Invalid_argument on duplicate
    labels. *)

val empty_clause : clause
(** Satisfied exactly by the empty multiset (leaves only). *)

val make : clause list -> t
(** @raise Invalid_argument on the empty list. *)

val disjunction_free : t -> bool

module Labels : module type of Core.Multiset.Make (String)

val satisfies_clause : clause -> Labels.t -> bool
val satisfies : t -> Labels.t -> bool

val alphabet : t -> string list
(** Labels mentioned, sorted, distinct. *)

val size : t -> int
(** Total number of atoms. *)

val parse : string -> t
(** Grammar: clauses separated by [|]; atoms separated by spaces; atom =
    label with optional suffix [? + *]; the empty clause is written
    [eps].  Example: ["name price? bidder* | closed"].
    @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
