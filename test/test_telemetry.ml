(* Tests for Core.Telemetry: the zero-cost disabled path, counter/gauge
   semantics, log-scale histogram percentiles (including every edge case the
   exporters rely on), span nesting and exception safety, exporter output,
   and the journal's group-commit sync policies. *)

module T = Core.Telemetry

(* Telemetry state is global; every test runs against a clean, enabled
   registry and leaves telemetry disabled for the next one. *)
let with_telemetry f =
  T.reset ();
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      T.reset ();
      T.set_enabled false)
    f

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

let test_counter_disabled_is_noop () =
  T.reset ();
  T.set_enabled false;
  let c = T.Metrics.counter "test.noop" in
  T.Metrics.incr c;
  T.Metrics.incr c ~by:100;
  Alcotest.(check int) "disabled incr does nothing" 0 (T.Metrics.counter_value c)

let test_counter_incr () =
  with_telemetry @@ fun () ->
  let c = T.Metrics.counter "test.counter" in
  T.Metrics.incr c;
  T.Metrics.incr c ~by:41;
  Alcotest.(check int) "incr and incr ~by accumulate" 42
    (T.Metrics.counter_value c);
  Alcotest.(check bool) "registration is idempotent" true
    (T.Metrics.counter_value (T.Metrics.counter "test.counter") = 42)

let test_reset_keeps_registrations () =
  with_telemetry @@ fun () ->
  let c = T.Metrics.counter "test.reset" in
  T.Metrics.incr c ~by:7;
  T.reset ();
  T.set_enabled true;
  Alcotest.(check int) "reset zeroes the value" 0 (T.Metrics.counter_value c);
  T.Metrics.incr c;
  Alcotest.(check int) "the handle still works" 1 (T.Metrics.counter_value c)

let test_gauge () =
  with_telemetry @@ fun () ->
  let g = T.Metrics.gauge "test.gauge" in
  T.Metrics.set g 3.5;
  T.Metrics.set g 2.5;
  Alcotest.(check (float 1e-9)) "last set wins" 2.5 (T.Metrics.gauge_value g)

(* ------------------------------------------------------------------ *)
(* Histogram percentiles: the edge cases                               *)
(* ------------------------------------------------------------------ *)

let test_hist_empty () =
  with_telemetry @@ fun () ->
  let h = T.Metrics.histogram "test.hist.empty" in
  Alcotest.(check int) "count" 0 (T.Metrics.hist_count h);
  Alcotest.(check (float 1e-12)) "sum" 0. (T.Metrics.hist_sum h);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "empty percentile p=%g" p)
        0.
        (T.Metrics.percentile h p))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_hist_single_sample () =
  with_telemetry @@ fun () ->
  let h = T.Metrics.histogram "test.hist.single" in
  T.Metrics.observe h 0.042;
  (* The [min,max] clamp makes a single sample exact at every quantile,
     not bucket-quantized. *)
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "single sample exact at p=%g" p)
        0.042
        (T.Metrics.percentile h p))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

let test_hist_all_equal () =
  with_telemetry @@ fun () ->
  let h = T.Metrics.histogram "test.hist.equal" in
  for _ = 1 to 1000 do
    T.Metrics.observe h 7.25
  done;
  Alcotest.(check int) "count" 1000 (T.Metrics.hist_count h);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "all-equal exact at p=%g" p)
        7.25
        (T.Metrics.percentile h p))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_hist_extreme_p () =
  with_telemetry @@ fun () ->
  let h = T.Metrics.histogram "test.hist.extremes" in
  List.iter (T.Metrics.observe h) [ 0.001; 0.01; 0.1; 1.0; 10.0 ];
  Alcotest.(check (float 1e-12)) "p<=0 is the exact minimum" 0.001
    (T.Metrics.percentile h 0.0);
  Alcotest.(check (float 1e-12)) "negative p clamps to the minimum" 0.001
    (T.Metrics.percentile h (-1.0));
  Alcotest.(check (float 1e-12)) "p>=1 is the exact maximum" 10.0
    (T.Metrics.percentile h 1.0);
  Alcotest.(check (float 1e-12)) "p>1 clamps to the maximum" 10.0
    (T.Metrics.percentile h 2.0)

let test_hist_bucket_boundaries () =
  with_telemetry @@ fun () ->
  let h = T.Metrics.histogram "test.hist.bounds" in
  (* Below the first bucket's lower bound (and zero): both land in bucket 0,
     whose midpoint (1e-9) lies above every sample — the [min,max] clamp pulls
     the estimate back inside the observed range. *)
  T.Metrics.observe h 0.;
  T.Metrics.observe h 1e-12;
  Alcotest.(check (float 1e-15)) "sub-bucket estimate clamped into range" 1e-12
    (T.Metrics.percentile h 0.5);
  Alcotest.(check (float 1e-15)) "p=0 still the exact minimum" 0.
    (T.Metrics.percentile h 0.0);
  (* Beyond the last bucket: lands in the overflow bucket, max stays exact. *)
  let h2 = T.Metrics.histogram "test.hist.overflow" in
  T.Metrics.observe h2 1e40;
  Alcotest.(check (float 1e25)) "overflow value reported via max clamp" 1e40
    (T.Metrics.percentile h2 0.5)

let test_hist_accuracy () =
  with_telemetry @@ fun () ->
  let h = T.Metrics.histogram "test.hist.accuracy" in
  for i = 1 to 100 do
    T.Metrics.observe h (float_of_int i)
  done;
  (* 2 buckets per octave: a bucket spans a factor of sqrt 2, so the reported
     midpoint is within sqrt 2 of the true quantile. *)
  let p50 = T.Metrics.percentile h 0.5 in
  let lo = 50. /. sqrt 2. and hi = 50. *. sqrt 2. in
  Alcotest.(check bool)
    (Printf.sprintf "p50=%g within one bucket factor of 50" p50)
    true
    (p50 >= lo && p50 <= hi);
  Alcotest.(check (float 1e-9)) "sum" 5050. (T.Metrics.hist_sum h)

let test_hist_disabled_is_noop () =
  T.reset ();
  T.set_enabled false;
  let h = T.Metrics.histogram "test.hist.disabled" in
  T.Metrics.observe h 1.0;
  Alcotest.(check int) "disabled observe does nothing" 0
    (T.Metrics.hist_count h)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_telemetry @@ fun () ->
  let inner_parent = ref None in
  let result =
    T.with_span "outer" (fun () ->
        let outer_id = T.current_span_id () in
        T.with_span "inner" (fun () -> inner_parent := outer_id);
        17)
  in
  Alcotest.(check int) "with_span is transparent" 17 result;
  Alcotest.(check int) "both spans recorded" 2 (T.span_count ());
  Alcotest.(check bool) "inner saw outer open" true (!inner_parent <> None);
  Alcotest.(check bool) "no span open afterwards" true
    (T.current_span_id () = None);
  let names = List.map (fun (n, _, _, _) -> n) (T.span_aggregates ()) in
  Alcotest.(check bool) "aggregates hold both names" true
    (List.mem "outer" names && List.mem "inner" names)

exception Boom

let test_span_closes_on_exception () =
  with_telemetry @@ fun () ->
  (match T.with_span "raises" (fun () -> raise Boom) with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Boom -> ());
  Alcotest.(check int) "span closed despite the raise" 1 (T.span_count ());
  Alcotest.(check bool) "stack unwound" true (T.current_span_id () = None)

let test_span_disabled_records_nothing () =
  T.reset ();
  T.set_enabled false;
  let r = T.with_span "off" (fun () -> 5) in
  Alcotest.(check int) "transparent when disabled" 5 r;
  Alcotest.(check int) "nothing recorded" 0 (T.span_count ())

let test_span_aggregate_self_time () =
  with_telemetry @@ fun () ->
  T.with_span "parent" (fun () -> T.with_span "child" (fun () -> ()));
  let find n =
    List.find (fun (name, _, _, _) -> name = n) (T.span_aggregates ())
  in
  let _, _, p_total, p_self = find "parent" in
  let _, _, c_total, _ = find "child" in
  Alcotest.(check bool) "self excludes the child" true
    (p_self <= p_total -. c_total +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let test_trace_json () =
  with_telemetry @@ fun () ->
  T.set_context [ ("seed", "7") ];
  T.with_span "traced.work" (fun () -> ());
  let json = T.trace_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("trace has " ^ needle) true
        (contains ~needle json))
    [ "\"traceEvents\""; "\"traced.work\""; "\"ph\":\"X\""; "\"seed\""; "otherData" ]

let test_metrics_exports () =
  with_telemetry @@ fun () ->
  T.set_context [ ("seed", "9") ];
  let c = T.Metrics.counter "test.export.hits" in
  T.Metrics.incr c ~by:3;
  let h = T.Metrics.histogram "test.export.lat_s" in
  T.Metrics.observe h 0.25;
  let json = T.Metrics.metrics_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true
        (contains ~needle json))
    [ "\"test.export.hits\": 3"; "\"test.export.lat_s\""; "\"seed\": \"9\"" ];
  let prom = T.Metrics.metrics_prometheus () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prom has " ^ needle) true
        (contains ~needle prom))
    [
      "test_export_hits 3";
      "# TYPE test_export_hits counter";
      "quantile=\"0.5\"";
      "learnq_run_info";
    ]

(* ------------------------------------------------------------------ *)
(* Logging                                                             *)
(* ------------------------------------------------------------------ *)

let with_log_buffer f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let saved = T.Log.level () in
  T.Log.set_formatter ppf;
  Fun.protect
    ~finally:(fun () ->
      T.Log.set_level saved;
      T.Log.set_formatter Format.err_formatter)
    (fun () ->
      f ();
      Format.pp_print_flush ppf ();
      Buffer.contents buf)

let test_log_levels () =
  let out =
    with_log_buffer (fun () ->
        T.Log.set_level (Some T.Warn);
        T.Log.debug "hidden debug";
        T.Log.info "hidden info";
        T.Log.warn ~kv:[ ("k", "v") ] "visible warning";
        T.Log.error "visible error")
  in
  Alcotest.(check bool) "debug suppressed at warn" false
    (contains ~needle:"hidden debug" out);
  Alcotest.(check bool) "info suppressed at warn" false
    (contains ~needle:"hidden info" out);
  Alcotest.(check bool) "warn emitted" true
    (contains ~needle:"visible warning" out);
  Alcotest.(check bool) "key=value rendered" true (contains ~needle:"k=v" out);
  Alcotest.(check bool) "error emitted" true
    (contains ~needle:"visible error" out)

let test_log_quiet () =
  let out =
    with_log_buffer (fun () ->
        T.Log.set_level None;
        T.Log.error "nothing at all")
  in
  Alcotest.(check string) "level None silences everything" "" out

let test_level_of_string () =
  Alcotest.(check bool) "warn parses" true
    (T.level_of_string "warn" = Some T.Warn);
  Alcotest.(check bool) "DEBUG parses" true
    (T.level_of_string "DEBUG" = Some T.Debug);
  Alcotest.(check bool) "junk rejected" true (T.level_of_string "loud" = None)

(* ------------------------------------------------------------------ *)
(* Journal sync policies (group commit)                                *)
(* ------------------------------------------------------------------ *)

let with_temp f =
  let path = Filename.temp_file "learnq_telemetry" ".wal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let file_size path = (Unix.stat path).Unix.st_size

let header = { Core.Journal.seed = 5; engine = "learn-test"; config = "c" }

let test_batch_buffers_until_flush () =
  with_temp (fun path ->
      let j = Core.Journal.create ~sync:Core.Journal.Batch ~path header in
      let after_header = file_size path in
      (* Fewer than the group size: stays in the write buffer. *)
      for i = 1 to 3 do
        Core.Journal.append j (Core.Journal.Asked (string_of_int i))
      done;
      Alcotest.(check int) "records below the group size are buffered"
        after_header (file_size path);
      Core.Journal.flush j;
      Alcotest.(check bool) "flush writes them out" true
        (file_size path > after_header);
      Core.Journal.close j;
      let r =
        match Core.Journal.recover ~path with
        | Ok r -> r
        | Error e -> Alcotest.failf "recover: %s" (Core.Error.to_string e)
      in
      Alcotest.(check int) "all records survive" 3 (List.length r.events))

let test_batch_group_boundary () =
  with_temp (fun path ->
      let j = Core.Journal.create ~sync:Core.Journal.Batch ~path header in
      let after_header = file_size path in
      (* Exactly one group: the 8th append forces the write. *)
      for i = 1 to 8 do
        Core.Journal.append j (Core.Journal.Asked (string_of_int i))
      done;
      Alcotest.(check bool) "a full group is written without close" true
        (file_size path > after_header);
      (* A crash here (no close) must still see the full group. *)
      let r =
        match Core.Journal.recover ~path with
        | Ok r -> r
        | Error e -> Alcotest.failf "recover: %s" (Core.Error.to_string e)
      in
      Alcotest.(check int) "the whole group is durable" 8
        (List.length r.events);
      Core.Journal.close j)

let test_batch_flushes_on_completed () =
  with_temp (fun path ->
      let j = Core.Journal.create ~sync:Core.Journal.Batch ~path header in
      Core.Journal.append j (Core.Journal.Asked "x");
      Core.Journal.append j Core.Journal.Completed;
      (* Completed is a durability milestone: visible before close. *)
      let r =
        match Core.Journal.recover ~path with
        | Ok r -> r
        | Error e -> Alcotest.failf "recover: %s" (Core.Error.to_string e)
      in
      Alcotest.(check bool) "completed record flushed" true
        (List.mem Core.Journal.Completed r.events);
      Core.Journal.close j)

let test_sync_policy_recorded_in_header () =
  List.iter
    (fun sync ->
      with_temp (fun path ->
          let j = Core.Journal.create ~sync ~path header in
          Core.Journal.append j (Core.Journal.Asked "q");
          Core.Journal.close j;
          match Core.Journal.recover ~path with
          | Error e -> Alcotest.failf "recover: %s" (Core.Error.to_string e)
          | Ok r ->
              Alcotest.(check bool) "header fields survive" true
                (r.header = Some header);
              Alcotest.(check string)
                ("policy " ^ Core.Journal.sync_to_string sync ^ " recorded")
                (Core.Journal.sync_to_string sync)
                (Core.Journal.sync_to_string r.recorded_sync)))
    [ Core.Journal.Always; Core.Journal.Batch; Core.Journal.Off ]

(* A journal written before the sync-policy field existed: header payload
   without the trailing "sync=…" token must decode with [Always]. *)
let test_old_header_defaults_to_always () =
  let le32 v =
    let b = Bytes.create 4 in
    for i = 0 to 3 do
      Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xff))
    done;
    Bytes.to_string b
  in
  let frame payload =
    le32 (String.length payload) ^ le32 (Core.Journal.crc32 payload) ^ payload
  in
  let bytes = "LQJRNL1\n" ^ frame "H42\x00learn-old\x00k=3" ^ frame "?item" in
  match Core.Journal.parse ~source:"old" bytes with
  | Error e -> Alcotest.failf "old journal rejected: %s" (Core.Error.to_string e)
  | Ok r ->
      Alcotest.(check bool) "header decodes" true
        (r.header
        = Some { Core.Journal.seed = 42; engine = "learn-old"; config = "k=3" });
      Alcotest.(check string) "missing policy field means always" "always"
        (Core.Journal.sync_to_string r.recorded_sync);
      Alcotest.(check int) "events decode" 1 (List.length r.events)

let test_resume_keeps_recorded_policy () =
  with_temp (fun path ->
      let j = Core.Journal.create ~sync:Core.Journal.Batch ~path header in
      Core.Journal.append j (Core.Journal.Asked "q");
      Core.Journal.close j;
      match Core.Journal.resume ~path () with
      | Error e -> Alcotest.failf "resume: %s" (Core.Error.to_string e)
      | Ok (j2, r) ->
          Alcotest.(check string) "recovered policy is batch" "batch"
            (Core.Journal.sync_to_string r.recorded_sync);
          (* The resumed writer batches too: a single append stays pending. *)
          let before = file_size path in
          Core.Journal.append j2 (Core.Journal.Asked "more");
          Alcotest.(check int) "resumed writer buffers like the original"
            before (file_size path);
          Core.Journal.close j2;
          Alcotest.(check bool) "close flushes it" true
            (file_size path > before))

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter disabled" `Quick
            test_counter_disabled_is_noop;
          Alcotest.test_case "counter incr" `Quick test_counter_incr;
          Alcotest.test_case "reset keeps registrations" `Quick
            test_reset_keeps_registrations;
          Alcotest.test_case "gauge" `Quick test_gauge;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single sample" `Quick test_hist_single_sample;
          Alcotest.test_case "all equal" `Quick test_hist_all_equal;
          Alcotest.test_case "p=0 and p=1" `Quick test_hist_extreme_p;
          Alcotest.test_case "bucket boundaries" `Quick
            test_hist_bucket_boundaries;
          Alcotest.test_case "accuracy" `Quick test_hist_accuracy;
          Alcotest.test_case "disabled" `Quick test_hist_disabled_is_noop;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "closes on exception" `Quick
            test_span_closes_on_exception;
          Alcotest.test_case "disabled" `Quick
            test_span_disabled_records_nothing;
          Alcotest.test_case "self time" `Quick test_span_aggregate_self_time;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "trace json" `Quick test_trace_json;
          Alcotest.test_case "metrics json + prometheus" `Quick
            test_metrics_exports;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels" `Quick test_log_levels;
          Alcotest.test_case "quiet" `Quick test_log_quiet;
          Alcotest.test_case "level parsing" `Quick test_level_of_string;
        ] );
      ( "journal sync",
        [
          Alcotest.test_case "batch buffers" `Quick
            test_batch_buffers_until_flush;
          Alcotest.test_case "group boundary" `Quick test_batch_group_boundary;
          Alcotest.test_case "completed flushes" `Quick
            test_batch_flushes_on_completed;
          Alcotest.test_case "policy recorded" `Quick
            test_sync_policy_recorded_in_header;
          Alcotest.test_case "old header" `Quick
            test_old_header_defaults_to_always;
          Alcotest.test_case "resume keeps policy" `Quick
            test_resume_keeps_recorded_policy;
        ] );
    ]
