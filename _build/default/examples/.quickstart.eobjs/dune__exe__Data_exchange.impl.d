examples/data_exchange.ml: Automata Benchkit Core Exchange Format Fun Graphdb Joinlearn List Option Pathlearn Printf Relational String Twig Twiglearn Xmltree
