(* The fuzzing harness tested on itself: generator determinism, greedy
   shrinking, artifact round-trips, and — the acceptance demonstration — a
   deliberately injected engine bug (disabling the probe memo's
   negative-prefix recheck) being caught by the [interact-batch] oracle and
   minimized to a counterexample of at most five document nodes. *)

let find name =
  match Fuzz.Oracle.find name with
  | Some o -> o
  | None -> Alcotest.failf "oracle %s not registered" name

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let once () =
    let g = Core.Prng.create 12345 in
    let doc = Fuzz.Gen.xml_tree g ~size:12 in
    let q = Fuzz.Gen.twig g ~size:6 in
    Xmltree.Print.to_xml doc ^ "\n" ^ Twig.Query.to_string q
  in
  Alcotest.(check string) "same seed, same values" (once ()) (once ())

let test_gen_tree_size () =
  let g = Core.Prng.create 5 in
  for size = 1 to 30 do
    let t = Fuzz.Gen.tree g ~size in
    Alcotest.(check int) "exact node count" size (Xmltree.Tree.size t)
  done

let test_gen_twig_wellformed () =
  let g = Core.Prng.create 11 in
  for size = 1 to 20 do
    let q = Fuzz.Gen.anchored_twig g ~size in
    Alcotest.(check bool)
      "anchored generator stays in the fragment" true
      (Twig.Query.is_anchored q);
    (* and it survives its own concrete syntax *)
    match Twig.Parse.query_result (Twig.Query.to_string q) with
    | Ok q' ->
        Alcotest.(check bool) "parses back" true (Twig.Query.equal q q')
    | Error e -> Alcotest.failf "unparseable: %s" (Core.Error.to_string e)
  done

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let test_shrink_string () =
  let still_failing s = String.contains s 'x' in
  let shrunk, steps =
    Fuzz.Shrink.minimize ~candidates:Fuzz.Shrink.string_ ~still_failing
      "aaaaxbbbbccccdddd"
  in
  Alcotest.(check string) "minimal witness" "x" shrunk;
  Alcotest.(check bool) "took steps" true (steps > 0)

let test_shrink_tree_preserves_failure () =
  (* Failure: the document contains a [b] node.  The minimum is the
     one-node tree [b]. *)
  let still_failing t =
    Xmltree.Tree.all_paths t
    |> List.exists (fun p ->
           match Xmltree.Tree.node_at t p with
           | Some n -> n.Xmltree.Tree.label = "b"
           | None -> false)
  in
  let g = Core.Prng.create 3 in
  let rec doc_with_b () =
    let t = Fuzz.Gen.tree g ~size:20 in
    if still_failing t then t else doc_with_b ()
  in
  let shrunk, _ =
    Fuzz.Shrink.minimize ~candidates:Fuzz.Shrink.tree ~still_failing
      (doc_with_b ())
  in
  Alcotest.(check int) "single node" 1 (Xmltree.Tree.size shrunk);
  Alcotest.(check bool) "still fails" true (still_failing shrunk)

(* ------------------------------------------------------------------ *)
(* Artifacts                                                           *)
(* ------------------------------------------------------------------ *)

let test_artifact_roundtrip () =
  let a =
    {
      Fuzz.Artifact.oracle = "eval-cache";
      seed = 123456789;
      size = 7;
      steps = 3;
      shrunk_size = 2;
      reason = "it: broke";
      input = "doc: a(b)\ngoal: //b\n";
    }
  in
  match Fuzz.Artifact.of_string (Fuzz.Artifact.to_string a) with
  | Ok a' -> Alcotest.(check bool) "fields survive" true (a = a')
  | Error e -> Alcotest.failf "artifact did not parse back: %s" e

let test_oracle_registry () =
  let names = List.map Fuzz.Oracle.name Fuzz.Oracle.all in
  Alcotest.(check int)
    "names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool)
    "find hits" true
    (Option.is_some (Fuzz.Oracle.find "roundtrip-xml"));
  Alcotest.(check bool)
    "find misses" true
    (Option.is_none (Fuzz.Oracle.find "no-such-oracle"))

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let test_runner_green () =
  let report =
    Fuzz.Runner.run
      ~oracles:[ find "roundtrip-twig"; find "roundtrip-csv" ]
      ~iters:100 ~seed:7 ()
  in
  Alcotest.(check int) "no counterexamples" 0
    (List.length report.counterexamples);
  List.iter
    (fun (s : Fuzz.Runner.stats) ->
      Alcotest.(check int) (s.oracle ^ " ran all cases") 100 s.runs)
    report.stats

let test_runner_budget () =
  let budget = Core.Budget.create ~fuel:5 () in
  let report =
    Fuzz.Runner.run ~oracles:[ find "roundtrip-twig" ] ~budget ~iters:100
      ~seed:7 ()
  in
  Alcotest.(check bool) "interrupted" true report.interrupted;
  Alcotest.(check bool)
    "ran at most the budget" true
    ((List.hd report.stats).runs <= 5)

(* Parallel dispatch must not perturb the per-oracle PRNG streams: the
   report (stats in oracle order, counterexamples, interruption flag) is
   identical whatever [jobs] is. *)
let test_runner_jobs_deterministic () =
  let oracles =
    [ find "roundtrip-twig"; find "roundtrip-csv"; find "xmlstore-eval" ]
  in
  let run jobs = Fuzz.Runner.run ~oracles ~jobs ~iters:25 ~seed:11 () in
  let r1 = run 1 in
  List.iter
    (fun jobs ->
      let r = run jobs in
      Alcotest.(check bool)
        (Printf.sprintf "report at jobs=%d equals jobs=1" jobs)
        true (r = r1))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Acceptance demo: an injected engine bug is caught and minimized      *)
(* ------------------------------------------------------------------ *)

(* Disable the probe memo's recheck of negatives recorded since an entry
   was cached (the staleness protection the memo's survived-count exists
   for).  The [interact-batch] differential oracle — batch-refold sessions
   versus incremental sessions must ask byte-identical question sequences —
   catches the fault within a few dozen cases, and the counterexample
   minimizes to a document of at most five nodes. *)
let test_injected_probe_bug_caught () =
  Twiglearn.Interactive.set_probe_recheck false;
  let report =
    Fun.protect
      ~finally:(fun () -> Twiglearn.Interactive.set_probe_recheck true)
      (fun () ->
        Fuzz.Runner.run
          ~oracles:[ find "interact-batch" ]
          ~iters:100 ~seed:7 ())
  in
  match report.counterexamples with
  | [ { artifact; _ } ] ->
      Alcotest.(check bool)
        "caught before exhausting the case budget" true
        ((List.hd report.stats).runs < 100);
      Alcotest.(check bool)
        (Printf.sprintf "minimized to <= 5 doc nodes (got %d)"
           artifact.shrunk_size)
        true
        (artifact.shrunk_size <= 5);
      (* With the fault still injected the artifact reproduces the bug ... *)
      Twiglearn.Interactive.set_probe_recheck false;
      (Fun.protect
         ~finally:(fun () -> Twiglearn.Interactive.set_probe_recheck true)
       @@ fun () ->
       match Fuzz.Runner.replay artifact with
       | `Failed _ -> ()
       | `Passed -> Alcotest.fail "artifact does not reproduce the fault"
       | `Unknown_oracle o -> Alcotest.failf "unknown oracle %s" o);
      (* ... and with the engine repaired it replays green. *)
      (match Fuzz.Runner.replay artifact with
      | `Passed -> ()
      | `Failed r -> Alcotest.failf "still failing after repair: %s" r
      | `Unknown_oracle o -> Alcotest.failf "unknown oracle %s" o)
  | [] -> Alcotest.fail "injected probe-recheck bug was not caught"
  | _ -> Alcotest.fail "expected exactly one counterexample"

(* A healthy engine passes the same oracle on the same seeds — the demo
   above fails because of the injected fault, not the harness. *)
let test_probe_oracle_green_when_healthy () =
  let report =
    Fuzz.Runner.run ~oracles:[ find "interact-batch" ] ~iters:40 ~seed:7 ()
  in
  Alcotest.(check int) "no counterexamples" 0
    (List.length report.counterexamples)

let () =
  Alcotest.run "fuzz"
    [
      ( "generators",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "tree size" `Quick test_gen_tree_size;
          Alcotest.test_case "anchored twig" `Quick test_gen_twig_wellformed;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "string minimal witness" `Quick
            test_shrink_string;
          Alcotest.test_case "tree minimal witness" `Quick
            test_shrink_tree_preserves_failure;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "roundtrip" `Quick test_artifact_roundtrip;
          Alcotest.test_case "oracle registry" `Quick test_oracle_registry;
        ] );
      ( "runner",
        [
          Alcotest.test_case "green run" `Quick test_runner_green;
          Alcotest.test_case "budget interrupt" `Quick test_runner_budget;
          Alcotest.test_case "jobs determinism" `Quick
            test_runner_jobs_deterministic;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "injected probe bug caught and minimized" `Quick
            test_injected_probe_bug_caught;
          Alcotest.test_case "oracle green when healthy" `Quick
            test_probe_oracle_green_when_healthy;
        ] );
    ]
