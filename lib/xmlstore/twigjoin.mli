(** Holistic twig evaluation over a labeled store.

    Every pattern node draws its candidates from the store's inverted name
    list (document order), and structure is enforced by merge-style
    structural joins on the containment labels — no tree walk, no
    per-query memo matrix:

    - filters are reduced bottom-up with {e semijoins}: an ancestor/parent
      list is filtered to the entries that own a witness in the child
      list, by a two-pointer interval scan (descendant) or a
      generation-stamped parent mark (child);
    - the spine is chained top-down with a TwigStack-style stack of open
      containment intervals, so each step is one linear merge of the
      context list against the next name stream.

    Complexity is O(sum of the touched posting lists) per query instead of
    O(|q|·|t|·depth).  Results are preorder-ascending node ids — exactly
    the order the tree-walk evaluator produces, so the two are
    differentially comparable element for element. *)

val select_array : Store.t -> Pattern.t -> int array
(** Matching node ids, ascending.  Raises [Invalid_argument] on an empty
    spine. *)

val select_ids : Store.t -> Pattern.t -> int list

val select_paths : Store.t -> Pattern.t -> Xmltree.Tree.path list
(** {!select_ids} mapped through {!Store.path_of_id}. *)
