lib/twig/parse.mli: Query
