(* Storage-robustness bench (PR 7): the disk-fault axis of the chaos
   harness, orthogonal to PR6's SIGKILL axis.

   Part A — checkpoint economics: a long path session (>= 1000 journal
   records) is resumed twice, once by full replay and once from a
   checkpointed + compacted journal.  Reports the compaction ratio and the
   resume speedup; the speedup gates at >= 5x (the path codec rebuilds the
   accumulator with one batch [Words.learn] instead of one per record).

   Part B — evicted-resume latency: sessions pushed out of a small
   [max_live] window by LRU eviction are resurrected on demand; per-resume
   latency is reported as p50/p99.

   Part C — disk-fault soak: many sessions driven through a small live
   window on a faulty Vfs (1% ENOSPC / EIO / short writes, torn tails at
   crash), with two in-process crash+recover cycles mid-run.  Gates: zero
   lost sessions (every query equals the uninterrupted reference) and zero
   quarantines, since none of the injected faults corrupts records in
   place.

   Results land in BENCH_PR7.json; the soak-smoke CI lane greps the
   gates. *)

module Engines = Server.Engines
module Registry = Server.Registry
module Stepper = Server.Stepper
module Json = Server.Json

let now = Core.Monotonic.now
let trials = 3 (* best-of-N for the resume timings *)
let long_min_answers = 500 (* the >= 1k-record floor of the speedup gate *)
let evict_sessions_n = 48
let evict_window = 4
let soak_window = 8
let soak_stride = 3 (* answers per session per soak round *)

let soak_sessions_n =
  match Sys.getenv_opt "LEARNQ_SOAK_SESSIONS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 60)
  | None -> 60

(* ------------------------------------------------------------------ *)
(* Plumbing                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_dir prefix f =
  let path = Filename.temp_file prefix ".d" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun e ->
             try Sys.remove (Filename.concat path e) with Sys_error _ -> ())
           (Sys.readdir path)
       with Sys_error _ -> ());
      try Unix.rmdir path with Unix.Unix_error _ -> ())
    (fun () -> f path)

let registry ?(vfs = Core.Vfs.real) ?(checkpoint_every = 0) ?(max_live = 0)
    ~dir ~sync () =
  Registry.create
    {
      Registry.dir;
      sync;
      (* The soak parks hundreds of sessions behind the eviction window
         under one tenant; only [max_live] are ever live, but admission
         counts them all, so the quota must clear the fleet size. *)
      tenants =
        Server.Tenant.make
          ~default:(Server.Tenant.quota ~max_sessions:10_000 ())
          [];
      step_fuel = None;
      step_timeout = None;
      vfs;
      checkpoint_every;
      max_live;
      idle_evict_after = 0.;
    }

let truth_of spec goal =
  match Engines.oracle spec ~goal with
  | Ok f -> f
  | Error e -> failwith ("storage bench: bad goal: " ^ Core.Error.to_string e)

(* Deliver up to [stop_after] replies from [client], retrying on injected
   storage faults (the view is re-read each round, so a retry always
   answers the current question).  Returns replies delivered and the
   final query. *)
let drive_client ?(stop_after = max_int) ?(fault_budget = 0) faults st client =
  let rec go n budget =
    let v = st.Stepper.view () in
    if v.Stepper.done_ || n >= stop_after then (n, v.Stepper.query)
    else
      match v.Stepper.question with
      | None -> (n, v.Stepper.query)
      | Some key -> (
          match st.Stepper.answer ~qid:v.Stepper.qid (client key) with
          | Ok _ -> go (n + 1) budget
          | Error (Core.Error.Storage _) when budget > 0 ->
              incr faults;
              go n (budget - 1)
          | Error e ->
              failwith ("storage bench: answer: " ^ Core.Error.to_string e))
  in
  go 0 fault_budget

let drive ?stop_after ?fault_budget faults st truth =
  drive_client ?stop_after ?fault_budget faults st (fun key ->
      Core.Flaky.Label (truth key))

let journal_path dir =
  match
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun e -> Filename.check_suffix e ".journal")
  with
  | [ name ] -> Filename.concat dir name
  | l ->
      failwith
        (Printf.sprintf "storage bench: expected one journal, found %d"
           (List.length l))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* ------------------------------------------------------------------ *)
(* Part A: compaction ratio and resume-from-checkpoint speedup         *)
(* ------------------------------------------------------------------ *)

(* The determined-scan prunes so aggressively (the paper's efficiency
   claim) that no session reaches 1000 records in one sitting — long
   journals come from long {e horizons}: a crowd that mostly declines,
   with every evict/resume cycle re-pooling the refused items and
   journaling a fresh Asked/Answered pair per decline.  That unbounded
   growth is the exact pathology checkpoints exist to contain, so the
   bench builds its long journal the same way, through the real API. *)
let refusal_cycles = 400
let refusals_per_cycle = 20

let recover_one ~dir ~sync =
  let reg = registry ~dir ~sync () in
  let pool = Core.Pool.create 1 in
  let recovered, errors =
    Fun.protect
      ~finally:(fun () -> Core.Pool.shutdown pool)
      (fun () -> Registry.recover_all reg ~pool)
  in
  (match errors with
  | [] -> ()
  | (f, e) :: _ ->
      failwith
        (Printf.sprintf "storage bench: recover %s: %s" f
           (Core.Error.to_string e)));
  if recovered <> 1 then failwith "storage bench: session lost";
  reg

let build_long_session ~dir spec truth =
  let sync = Core.Journal.Off in
  let reg = ref (registry ~dir ~sync ()) in
  (match Registry.create_session !reg ~tenant:"bench" ~id:"long" spec with
  | Ok _ -> ()
  | Error e -> failwith (Core.Error.to_string e));
  let delivered = ref 0 in
  for _ = 1 to refusal_cycles do
    let st = Option.get (Registry.find !reg ~tenant:"bench" ~id:"long") in
    let n, _ =
      drive_client ~stop_after:refusals_per_cycle (ref 0) st (fun _ ->
          Core.Flaky.Refused)
    in
    delivered := !delivered + n;
    Registry.drain !reg;
    reg := recover_one ~dir ~sync
  done;
  (* A patient labeler finally finishes the session. *)
  let st = Option.get (Registry.find !reg ~tenant:"bench" ~id:"long") in
  let n, _ = drive (ref 0) st truth in
  delivered := !delivered + n;
  Registry.drain !reg;
  !delivered

type part_a = {
  a_answers : int;
  a_records : int;
  a_bytes_before : int;
  a_bytes_after : int;
  a_ratio : float;
  a_full_ms : float;
  a_ck_ms : float;
  a_speedup : float;
}

(* Time the resume-on-demand path — a fresh registry resurrecting the
   session straight from its journal, exactly what a request hitting an
   evicted key pays.  Best of [trials]. *)
let time_resume ~dir ~sync =
  List.init trials (fun _ ->
      let reg = registry ~dir ~sync () in
      let t0 = now () in
      (match Registry.find_or_resume reg ~tenant:"bench" ~id:"long" with
      | Ok (Some _) -> ()
      | Ok None -> failwith "storage bench: long session lost"
      | Error e -> failwith (Core.Error.to_string e));
      let dt = now () -. t0 in
      Registry.drain reg;
      dt)
  |> List.fold_left min infinity

let run_part_a () =
  (* A small instance keeps the engine-generation cost (paid by both
     resume paths) negligible next to the replay cost the checkpoint
     skips. *)
  let spec =
    { Engines.engine = "path"; seed = 9; scale = 0.1; rows = 5; cities = 16 }
  in
  let truth = truth_of spec "highway*" in
  with_temp_dir "learnq-pr7-ck" (fun dir ->
      let sync = Core.Journal.Off in
      let answers = build_long_session ~dir spec truth in
      if answers < long_min_answers then
        failwith
          (Printf.sprintf
             "storage bench: long session delivered only %d replies" answers);
      let jp = journal_path dir in
      let bytes_before = (Unix.stat jp).Unix.st_size in
      let full_ms = 1000. *. time_resume ~dir ~sync in
      (* Checkpoint + compact through the stepper (the eviction path). *)
      let reg = registry ~dir ~sync () in
      (match Registry.find_or_resume reg ~tenant:"bench" ~id:"long" with
      | Ok (Some st) -> (
          match st.Stepper.checkpoint () with
          | Ok () -> ()
          | Error e ->
              failwith
                ("storage bench: checkpoint: " ^ Core.Error.to_string e))
      | Ok None -> failwith "storage bench: long session lost"
      | Error e -> failwith (Core.Error.to_string e));
      Registry.drain reg;
      let bytes_after = (Unix.stat jp).Unix.st_size in
      let ck_ms = 1000. *. time_resume ~dir ~sync in
      {
        a_answers = answers;
        a_records = 2 * answers;
        a_bytes_before = bytes_before;
        a_bytes_after = bytes_after;
        a_ratio = float_of_int bytes_before /. float_of_int (max 1 bytes_after);
        a_full_ms = full_ms;
        a_ck_ms = ck_ms;
        a_speedup = full_ms /. ck_ms;
      })

(* ------------------------------------------------------------------ *)
(* Part B: evicted-session resume latency                              *)
(* ------------------------------------------------------------------ *)

type sess = {
  id : string;
  spec : Engines.spec;
  truth : string -> bool;
  mutable ref_query : string option;
}

let mixed_sessions n =
  List.init n (fun i ->
      let engine = [| "twig"; "join"; "path" |].(i mod 3) in
      let spec =
        { Engines.engine; seed = 3000 + i; scale = 0.03; rows = 5; cities = 6 }
      in
      let goal =
        match engine with
        | "twig" -> "//person/name"
        | "join" -> "planted"
        | _ -> "highway*"
      in
      {
        id = Printf.sprintf "s%03d" i;
        spec;
        truth = truth_of spec goal;
        ref_query = None;
      })

let run_part_b () =
  let sess = mixed_sessions evict_sessions_n in
  with_temp_dir "learnq-pr7-evict" (fun dir ->
      let reg =
        registry ~checkpoint_every:4 ~max_live:evict_window ~dir
          ~sync:Core.Journal.Always ()
      in
      Fun.protect
        ~finally:(fun () -> Registry.drain reg)
        (fun () ->
          List.iter
            (fun s ->
              (match
                 Registry.create_session reg ~tenant:"bench" ~id:s.id s.spec
               with
              | Ok _ -> ()
              | Error e -> failwith (Core.Error.to_string e));
              let st =
                Option.get (Registry.find reg ~tenant:"bench" ~id:s.id)
              in
              ignore (drive ~stop_after:4 (ref 0) st s.truth);
              ignore (Registry.evict_idle reg))
            sess;
          (* Everything beyond the window is now cold: resume each one. *)
          let lats =
            List.filter_map
              (fun s ->
                let t0 = now () in
                match Registry.find_or_resume reg ~tenant:"bench" ~id:s.id with
                | Ok (Some _) ->
                    let dt = 1000. *. (now () -. t0) in
                    ignore (Registry.evict_idle reg);
                    Some dt
                | Ok None -> failwith "storage bench: evicted session lost"
                | Error e -> failwith (Core.Error.to_string e))
              sess
            |> Array.of_list
          in
          Array.sort compare lats;
          let stats = Registry.stats reg in
          (stats.Registry.evicted, stats.Registry.resumed,
           percentile lats 0.50, percentile lats 0.99)))

(* ------------------------------------------------------------------ *)
(* Part C: disk-fault soak                                             *)
(* ------------------------------------------------------------------ *)

type soak = {
  s_sessions : int;
  s_answers : int;
  s_faults_injected : int;
  s_faults_retried : int;
  s_crashes : int;
  s_quarantined : int;
  s_lost : int;
  s_mismatched : int;
}

(* CI points this at a workspace path so quarantined journals survive the
   run as uploadable artifacts; locally a temp dir is used. *)
let soak_dir f =
  match Sys.getenv_opt "LEARNQ_SOAK_STATE" with
  | Some d ->
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      f d
  | None -> with_temp_dir "learnq-pr7-soak" f

let run_soak () =
  let sess = mixed_sessions soak_sessions_n in
  (* Uninterrupted reference: the query every chaos run must converge to. *)
  let expected_answers =
    with_temp_dir "learnq-pr7-soak-ref" (fun dir ->
        let reg = registry ~dir ~sync:Core.Journal.Off () in
        Fun.protect
          ~finally:(fun () -> Registry.drain reg)
          (fun () ->
            List.fold_left
              (fun total s ->
                (match
                   Registry.create_session reg ~tenant:"bench" ~id:s.id s.spec
                 with
                | Ok _ -> ()
                | Error e -> failwith (Core.Error.to_string e));
                let st =
                  Option.get (Registry.find reg ~tenant:"bench" ~id:s.id)
                in
                let n, q = drive (ref 0) st s.truth in
                s.ref_query <- q;
                total + n)
              0 sess))
  in
  soak_dir (fun dir ->
      let vfs =
        Core.Vfs.faulty ~seed:42
          (Core.Flaky.disk ~enospc:0.01 ~eio:0.01 ~short_write:0.01 ~torn:0.5
             ())
      in
      let fresh () =
        registry ~vfs ~checkpoint_every:4 ~max_live:soak_window ~dir
          ~sync:Core.Journal.Always ()
      in
      let reg = ref (fresh ()) in
      let quarantined = ref 0 in
      let crashes = ref 0 in
      let retried = ref 0 in
      let answers = ref 0 in
      (* Crash the process and the disk together at ~1/3 and ~2/3 of the
         expected total progress, then recover on a fresh registry. *)
      let crash_points =
        ref [ expected_answers / 3; 2 * expected_answers / 3 ]
      in
      (* Per-registry counters are harvested just before the instance is
         discarded, and once more at the end. *)
      let note_quarantined () =
        quarantined := !quarantined + (Registry.stats !reg).Registry.quarantined
      in
      let crash_cycle () =
        incr crashes;
        note_quarantined ();
        Registry.crash !reg;
        Core.Vfs.crash vfs;
        reg := fresh ();
        let pool = Core.Pool.create 2 in
        let _, errors =
          Fun.protect
            ~finally:(fun () -> Core.Pool.shutdown pool)
            (fun () -> Registry.recover_all !reg ~pool)
        in
        (* recover_all reports quarantines as errors it survived; an
           injected ENOSPC/EIO just leaves that journal on disk for
           [find_or_resume] to pick up later.  Anything else is a bench
           failure. *)
        List.iter
          (fun (f, e) ->
            match e with
            | Core.Error.Corrupt_journal _ -> ()
            | Core.Error.Storage _ -> incr retried
            | e ->
                failwith
                  (Printf.sprintf "storage bench: recover %s: %s" f
                     (Core.Error.to_string e)))
          errors
      in
      let maybe_crash () =
        match !crash_points with
        | at :: rest when !answers >= at ->
            crash_points := rest;
            crash_cycle ()
        | _ -> ()
      in
      let retry_transient f =
        let rec go attempts =
          match f () with
          | Ok v -> v
          | Error (Core.Error.Storage _) when attempts < 100 ->
              incr retried;
              go (attempts + 1)
          | Error e -> failwith (Core.Error.to_string e)
        in
        go 0
      in
      (* Create everything, then drive in strides through the window. *)
      List.iter
        (fun s ->
          ignore
            (retry_transient (fun () ->
                 Registry.create_session !reg ~tenant:"bench" ~id:s.id s.spec));
          ignore (Registry.evict_idle !reg))
        sess;
      let rec rounds live =
        match live with
        | [] -> ()
        | live ->
            let still =
              List.filter
                (fun s ->
                  let st =
                    retry_transient (fun () ->
                        match
                          Registry.find_or_resume !reg ~tenant:"bench" ~id:s.id
                        with
                        | Ok (Some st) -> Ok st
                        | Ok None ->
                            failwith "storage bench: session lost mid-soak"
                        | Error e -> Error e)
                  in
                  let n, _ =
                    drive ~stop_after:soak_stride ~fault_budget:100 retried st
                      s.truth
                  in
                  answers := !answers + n;
                  ignore (Registry.evict_idle !reg);
                  maybe_crash ();
                  not (st.Stepper.view ()).Stepper.done_)
                live
            in
            rounds still
      in
      rounds sess;
      (* Verdict: every session alive, every query the reference one. *)
      let lost = ref 0 and mismatched = ref 0 in
      List.iter
        (fun s ->
          match
            retry_transient (fun () ->
                match Registry.find_or_resume !reg ~tenant:"bench" ~id:s.id with
                | (Ok _ | Error _) as r -> r)
          with
          | None -> incr lost
          | Some st ->
              let v = st.Stepper.view () in
              if v.Stepper.query <> s.ref_query then incr mismatched;
              ignore (Registry.evict_idle !reg))
        sess;
      note_quarantined ();
      Registry.drain !reg;
      {
        s_sessions = soak_sessions_n;
        s_answers = !answers;
        s_faults_injected = Core.Vfs.fault_count vfs;
        s_faults_retried = !retried;
        s_crashes = !crashes;
        s_quarantined = !quarantined;
        s_lost = !lost;
        s_mismatched = !mismatched;
      })

(* ------------------------------------------------------------------ *)

let run () =
  print_endline "== storage robustness: checkpoints, eviction, disk faults (PR 7) ==";
  let a = run_part_a () in
  Printf.printf
    "part A: %d answers (%d records), %d -> %d bytes (%.1fx), resume full \
     %.1f ms vs checkpoint %.1f ms (%.1fx)\n%!"
    a.a_answers a.a_records a.a_bytes_before a.a_bytes_after a.a_ratio
    a.a_full_ms a.a_ck_ms a.a_speedup;
  let evicted, resumed, p50, p99 = run_part_b () in
  Printf.printf
    "part B: %d sessions through a %d-slot window: %d evictions, %d \
     resumes, resume p50 %.2f ms, p99 %.2f ms\n%!"
    evict_sessions_n evict_window evicted resumed p50 p99;
  let s = run_soak () in
  Printf.printf
    "part C: %d sessions, %d answers, %d faults injected (%d retried), %d \
     crashes, %d quarantined, %d lost, %d mismatched\n%!"
    s.s_sessions s.s_answers s.s_faults_injected s.s_faults_retried
    s.s_crashes s.s_quarantined s.s_lost s.s_mismatched;
  let speedup_ok = a.a_records >= 1000 && a.a_speedup >= 5.0 in
  let soak_ok =
    s.s_lost = 0 && s.s_mismatched = 0 && s.s_quarantined = 0
    && s.s_crashes = 2
    && s.s_faults_injected > 0
  in
  let j =
    Json.Obj
      [
        ("bench", Json.Str "storage-pr7");
        ("records", Json.of_int a.a_records);
        ("journal_bytes_before", Json.of_int a.a_bytes_before);
        ("journal_bytes_after", Json.of_int a.a_bytes_after);
        ("compaction_ratio", Json.Num a.a_ratio);
        ("resume_full_replay_ms", Json.Num a.a_full_ms);
        ("resume_from_checkpoint_ms", Json.Num a.a_ck_ms);
        ("resume_speedup", Json.Num a.a_speedup);
        ("resume_speedup_gate_5x", Json.Bool speedup_ok);
        ("evict_sessions", Json.of_int evict_sessions_n);
        ("evict_window", Json.of_int evict_window);
        ("evictions", Json.of_int evicted);
        ("resumes", Json.of_int resumed);
        ("evicted_resume_p50_ms", Json.Num p50);
        ("evicted_resume_p99_ms", Json.Num p99);
        ("soak_sessions", Json.of_int s.s_sessions);
        ("soak_answers", Json.of_int s.s_answers);
        ("soak_faults_injected", Json.of_int s.s_faults_injected);
        ("soak_faults_retried", Json.of_int s.s_faults_retried);
        ("soak_crashes", Json.of_int s.s_crashes);
        ("soak_quarantined", Json.of_int s.s_quarantined);
        ("soak_lost_sessions", Json.of_int s.s_lost);
        ("soak_mismatched_sessions", Json.of_int s.s_mismatched);
        ("soak_zero_lost", Json.Bool (s.s_lost = 0 && s.s_mismatched = 0));
        ("soak_quarantine_free", Json.Bool (s.s_quarantined = 0));
      ]
  in
  let oc = open_out "BENCH_PR7.json" in
  output_string oc (Json.to_string j);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_PR7.json (all green: %b)\n%!"
    (speedup_ok && soak_ok)
