type t = {
  space : Signature.space;
  right : Relational.Relation.tuple list;
}

let make left right =
  {
    space =
      Signature.space
        ~left_arity:(Relational.Relation.arity left)
        ~right_arity:(Relational.Relation.arity right);
    right = Relational.Relation.tuples right;
  }

let space ctx = ctx.space

let sigs_of ctx rt =
  List.map (fun st -> Signature.signature ctx.space rt st) ctx.right

let selects ctx theta rt =
  List.exists (fun s -> Signature.subset theta s) (sigs_of ctx rt)

type outcome = { theta : Signature.mask option; explored : int; complete : bool }

let consistent_exact ?(node_limit = 1_000_000) ctx labeled =
  let positives, negatives = List.partition snd labeled in
  let pos_sigs = List.map (fun (rt, _) -> sigs_of ctx rt) positives in
  let neg_sigs = List.concat_map (fun (rt, _) -> sigs_of ctx rt) negatives in
  let selects_negative theta =
    List.exists (fun s -> Signature.subset theta s) neg_sigs
  in
  let explored = ref 0 in
  let truncated = ref false in
  let visited = Hashtbl.create 1024 in
  (* DFS over witness choices: [theta] is the intersection of the witnesses
     chosen so far; it only shrinks, so selecting a negative is monotone and
     prunes the whole subtree. *)
  let rec search theta = function
    | [] -> Some theta
    | sigs :: rest ->
        if !explored >= node_limit then begin
          truncated := true;
          None
        end
        else if Hashtbl.mem visited (theta, List.length rest) then None
        else begin
          Hashtbl.add visited (theta, List.length rest) ();
          incr explored;
          List.find_map
            (fun s ->
              let theta' = Signature.inter theta s in
              if selects_negative theta' then None else search theta' rest)
            sigs
        end
  in
  let start = Signature.full ctx.space in
  (* The final verification also covers the positives-free case, where the
     search immediately returns [start]. *)
  let theta =
    match search start pos_sigs with
    | Some th when not (selects_negative th) -> Some th
    | _ -> None
  in
  { theta; explored = !explored; complete = not !truncated }

let consistent_greedy ctx labeled =
  let positives, negatives = List.partition snd labeled in
  let neg_sigs = List.concat_map (fun (rt, _) -> sigs_of ctx rt) negatives in
  let selects_negative theta =
    List.exists (fun s -> Signature.subset theta s) neg_sigs
  in
  let theta =
    List.fold_left
      (fun theta (rt, _) ->
        let sigs = sigs_of ctx rt in
        (* Keep the intersection as large as possible. *)
        let best =
          List.fold_left
            (fun best s ->
              let cand = Signature.inter theta s in
              match best with
              | None -> Some cand
              | Some b ->
                  if Signature.popcount cand > Signature.popcount b then
                    Some cand
                  else best)
            None sigs
        in
        match best with None -> theta | Some b -> b)
      (Signature.full ctx.space)
      positives
  in
  let ok =
    (not (selects_negative theta))
    && List.for_all (fun (rt, _) -> selects ctx theta rt) positives
  in
  if ok then Some theta else None
