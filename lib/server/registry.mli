(** The session table: every live learning session, keyed by
    [tenant/id], each backed by its own journal file in the state
    directory.

    Three invariants carry the server's fault-tolerance story:

    - {e journal-keyed}: a session's entire recoverable state is its
      journal ([<dir>/<tenant>.<id>.journal] — '.' cannot appear in a
      name, so the mapping is injective; the header's config line
      regenerates the instance, the events replay the answers).  The
      registry holds only the in-memory stepper; {!recover_all} rebuilds
      the table from the directory after a crash.
    - {e idempotent creation}: re-creating an existing [tenant/id] with the
      same spec returns the live session's view (clients retry blindly); a
      different spec is a typed conflict.  A journal already on disk but
      not in memory is resumed, not truncated.
    - {e quota-checked}: a tenant at its [max_sessions] gets a typed
      [Over_quota] refusal, checked under the registry lock (with slots
      reserved during construction, so concurrent creates cannot
      overshoot).

    The lock covers table bookkeeping only; instance generation and replay
    run outside it.  Mutating one session concurrently is excluded by the
    {!Admission} batch discipline, not by this lock. *)

type config = {
  dir : string;  (** state directory (created on {!create}) *)
  sync : Core.Journal.sync;
  tenants : Tenant.t;
  step_fuel : int option;  (** server-wide per-step default *)
  step_timeout : float option;
}

type t

val create : config -> t
(** Creates [dir] if missing.  Does not scan it — call {!recover_all}. *)

val create_session :
  t -> tenant:string -> id:string -> Engines.spec ->
  (Stepper.view, Core.Error.t) result
(** See the idempotency and quota rules above.  [id] and [tenant] must be
    [[A-Za-z0-9_-]+] (they name files). *)

val find : t -> tenant:string -> id:string -> Stepper.t option
(** The live stepper; callers must respect the one-thread-per-session
    batch discipline. *)

val delete : t -> tenant:string -> id:string -> bool
(** Closes the session and removes its journal file.  [false] if absent. *)

val recover_all : t -> pool:Core.Pool.t -> int * (string * Core.Error.t) list
(** Resumes every journal in the directory not already live — in parallel
    on [pool] — and returns (sessions recovered, per-file errors).
    Unresumable journals are left on disk and reported, not deleted. *)

val drain : t -> unit
(** Flush and close every live journal (graceful-shutdown path). *)

val crash : t -> unit
(** Abort every journal without flushing — the in-process stand-in for
    kill -9, for the chaos harness. *)

val count : t -> int
val tenant_count : t -> string -> int

val fold : t -> init:'a -> f:('a -> tenant:string -> id:string -> Stepper.t -> 'a) -> 'a
(** Snapshot iteration (order unspecified) — for /stats. *)
