module type SESSION = sig
  type query
  type item
  type state

  val init : item list -> state
  val record : state -> item -> bool -> state
  val determined : state -> item -> bool option
  val candidate : state -> query option
  val pp_item : Format.formatter -> item -> unit
  val pp_query : Format.formatter -> query -> unit
end

type ('state, 'item) strategy = Prng.t -> 'state -> 'item list -> 'item

(* Telemetry: the paper's headline efficiency measure is the question count,
   so the interaction loop is the most-instrumented spot in the repo.  The
   question counter must agree exactly with [outcome.questions] — it is
   incremented at the single point where that field is. *)
let m_questions = Telemetry.Metrics.counter "learnq.interact.questions"
let m_replayed = Telemetry.Metrics.counter "learnq.interact.replayed"
let m_pruned = Telemetry.Metrics.counter "learnq.interact.pruned"
let m_refused = Telemetry.Metrics.counter "learnq.interact.refused"
let m_retried = Telemetry.Metrics.counter "learnq.interact.retried"
let m_degraded = Telemetry.Metrics.counter "learnq.interact.degraded"
let m_ask_s = Telemetry.Metrics.histogram "learnq.interact.ask_s"
let m_parallel_scans = Telemetry.Metrics.counter "learnq.interact.parallel_scans"
let m_scan_s = Telemetry.Metrics.histogram "learnq.interact.scan_s"

let first_strategy _rng _st = function
  | [] -> invalid_arg "Interact.first_strategy: no informative item"
  | item :: _ -> item

let random_strategy rng _st items = Prng.pick rng items

module Make (S : SESSION) = struct
  type outcome = {
    query : S.query option;
    questions : int;
    replayed : int;
    asked : (S.item * bool) list;
    pruned : int;
    refused : int;
    retried : int;
    degraded : bool;
    breaker_open : bool;
    state : S.state;
  }

  let run_flaky ?(rng = Prng.create 0) ?(strategy = first_strategy)
      ?(max_questions = max_int) ?budget ?journal ?(resume = []) ?restore
      ?(checkpoint_every = 0) ?snapshot ?retry ?pool ~oracle ~items () =
    let budget =
      match budget with Some b -> b | None -> Budget.unlimited ()
    in
    let pool = match pool with Some p -> p | None -> Pool.default () in
    if restore <> None && journal = None then
      invalid_arg "Interact.run_flaky: ~restore requires ~journal";
    let jappend ev =
      match journal with None -> () | Some (log, _) -> Journal.append log ev
    in
    let jencode item =
      match journal with None -> "" | Some (_, encode) -> encode item
    in
    (* Replay a recovered journal: every recorded label rebuilds the state
       exactly as the live run did (the fold preserves append order), and a
       duplicate answer for an item is an idempotent no-op.  Refused and
       timed-out questions return to the pool — on resume the oracle gets
       another chance at them.

       Membership is a hash-set probe, not a list scan: long journals over
       large pools made the old [List.exists] pair quadratic in replay
       length (and in pool size for the filter below).  The key is the
       journal codec string when one is available — the codec defines item
       identity for replay anyway — and the structural item otherwise. *)
    let item_key =
      match journal with
      | Some (_, encode) -> fun it -> `Codec (encode it)
      | None -> fun it -> `Item it
    in
    (* A checkpoint restore seeds the fold: the engine-decoded accumulator
       stands in for [S.init items], its answered keys join the dedup set
       (codec keys — which is why [restore] requires a journal codec), and
       its label count lands in [replayed].  The [resume] tail — events
       after the checkpoint — then folds on top exactly as before. *)
    let restore_state, restore_keys, restored =
      match restore with
      | Some (st, keys, n) -> (Some st, keys, n)
      | None -> (None, [], 0)
    in
    let answered =
      Hashtbl.create (List.length resume + List.length restore_keys + 1)
    in
    List.iter (fun k -> Hashtbl.replace answered (`Codec k) ()) restore_keys;
    (* Checkpoint bookkeeping: answered codec keys in arrival order and the
       count of Asked records ever, both carried into snapshots. *)
    let answered_keys = ref (List.rev restore_keys) (* newest first *) in
    let asks = ref restored in
    let track_key item =
      match journal with
      | Some (_, encode) -> answered_keys := encode item :: !answered_keys
      | None -> ()
    in
    let state0, asked0, replayed =
      List.fold_left
        (fun (st, asked, n) (item, reply) ->
          match reply with
          | Flaky.Refused | Flaky.Timed_out -> (st, asked, n)
          | Flaky.Label label ->
              let key = item_key item in
              if Hashtbl.mem answered key then (st, asked, n)
              else begin
                Hashtbl.add answered key ();
                track_key item;
                incr asks;
                (S.record st item label, (item, label) :: asked, n + 1)
              end)
        ((match restore_state with Some st -> st | None -> S.init items), [], restored)
        resume
    in
    (* Never ask an already-answered question twice: drop replayed items from
       the pool outright rather than trusting [determined] to prune them. *)
    let items =
      if Hashtbl.length answered = 0 then items
      else
        List.filter (fun it -> not (Hashtbl.mem answered (item_key it))) items
    in
    if Telemetry.enabled () && replayed > 0 then
      Telemetry.Metrics.incr m_replayed ~by:replayed;
    let breaker = Option.map (fun p -> (p, Retry.breaker p)) retry in
    let retried = ref 0 in
    let ask item =
      Telemetry.with_span "interact.ask" @@ fun () ->
      let t0 = if Telemetry.enabled () then Monotonic.now () else 0. in
      jappend (Journal.Asked (jencode item));
      incr asks;
      let reply =
        match breaker with
        | None -> oracle item
        | Some (policy, breaker) -> (
            match
              Retry.call ~budget ~rng policy breaker
                ~classify:(function
                  | Flaky.Label _ -> `Ok
                  | Flaky.Refused | Flaky.Timed_out -> `Transient)
                (fun () -> oracle item)
            with
            | Retry.Answered (r, attempts) | Retry.Gave_up (r, attempts) ->
                retried := !retried + attempts - 1;
                if Telemetry.enabled () && attempts > 1 then
                  Telemetry.Metrics.incr m_retried ~by:(attempts - 1);
                r
            | Retry.Rejected ->
                (* Open breaker: behave like a refusal; the loop notices the
                   open breaker and finishes. *)
                Flaky.Refused)
      in
      jappend (Journal.Answered (jencode item, reply));
      if Telemetry.enabled () then
        Telemetry.Metrics.observe m_ask_s (Monotonic.now () -. t0);
      reply
    in
    let breaker_is_open () =
      match breaker with
      | None -> false
      | Some (_, b) -> Retry.breaker_state b = Retry.Open
    in
    (* Periodic checkpoint + compaction: every [checkpoint_every] labeled
       answers, snapshot the accumulator and atomically rewrite the journal
       as header + checkpoint.  A failed compaction leaves the journal
       intact; the [Io] it raises carries a typed [Storage] error so the
       caller learns the disk is unwell instead of discovering it later. *)
    let since_ck = ref 0 in
    let maybe_checkpoint state questions pruned refused =
      match (journal, snapshot) with
      | Some (log, _), Some snap when checkpoint_every > 0 ->
          incr since_ck;
          if !since_ck >= checkpoint_every then begin
            since_ck := 0;
            let ck =
              {
                Journal.ck_qid = !asks;
                ck_questions = questions;
                ck_pruned = pruned;
                ck_refused = refused;
                ck_answered = List.rev !answered_keys;
                ck_state = snap state;
              }
            in
            match Journal.compact log ck with
            | Ok () -> ()
            | Error e -> raise (Journal.Io e)
          end
      | _ -> ()
    in
    let finish ~degraded ~complete state asked questions pruned refused =
      if complete then jappend Journal.Completed;
      if Telemetry.enabled () then begin
        if pruned > 0 then Telemetry.Metrics.incr m_pruned ~by:pruned;
        if refused > 0 then Telemetry.Metrics.incr m_refused ~by:refused;
        if degraded then begin
          Telemetry.Metrics.incr m_degraded;
          Telemetry.Log.warn
            ~kv:
              [
                ("questions", string_of_int questions);
                ("pruned", string_of_int pruned);
                ("refused", string_of_int refused);
              ]
            "interactive session degraded before completion"
        end
      end;
      {
        query = S.candidate state;
        questions;
        replayed;
        asked = List.rev asked;
        pruned;
        refused;
        retried = !retried;
        degraded;
        breaker_open = breaker_is_open ();
        state;
      }
    in
    (* Split the remaining pool into items whose label is already forced
       (uninformative — pruned without asking) and genuinely open ones.
       Determination checks dominate the session cost, so the budget is
       spent here; exhaustion ends the session with the current candidate
       rather than an exception — a degraded but usable outcome.

       With a pool of size > 1 the probes run on worker domains.  The whole
       round's ticks are charged up front on the calling domain ([Budget] is
       not shared across domains); a round that would have exhausted the
       budget midway therefore trips it slightly earlier than the sequential
       scan — both end the session at the same question, with the same
       candidate.  Results land in input-order slots ({!Pool.map_array}), so
       the rebuilt open list — hence the question sequence and the journal
       bytes — is identical at every pool size. *)
    let partition_open state remaining =
      if Pool.size pool <= 1 then
        List.partition
          (fun it ->
            Budget.tick budget;
            S.determined state it = None)
          remaining
      else begin
        let arr = Array.of_list remaining in
        Budget.tick ~cost:(Array.length arr) budget;
        let t0 = if Telemetry.enabled () then Monotonic.now () else 0. in
        let is_open =
          Pool.map_array pool (fun it -> S.determined state it = None) arr
        in
        if Telemetry.enabled () then begin
          Telemetry.Metrics.incr m_parallel_scans;
          Telemetry.Metrics.observe m_scan_s (Monotonic.now () -. t0)
        end;
        let opens = ref [] and closed = ref [] in
        for i = Array.length arr - 1 downto 0 do
          if is_open.(i) then opens := arr.(i) :: !opens
          else closed := arr.(i) :: !closed
        done;
        (!opens, !closed)
      end
    in
    let rec loop state remaining asked questions pruned refused =
      match partition_open state remaining with
      | exception Budget.Out_of_budget ->
          finish ~degraded:true ~complete:false state asked questions pruned
            refused
      | open_items, newly_determined ->
          let pruned = pruned + List.length newly_determined in
          if open_items = [] || questions >= max_questions then
            finish ~degraded:false ~complete:(open_items = []) state asked
              questions pruned refused
          else if breaker_is_open () then
            (* The oracle is effectively down: stop asking and surface the
               current candidate so the caller can degrade via its fallback
               ladder. *)
            finish ~degraded:true ~complete:false state asked questions pruned
              refused
          else
            let item = strategy rng state open_items in
            let remaining = List.filter (fun it -> it != item) open_items in
            (match ask item with
            | exception Budget.Out_of_budget ->
                finish ~degraded:true ~complete:false state asked questions
                  pruned refused
            | Flaky.Refused | Flaky.Timed_out ->
                (* The user never answered even through the retry policy: set
                   the question aside and keep going on the rest of the pool. *)
                loop state remaining asked questions pruned (refused + 1)
            | Flaky.Label label ->
                Telemetry.Metrics.incr m_questions;
                let state = S.record state item label in
                Hashtbl.replace answered (item_key item) ();
                track_key item;
                maybe_checkpoint state (replayed + questions + 1) pruned
                  refused;
                loop state remaining
                  ((item, label) :: asked)
                  (questions + 1) pruned refused)
    in
    Telemetry.with_span "interact.session"
      ~attrs:[ ("items", string_of_int (List.length items)) ]
    @@ fun () -> loop state0 items asked0 0 0 0

  let run ?rng ?strategy ?max_questions ?budget ?journal ?resume ?restore
      ?checkpoint_every ?snapshot ?pool ~oracle ~items () =
    run_flaky ?rng ?strategy ?max_questions ?budget ?journal ?resume ?restore
      ?checkpoint_every ?snapshot ?pool
      ~oracle:(fun it -> Flaky.Label (oracle it))
      ~items ()

  let cost ~price_per_question outcome =
    price_per_question *. float_of_int outcome.questions
end
