let magic = "LQJRNL1\n"
let format_version = 2

type header = { seed : int; engine : string; config : string }

type sync = Always | Batch | Off

let sync_to_string = function
  | Always -> "always"
  | Batch -> "batch"
  | Off -> "off"

let sync_of_string = function
  | "always" -> Some Always
  | "batch" -> Some Batch
  | "off" -> Some Off
  | _ -> None

(* A checkpoint snapshots the whole session accumulator — counters, the set
   of already-answered item keys, and an engine-encoded state string — so
   resume replays from here instead of record zero, and compaction can
   truncate everything behind it. *)
type checkpoint = {
  ck_qid : int;
  ck_questions : int;
  ck_pruned : int;
  ck_refused : int;
  ck_answered : string list;  (** item keys already answered, oldest first *)
  ck_state : string;  (** engine-encoded accumulator (opaque here) *)
}

type event =
  | Asked of string
  | Answered of string * Flaky.reply
  | Checkpoint of checkpoint
  | Completed

exception Io of Error.t

(* Group commit: in [Batch] mode appends accumulate in [pending] and are
   written + fsync'd together once [batch_records] records (or a session
   milestone — [Completed], a checkpoint, [close]) force a flush.  One fsync
   then covers the whole group, which is what rescues small sessions from
   paying the ~300µs fsync per answer that BENCH_PR2 exposed. *)
let batch_records = 8

type t = {
  vfs : Vfs.t;
  path : string;
  mutable fh : Vfs.fh;  (* swapped by [compact] *)
  sync : sync;
  lock_path : string;
  header : header option;
  pending : Buffer.t;
  mutable pending_records : int;
  mutable good_bytes : int;  (* offset just past the last durable-intent frame *)
  mutable broken : bool;  (* a write failure we could not truncate away *)
  mutable closed : bool;
}

(* Telemetry: record/byte counters and the fsync latency histogram the
   BENCH_PR2 regression was blind to. *)
let m_records = Telemetry.Metrics.counter "learnq.journal.records"
let m_bytes = Telemetry.Metrics.counter "learnq.journal.bytes"
let m_fsyncs = Telemetry.Metrics.counter "learnq.journal.fsyncs"
let m_fsync_s = Telemetry.Metrics.histogram "learnq.journal.fsync_s"
let m_checkpoints = Telemetry.Metrics.counter "learnq.journal.checkpoints"
let m_compactions = Telemetry.Metrics.counter "learnq.journal.compactions"

(* ------------------------------------------------------------------ *)
(* CRC-32 (polynomial 0xEDB88320, the zlib/PNG one)                    *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Payload encoding                                                    *)
(* ------------------------------------------------------------------ *)

(* One tag byte, then the encoded item.  The header packs its fields with
   NUL separators (items and configs are produced by this code base and
   never contain NUL).  Since the telemetry PR the header records the fsync
   policy as a trailing "sync=…" field, and since the storage PR a trailing
   "v=2" format-version field; older journals simply lack them and decode
   with [sync = Always] / version 1.  Version 1 journals (no checkpoints)
   still resume — the version stamp exists so future readers can refuse
   formats they genuinely cannot parse, not to lock out the past. *)

let encode_header h ~sync =
  Printf.sprintf "H%d\x00%s\x00%s\x00sync=%s\x00v=%d" h.seed h.engine h.config
    (sync_to_string sync) format_version

let decode_header payload =
  (* payload starts after the 'H' tag *)
  match String.split_on_char '\x00' payload with
  | seed :: engine :: rest -> (
      match int_of_string_opt seed with
      | Some seed ->
          (* Trailing self-describing fields are peeled off the reversed
             field list; whatever remains is the free-form config. *)
          let peel key l =
            let klen = String.length key in
            match l with
            | last :: front
              when String.length last > klen && String.sub last 0 klen = key
              ->
                Some (String.sub last klen (String.length last - klen), front)
            | _ -> None
          in
          let rev = List.rev rest in
          let version, rev =
            match peel "v=" rev with
            | Some (v, front) ->
                (Option.value ~default:1 (int_of_string_opt v), front)
            | None -> (1, rev)
          in
          let sync, rev =
            match peel "sync=" rev with
            | Some (s, front) ->
                (Option.value ~default:Always (sync_of_string s), front)
            | None -> (Always, rev)
          in
          Some
            ( { seed; engine; config = String.concat "\x00" (List.rev rev) },
              sync,
              version )
      | None -> None)
  | _ -> None

(* Checkpoint payload: NUL-separated counters, then a count-prefixed list
   of answered keys, then the engine state as the final field — last so the
   state may itself contain NULs (engine codecs pack fields with them). *)
let encode_checkpoint ck =
  let buf = Buffer.create (256 + String.length ck.ck_state) in
  Buffer.add_char buf 'K';
  Buffer.add_string buf
    (Printf.sprintf "%d\x00%d\x00%d\x00%d\x00%d" ck.ck_qid ck.ck_questions
       ck.ck_pruned ck.ck_refused
       (List.length ck.ck_answered));
  List.iter
    (fun key ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf key)
    ck.ck_answered;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf ck.ck_state;
  Buffer.contents buf

let rec split_at k xs =
  if k = 0 then Some ([], xs)
  else
    match xs with
    | x :: tl ->
        Option.map (fun (a, b) -> (x :: a, b)) (split_at (k - 1) tl)
    | [] -> None

let decode_checkpoint payload =
  match String.split_on_char '\x00' payload with
  | qid :: questions :: pruned :: refused :: n :: rest -> (
      match
        ( int_of_string_opt qid,
          int_of_string_opt questions,
          int_of_string_opt pruned,
          int_of_string_opt refused,
          int_of_string_opt n )
      with
      | Some ck_qid, Some ck_questions, Some ck_pruned, Some ck_refused, Some n
        when n >= 0 -> (
          match split_at n rest with
          | Some (ck_answered, state_fields) ->
              Some
                {
                  ck_qid;
                  ck_questions;
                  ck_pruned;
                  ck_refused;
                  ck_answered;
                  ck_state = String.concat "\x00" state_fields;
                }
          | None -> None)
      | _ -> None)
  | _ -> None

let encode_event = function
  | Asked item -> "?" ^ item
  | Answered (item, Flaky.Label true) -> "+" ^ item
  | Answered (item, Flaky.Label false) -> "-" ^ item
  | Answered (item, Flaky.Refused) -> "R" ^ item
  | Answered (item, Flaky.Timed_out) -> "T" ^ item
  | Checkpoint ck -> encode_checkpoint ck
  | Completed -> "C"

let decode_event payload =
  if payload = "" then None
  else
    let rest () = String.sub payload 1 (String.length payload - 1) in
    match payload.[0] with
    | '?' -> Some (Asked (rest ()))
    | '+' -> Some (Answered (rest (), Flaky.Label true))
    | '-' -> Some (Answered (rest (), Flaky.Label false))
    | 'R' -> Some (Answered (rest (), Flaky.Refused))
    | 'T' -> Some (Answered (rest (), Flaky.Timed_out))
    | 'K' -> Option.map (fun ck -> Checkpoint ck) (decode_checkpoint (rest ()))
    | 'C' when String.length payload = 1 -> Some Completed
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Record framing                                                      *)
(* ------------------------------------------------------------------ *)

let put_le32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_le32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  put_le32 buf (String.length payload);
  put_le32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let fsync_timed t =
  (* Flight-recorder span regardless of telemetry: a stalled fsync must be
     findable from the recorder dump alone, stamped with the trace of the
     request that paid for it. *)
  Obs.Recorder.with_span ~detail:t.path "journal.fsync" (fun () ->
      if Telemetry.enabled () then begin
        let t0 = Monotonic.now () in
        Vfs.fsync t.vfs t.fh;
        Telemetry.Metrics.observe m_fsync_s (Monotonic.now () -. t0);
        Telemetry.Metrics.incr m_fsyncs
      end
      else Vfs.fsync t.vfs t.fh)

(* Every write funnels through here.  On a storage failure the file may
   hold a torn frame mid-write; truncating back to [good_bytes] restores a
   clean prefix so the journal stays usable (the caller retries the append
   once the disk recovers — ENOSPC is transient).  If even the truncation
   fails, the journal is [broken]: further writes are refused, which keeps
   the tear at the physical tail where recovery treats it as truncation. *)
let io_guard t ~op f =
  if t.broken then
    raise
      (Io
         (Error.storage ~op ~path:t.path
            "journal disabled by an earlier storage failure"));
  try f ()
  with Unix.Unix_error (err, _, _) ->
    (try Vfs.ftruncate t.vfs t.fh t.good_bytes
     with Unix.Unix_error _ | Invalid_argument _ -> t.broken <- true);
    raise (Io (Error.storage_of_unix ~op ~path:t.path err))

(* ------------------------------------------------------------------ *)
(* Writer mutual exclusion                                             *)
(* ------------------------------------------------------------------ *)

(* Two writers appending to one journal interleave frames into corruption
   that [recover] can only report, not repair.  A sidecar lock file taken
   atomically (and always holding the owner's identity) makes the second
   opener lose with a typed error instead.  A lock whose recorded holder is
   dead is the residue of a crash — SIGKILL runs no cleanup — and is stolen
   silently, which is what lets a restarted daemon resume the very journals
   its predecessor died holding.

   Identity is [pid:starttime], not a bare pid: pids are recycled, so "a
   process with that pid is alive" does not mean "the holder is alive".
   The starttime (field 22 of /proc/<pid>/stat, in clock ticks since boot)
   disambiguates — same pid, different starttime means the holder died and
   its pid was reborn as an unrelated process, so the lock is stale and is
   stolen.  When stamps are unavailable (no /proc, old-format bare-pid
   lock) and the pid is alive we refuse to steal: corrupting a live
   journal is worse than making an operator delete a stale lock. *)

let lock_path_of path = path ^ ".lock"

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) -> true (* EPERM: alive, not ours *)

let starttime_of_pid pid =
  let stat = Printf.sprintf "/proc/%d/stat" pid in
  match In_channel.with_open_bin stat In_channel.input_all with
  | exception Sys_error _ -> None
  | content -> (
      (* comm (field 2) is parenthesized and may contain spaces; fields
         resume after the last ')'.  starttime is field 22, i.e. index 19
         of the space-split remainder (which starts at field 3). *)
      match String.rindex_opt content ')' with
      | Some i when String.length content > i + 2 ->
          let rest =
            String.sub content (i + 2) (String.length content - i - 2)
          in
          List.nth_opt (String.split_on_char ' ' rest) 19
      | _ -> None)

let lock_stamp () =
  let pid = Unix.getpid () in
  match starttime_of_pid pid with
  | Some s -> Printf.sprintf "%d:%s" pid s
  | None -> string_of_int pid

let read_lock lock_path =
  match In_channel.with_open_bin lock_path In_channel.input_all with
  | exception Sys_error _ -> None
  | contents -> (
      let contents = String.trim contents in
      match String.index_opt contents ':' with
      | None ->
          Option.map (fun pid -> (pid, None)) (int_of_string_opt contents)
      | Some i ->
          Option.map
            (fun pid ->
              ( pid,
                Some (String.sub contents (i + 1) (String.length contents - i - 1))
              ))
            (int_of_string_opt (String.sub contents 0 i)))

let read_lock_pid lock_path = Option.map fst (read_lock lock_path)

let acquire_lock vfs path =
  let lock_path = lock_path_of path in
  (* The stamp is written to a private temp file which is then [link(2)]ed
     into place (atomic, fails with EEXIST if held): the lock file can
     never be observed without its stamp, so a rival reading it cannot
     misclassify a live lock as torn and steal it mid-creation. *)
  let try_take () =
    let tmp = Printf.sprintf "%s.%d.tmp" lock_path (Unix.getpid ()) in
    let fh = Vfs.openf ~trunc:true vfs tmp in
    (try Vfs.append vfs fh (lock_stamp ())
     with e ->
       Vfs.close vfs fh;
       (try Vfs.unlink vfs tmp with Unix.Unix_error _ -> ());
       raise e);
    Vfs.close vfs fh;
    let r =
      match Vfs.link vfs tmp lock_path with
      | () -> `Taken
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> `Held
    in
    (try Vfs.unlink vfs tmp with Unix.Unix_error _ -> ());
    r
  in
  let rec go attempts =
    if attempts = 0 then
      (* Steal races resolve in one retry; give up rather than spin. *)
      Error
        (Error.journal_locked ~path
           ~pid:(Option.value ~default:0 (read_lock_pid lock_path)))
    else
      match try_take () with
      | `Taken -> Ok lock_path
      | `Held -> (
          match read_lock lock_path with
          | Some (pid, stamp) when pid_alive pid -> (
              match (stamp, starttime_of_pid pid) with
              | Some recorded, Some current
                when not (String.equal recorded current) ->
                  (* Pid reuse: the recorded holder died and its pid came
                     back as an unrelated process.  The lock is stale. *)
                  (try Vfs.unlink vfs lock_path with Unix.Unix_error _ -> ());
                  go (attempts - 1)
              | _ ->
                  (* Alive and not provably recycled — including when only
                     the pid matches because stamps are unavailable. *)
                  Error (Error.journal_locked ~path ~pid))
          | Some _ ->
              (* Dead holder: the residue of a crash, steal it.  If a rival
                 steals first we lose the link(2) race on the next attempt
                 and report the (now live) holder. *)
              (try Vfs.unlink vfs lock_path with Unix.Unix_error _ -> ());
              go (attempts - 1)
          | None ->
              (* The lock vanished between the EEXIST and the read (the
                 holder released it): retry without stealing anything. *)
              go (attempts - 1))
  in
  match go 2 with
  | r -> r
  | exception Unix.Unix_error (err, _, _) ->
      Error (Error.storage_of_unix ~op:"lock" ~path err)

let release_lock t =
  try Vfs.unlink t.vfs t.lock_path with Unix.Unix_error _ -> ()

(* Write out (and, unless the policy is [Off], fsync) everything pending.
   The buffer is cleared only after the group is safely down: a storage
   failure leaves it intact for a retry once the disk recovers. *)
let flush t =
  if Buffer.length t.pending > 0 then
    io_guard t ~op:"flush" (fun () ->
        let s = Buffer.contents t.pending in
        Vfs.append t.vfs t.fh s;
        if t.sync <> Off then fsync_timed t;
        t.good_bytes <- t.good_bytes + String.length s;
        Buffer.clear t.pending;
        t.pending_records <- 0)

let append_raw t s =
  if t.closed then invalid_arg "Journal.append: journal is closed";
  Telemetry.Metrics.incr m_bytes ~by:(String.length s);
  match t.sync with
  | Always ->
      io_guard t ~op:"append" (fun () ->
          Vfs.append t.vfs t.fh s;
          fsync_timed t;
          t.good_bytes <- t.good_bytes + String.length s)
  | Off ->
      io_guard t ~op:"append" (fun () ->
          Vfs.append t.vfs t.fh s;
          t.good_bytes <- t.good_bytes + String.length s)
  | Batch ->
      Buffer.add_string t.pending s;
      t.pending_records <- t.pending_records + 1;
      if t.pending_records >= batch_records then flush t

let append t event =
  Telemetry.Metrics.incr m_records;
  append_raw t (frame (encode_event event));
  (* A completed session or a checkpoint is a durability milestone: close
     the group. *)
  match event with
  | Completed | Checkpoint _ -> flush t
  | Asked _ | Answered _ -> ()

let append_checkpoint t ck =
  Telemetry.Metrics.incr m_checkpoints;
  append t (Checkpoint ck)

let create_result ?(sync = Always) ?(vfs = Vfs.real) ~path header =
  (* Lock before truncating: losing the race must not destroy the winner's
     live journal. *)
  match acquire_lock vfs path with
  | Error e -> Error e
  | Ok lock_path -> (
      let attempt () =
        let fh = Vfs.openf ~trunc:true vfs path in
        try
          let hbytes = magic ^ frame (encode_header header ~sync) in
          (* The header must be durable before any event is: resume depends
             on it.  Write it through directly even in Batch mode. *)
          Vfs.append vfs fh hbytes;
          if sync <> Off then Vfs.fsync vfs fh;
          (fh, String.length hbytes)
        with e ->
          Vfs.close vfs fh;
          (try Vfs.unlink vfs path with Unix.Unix_error _ -> ());
          raise e
      in
      match attempt () with
      | exception Unix.Unix_error (err, _, _) ->
          (try Vfs.unlink vfs lock_path with Unix.Unix_error _ -> ());
          Error (Error.storage_of_unix ~op:"create" ~path err)
      | fh, good_bytes ->
          Ok
            {
              vfs;
              path;
              fh;
              sync;
              lock_path;
              header = Some header;
              pending = Buffer.create 256;
              pending_records = 0;
              good_bytes;
              broken = false;
              closed = false;
            })

let create ?sync ?vfs ~path header =
  match create_result ?sync ?vfs ~path header with
  | Ok t -> t
  | Error e -> invalid_arg ("Journal.create: " ^ Error.to_string e)

let close t =
  if not t.closed then begin
    t.closed <- true;
    Fun.protect
      ~finally:(fun () ->
        Vfs.close t.vfs t.fh;
        release_lock t)
      (fun () -> if not t.broken then flush t)
  end

let abort t =
  if not t.closed then begin
    (* Simulated crash: pending [Batch] records are dropped, nothing is
       flushed — the file keeps only what a real crash would have kept.  The
       lock is released because it belongs to this (still live) process; a
       real crash leaves it stale and the next opener steals it. *)
    Buffer.clear t.pending;
    t.pending_records <- 0;
    t.closed <- true;
    Vfs.close t.vfs t.fh;
    release_lock t
  end

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

type recovered = {
  header : header option;
  recorded_sync : sync;
  version : int;
  events : event list;
  valid_bytes : int;
  dropped_bytes : int;
}

let parse ~source input =
  let len = String.length input in
  let magic_len = String.length magic in
  let prefix_of_magic =
    len < magic_len && String.equal input (String.sub magic 0 len)
  in
  if prefix_of_magic then
    (* The crash happened while the very first write was in flight. *)
    Ok
      {
        header = None;
        recorded_sync = Always;
        version = format_version;
        events = [];
        valid_bytes = 0;
        dropped_bytes = len;
      }
  else if len < magic_len || not (String.equal (String.sub input 0 magic_len) magic)
  then
    Error
      (Error.parse_error ~source:"journal"
         (Printf.sprintf "%s is not a learnq session journal" source))
  else
    let rec records pos header rsync version events =
      let finish dropped =
        Ok
          {
            header;
            recorded_sync = rsync;
            version;
            events = List.rev events;
            valid_bytes = pos;
            dropped_bytes = dropped;
          }
      in
      if len - pos < 8 then finish (len - pos)
      else
        let plen = get_le32 input pos in
        let crc = get_le32 input (pos + 4) in
        if plen < 0 || pos + 8 + plen > len then
          (* Torn tail: the length prefix promises more bytes than exist.
             (An in-place corruption of the length field is indistinguishable
             from a torn write, so it too is treated as truncation.) *)
          finish (len - pos)
        else
          let payload = String.sub input (pos + 8) plen in
          if crc32 payload <> crc then
            Error
              (Error.corrupt_journal ~path:source ~offset:pos
                 "record checksum mismatch")
          else
            let next = pos + 8 + plen in
            if plen > 0 && payload.[0] = 'H' then
              match decode_header (String.sub payload 1 (plen - 1)) with
              | Some (h, s, v) when pos = magic_len && header = None ->
                  records next (Some h) s v events
              | Some _ ->
                  Error
                    (Error.corrupt_journal ~path:source ~offset:pos
                       "unexpected header record")
              | None ->
                  Error
                    (Error.corrupt_journal ~path:source ~offset:pos
                       "undecodable header record")
            else begin
              match decode_event payload with
              | Some ev -> records next header rsync version (ev :: events)
              | None ->
                  Error
                    (Error.corrupt_journal ~path:source ~offset:pos
                       "undecodable record payload")
            end
    in
    records magic_len None Always 1 []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let recover ~path =
  match read_file path with
  | exception Sys_error msg ->
      Error (Error.invalid_input ~what:"--journal" msg)
  | input -> parse ~source:path input

let resume ?sync ?(vfs = Vfs.real) ~path () =
  (* Lock before reading: recovering under the lock means [valid_bytes] is
     still accurate when the torn tail is truncated away below — a rival
     writer can't append between the read and the ftruncate. *)
  match acquire_lock vfs path with
  | Error e -> Error e
  | Ok lock_path -> (
      let fail e =
        (try Vfs.unlink vfs lock_path with Unix.Unix_error _ -> ());
        Error e
      in
      match recover ~path with
      | Error e -> fail e
      | Ok r -> (
          match r.header with
          | None ->
              fail
                (Error.invalid_input ~what:"--journal"
                   (path ^ " has no intact header record; nothing to resume"))
          | Some h -> (
              (* Continue under the recorded policy unless the caller
                 overrides. *)
              let sync = Option.value ~default:r.recorded_sync sync in
              match
                let fh = Vfs.openf vfs path in
                (try Vfs.ftruncate vfs fh r.valid_bytes
                 with e ->
                   Vfs.close vfs fh;
                   raise e);
                fh
              with
              | exception Unix.Unix_error (err, _, _) ->
                  fail (Error.storage_of_unix ~op:"resume" ~path err)
              | fh ->
                  Ok
                    ( {
                        vfs;
                        path;
                        fh;
                        sync;
                        lock_path;
                        header = Some h;
                        pending = Buffer.create 256;
                        pending_records = 0;
                        good_bytes = r.valid_bytes;
                        broken = false;
                        closed = false;
                      },
                      r ))))

let answered r =
  List.filter_map
    (function Answered (item, reply) -> Some (item, reply) | _ -> None)
    r.events

(* The last checkpoint (if any) and the events that follow it: what a
   resuming session restores and then replays.  Events before the last
   checkpoint are superseded by it. *)
let split_checkpoint r =
  let rec go ck tail = function
    | [] -> (ck, List.rev tail)
    | Checkpoint c :: rest -> go (Some c) [] rest
    | ev :: rest -> go ck (ev :: tail) rest
  in
  go None [] r.events

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

(* Atomic write-aside + rename: the new journal (header + one checkpoint
   subsuming all history) is built at [path ^ ".compact"], fsync'd, and
   renamed over [path].  The old journal stays intact until the rename —
   a crash at any point leaves either the full old journal or the full new
   one, never a hybrid.  The caller's contract: [ck] must reflect every
   event already appended (including any still buffered), because both the
   on-disk history and the pending buffer are discarded in its favor. *)
let compact t ck =
  if t.closed then invalid_arg "Journal.compact: journal is closed";
  match t.header with
  | None ->
      Error
        (Error.storage ~op:"compact" ~path:t.path
           "journal has no header; cannot rewrite")
  | Some h -> (
      let aside = t.path ^ ".compact" in
      let attempt () =
        let fh = Vfs.openf ~trunc:true t.vfs aside in
        try
          let bytes =
            magic
            ^ frame (encode_header h ~sync:t.sync)
            ^ frame (encode_event (Checkpoint ck))
          in
          Vfs.append t.vfs fh bytes;
          Vfs.fsync t.vfs fh;
          Vfs.rename t.vfs aside t.path;
          (fh, String.length bytes)
        with e ->
          Vfs.close t.vfs fh;
          (try Vfs.unlink t.vfs aside with Unix.Unix_error _ | Sys_error _ -> ());
          raise e
      in
      match attempt () with
      | exception Unix.Unix_error (err, _, _) ->
          Error (Error.storage_of_unix ~op:"compact" ~path:t.path err)
      | fh, good_bytes ->
          (* The old descriptor now names an unlinked inode; swap in the
             new one.  Pending records are subsumed by the checkpoint. *)
          Vfs.close t.vfs t.fh;
          t.fh <- fh;
          t.good_bytes <- good_bytes;
          t.broken <- false;
          Buffer.clear t.pending;
          t.pending_records <- 0;
          Obs.Recorder.record ~detail:t.path "journal.compact";
          Telemetry.Metrics.incr m_compactions;
          Ok ())
