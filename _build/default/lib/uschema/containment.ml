module SSet = Set.Make (String)

let interval_of clause label =
  match List.assoc_opt label clause with
  | Some m -> Multiplicity.interval m
  | None -> (0, Some 0)

let interval_includes (lo2, hi2) (lo1, hi1) =
  (* [lo1,hi1] ⊆ [lo2,hi2] *)
  lo1 >= lo2
  &&
  match (hi1, hi2) with
  | _, None -> true
  | None, Some _ -> false
  | Some h1, Some h2 -> h1 <= h2

let clause_leq c1 c2 =
  let alphabet =
    SSet.union
      (SSet.of_list (List.map fst c1))
      (SSet.of_list (List.map fst c2))
  in
  SSet.for_all
    (fun l -> interval_includes (interval_of c2 l) (interval_of c1 l))
    alphabet

(* Count vectors of a clause, clamped to {0,1,2}: the complete grid of
   potential counterexamples (see interface documentation). *)
let clause_grid c1 =
  let candidates (lo, hi) =
    List.filter
      (fun v -> v >= lo && match hi with None -> true | Some h -> v <= h)
      [ 0; 1; 2 ]
  in
  let rec expand = function
    | [] -> [ [] ]
    | (l, m) :: rest ->
        let tails = expand rest in
        List.concat_map
          (fun v -> List.map (fun t -> (l, v) :: t) tails)
          (candidates (Multiplicity.interval m))
  in
  expand c1

let vector_to_multiset vec =
  List.fold_left
    (fun acc (l, v) -> Dme.Labels.add ~count:v l acc)
    Dme.Labels.empty vec

let counterexample e1 e2 =
  let check_clause c1 =
    (* Shortcut: wholly inside one clause of e2. *)
    if List.exists (fun c2 -> clause_leq c1 c2) e2 then None
    else
      List.find_map
        (fun vec ->
          let w = vector_to_multiset vec in
          if Dme.satisfies e2 w then None else Some w)
        (clause_grid c1)
  in
  List.find_map check_clause e1

let dme_leq e1 e2 = counterexample e1 e2 = None
let dme_equiv e1 e2 = dme_leq e1 e2 && dme_leq e2 e1

let schema_leq s1 s2 =
  String.equal (Schema.root s1) (Schema.root s2)
  &&
  let productive = SSet.of_list (Schema.productive s1) in
  let relevant =
    List.filter (fun l -> SSet.mem l productive) (Schema.reachable s1)
  in
  List.for_all (fun l -> dme_leq (Schema.rule s1 l) (Schema.rule s2 l)) relevant

let schema_equiv s1 s2 = schema_leq s1 s2 && schema_leq s2 s1
