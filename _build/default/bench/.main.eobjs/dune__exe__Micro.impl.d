bench/micro.ml: Analyze Automata Bechamel Benchkit Benchmark Core Graphdb Hashtbl Instance Joinlearn Lazy List Measure Printf Relational Staged String Test Time Toolkit Twig Uschema
