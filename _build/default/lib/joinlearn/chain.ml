type t = { spaces : Signature.space array }

let make relations =
  let arities = List.map Relational.Relation.arity relations in
  match arities with
  | [] | [ _ ] -> invalid_arg "Chain.make: need at least two relations"
  | _ ->
      let rec links = function
        | a :: (b :: _ as rest) ->
            Signature.space ~left_arity:a ~right_arity:b :: links rest
        | _ -> []
      in
      { spaces = Array.of_list (links arities) }

let length c = Array.length c.spaces + 1
let spaces c = c.spaces

type vec = Signature.mask array

let signature c tuples =
  let arr = Array.of_list tuples in
  if Array.length arr <> length c then
    invalid_arg "Chain.signature: tuple count mismatch";
  Array.mapi
    (fun i space -> Signature.signature space arr.(i) arr.(i + 1))
    c.spaces

let selects theta sig_ =
  Array.length theta = Array.length sig_
  && Array.for_all2 (fun t s -> Signature.subset t s) theta sig_

let of_predicates c predicates =
  let preds = Array.of_list predicates in
  if Array.length preds <> Array.length c.spaces then
    invalid_arg "Chain.of_predicates: link count mismatch";
  Array.mapi (fun i space -> Signature.of_predicate space preds.(i)) c.spaces

let to_predicates c vec =
  Array.to_list
    (Array.mapi (fun i space -> Signature.to_predicate space vec.(i)) c.spaces)

module Version_space = struct
  type vs = {
    chain : t;
    specific : vec;  (** link-wise intersection of positive signatures *)
    negatives : vec list;
  }

  let init chain =
    {
      chain;
      specific = Array.map Signature.full chain.spaces;
      negatives = [];
    }

  let record vs mask label =
    if label then
      { vs with specific = Array.map2 Signature.inter vs.specific mask }
    else { vs with negatives = mask :: vs.negatives }

  (* The most-specific candidate dominates link-wise, so if it fails to
     reject some negative, every candidate does. *)
  let rejects theta neg = not (selects theta neg)

  let consistent vs = List.for_all (rejects vs.specific) vs.negatives
  let most_specific vs = vs.specific

  let determined vs mask =
    if selects vs.specific mask then Some true
    else
      let ceiling = Array.map2 Signature.inter vs.specific mask in
      (* Candidates selecting the item are exactly those ≤ ceiling
         link-wise; the ceiling dominates them, so none is consistent iff
         the ceiling hits a negative. *)
      if List.exists (fun n -> selects ceiling n) vs.negatives then Some false
      else None
end

let learn chain labeled =
  let vs =
    List.fold_left
      (fun vs (mask, label) -> Version_space.record vs mask label)
      (Version_space.init chain) labeled
  in
  if Version_space.consistent vs then Some (Version_space.most_specific vs)
  else None

type item = { tuples : Relational.Relation.tuple list; mask : vec }

module Session = struct
  type query = vec
  type nonrec item = item
  type state = Version_space.vs option  (** None until the first item fixes the chain *)

  let init items =
    match items with
    | [] -> None
    | it :: _ ->
        let arities = List.map Array.length it.tuples in
        let rec links = function
          | a :: (b :: _ as rest) ->
              Signature.space ~left_arity:a ~right_arity:b :: links rest
          | _ -> []
        in
        Some (Version_space.init { spaces = Array.of_list (links arities) })

  let record st item label =
    Option.map (fun vs -> Version_space.record vs item.mask label) st

  let determined st item =
    match st with
    | None -> None
    | Some vs -> Version_space.determined vs item.mask

  let candidate st =
    match st with
    | None -> None
    | Some vs ->
        if Version_space.consistent vs then
          Some (Version_space.most_specific vs)
        else None

  let pp_item ppf it =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " ⋈ ")
      Relational.Relation.pp_tuple ppf it.tuples

  let pp_query ppf _ = Format.pp_print_string ppf "<chain predicate>"
end

module Loop = Core.Interact.Make (Session)

let items_of chain relations =
  let rec product = function
    | [] -> [ [] ]
    | r :: rest ->
        let tails = product rest in
        List.concat_map
          (fun t -> List.map (fun tail -> t :: tail) tails)
          (Relational.Relation.tuples r)
  in
  List.map
    (fun tuples -> { tuples; mask = signature chain tuples })
    (product relations)

let run_with_goal ?rng ?strategy ~relations ~goal () =
  let chain = make relations in
  let goal_vec = of_predicates chain goal in
  let items = items_of chain relations in
  let oracle it = selects goal_vec it.mask in
  Loop.run ?rng ?strategy ~oracle ~items ()
