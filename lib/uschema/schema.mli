(** Disjunctive multiplicity schemas (DMS) and their disjunction-free
    restriction (MS), with validation of unordered XML documents.

    A schema assigns the root label and, to each label, a DME constraining
    the multiset of its children's labels.  A label without a rule admits no
    element children (its rule is the empty clause).  Text nodes (labels
    starting with ['#']) are data values, not structure, and are ignored by
    validation; attribute children (["@name"]) participate like ordinary
    labels so schemas can require attributes. *)

type t

val make : root:string -> rules:(string * Dme.t) list -> t
(** @raise Invalid_argument on duplicate rules. *)

val root : t -> string
val rule : t -> string -> Dme.t
(** Defaults to the empty-clause DME for labels without an explicit rule. *)

val rules : t -> (string * Dme.t) list
(** Explicit rules, sorted by label. *)

val labels : t -> string list
(** Root, rule heads and rule alphabets, sorted, distinct. *)

val disjunction_free : t -> bool
(** All rules disjunction-free — the MS restriction. *)

val size : t -> int
(** Total number of atoms across rules. *)

type violation = {
  at : Xmltree.Tree.path;
  label : string;
  found : Dme.Labels.t;
  expected : Dme.t;
}

val validate : t -> Xmltree.Tree.t -> (unit, violation list) result
(** Checks the root label and every node's children multiset. *)

val valid : t -> Xmltree.Tree.t -> bool

val productive : t -> string list
(** Labels admitting at least one finite valid subtree, sorted.  A label
    whose every clause requires a non-productive label is itself
    non-productive. *)

val reachable : t -> string list
(** Labels reachable from the root through rule alphabets, sorted. *)

val pp : Format.formatter -> t -> unit
val pp_violation : Format.formatter -> violation -> unit

val to_string : t -> string
(** The textual format {!parse} reads (and {!pp} prints):
    {v
    root: site
    site -> regions categories
    description -> text | parlist
    v} *)

val parse : string -> t
(** Inverse of {!to_string}: a [root:] line followed by one
    [label -> DME] rule per line (blank lines and [#] comments skipped).
    @raise Invalid_argument on malformed input. *)

val parse_result : ?source:string -> string -> (t, Core.Error.t) result
(** Non-raising variant of {!parse}: malformed input yields a structured
    {!Core.Error.t} carrying [source] (default ["<schema>"]) and the
    offending 1-based line. *)
