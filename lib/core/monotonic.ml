external now_ns : unit -> int64 = "learnq_monotonic_now_ns"

let now () = Int64.to_float (now_ns ()) *. 1e-9
