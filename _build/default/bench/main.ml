(* Entry point of the experiment harness.

   Usage:
     dune exec bench/main.exe               # all experiments + micro-benches
     dune exec bench/main.exe -- e3 e5      # selected experiments
     dune exec bench/main.exe -- micro      # micro-benchmarks only *)

let usage () =
  print_endline "usage: main.exe [e1 .. e17 | micro]...";
  print_endline "  with no arguments, runs every experiment and the";
  print_endline "  bechamel micro-benchmarks.";
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let run_experiment name =
    match List.assoc_opt name Experiments.all with
    | Some f -> f ()
    | None -> if name = "micro" then Micro.run () else usage ()
  in
  match args with
  | [] ->
      List.iter (fun (_, f) -> f ()) Experiments.all;
      Micro.run ()
  | names -> List.iter run_experiment names
