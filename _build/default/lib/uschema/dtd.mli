(** Ordered document type definitions: the classical schema formalism the
    paper's disjunctive multiplicity schemas are measured against
    ("It is known that DTD containment is in PTIME when only 1-unambiguous
    regular expressions are allowed, PSPACE-complete for general regular
    expressions…", Section 2).

    A DTD assigns the root label and, per label, a regular expression over
    labels constraining the {e sequence} of element children.  Validation,
    containment and equivalence reuse the {!Automata} substrate (regex →
    DFA, product construction), so containment here is the general-regular-
    expression decision — exponential in the worst case, in contrast with
    the grid procedure for DMS ({!Containment}).

    The XMark DTD instance ({!Benchkit.Xmark.dtd}) and experiment E10 make
    the paper's expressibility claim concrete: on ordered documents the DMS
    accepts exactly the DTD-valid ones. *)

type t

val make : root:string -> rules:(string * Automata.Regex.t) list -> t
(** Labels without a rule admit no element children (rule ε).
    @raise Invalid_argument on duplicate rules. *)

val root : t -> string
val rule : t -> string -> Automata.Regex.t
val rules : t -> (string * Automata.Regex.t) list

type violation = {
  at : Xmltree.Tree.path;
  label : string;
  found : string list;  (** the children-label word *)
  expected : Automata.Regex.t;
}

val validate : t -> Xmltree.Tree.t -> (unit, violation list) result
(** Ordered validation: every node's children-label word (text nodes
    skipped) must belong to its rule's language; the root label must
    match. *)

val valid : t -> Xmltree.Tree.t -> bool

val rule_leq : Automata.Regex.t -> Automata.Regex.t -> bool
(** Language inclusion via DFA product — the general (worst-case
    exponential) decision. *)

val leq : t -> t -> bool
(** [leq d1 d2] iff every document valid for [d1] is valid for [d2]:
    same root and rule-wise language inclusion on labels reachable in
    [d1]. *)

val equiv : t -> t -> bool

val pp : Format.formatter -> t -> unit
val pp_violation : Format.formatter -> violation -> unit
