(* Quickstart: a five-minute tour of learnq across the three data models of
   the paper — XML twig queries, relational join predicates, and graph path
   queries — all learned from examples instead of written by an expert.

   Run with:  dune exec examples/quickstart.exe *)

let section title =
  Printf.printf "\n=== %s ===\n" title

(* ------------------------------------------------------------------ *)
(* 1. XML: learn a twig query from two annotated nodes                 *)
(* ------------------------------------------------------------------ *)

let xml_demo () =
  section "XML: twig queries from annotated nodes";
  (* Two small documents; the user marks the node the query must select. *)
  let doc1 =
    Xmltree.Parse.xml
      {|<site><regions><africa><item><name>Drum</name><location>Kenya</location></item></africa></regions></site>|}
  in
  let doc2 =
    Xmltree.Parse.xml
      {|<site><regions><asia><item><name>Fan</name><location>Kyoto</location><mailbox/></item></asia></regions></site>|}
  in
  (* Annotate the two <name> elements (paths are child indices). *)
  let examples =
    [
      Xmltree.Annotated.make doc1 [ 0; 0; 0; 0 ];
      Xmltree.Annotated.make doc2 [ 0; 0; 0; 0 ];
    ]
  in
  match Twiglearn.Positive.learn_positive examples with
  | None -> print_endline "no anchored twig fits"
  | Some q ->
      Format.printf "learned twig: %a@." Twig.Query.pp q;
      Format.printf "answers on doc2: %d@."
        (List.length (Twig.Eval.select q doc2))

(* ------------------------------------------------------------------ *)
(* 2. Relational: learn a join predicate interactively                 *)
(* ------------------------------------------------------------------ *)

let relational_demo () =
  section "Relational: join predicates from labeled tuple pairs";
  let rng = Core.Prng.create 2026 in
  let inst = Relational.Generator.pair_instance ~rng () in
  Format.printf "hidden goal: %s@."
    (String.concat ", "
       (List.map (fun (i, j) -> Printf.sprintf "a%d=b%d" i j) inst.planted));
  let outcome =
    Joinlearn.Interactive.run_with_goal ~rng
      ~strategy:Joinlearn.Interactive.lattice_strategy ~left:inst.left
      ~right:inst.right ~goal:inst.planted ()
  in
  let space =
    Joinlearn.Signature.space
      ~left_arity:(Relational.Relation.arity inst.left)
      ~right_arity:(Relational.Relation.arity inst.right)
  in
  (match outcome.query with
  | Some learned ->
      Format.printf "learned:     %a@." (Joinlearn.Signature.pp space) learned
  | None -> print_endline "no consistent predicate");
  Format.printf "questions asked: %d (of %d pairs; %d pruned as uninformative)@."
    outcome.questions
    (outcome.questions + outcome.pruned)
    outcome.pruned

(* ------------------------------------------------------------------ *)
(* 3. Graph: learn a path query from labeled node pairs                *)
(* ------------------------------------------------------------------ *)

let graph_demo () =
  section "Graph: path queries from labeled city pairs";
  let rng = Core.Prng.create 7 in
  let graph = Graphdb.Generators.geo ~rng ~cities:12 () in
  let goal = Automata.Dfa.of_regex (Automata.Regex.parse "highway highway*") in
  let answers = Graphdb.Rpq.eval goal graph in
  let non_answer =
    List.concat_map (fun u -> List.init 12 (fun v -> (u, v))) (List.init 12 Fun.id)
    |> List.find (fun p -> not (List.mem p answers))
  in
  let examples =
    (List.filteri (fun i _ -> i < 3) answers |> List.map Core.Example.positive)
    @ [ Core.Example.negative non_answer ]
  in
  match Pathlearn.Pairs.learn graph examples with
  | None -> print_endline "no path query fits"
  | Some h ->
      Format.printf "learned path query: %a@." Pathlearn.Words.pp h;
      Format.printf "it selects %d of the %d goal pairs@."
        (List.length
           (List.filter
              (fun p -> Graphdb.Rpq.selects h.dfa graph p)
              answers))
        (List.length answers)

let () =
  xml_demo ();
  relational_demo ();
  graph_demo ();
  print_newline ()
