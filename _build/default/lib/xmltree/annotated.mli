(** Annotated documents: the examples of XML query learning.

    In the learning framework of Section 2 of the paper, "the examples are
    XML documents with annotated nodes": the user marks nodes the goal query
    must select (positive) or must not select (negative).  An annotated
    document pairs a tree with a node address and a polarity; a sample is a
    list of such annotations, possibly over several documents. *)

type t = { doc : Tree.t; target : Tree.path }
(** One annotation: [target] must address a node of [doc]. *)

val make : Tree.t -> Tree.path -> t
(** @raise Invalid_argument when [target] addresses no node of [doc]. *)

val target_node : t -> Tree.t
(** The annotated node. *)

val positive : Tree.t -> Tree.path -> t Core.Example.t
val negative : Tree.t -> Tree.path -> t Core.Example.t

val examples_of_answers :
  Tree.t -> answers:Tree.path list -> t Core.Example.t list
(** Labels every node of the document: paths in [answers] become positive
    examples, all other nodes negative — a fully annotated document as in
    the learning of n-ary queries from "completely annotated examples". *)

val pp : Format.formatter -> t -> unit
