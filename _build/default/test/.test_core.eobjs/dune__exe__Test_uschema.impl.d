test/test_uschema.ml: Alcotest Automata Benchkit Containment Core Depgraph Dme Docgen Dtd Infer List Multiplicity Printf QCheck QCheck_alcotest Qcontain Schema String Twig Uschema Xmltree
