lib/twig/eval.mli: Query Xmltree
