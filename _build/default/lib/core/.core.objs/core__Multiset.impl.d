lib/core/multiset.ml: Format Int List Map
