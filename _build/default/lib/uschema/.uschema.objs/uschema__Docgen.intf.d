lib/uschema/docgen.mli: Core Schema Xmltree
