(** A blocking keep-alive client for the wire protocol — what the load
    generator, the CI smoke test, and the end-to-end tests drive the
    daemon with.

    The server may close a parked keep-alive connection at any time (idle
    eviction past [max_idle_conns], drain, restart); the protocol allows
    it.  When a {!request} on a previously-used connection fails before a
    single response byte arrives, the client transparently reconnects and
    retries exactly once — the request was never processed, so the retry
    is safe.  Callers should ignore SIGPIPE (the daemon CLI and the bench
    harnesses do): a write to an evicted connection then surfaces as
    [EPIPE] and triggers the reconnect instead of killing the process. *)

type t

val connect : host:string -> port:int -> (t, string) result

val request :
  t ->
  meth:string ->
  path:string ->
  ?tenant:string ->
  ?headers:(string * string) list ->
  ?body:Json.t ->
  unit ->
  (int * Json.t, string) result
(** One round trip; returns status and parsed body.  A non-JSON body
    (e.g. [/metrics]) comes back as [Json.Str raw].  [headers] are extra
    request headers (e.g. [("X-Learnq-Trace", id)]). *)

val close : t -> unit
