/* Monotonic clock stub: CLOCK_MONOTONIC is immune to NTP slews and
   settimeofday jumps, which is what deadline arithmetic needs.  Falls back
   to gettimeofday on platforms without it (then deadlines are only as good
   as the wall clock, as before). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value learnq_monotonic_now_ns(value unit)
{
  (void)unit;
#ifdef CLOCK_MONOTONIC
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_int64((int64_t)tv.tv_sec * 1000000000
                           + (int64_t)tv.tv_usec * 1000);
  }
}
