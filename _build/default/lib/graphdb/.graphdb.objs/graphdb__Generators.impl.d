lib/graphdb/generators.ml: Array Core Fun Graph List Printf
