lib/twiglearn/approximate.mli: Core Twig Xmltree
