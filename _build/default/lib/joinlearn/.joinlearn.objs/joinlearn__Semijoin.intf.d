lib/joinlearn/semijoin.mli: Relational Signature
