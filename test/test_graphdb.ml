(* Tests for the graph substrate: graphs, RPQ evaluation, generators. *)

let qcheck = QCheck_alcotest.to_alcotest

(* A small road map:
   0 -h-> 1 -h-> 2, 0 -r-> 2, 2 -f-> 0, 1 -r-> 1 (self loop). *)
let g =
  Graphdb.Graph.make ~nodes:3
    [
      (0, "h", 1); (1, "h", 2); (0, "r", 2); (2, "f", 0); (1, "r", 1);
    ]

let dfa s = Automata.Dfa.of_regex (Automata.Regex.parse s)

let pairs = Alcotest.(list (pair int int))

let test_graph_basics () =
  Alcotest.(check int) "nodes" 3 (Graphdb.Graph.node_count g);
  Alcotest.(check int) "edges" 5 (Graphdb.Graph.edge_count g);
  Alcotest.(check (list string)) "labels" [ "f"; "h"; "r" ]
    (Graphdb.Graph.labels g);
  Alcotest.(check bool) "has_edge" true (Graphdb.Graph.has_edge g 0 "h" 1);
  Alcotest.(check bool) "no reverse edge" false (Graphdb.Graph.has_edge g 1 "h" 0);
  Alcotest.(check string) "default names" "n1" (Graphdb.Graph.name g 1);
  Alcotest.(check (option int)) "node_of_name" (Some 2)
    (Graphdb.Graph.node_of_name g "n2")

let test_graph_validation () =
  (match Graphdb.Graph.make ~nodes:2 [ (0, "x", 5) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range edge");
  match Graphdb.Graph.make ~names:[| "only" |] ~nodes:2 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "names length mismatch"

let test_rpq_single_symbol () =
  Alcotest.check pairs "h edges" [ (0, 1); (1, 2) ] (Graphdb.Rpq.eval (dfa "h") g)

let test_rpq_concatenation () =
  Alcotest.check pairs "h.h" [ (0, 2) ] (Graphdb.Rpq.eval (dfa "h h") g)

let test_rpq_star_and_union () =
  (* h+ from 0 reaches 1 and 2. *)
  Alcotest.check pairs "h+" [ (0, 1); (0, 2); (1, 2) ]
    (Graphdb.Rpq.eval (dfa "h+") g);
  (* ε is a path from every node to itself. *)
  let with_eps = Graphdb.Rpq.eval (dfa "h*") g in
  Alcotest.(check bool) "eps pairs present" true
    (List.mem (0, 0) with_eps && List.mem (2, 2) with_eps)

let test_rpq_cycles () =
  (* r on the self-loop pumps: 1 -r-> 1 any number of times. *)
  Alcotest.(check bool) "pumped loop" true
    (Graphdb.Rpq.selects (dfa "r r r") g (1, 1));
  (* h h f cycles back to 0. *)
  Alcotest.(check bool) "cycle closes" true
    (Graphdb.Rpq.selects (dfa "h h f") g (0, 0))

let test_rpq_selects_negative () =
  Alcotest.(check bool) "no f from 0" false (Graphdb.Rpq.selects (dfa "f") g (0, 2));
  Alcotest.(check bool) "unknown label" false
    (Graphdb.Rpq.selects (dfa "z") g (0, 1))

let test_witness () =
  Alcotest.(check (option (list string))) "witness h.h" (Some [ "h"; "h" ])
    (Graphdb.Rpq.witness (dfa "h h") g ~src:0 ~dst:2);
  Alcotest.(check (option (list string))) "no witness" None
    (Graphdb.Rpq.witness (dfa "f") g ~src:0 ~dst:1);
  (* Shortest witness preferred: h|h.h from 0 to 1 gives the single h. *)
  Alcotest.(check (option (list string))) "shortest" (Some [ "h" ])
    (Graphdb.Rpq.witness (dfa "h | h h") g ~src:0 ~dst:1)

let test_paths_between () =
  let ps = Graphdb.Rpq.paths_between g ~src:0 ~dst:2 ~max_len:2 in
  let words = List.map snd ps |> List.sort compare in
  Alcotest.(check (list (list string))) "two ways"
    [ [ "h"; "h" ]; [ "r" ] ]
    words

let test_words_between_dedup () =
  (* Both r-loop counts give distinct words, but duplicates collapse. *)
  let ws = Graphdb.Rpq.words_between g ~src:0 ~dst:2 ~max_len:3 in
  Alcotest.(check bool) "sorted distinct" true
    (List.sort_uniq compare ws = ws)

let test_geo_generator () =
  let rng = Core.Prng.create 42 in
  let geo = Graphdb.Generators.geo ~rng ~cities:15 () in
  Alcotest.(check int) "city count" 15 (Graphdb.Graph.node_count geo);
  Alcotest.(check string) "city names" "city0" (Graphdb.Graph.name geo 0);
  let labels = Graphdb.Graph.labels geo in
  Alcotest.(check bool) "has highways and roads" true
    (List.mem "highway" labels && List.mem "road" labels);
  (* The highway backbone is a two-way cycle: some pair connected both ways. *)
  let hw = Graphdb.Rpq.eval (dfa "highway") geo in
  Alcotest.(check bool) "bidirectional backbone" true
    (List.exists (fun (u, v) -> List.mem (v, u) hw) hw)

let test_geo_deterministic () =
  let g1 = Graphdb.Generators.geo ~rng:(Core.Prng.create 1) ~cities:10 () in
  let g2 = Graphdb.Generators.geo ~rng:(Core.Prng.create 1) ~cities:10 () in
  Alcotest.(check bool) "same edges" true
    (Graphdb.Graph.edges g1 = Graphdb.Graph.edges g2)

let prop_eval_selects_agree =
  QCheck.Test.make ~name:"eval and selects agree" ~count:50 QCheck.small_int
    (fun seed ->
      let rng = Core.Prng.create seed in
      let graph =
        Graphdb.Generators.random ~rng ~nodes:6 ~edges:10
          ~labels:[ "a"; "b" ]
      in
      let d = dfa "a b* | b a" in
      let answers = Graphdb.Rpq.eval d graph in
      List.for_all (fun p -> Graphdb.Rpq.selects d graph p) answers
      &&
      let all_pairs =
        List.concat_map
          (fun u -> List.init 6 (fun v -> (u, v)))
          (List.init 6 Fun.id)
      in
      List.for_all
        (fun p -> List.mem p answers = Graphdb.Rpq.selects d graph p)
        all_pairs)

let prop_witness_is_accepted_path =
  QCheck.Test.make ~name:"witness spells an accepted connecting word"
    ~count:50 QCheck.small_int
    (fun seed ->
      let rng = Core.Prng.create seed in
      let graph =
        Graphdb.Generators.random ~rng ~nodes:5 ~edges:12 ~labels:[ "a"; "b" ]
      in
      let d = dfa "a+ b?" in
      List.for_all
        (fun (u, v) ->
          match Graphdb.Rpq.witness d graph ~src:u ~dst:v with
          | None -> false
          | Some word ->
              Automata.Dfa.accepts d word
              && List.mem word
                   (Graphdb.Rpq.words_between graph ~src:u ~dst:v
                      ~max_len:(List.length word)))
        (Graphdb.Rpq.eval d graph))

(* Independent reference for {!Graphdb.Rpq.eval}: explicit reachability in
   the product of the graph with the query DFA — a (node, state) pair steps
   to (node', state') along every matching edge; (u, v) is an answer when
   (u, start) reaches (v, f) with f final.  Quadratic and allocation-happy,
   which is exactly the point: it shares no code with the engine's on-the-fly
   product construction. *)
let naive_rpq (d : Automata.Dfa.t) graph =
  let nodes = Graphdb.Graph.node_count graph in
  let edges = Graphdb.Graph.edges graph in
  let answers = ref [] in
  for src = 0 to nodes - 1 do
    let reached = Array.make_matrix nodes d.size false in
    reached.(src).(d.start) <- true;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (u, label, v) ->
          match Automata.Dfa.symbol_index d label with
          | None -> ()
          | Some s ->
              for q = 0 to d.size - 1 do
                if reached.(u).(q) then begin
                  let q' = d.next.(q).(s) in
                  if not reached.(v).(q') then begin
                    reached.(v).(q') <- true;
                    changed := true
                  end
                end
              done)
        edges
    done;
    for v = 0 to nodes - 1 do
      if
        Array.exists Fun.id
          (Array.mapi (fun q r -> r && d.final.(q)) reached.(v))
      then answers := (src, v) :: !answers
    done
  done;
  List.sort compare !answers

let prop_eval_matches_naive_reference =
  QCheck.Test.make ~name:"eval matches the naive product-automaton reference"
    ~count:100 QCheck.small_int (fun seed ->
      let rng = Core.Prng.create seed in
      let size = 1 + Core.Prng.int rng 8 in
      let graph = Fuzz.Gen.graph rng ~size in
      let d = Automata.Dfa.of_regex (Fuzz.Gen.regex rng ~size:4) in
      Graphdb.Rpq.eval d graph = naive_rpq d graph)

let prop_eval_within_partial_subset =
  QCheck.Test.make
    ~name:"eval_within partial answers are a subset of the full answer"
    ~count:100 QCheck.small_int (fun seed ->
      let rng = Core.Prng.create seed in
      let size = 2 + Core.Prng.int rng 8 in
      let graph = Fuzz.Gen.graph rng ~size in
      let d = Automata.Dfa.of_regex (Fuzz.Gen.regex rng ~size:4) in
      let full = Graphdb.Rpq.eval d graph in
      let fuel = 1 + Core.Prng.int rng (2 * size) in
      match Graphdb.Rpq.eval_within (Core.Budget.create ~fuel ()) d graph with
      | Core.Budget.Done answers -> answers = full
      | Core.Budget.Exhausted { partial; _ } -> (
          match partial with
          | None -> true
          | Some partial -> List.for_all (fun p -> List.mem p full) partial))

let () =
  Alcotest.run "graphdb"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "validation" `Quick test_graph_validation;
        ] );
      ( "rpq",
        [
          Alcotest.test_case "single symbol" `Quick test_rpq_single_symbol;
          Alcotest.test_case "concatenation" `Quick test_rpq_concatenation;
          Alcotest.test_case "star and union" `Quick test_rpq_star_and_union;
          Alcotest.test_case "cycles" `Quick test_rpq_cycles;
          Alcotest.test_case "negatives" `Quick test_rpq_selects_negative;
          Alcotest.test_case "witness" `Quick test_witness;
          Alcotest.test_case "paths between" `Quick test_paths_between;
          Alcotest.test_case "words dedup" `Quick test_words_between_dedup;
          qcheck prop_eval_selects_agree;
          qcheck prop_witness_is_accepted_path;
          qcheck prop_eval_matches_naive_reference;
          qcheck prop_eval_within_partial_subset;
        ] );
      ( "generators",
        [
          Alcotest.test_case "geo" `Quick test_geo_generator;
          Alcotest.test_case "deterministic" `Quick test_geo_deterministic;
        ] );
    ]
