type t = {
  names : string array;
  adj : (string * int) list array;
  edge_count : int;
}

let make ?names ~nodes edges =
  if nodes < 0 then invalid_arg "Graph.make: negative node count";
  let names =
    match names with
    | Some a ->
        if Array.length a <> nodes then
          invalid_arg "Graph.make: names length mismatch";
        a
    | None -> Array.init nodes (fun i -> Printf.sprintf "n%d" i)
  in
  let adj = Array.make nodes [] in
  List.iter
    (fun (src, label, dst) ->
      if src < 0 || src >= nodes || dst < 0 || dst >= nodes then
        invalid_arg "Graph.make: edge endpoint out of range";
      adj.(src) <- (label, dst) :: adj.(src))
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.rev l) adj;
  { names; adj; edge_count = List.length edges }

let node_count g = Array.length g.adj
let edge_count g = g.edge_count
let name g i = g.names.(i)

let node_of_name g n =
  let found = ref None in
  Array.iteri (fun i s -> if String.equal s n then found := Some i) g.names;
  !found

let successors g i = g.adj.(i)

let edges g =
  let acc = ref [] in
  Array.iteri
    (fun src succ ->
      List.iter (fun (label, dst) -> acc := (src, label, dst) :: !acc) succ)
    g.adj;
  List.rev !acc

let labels g =
  let module S = Set.Make (String) in
  Array.fold_left
    (fun acc succ ->
      List.fold_left (fun acc (l, _) -> S.add l acc) acc succ)
    S.empty g.adj
  |> S.elements

let has_edge g src label dst =
  List.exists
    (fun (l, d) -> String.equal l label && d = dst)
    g.adj.(src)

let pp ppf g =
  Format.fprintf ppf "@[<v>graph(%d nodes, %d edges)" (node_count g)
    g.edge_count;
  Array.iteri
    (fun src succ ->
      List.iter
        (fun (label, dst) ->
          Format.fprintf ppf "@,%s -%s-> %s" g.names.(src) label g.names.(dst))
        succ)
    g.adj;
  Format.fprintf ppf "@]"
