lib/uschema/dtd.ml: Automata Format Hashtbl List Map Set String Xmltree
