lib/graphdb/rpq.mli: Automata Graph
