type t = { stores : Store.t array }

let of_stores stores = { stores }

let of_trees ?pool trees =
  match pool with
  | None -> { stores = Array.map Store.of_tree trees }
  | Some p -> { stores = Core.Pool.map_array p Store.of_tree trees }

let shards t = Array.length t.stores
let store t i = t.stores.(i)

let total_nodes t =
  Array.fold_left (fun acc s -> acc + Store.size s) 0 t.stores

let map ?pool ?(chunk = 1) t f =
  let idx = Array.init (shards t) Fun.id in
  match pool with
  | None -> Array.map (fun i -> f i t.stores.(i)) idx
  | Some p ->
      Core.Pool.map_array_chunked p ~chunk (fun i -> f i t.stores.(i)) idx

let select ?pool t pat =
  map ?pool t (fun _ s -> Twigjoin.select_ids s pat)
