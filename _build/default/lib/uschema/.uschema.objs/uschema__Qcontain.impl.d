lib/uschema/qcontain.ml: Core Depgraph Docgen List Twig Xmltree
