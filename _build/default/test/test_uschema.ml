(* Tests for disjunctive multiplicity schemas: expressions, validation,
   containment, dependency graphs, inference. *)

open Uschema

let qcheck = QCheck_alcotest.to_alcotest

let ms xs = Dme.Labels.of_list xs

(* ------------------------------------------------------------------ *)
(* Multiplicity                                                        *)
(* ------------------------------------------------------------------ *)

let test_multiplicity_satisfies () =
  let open Multiplicity in
  Alcotest.(check bool) "1 sat One" true (satisfies One 1);
  Alcotest.(check bool) "0 not One" false (satisfies One 0);
  Alcotest.(check bool) "2 not One" false (satisfies One 2);
  Alcotest.(check bool) "0 sat Opt" true (satisfies Opt 0);
  Alcotest.(check bool) "2 not Opt" false (satisfies Opt 2);
  Alcotest.(check bool) "5 sat Plus" true (satisfies Plus 5);
  Alcotest.(check bool) "0 not Plus" false (satisfies Plus 0);
  Alcotest.(check bool) "0 sat Star" true (satisfies Star 0)

let test_multiplicity_leq () =
  let open Multiplicity in
  Alcotest.(check bool) "One ≤ Opt" true (leq One Opt);
  Alcotest.(check bool) "One ≤ Plus" true (leq One Plus);
  Alcotest.(check bool) "One ≤ Star" true (leq One Star);
  Alcotest.(check bool) "Opt ≤ Star" true (leq Opt Star);
  Alcotest.(check bool) "Plus ≤ Star" true (leq Plus Star);
  Alcotest.(check bool) "Opt ≰ One" false (leq Opt One);
  Alcotest.(check bool) "Star ≰ Plus" false (leq Star Plus);
  Alcotest.(check bool) "Plus ≰ Opt" false (leq Plus Opt)

let test_multiplicity_of_counts () =
  let open Multiplicity in
  Alcotest.(check bool) "1,1 -> One" true (of_counts ~lo:1 ~hi:1 = One);
  Alcotest.(check bool) "0,1 -> Opt" true (of_counts ~lo:0 ~hi:1 = Opt);
  Alcotest.(check bool) "1,3 -> Plus" true (of_counts ~lo:1 ~hi:3 = Plus);
  Alcotest.(check bool) "0,5 -> Star" true (of_counts ~lo:0 ~hi:5 = Star)

(* ------------------------------------------------------------------ *)
(* DME                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dme_parse_pp () =
  let e = Dme.parse "name price? bidder* | closed" in
  Alcotest.(check int) "two clauses" 2 (List.length e);
  Alcotest.(check string) "roundtrip" "bidder* name price? | closed"
    (Dme.to_string e);
  let eps = Dme.parse "eps" in
  Alcotest.(check bool) "eps" true (Dme.satisfies eps (ms []))

let test_dme_satisfies () =
  let e = Dme.parse "a b? c*" in
  Alcotest.(check bool) "minimal" true (Dme.satisfies e (ms [ "a" ]));
  Alcotest.(check bool) "full" true (Dme.satisfies e (ms [ "a"; "b"; "c"; "c" ]));
  Alcotest.(check bool) "missing a" false (Dme.satisfies e (ms [ "b" ]));
  Alcotest.(check bool) "two b" false (Dme.satisfies e (ms [ "a"; "b"; "b" ]));
  Alcotest.(check bool) "foreign label" false (Dme.satisfies e (ms [ "a"; "z" ]))

let test_dme_disjunction () =
  let e = Dme.parse "text | parlist" in
  Alcotest.(check bool) "left" true (Dme.satisfies e (ms [ "text" ]));
  Alcotest.(check bool) "right" true (Dme.satisfies e (ms [ "parlist" ]));
  Alcotest.(check bool) "both" false
    (Dme.satisfies e (ms [ "text"; "parlist" ]));
  Alcotest.(check bool) "neither" false (Dme.satisfies e (ms []))

let test_dme_duplicate_label_rejected () =
  match Dme.clause [ ("a", Multiplicity.One); ("a", Multiplicity.Star) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate labels must be rejected"

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

let leq s1 s2 = Containment.dme_leq (Dme.parse s1) (Dme.parse s2)

let test_containment_basic () =
  Alcotest.(check bool) "refl" true (leq "a b?" "a b?");
  Alcotest.(check bool) "One ⊆ Plus" true (leq "a" "a+");
  Alcotest.(check bool) "a ⊆ a b*" true (leq "a" "a b*");
  Alcotest.(check bool) "a b ⊄ a" false (leq "a b" "a");
  Alcotest.(check bool) "a+ ⊄ a" false (leq "a+" "a");
  Alcotest.(check bool) "clause into disjunction" true (leq "a" "a | b");
  Alcotest.(check bool) "disjunction into star" true (leq "a | a? b?" "a* b*")

let test_containment_union_coverage () =
  (* a* is covered by the union a? | a+ even though neither clause alone
     contains it — the case a single-clause inclusion check gets wrong. *)
  Alcotest.(check bool) "a* ⊆ a? | a+" true (leq "a*" "a? | a+");
  Alcotest.(check bool) "a? | a+ ⊆ a*" true (leq "a? | a+" "a*");
  Alcotest.(check bool) "a* ⊄ a? | a+ b" false (leq "a*" "a? | a+ b")

let test_counterexample () =
  (match Containment.counterexample (Dme.parse "a*") (Dme.parse "a?") with
  | Some w ->
      Alcotest.(check bool) "cex satisfies e1" true
        (Dme.satisfies (Dme.parse "a*") w);
      Alcotest.(check bool) "cex violates e2" false
        (Dme.satisfies (Dme.parse "a?") w)
  | None -> Alcotest.fail "a* ⊄ a?");
  Alcotest.(check bool) "no cex when contained" true
    (Containment.counterexample (Dme.parse "a") (Dme.parse "a?") = None)

(* Random DMEs over a 3-letter alphabet: the grid procedure agrees with
   brute-force enumeration of multisets with counts ≤ 3. *)
let gen_dme =
  let open QCheck.Gen in
  let mult = oneofl Multiplicity.[ One; Opt; Plus; Star ] in
  let clause =
    let* present = list_size (0 -- 3) (oneofl [ "a"; "b"; "c" ]) in
    let labels = List.sort_uniq compare present in
    let* mults = list_repeat (List.length labels) mult in
    return (Dme.clause (List.combine labels mults))
  in
  map Dme.make (list_size (1 -- 3) clause)

let arbitrary_dme = QCheck.make ~print:Dme.to_string gen_dme

let all_small_multisets =
  let counts = [ 0; 1; 2; 3 ] in
  List.concat_map
    (fun ca ->
      List.concat_map
        (fun cb ->
          List.map
            (fun cc ->
              Dme.Labels.(
                add ~count:ca "a" (add ~count:cb "b" (add ~count:cc "c" empty))))
            counts)
        counts)
    counts

let prop_containment_vs_bruteforce =
  QCheck.Test.make ~name:"dme_leq agrees with brute force" ~count:300
    (QCheck.pair arbitrary_dme arbitrary_dme)
    (fun (e1, e2) ->
      let brute =
        List.for_all
          (fun w -> (not (Dme.satisfies e1 w)) || Dme.satisfies e2 w)
          all_small_multisets
      in
      Containment.dme_leq e1 e2 = brute)

let prop_counterexample_is_valid =
  QCheck.Test.make ~name:"counterexample is a real witness" ~count:300
    (QCheck.pair arbitrary_dme arbitrary_dme)
    (fun (e1, e2) ->
      match Containment.counterexample e1 e2 with
      | None -> true
      | Some w -> Dme.satisfies e1 w && not (Dme.satisfies e2 w))

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let library_schema =
  Schema.make ~root:"library"
    ~rules:
      [
        ("library", Dme.parse "book+");
        ("book", Dme.parse "title author+ year?");
      ]

let test_validate_ok () =
  let doc =
    Xmltree.Parse.term "library(book(title,author),book(title,author,author,year))"
  in
  Alcotest.(check bool) "valid" true (Schema.valid library_schema doc)

let test_validate_violations () =
  let doc = Xmltree.Parse.term "library(book(title),book(title,author))" in
  match Schema.validate library_schema doc with
  | Ok () -> Alcotest.fail "missing author must be reported"
  | Error vs ->
      Alcotest.(check int) "one violation" 1 (List.length vs);
      let v = List.hd vs in
      Alcotest.(check string) "at the book" "book" v.label

let test_validate_wrong_root () =
  let doc = Xmltree.Parse.term "shelf(book(title,author))" in
  Alcotest.(check bool) "wrong root" false (Schema.valid library_schema doc)

let test_validate_leaf_label () =
  (* A label without a rule admits no element children. *)
  let doc = Xmltree.Parse.term "library(book(title(subtitle),author))" in
  Alcotest.(check bool) "title must be a leaf" false
    (Schema.valid library_schema doc);
  let with_text = Xmltree.Parse.term "library(book(title(#T),author))" in
  Alcotest.(check bool) "text children are fine" true
    (Schema.valid library_schema with_text)

let test_schema_parse_roundtrip () =
  let text = "root: library\nlibrary -> book+\nbook -> author+ title year?" in
  let s = Schema.parse text in
  Alcotest.(check string) "root" "library" (Schema.root s);
  let s2 = Schema.parse (Schema.to_string s) in
  Alcotest.(check bool) "roundtrip equivalent" true
    (Containment.schema_equiv s s2);
  (* Comments and blank lines are skipped. *)
  let s3 = Schema.parse ("# a comment\n\n" ^ text) in
  Alcotest.(check bool) "comments skipped" true (Containment.schema_equiv s s3);
  match Schema.parse "library -> book" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing root line must be rejected"

let test_schema_containment () =
  let s1 =
    Schema.make ~root:"library"
      ~rules:[ ("library", Dme.parse "book+"); ("book", Dme.parse "title author") ]
  in
  Alcotest.(check bool) "s1 ⊆ library_schema" true
    (Containment.schema_leq s1 library_schema);
  Alcotest.(check bool) "library_schema ⊄ s1" false
    (Containment.schema_leq library_schema s1);
  Alcotest.(check bool) "equiv self" true
    (Containment.schema_equiv library_schema library_schema)

let test_schema_productive_reachable () =
  let s =
    Schema.make ~root:"r"
      ~rules:
        [
          ("r", Dme.parse "a | b");
          ("a", Dme.parse "a");  (* requires itself: not productive *)
          ("b", Dme.parse "eps");
          ("z", Dme.parse "eps");  (* not reachable *)
        ]
  in
  Alcotest.(check bool) "a not productive" true
    (not (List.mem "a" (Schema.productive s)));
  Alcotest.(check bool) "b productive" true (List.mem "b" (Schema.productive s));
  Alcotest.(check bool) "z not reachable" true
    (not (List.mem "z" (Schema.reachable s)));
  Alcotest.(check bool) "a reachable" true (List.mem "a" (Schema.reachable s))

(* ------------------------------------------------------------------ *)
(* Dependency graphs                                                   *)
(* ------------------------------------------------------------------ *)

let auction_graph = Depgraph.of_schema Benchkit.Xmark.schema

let test_depgraph_edges () =
  Alcotest.(check bool) "possible site->regions" true
    (List.mem ("site", "regions") (Depgraph.possible_edges auction_graph));
  Alcotest.(check bool) "required item->location" true
    (Depgraph.label_implied auction_graph ~at:"item" ~child:"location");
  Alcotest.(check bool) "mailbox optional" false
    (Depgraph.label_implied auction_graph ~at:"item" ~child:"mailbox")

let test_satisfiable () =
  let sat s = Depgraph.satisfiable auction_graph (Twig.Parse.query s) in
  Alcotest.(check bool) "item path" true (sat "/site/regions/africa/item");
  Alcotest.(check bool) "descendant keyword" true (sat "//keyword");
  Alcotest.(check bool) "wrong nesting" false (sat "/site/people/item");
  Alcotest.(check bool) "unknown label" false (sat "//spaceship");
  Alcotest.(check bool) "filter satisfiable" true
    (sat "//person[address/city]");
  Alcotest.(check bool) "filter unsatisfiable" false
    (sat "//person[address/keyword]")

let test_filter_implied () =
  let fe s =
    match (Twig.Parse.query ("//x" ^ s) : Twig.Query.t) with
    | [ { filters = [ e ]; _ } ] -> e
    | _ -> Alcotest.fail "unexpected filter parse"
  in
  Alcotest.(check bool) "location required of item" true
    (Depgraph.filter_implied auction_graph ~at:"item" (fe "[location]"));
  Alcotest.(check bool) "mailbox not implied" false
    (Depgraph.filter_implied auction_graph ~at:"item" (fe "[mailbox]"));
  Alcotest.(check bool) "deep required chain" true
    (Depgraph.filter_implied auction_graph ~at:"closed_auction"
       (fe "[seller/@person]"));
  (* The disjunction-aware case: every description has a text descendant,
     through either clause. *)
  Alcotest.(check bool) "guaranteed through disjunction" true
    (Depgraph.filter_implied auction_graph ~at:"description" (fe "[.//text]"));
  Alcotest.(check bool) "text not a required child" false
    (Depgraph.filter_implied auction_graph ~at:"description" (fe "[text]"));
  Alcotest.(check bool) "keyword not guaranteed" false
    (Depgraph.filter_implied auction_graph ~at:"description" (fe "[.//keyword]"))

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

let test_infer_simple () =
  let docs =
    [
      Xmltree.Parse.term "library(book(title,author))";
      Xmltree.Parse.term "library(book(title,author,author,year),book(title,author))";
    ]
  in
  match Infer.infer docs with
  | None -> Alcotest.fail "inference must succeed"
  | Some s ->
      List.iter
        (fun d -> Alcotest.(check bool) "validates input" true (Schema.valid s d))
        docs;
      Alcotest.(check bool) "author generalized to +" true
        (Containment.dme_leq (Dme.parse "author+ title year?") (Schema.rule s "book"))

let test_infer_disjunction () =
  let docs =
    [
      Xmltree.Parse.term "d(text)";
      Xmltree.Parse.term "d(parlist)";
    ]
  in
  match Infer.infer docs with
  | None -> Alcotest.fail "inference must succeed"
  | Some s ->
      Alcotest.(check bool) "keeps the disjunction" true
        (Containment.dme_equiv (Dme.parse "text | parlist") (Schema.rule s "d"))

let test_infer_absorbs_subset_support () =
  (* Supports {a} ⊂ {a,b} merge into one clause with optional b. *)
  let docs = [ Xmltree.Parse.term "r(a)"; Xmltree.Parse.term "r(a,b)" ] in
  match Infer.infer docs with
  | None -> Alcotest.fail "inference must succeed"
  | Some s ->
      Alcotest.(check bool) "single clause a b?" true
        (Containment.dme_equiv (Dme.parse "a b?") (Schema.rule s "r"))

let test_infer_root_mismatch () =
  Alcotest.(check bool) "roots disagree" true
    (Infer.infer [ Xmltree.Parse.term "a"; Xmltree.Parse.term "b" ] = None);
  Alcotest.(check bool) "empty input" true (Infer.infer [] = None)

let test_infer_disjunction_free () =
  let docs = [ Xmltree.Parse.term "d(text)"; Xmltree.Parse.term "d(parlist)" ] in
  match Infer.infer_disjunction_free docs with
  | None -> Alcotest.fail "inference must succeed"
  | Some s ->
      Alcotest.(check bool) "single clause" true (Schema.disjunction_free s);
      List.iter
        (fun d -> Alcotest.(check bool) "still validates" true (Schema.valid s d))
        docs

let test_infer_in_the_limit () =
  (* Stream documents of a hidden schema; the inferred schema converges to
     an equivalent one (E9 in miniature). *)
  let hidden =
    Schema.make ~root:"r"
      ~rules:[ ("r", Dme.parse "a+ b?"); ("a", Dme.parse "c | d") ]
  in
  let stream =
    [
      Xmltree.Parse.term "r(a(c))";
      Xmltree.Parse.term "r(a(d),b)";
      Xmltree.Parse.term "r(a(c),a(d),a(c))";
      Xmltree.Parse.term "r(a(d),a(c),b)";
    ]
  in
  let learn docs = Infer.infer docs in
  let verdict =
    Core.Limit.run ~learn
      ~equiv:(fun s1 s2 -> Containment.schema_equiv s1 s2)
      ~target:hidden ~stream
  in
  Alcotest.(check bool) "converges" true (Core.Limit.converged verdict)

let prop_inferred_validates_inputs =
  let gen_doc =
    let open QCheck.Gen in
    let leaf = oneofl [ "x"; "y" ] in
    let mid = list_size (1 -- 3) (map Xmltree.Tree.leaf leaf) in
    map (fun kids -> Xmltree.Tree.node "root" kids)
      (list_size (0 -- 4) (map (Xmltree.Tree.node "e") mid))
  in
  QCheck.Test.make ~name:"inferred schema validates its sample" ~count:200
    (QCheck.make ~print:(fun ds -> String.concat ";" (List.map Xmltree.Tree.to_string ds))
       QCheck.Gen.(list_size (1 -- 4) gen_doc))
    (fun docs ->
      match Infer.infer docs with
      | None -> false
      | Some s -> List.for_all (Schema.valid s) docs)

(* ------------------------------------------------------------------ *)
(* Ordered DTDs                                                        *)
(* ------------------------------------------------------------------ *)

let library_dtd =
  Dtd.make ~root:"library"
    ~rules:
      [
        ("library", Automata.Regex.parse "book+");
        ("book", Automata.Regex.parse "title author+ year?");
      ]

let test_dtd_validate () =
  let ok = Xmltree.Parse.term "library(book(title,author,author,year))" in
  Alcotest.(check bool) "ordered ok" true (Dtd.valid library_dtd ok);
  (* The same children out of order: rejected by the DTD... *)
  let reordered = Xmltree.Parse.term "library(book(author,title))" in
  Alcotest.(check bool) "order matters" false (Dtd.valid library_dtd reordered);
  (* ... but accepted by the corresponding DMS. *)
  Alcotest.(check bool) "unordered schema accepts" true
    (Schema.valid library_schema reordered)

let test_dtd_violations () =
  let bad = Xmltree.Parse.term "library(book(title))" in
  match Dtd.validate library_dtd bad with
  | Ok () -> Alcotest.fail "missing author must be reported"
  | Error [ v ] -> Alcotest.(check string) "at book" "book" v.label
  | Error _ -> Alcotest.fail "single violation expected"

let test_dtd_rule_leq () =
  let r = Automata.Regex.parse in
  Alcotest.(check bool) "a ⊆ a|b" true (Dtd.rule_leq (r "a") (r "a | b"));
  Alcotest.(check bool) "a+ ⊆ a*" true (Dtd.rule_leq (r "a+") (r "a*"));
  Alcotest.(check bool) "a* ⊄ a+" false (Dtd.rule_leq (r "a*") (r "a+"));
  Alcotest.(check bool) "alphabet escape" false
    (Dtd.rule_leq (r "a c?") (r "a | b"));
  Alcotest.(check bool) "unordered vs ordered" false
    (Dtd.rule_leq (r "a b | b a") (r "a b"))

let test_dtd_containment () =
  let d1 =
    Dtd.make ~root:"library"
      ~rules:
        [
          ("library", Automata.Regex.parse "book");
          ("book", Automata.Regex.parse "title author");
        ]
  in
  Alcotest.(check bool) "d1 ⊆ library_dtd" true (Dtd.leq d1 library_dtd);
  Alcotest.(check bool) "library_dtd ⊄ d1" false (Dtd.leq library_dtd d1);
  Alcotest.(check bool) "equiv self" true (Dtd.equiv library_dtd library_dtd)

let test_xmark_dtd_agrees_with_dms () =
  List.iter
    (fun seed ->
      let doc = Benchkit.Xmark.generate ~seed () in
      Alcotest.(check bool) "DTD accepts generated" true
        (Dtd.valid Benchkit.Xmark.dtd doc);
      Alcotest.(check bool) "DMS accepts generated" true
        (Schema.valid Benchkit.Xmark.schema doc);
      (* Permuted siblings: only the unordered schema keeps accepting. *)
      let rng = Core.Prng.create seed in
      let permuted = Benchkit.Mutate.permute_children rng doc in
      Alcotest.(check bool) "DMS accepts permuted" true
        (Schema.valid Benchkit.Xmark.schema permuted))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Random valid documents                                              *)
(* ------------------------------------------------------------------ *)

let test_docgen_validates () =
  List.iter
    (fun seed ->
      let rng = Core.Prng.create seed in
      match Docgen.generate ~rng Benchkit.Xmark.schema with
      | None -> Alcotest.fail "the XMark schema is productive"
      | Some doc ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d validates" seed)
            true
            (Schema.valid Benchkit.Xmark.schema doc))
    [ 1; 2; 3; 4; 5 ]

let test_docgen_recursive_schema_terminates () =
  (* a → a? b: unboundedly deep valid trees exist; the generator must stop
     at the cap and still be valid. *)
  let s =
    Schema.make ~root:"a" ~rules:[ ("a", Dme.parse "a? b") ]
  in
  let rng = Core.Prng.create 7 in
  match Docgen.generate ~rng ~max_depth:5 s with
  | None -> Alcotest.fail "productive"
  | Some doc ->
      Alcotest.(check bool) "valid" true (Schema.valid s doc);
      Alcotest.(check bool) "depth bounded" true (Xmltree.Tree.depth doc <= 6)

let test_docgen_unproductive () =
  let s = Schema.make ~root:"a" ~rules:[ ("a", Dme.parse "a") ] in
  let rng = Core.Prng.create 1 in
  Alcotest.(check bool) "no finite document" true
    (Docgen.generate ~rng s = None)

let prop_docgen_always_valid =
  QCheck.Test.make ~name:"generated documents validate" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Core.Prng.create seed in
      let s =
        Schema.make ~root:"r"
          ~rules:
            [
              ("r", Dme.parse "a+ b?");
              ("a", Dme.parse "c | d e*");
              ("d", Dme.parse "a? | c+");
            ]
      in
      match Docgen.generate ~rng ~max_depth:6 s with
      | None -> false
      | Some doc -> Schema.valid s doc)

(* ------------------------------------------------------------------ *)
(* Containment in the presence of a schema                             *)
(* ------------------------------------------------------------------ *)

let test_qcontain_vacuous () =
  let g = Depgraph.of_schema Benchkit.Xmark.schema in
  let q1 = Twig.Parse.query "/site/people/item" in
  Alcotest.(check bool) "unsatisfiable side is contained" true
    (Qcontain.contained_wrt g q1 (Twig.Parse.query "//keyword") = `Yes)

let test_qcontain_absolute () =
  let g = Depgraph.of_schema Benchkit.Xmark.schema in
  Alcotest.(check bool) "absolute containment lifts" true
    (Qcontain.contained_wrt g
       (Twig.Parse.query "/site/people/person/name")
       (Twig.Parse.query "//name")
    = `Yes)

let test_qcontain_schema_only () =
  (* [location] is implied at item: the queries differ only by an implied
     filter, so they are equivalent w.r.t. the schema though incomparable
     absolutely. *)
  let g = Depgraph.of_schema Benchkit.Xmark.schema in
  let with_f = Twig.Parse.query "//item[location]/name" in
  let without = Twig.Parse.query "//item/name" in
  Alcotest.(check bool) "not absolutely contained" false
    (Twig.Contain.subsumed without with_f);
  Alcotest.(check bool) "equivalent wrt schema" true
    (Qcontain.equivalent_wrt g with_f without = `Yes)

let test_qcontain_refuted () =
  let g = Depgraph.of_schema Benchkit.Xmark.schema in
  let q1 = Twig.Parse.query "//item/name" in
  let q2 = Twig.Parse.query "//item[mailbox]/name" in
  match Qcontain.contained_wrt g q1 q2 with
  | `No doc ->
      Alcotest.(check bool) "witness is valid" true
        (Schema.valid Benchkit.Xmark.schema doc);
      let a1 = Twig.Eval.select q1 doc and a2 = Twig.Eval.select q2 doc in
      Alcotest.(check bool) "witness distinguishes" true
        (List.exists (fun p -> not (List.mem p a2)) a1)
  | `Yes -> Alcotest.fail "mailbox is optional: containment must fail"
  | `Unknown -> Alcotest.fail "a counterexample should be easy to sample"

let () =
  Alcotest.run "uschema"
    [
      ( "multiplicity",
        [
          Alcotest.test_case "satisfies" `Quick test_multiplicity_satisfies;
          Alcotest.test_case "leq" `Quick test_multiplicity_leq;
          Alcotest.test_case "of_counts" `Quick test_multiplicity_of_counts;
        ] );
      ( "dme",
        [
          Alcotest.test_case "parse/pp" `Quick test_dme_parse_pp;
          Alcotest.test_case "satisfies" `Quick test_dme_satisfies;
          Alcotest.test_case "disjunction" `Quick test_dme_disjunction;
          Alcotest.test_case "duplicate labels" `Quick test_dme_duplicate_label_rejected;
        ] );
      ( "containment",
        [
          Alcotest.test_case "basic" `Quick test_containment_basic;
          Alcotest.test_case "union coverage" `Quick test_containment_union_coverage;
          Alcotest.test_case "counterexample" `Quick test_counterexample;
          qcheck prop_containment_vs_bruteforce;
          qcheck prop_counterexample_is_valid;
        ] );
      ( "schema",
        [
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "violations" `Quick test_validate_violations;
          Alcotest.test_case "wrong root" `Quick test_validate_wrong_root;
          Alcotest.test_case "leaf labels" `Quick test_validate_leaf_label;
          Alcotest.test_case "parse roundtrip" `Quick test_schema_parse_roundtrip;
          Alcotest.test_case "containment" `Quick test_schema_containment;
          Alcotest.test_case "productive/reachable" `Quick test_schema_productive_reachable;
        ] );
      ( "depgraph",
        [
          Alcotest.test_case "edges" `Quick test_depgraph_edges;
          Alcotest.test_case "satisfiable" `Quick test_satisfiable;
          Alcotest.test_case "filter implied" `Quick test_filter_implied;
        ] );
      ( "dtd",
        [
          Alcotest.test_case "validate" `Quick test_dtd_validate;
          Alcotest.test_case "violations" `Quick test_dtd_violations;
          Alcotest.test_case "rule containment" `Quick test_dtd_rule_leq;
          Alcotest.test_case "dtd containment" `Quick test_dtd_containment;
          Alcotest.test_case "xmark dtd vs dms" `Quick test_xmark_dtd_agrees_with_dms;
        ] );
      ( "docgen",
        [
          Alcotest.test_case "validates" `Quick test_docgen_validates;
          Alcotest.test_case "recursive terminates" `Quick test_docgen_recursive_schema_terminates;
          Alcotest.test_case "unproductive" `Quick test_docgen_unproductive;
          qcheck prop_docgen_always_valid;
        ] );
      ( "qcontain",
        [
          Alcotest.test_case "vacuous" `Quick test_qcontain_vacuous;
          Alcotest.test_case "absolute lifts" `Quick test_qcontain_absolute;
          Alcotest.test_case "schema-only equivalence" `Quick test_qcontain_schema_only;
          Alcotest.test_case "refutation with witness" `Quick test_qcontain_refuted;
        ] );
      ( "infer",
        [
          Alcotest.test_case "simple" `Quick test_infer_simple;
          Alcotest.test_case "disjunction" `Quick test_infer_disjunction;
          Alcotest.test_case "absorbs subset support" `Quick test_infer_absorbs_subset_support;
          Alcotest.test_case "root mismatch" `Quick test_infer_root_mismatch;
          Alcotest.test_case "disjunction-free" `Quick test_infer_disjunction_free;
          Alcotest.test_case "in the limit" `Quick test_infer_in_the_limit;
          qcheck prop_inferred_validates_inputs;
        ] );
    ]
