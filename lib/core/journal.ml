let magic = "LQJRNL1\n"

type header = { seed : int; engine : string; config : string }

type sync = Always | Batch | Off

let sync_to_string = function
  | Always -> "always"
  | Batch -> "batch"
  | Off -> "off"

let sync_of_string = function
  | "always" -> Some Always
  | "batch" -> Some Batch
  | "off" -> Some Off
  | _ -> None

type event =
  | Asked of string
  | Answered of string * Flaky.reply
  | Completed

(* Group commit: in [Batch] mode appends accumulate in [pending] and are
   written + fsync'd together once [batch_records] records (or a session
   milestone — [Completed], [close]) force a flush.  One fsync then covers
   the whole group, which is what rescues small sessions from paying the
   ~300µs fsync per answer that BENCH_PR2 exposed. *)
let batch_records = 8

type t = {
  fd : Unix.file_descr;
  sync : sync;
  lock_path : string;
  pending : Buffer.t;
  mutable pending_records : int;
  mutable closed : bool;
}

(* Telemetry: record/byte counters and the fsync latency histogram the
   BENCH_PR2 regression was blind to. *)
let m_records = Telemetry.Metrics.counter "learnq.journal.records"
let m_bytes = Telemetry.Metrics.counter "learnq.journal.bytes"
let m_fsyncs = Telemetry.Metrics.counter "learnq.journal.fsyncs"
let m_fsync_s = Telemetry.Metrics.histogram "learnq.journal.fsync_s"

(* ------------------------------------------------------------------ *)
(* CRC-32 (polynomial 0xEDB88320, the zlib/PNG one)                    *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Payload encoding                                                    *)
(* ------------------------------------------------------------------ *)

(* One tag byte, then the encoded item.  The header packs its fields with
   NUL separators (items and configs are produced by this code base and
   never contain NUL).  Since the telemetry PR the header also records the
   fsync policy as a trailing "sync=…" field; older journals simply lack it
   and decode with [sync = Always]. *)

let encode_header h ~sync =
  Printf.sprintf "H%d\x00%s\x00%s\x00sync=%s" h.seed h.engine h.config
    (sync_to_string sync)

let decode_header payload =
  (* payload starts after the 'H' tag *)
  match String.split_on_char '\x00' payload with
  | seed :: engine :: rest -> (
      match int_of_string_opt seed with
      | Some seed ->
          let rest, sync =
            match List.rev rest with
            | last :: front
              when String.length last > 5
                   && String.sub last 0 5 = "sync=" -> (
                match
                  sync_of_string
                    (String.sub last 5 (String.length last - 5))
                with
                | Some s -> (List.rev front, s)
                | None -> (rest, Always))
            | _ -> (rest, Always)
          in
          Some ({ seed; engine; config = String.concat "\x00" rest }, sync)
      | None -> None)
  | _ -> None

let encode_event = function
  | Asked item -> "?" ^ item
  | Answered (item, Flaky.Label true) -> "+" ^ item
  | Answered (item, Flaky.Label false) -> "-" ^ item
  | Answered (item, Flaky.Refused) -> "R" ^ item
  | Answered (item, Flaky.Timed_out) -> "T" ^ item
  | Completed -> "C"

let decode_event payload =
  if payload = "" then None
  else
    let rest () = String.sub payload 1 (String.length payload - 1) in
    match payload.[0] with
    | '?' -> Some (Asked (rest ()))
    | '+' -> Some (Answered (rest (), Flaky.Label true))
    | '-' -> Some (Answered (rest (), Flaky.Label false))
    | 'R' -> Some (Answered (rest (), Flaky.Refused))
    | 'T' -> Some (Answered (rest (), Flaky.Timed_out))
    | 'C' when String.length payload = 1 -> Some Completed
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Record framing                                                      *)
(* ------------------------------------------------------------------ *)

let put_le32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_le32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  put_le32 buf (String.length payload);
  put_le32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let fsync_timed fd =
  if Telemetry.enabled () then begin
    let t0 = Monotonic.now () in
    Unix.fsync fd;
    Telemetry.Metrics.observe m_fsync_s (Monotonic.now () -. t0);
    Telemetry.Metrics.incr m_fsyncs
  end
  else Unix.fsync fd

(* ------------------------------------------------------------------ *)
(* Writer mutual exclusion                                             *)
(* ------------------------------------------------------------------ *)

(* Two writers appending to one journal interleave frames into corruption
   that [recover] can only report, not repair.  A sidecar lock file taken
   atomically (and always holding the owner's pid) makes the second opener
   lose with a typed error instead.  A lock whose recorded pid is dead is the
   residue of a crash — SIGKILL runs no cleanup — and is stolen silently,
   which is what lets a restarted daemon resume the very journals its
   predecessor died holding. *)

let lock_path_of path = path ^ ".lock"

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) -> true (* EPERM: alive, not ours *)

let read_lock_pid lock_path =
  match In_channel.with_open_bin lock_path In_channel.input_all with
  | contents -> int_of_string_opt (String.trim contents)
  | exception Sys_error _ -> None

let acquire_lock path =
  let lock_path = lock_path_of path in
  (* The pid is written to a private temp file which is then [link(2)]ed
     into place (atomic, fails with EEXIST if held): the lock file can
     never be observed without its pid, so a rival reading it cannot
     misclassify a live lock as torn and steal it mid-creation. *)
  let try_take () =
    let tmp =
      Printf.sprintf "%s.%d.tmp" lock_path (Unix.getpid ())
    in
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    write_all fd (string_of_int (Unix.getpid ()));
    Unix.close fd;
    let r =
      match Unix.link tmp lock_path with
      | () -> `Taken
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> `Held
    in
    (try Unix.unlink tmp with Unix.Unix_error _ -> ());
    r
  in
  let rec go attempts =
    if attempts = 0 then
      (* Steal races resolve in one retry; give up rather than spin. *)
      Error
        (Error.journal_locked ~path
           ~pid:(Option.value ~default:0 (read_lock_pid lock_path)))
    else
      match try_take () with
      | `Taken -> Ok lock_path
      | `Held -> (
          match read_lock_pid lock_path with
          | Some pid when pid_alive pid -> Error (Error.journal_locked ~path ~pid)
          | Some _ ->
              (* Dead holder: the residue of a crash, steal it.  If a rival
                 steals first we lose the link(2) race on the next attempt
                 and report the (now live) holder. *)
              (try Unix.unlink lock_path with Unix.Unix_error _ -> ());
              go (attempts - 1)
          | None ->
              (* The lock vanished between the EEXIST and the read (the
                 holder released it): retry without stealing anything. *)
              go (attempts - 1))
  in
  go 2

let release_lock t =
  try Unix.unlink t.lock_path with Unix.Unix_error _ -> ()

(* Write out (and, unless the policy is [Off], fsync) everything pending. *)
let flush t =
  if Buffer.length t.pending > 0 then begin
    write_all t.fd (Buffer.contents t.pending);
    Buffer.clear t.pending;
    t.pending_records <- 0;
    if t.sync <> Off then fsync_timed t.fd
  end

let append_raw t s =
  if t.closed then invalid_arg "Journal.append: journal is closed";
  Telemetry.Metrics.incr m_bytes ~by:(String.length s);
  match t.sync with
  | Always ->
      write_all t.fd s;
      fsync_timed t.fd
  | Off -> write_all t.fd s
  | Batch ->
      Buffer.add_string t.pending s;
      t.pending_records <- t.pending_records + 1;
      if t.pending_records >= batch_records then flush t

let append t event =
  Telemetry.Metrics.incr m_records;
  append_raw t (frame (encode_event event));
  (* A completed session is a durability milestone: close the group. *)
  if event = Completed then flush t

let create_result ?(sync = Always) ~path header =
  (* Lock before truncating: losing the race must not destroy the winner's
     live journal. *)
  match acquire_lock path with
  | Error e -> Error e
  | Ok lock_path ->
      let fd =
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      let t =
        {
          fd;
          sync;
          lock_path;
          pending = Buffer.create 256;
          pending_records = 0;
          closed = false;
        }
      in
      (* The header must be durable before any event is: resume depends on it.
         Write it through directly even in Batch mode. *)
      write_all t.fd (magic ^ frame (encode_header header ~sync));
      if sync <> Off then fsync_timed t.fd;
      Ok t

let create ?sync ~path header =
  match create_result ?sync ~path header with
  | Ok t -> t
  | Error e -> invalid_arg ("Journal.create: " ^ Error.to_string e)

let close t =
  if not t.closed then begin
    flush t;
    t.closed <- true;
    Unix.close t.fd;
    release_lock t
  end

let abort t =
  if not t.closed then begin
    (* Simulated crash: pending [Batch] records are dropped, nothing is
       flushed — the file keeps only what a real crash would have kept.  The
       lock is released because it belongs to this (still live) process; a
       real crash leaves it stale and the next opener steals it. *)
    Buffer.clear t.pending;
    t.pending_records <- 0;
    t.closed <- true;
    Unix.close t.fd;
    release_lock t
  end

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

type recovered = {
  header : header option;
  recorded_sync : sync;
  events : event list;
  valid_bytes : int;
  dropped_bytes : int;
}

let parse ~source input =
  let len = String.length input in
  let magic_len = String.length magic in
  let prefix_of_magic =
    len < magic_len && String.equal input (String.sub magic 0 len)
  in
  if prefix_of_magic then
    (* The crash happened while the very first write was in flight. *)
    Ok
      {
        header = None;
        recorded_sync = Always;
        events = [];
        valid_bytes = 0;
        dropped_bytes = len;
      }
  else if len < magic_len || not (String.equal (String.sub input 0 magic_len) magic)
  then
    Error
      (Error.parse_error ~source:"journal"
         (Printf.sprintf "%s is not a learnq session journal" source))
  else
    let rec records pos header rsync events =
      let finish dropped =
        Ok
          {
            header;
            recorded_sync = rsync;
            events = List.rev events;
            valid_bytes = pos;
            dropped_bytes = dropped;
          }
      in
      if len - pos < 8 then finish (len - pos)
      else
        let plen = get_le32 input pos in
        let crc = get_le32 input (pos + 4) in
        if plen < 0 || pos + 8 + plen > len then
          (* Torn tail: the length prefix promises more bytes than exist.
             (An in-place corruption of the length field is indistinguishable
             from a torn write, so it too is treated as truncation.) *)
          finish (len - pos)
        else
          let payload = String.sub input (pos + 8) plen in
          if crc32 payload <> crc then
            Error
              (Error.corrupt_journal ~path:source ~offset:pos
                 "record checksum mismatch")
          else
            let next = pos + 8 + plen in
            if plen > 0 && payload.[0] = 'H' then
              match decode_header (String.sub payload 1 (plen - 1)) with
              | Some (h, s) when pos = magic_len && header = None ->
                  records next (Some h) s events
              | Some _ ->
                  Error
                    (Error.corrupt_journal ~path:source ~offset:pos
                       "unexpected header record")
              | None ->
                  Error
                    (Error.corrupt_journal ~path:source ~offset:pos
                       "undecodable header record")
            else begin
              match decode_event payload with
              | Some ev -> records next header rsync (ev :: events)
              | None ->
                  Error
                    (Error.corrupt_journal ~path:source ~offset:pos
                       "undecodable record payload")
            end
    in
    records magic_len None Always []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let recover ~path =
  match read_file path with
  | exception Sys_error msg ->
      Error (Error.invalid_input ~what:"--journal" msg)
  | input -> parse ~source:path input

let resume ?sync ~path () =
  (* Lock before reading: recovering under the lock means [valid_bytes] is
     still accurate when the torn tail is truncated away below — a rival
     writer can't append between the read and the ftruncate. *)
  match acquire_lock path with
  | Error e -> Error e
  | Ok lock_path -> (
      let fail e =
        (try Unix.unlink lock_path with Unix.Unix_error _ -> ());
        Error e
      in
      match recover ~path with
      | Error e -> fail e
      | Ok r -> (
          match r.header with
          | None ->
              fail
                (Error.invalid_input ~what:"--journal"
                   (path ^ " has no intact header record; nothing to resume"))
          | Some _ ->
              (* Continue under the recorded policy unless the caller
                 overrides. *)
              let sync = Option.value ~default:r.recorded_sync sync in
              let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
              Unix.ftruncate fd r.valid_bytes;
              ignore (Unix.lseek fd 0 Unix.SEEK_END);
              Ok
                ( {
                    fd;
                    sync;
                    lock_path;
                    pending = Buffer.create 256;
                    pending_records = 0;
                    closed = false;
                  },
                  r )))

let answered r =
  List.filter_map
    (function Answered (item, reply) -> Some (item, reply) | _ -> None)
    r.events
