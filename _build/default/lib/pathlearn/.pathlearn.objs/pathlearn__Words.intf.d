lib/pathlearn/words.mli: Automata Expr Format
