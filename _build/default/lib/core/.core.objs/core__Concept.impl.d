lib/core/concept.ml: Example Format List
