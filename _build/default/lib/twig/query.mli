(** Twig queries — the "highly practical and commonly used subclass of XPath"
    the paper learns over XML (Section 2, after Staworko & Wieczorek).

    A twig query is a node-selecting tree pattern: a {e spine} of steps from
    the document root down to the selected (output) node, where each step
    carries an axis (child [/] or descendant [//]), a node test (a label or
    the wildcard [*]), and a set of boolean {e filters} (tree-shaped
    predicates, XPath's [[...]]).  A {e path query} is a twig whose steps
    carry no filters.

    The {e anchored} fragment is the class shown learnable from positive
    examples alone: a twig is anchored when no wildcard node is incident to a
    descendant edge (every [*] is surrounded by [/] edges).  Anchoredness is
    what guarantees a unique least general generalization — see {!Lgg}. *)

type axis = Child | Descendant

type test = Label of string | Wildcard

type filter = { ftest : test; fsubs : (axis * filter) list }
(** A boolean condition: a node with test [ftest] exists, with, for each
    [(axis, sub)], a child ([Child]) or proper descendant ([Descendant])
    satisfying [sub]. *)

type step = { axis : axis; test : test; filters : (axis * filter) list }

type t = step list
(** Non-empty; the first step's axis is relative to a virtual root above the
    document root (so [\[{axis=Child; test=Label "a"; _}\]] is XPath [/a] and
    [Descendant] there is [//a]).  The last step is the output node. *)

val path : (axis * string) list -> t
(** Filterless query from (axis, label) pairs. *)

val size : t -> int
(** Number of pattern nodes (spine nodes + all filter nodes) — the query-size
    measure of experiment E3. *)

val filter_size : filter -> int

val depth : t -> int
(** Spine length. *)

val is_path : t -> bool
(** No filters anywhere. *)

val strip_filters : t -> t
(** Forget all filters, keeping the spine: the path-query projection. *)

val is_anchored : t -> bool
(** No wildcard node incident to a descendant edge, and the output node is
    not a wildcard. *)

val anchor : t -> t
(** Normalizes into the anchored fragment by {e generalizing}: every spine
    wildcard adjacent to a descendant edge is dropped (its incident edges
    fuse into one descendant edge) and every filter subtree rooted at such a
    wildcard is pruned at that point.  The result contains the input query
    (it selects at least the same nodes) and is anchored, unless the output
    node itself is an offending wildcard, in which case it is left in place
    (and {!is_anchored} stays false). *)

val of_example : Xmltree.Tree.t -> Xmltree.Tree.path -> t
(** The characteristic (most specific) twig of an annotated node: the exact
    root-to-node label path as spine with child axes, and at every spine
    node, each non-spine child subtree attached as a child filter.  It
    selects the annotated node in its document, and any query selecting that
    node in that document contains it. *)

val filter_of_tree : Xmltree.Tree.t -> filter
(** A tree viewed as the most specific filter it satisfies. *)

val tests_equal : test -> test -> bool
val equal : t -> t -> bool
(** Syntactic equality (filters compared up to ordering). *)

val labels : t -> string list
(** Distinct labels mentioned, sorted. *)

val pp : Format.formatter -> t -> unit
(** XPath syntax, e.g. [//a/b[c//d]/e]. *)

val pp_filter : Format.formatter -> filter -> unit
val to_string : t -> string
