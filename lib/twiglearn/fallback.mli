(** Graceful degradation for twig learning: the budget-triggered
    exact → anchored → approximate ladder.

    The paper's frame (Section 2): exact consistency for the full twig class
    is NP-complete, the anchored class is polynomial, and when consistency is
    out of reach "some of the annotations might be ignored to be able to
    compute in polynomial time a candidate query".  {!learn} makes that a
    runtime mechanism: it runs the exact bounded search under a resource
    budget, and on exhaustion — or when no bounded twig is consistent — falls
    back to the anchored PTIME learner, then to the annotation-dropping
    approximate learner, reporting which rung answered and what the search
    spent. *)

type level =
  | Exact  (** the bounded exhaustive search answered *)
  | Anchored  (** PTIME fallback: LGG of the positives, consistent *)
  | Approximate  (** annotations were ignored to restore consistency *)

type outcome = {
  query : Twig.Query.t option;
      (** [None] only when even the approximate learner has nothing to
          generalize from (no positive examples). *)
  level : level;
  degraded : bool;  (** [level <> Exact] *)
  dropped : int;  (** annotations ignored by the approximate rung *)
  training_errors : int;  (** kept examples the query still misclassifies *)
  spent : Core.Budget.stats;  (** what the exact search consumed *)
}

val learn :
  ?budget:Core.Budget.t ->
  ?filter_depth:int ->
  ?max_filters_per_node:int ->
  ?max_size:int ->
  Consistency.instance Core.Example.t list ->
  outcome
(** Never raises [Core.Budget.Out_of_budget] and never hangs: the exact
    search ([max_size] defaults to 4) is confined by [budget], and every
    fallback rung is polynomial. *)
