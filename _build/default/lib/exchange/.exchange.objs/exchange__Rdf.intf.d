lib/exchange/rdf.mli: Format Graphdb Xmltree
