lib/core/limit.ml: List
