(** Schema inference from positive examples — "the disjunctive multiplicity
    schemas are identifiable in the limit from positive examples only"
    (paper, Section 2).

    The learner generalizes observed children multisets label by label:

    + nodes with the same label contribute their children-label multisets;
    + multisets are grouped by {e support} (the set of labels present) —
      each group yields one clause, whose multiplicities cover the observed
      count range ([1,1] ↦ [1], [1,k] ↦ [+], ...);
    + clauses whose support is included in another clause's support are
      merged into it, relaxing the missing labels to nullable multiplicities
      ([1] ↦ [?], [+] ↦ [*]) — this introduces optionality without
      inventing disjunction;
    + remaining clauses (pairwise incomparable supports) stay disjuncts.

    On a stream of documents drawn from a target DMS whose every clause is
    eventually exhibited with its extreme counts, the output converges to a
    schema equivalent to the target (experiment E9). *)

val infer : Xmltree.Tree.t list -> Schema.t option
(** [None] when the documents disagree on the root label or the list is
    empty.  The result validates every input document. *)

val infer_disjunction_free : Xmltree.Tree.t list -> Schema.t option
(** Single-clause variant: one clause per label covering all observations —
    the MS restriction, coarser but always disjunction-free. *)

val infer_dme : Dme.Labels.t list -> Dme.t
(** The per-label generalization on raw children multisets (exposed for
    tests; the list must be non-empty). *)
