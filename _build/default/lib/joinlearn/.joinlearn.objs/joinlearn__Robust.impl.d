lib/joinlearn/robust.ml: Core Join List Signature
