lib/exchange/publish.ml: Array Graphdb List Rdf Relational String Tree Twig Xmltree
