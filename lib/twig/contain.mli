(** Containment and equivalence of twig queries.

    [subsumed q1 q2] decides q1 ⊆ q2 (every node selected by [q1] in any
    document is selected by [q2]) through a pattern homomorphism from [q2]
    into [q1]: child edges map to child edges, descendant edges to downward
    paths, labels to equal labels, wildcards to anything, output to output.

    Homomorphism existence is sound for the whole class; it is not complete
    in general — twig containment is coNP-hard (Miklau & Suciu), and e.g.
    [//c\[.//a/c\] ⊆ //c\[*\]] holds semantically with no homomorphism
    witnessing it (a wildcard filter can be entailed by a descendant
    filter).  On the queries the learners actually produce — anchored,
    duplicate-free, label-tested filters — the check is exact on every
    instance the randomized test suite generates, and soundness is the
    property minimization and pruning rely on.  {!subsumed_semantic} is an
    independent canonical-model check used as a cross-validation oracle in
    the test suite. *)

val subsumed : Query.t -> Query.t -> bool
(** [subsumed q1 q2] iff q1 ⊆ q2 (homomorphism check). *)

val equiv : Query.t -> Query.t -> bool
(** Containment both ways. *)

val filter_subsumed : Query.axis * Query.filter -> Query.axis * Query.filter -> bool
(** [filter_subsumed (a1,f1) (a2,f2)] iff the condition [(a1,f1)] implies
    [(a2,f2)] at any node: used to prune redundant filters.  Memoized in a
    bounded per-domain table keyed on hash-consed filter ids ({!Hcons}) —
    the quadratic loop of [Lgg.prune_maximal] re-tests the same edge pairs
    throughout a session, so repeats cost one int-pair lookup.  Hit/miss
    counts are the [learnq.twig.contain_cache_hits]/[_misses] counters. *)

val filter_subsumed_uncached :
  Query.axis * Query.filter -> Query.axis * Query.filter -> bool
(** The direct homomorphism check {!filter_subsumed} memoizes — exposed for
    the cache-equivalence property test and the ablation benchmark. *)

val set_filter_cache : ?enabled:bool -> ?capacity:int -> unit -> unit
(** Configure the containment memo: [enabled] (default [true]) switches the
    cache off for ablation; [capacity] (default 65536 entries, clamped to
    [>= 16]) bounds the table, which is cleared wholesale when full. *)

val canonical_instances :
  ?max_variants:int -> Query.t -> (Xmltree.Tree.t * Xmltree.Tree.path) list
(** Canonical models of a query: pattern instances where wildcards become a
    fresh label and each descendant edge is realized both directly and
    through one fresh intermediate node (capped at [max_variants], default
    64).  Each instance comes with the output node's path, and the query
    selects it. *)

val subsumed_semantic : ?max_variants:int -> Query.t -> Query.t -> bool
(** q1 ⊆ q2 decided by evaluating [q2] on the canonical instances of [q1].
    Exact when [max_variants] (default 64) covers all 2^d descendant-edge
    instantiations of [q1]; above the cap only the two extreme variants are
    tested and the check over-approximates.  Used in tests to cross-check
    {!subsumed}. *)
