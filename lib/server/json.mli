(** A minimal JSON codec for the wire protocol.

    The container ships no JSON library, and the protocol needs only the
    data model — objects, arrays, strings, numbers, booleans, null — so this
    is a self-contained recursive-descent parser and printer.  Numbers are
    floats (ints print without a trailing [.]); strings support the JSON
    escapes plus [\uXXXX] (decoded to UTF-8).  The printer emits everything
    on one line, which is what the line-delimited protocol wants. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One-line rendering; object fields keep their given order. *)

val parse : string -> (t, string) result
(** Parses a single JSON value (surrounding whitespace allowed); trailing
    garbage is an error. *)

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val mem : string -> t -> t option
(** Field lookup in an object. *)

val str : t -> string option
val num : t -> float option
val int : t -> int option
val bool : t -> bool option

val get_str : string -> t -> string option
(** [get_str k j] = [mem k j |> Option.bind str]. *)

val get_int : string -> t -> int option
val get_num : string -> t -> float option
val get_bool : string -> t -> bool option

val of_int : int -> t
val of_opt : ('a -> t) -> 'a option -> t
(** [None] maps to {!Null}. *)
