type item = {
  left : Relational.Relation.tuple;
  right : Relational.Relation.tuple;
  mask : Signature.mask;
}

let m_rows = Core.Telemetry.Metrics.counter "learnq.join.rows_labeled"
let m_signatures = Core.Telemetry.Metrics.counter "learnq.join.signatures"

module Session = struct
  type query = Signature.mask
  type nonrec item = item
  type state = { space : Signature.space; vs : Join.Version_space.t }

  (* The pool always comes from [items_of], whose space we can recover from
     any item; an empty pool only occurs in degenerate tests. *)
  let init items =
    let space =
      match items with
      | it :: _ ->
          ignore it.mask;
          Signature.space ~left_arity:(Array.length it.left)
            ~right_arity:(Array.length it.right)
      | [] -> Signature.space ~left_arity:1 ~right_arity:1
    in
    { space; vs = Join.Version_space.init space }

  let record st item label =
    Core.Telemetry.Metrics.incr m_rows;
    Join.Version_space.flush_tests ();
    { st with vs = Join.Version_space.record st.vs item.mask label }

  let determined st item = Join.Version_space.determined st.vs item.mask

  let candidate st =
    Join.Version_space.flush_tests ();
    if Join.Version_space.consistent st.vs then
      Some (Join.Version_space.most_specific st.vs)
    else None

  let pp_item ppf it =
    Format.fprintf ppf "%a ⋈ %a" Relational.Relation.pp_tuple it.left
      Relational.Relation.pp_tuple it.right

  let pp_query ppf _m = Format.pp_print_string ppf "<predicate mask>"
end

module Loop = Core.Interact.Make (Session)

let items_of space left right =
  Core.Telemetry.with_span "join.signatures" @@ fun () ->
  let items =
    List.concat_map
      (fun rt ->
        List.map
          (fun st ->
            { left = rt; right = st; mask = Signature.signature space rt st })
          (Relational.Relation.tuples right))
      (Relational.Relation.tuples left)
  in
  if Core.Telemetry.enabled () then
    Core.Telemetry.Metrics.incr m_signatures ~by:(List.length items);
  items

let lattice_strategy _rng (st : Session.state) items =
  let specific = Join.Version_space.most_specific st.vs in
  let score it = Signature.popcount (Signature.inter specific it.mask) in
  match items with
  | [] -> invalid_arg "lattice_strategy: no informative item"
  | first :: _ ->
      List.fold_left
        (fun best it -> if score it > score best then it else best)
        first items

let split_strategy ?(sample = 48) () rng (st : Session.state) items =
  let candidates =
    if List.length items <= sample then items
    else Core.Prng.sample rng sample items
  in
  let others it = List.filter (fun o -> o != it) items in
  let determined_count vs pool =
    List.length
      (List.filter
         (fun o -> Join.Version_space.determined vs o.mask <> None)
         pool)
  in
  let score it =
    let rest = others it in
    let if_pos =
      determined_count (Join.Version_space.record st.vs it.mask true) rest
    and if_neg =
      determined_count (Join.Version_space.record st.vs it.mask false) rest
    in
    min if_pos if_neg
  in
  if candidates = [] then invalid_arg "split_strategy: no informative item";
  (* Score every candidate once (the old fold recomputed [score best] at
     each comparison), through the domain pool: each score is an independent
     O(|items|) mask scan, and the argmax below is a sequential
     left-to-right fold over input-order results, so the chosen item — and
     hence the question sequence — is identical at every pool size. *)
  let scores = Core.Pool.map_list (Core.Pool.default ()) score candidates in
  match List.combine candidates scores with
  | [] -> assert false
  | (first, s0) :: rest ->
      fst
        (List.fold_left
           (fun (best, sb) (it, s) -> if s > sb then (it, s) else (best, sb))
           (first, s0) rest)

(* Journal codec: the pool is the Cartesian product of two relations that
   resume regenerates from the journaled seed, so an item is a pair of row
   indices. *)
let index_of tuples t =
  let rec go i = function
    | [] -> None
    | x :: rest -> if x = t then Some i else go (i + 1) rest
  in
  go 0 tuples

let encode_item ~left ~right (it : item) =
  match
    ( index_of (Relational.Relation.tuples left) it.left,
      index_of (Relational.Relation.tuples right) it.right )
  with
  | Some i, Some j -> Printf.sprintf "%d:%d" i j
  | _ -> invalid_arg "Joinlearn.Interactive.encode_item: tuple not in relation"

let decode_item ~left ~right s =
  match String.split_on_char ':' s with
  | [ i; j ] -> (
      match (int_of_string_opt i, int_of_string_opt j) with
      | Some i, Some j -> (
          match
            ( List.nth_opt (Relational.Relation.tuples left) i,
              List.nth_opt (Relational.Relation.tuples right) j )
          with
          | Some lt, Some rt ->
              let space =
                Signature.space
                  ~left_arity:(Relational.Relation.arity left)
                  ~right_arity:(Relational.Relation.arity right)
              in
              Some
                { left = lt; right = rt; mask = Signature.signature space lt rt }
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Checkpoint codec: the version space is its lattice bounds — a handful of
   bitmasks.  The space is regenerated from the relations on resume (like
   [decode_item] does), with the dimension recorded as a guard against a
   snapshot from a different instance. *)
let encode_state (st : Session.state) =
  let specific, negatives = Join.Version_space.snapshot st.vs in
  String.concat " "
    ("join1"
    :: string_of_int (Signature.dimension st.space)
    :: string_of_int specific
    :: List.map string_of_int negatives)

let decode_state ~left ~right s =
  let space =
    Signature.space
      ~left_arity:(Relational.Relation.arity left)
      ~right_arity:(Relational.Relation.arity right)
  in
  let full = Signature.full space in
  let mask_of tok =
    match int_of_string_opt tok with
    | Some m when m >= 0 && m <= full -> Ok m
    | Some m -> Error (Printf.sprintf "mask %d outside the %d-pair space" m
                         (Signature.dimension space))
    | None -> Error (Printf.sprintf "bad mask token %S" tok)
  in
  match String.split_on_char ' ' s with
  | "join1" :: dim :: specific :: negatives -> (
      if int_of_string_opt dim <> Some (Signature.dimension space) then
        Error
          (Printf.sprintf "snapshot dimension %s but instance has %d" dim
             (Signature.dimension space))
      else
        match mask_of specific with
        | Error _ as e -> e
        | Ok specific -> (
            let rec masks acc = function
              | [] -> Ok (List.rev acc)
              | tok :: rest -> (
                  match mask_of tok with
                  | Error _ as e -> e
                  | Ok m -> masks (m :: acc) rest)
            in
            match masks [] negatives with
            | Error _ as e -> e
            | Ok negatives ->
                Ok
                  {
                    Session.space;
                    vs = Join.Version_space.restore space ~specific ~negatives;
                  }))
  | _ -> Error "not a join state snapshot"

let run_with_goal ?(rng = Core.Prng.create 0) ?strategy ?budget ?profile ?retry
    ~left ~right ~goal () =
  let space =
    Signature.space
      ~left_arity:(Relational.Relation.arity left)
      ~right_arity:(Relational.Relation.arity right)
  in
  let goal_mask = Signature.of_predicate space goal in
  let items = items_of space left right in
  let oracle it = Signature.subset goal_mask it.mask in
  match profile with
  | None -> Loop.run ~rng ?strategy ?budget ~oracle ~items ()
  | Some profile ->
      (* The crowdsourcing simulation: the goal-holding user answers through
         a fault injector. *)
      Loop.run_flaky ~rng ?strategy ?budget ?retry
        ~oracle:(Core.Flaky.wrap ~profile ~rng oracle)
        ~items ()
