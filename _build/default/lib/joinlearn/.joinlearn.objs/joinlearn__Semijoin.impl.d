lib/joinlearn/semijoin.ml: Hashtbl List Relational Signature
