lib/xmltree/tree.ml: Format List Set String
