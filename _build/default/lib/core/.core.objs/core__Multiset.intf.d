lib/core/multiset.mli: Format Map
