(** A blocking keep-alive client for the wire protocol — what the load
    generator, the CI smoke test, and the end-to-end tests drive the
    daemon with. *)

type t

val connect : host:string -> port:int -> (t, string) result

val request :
  t ->
  meth:string ->
  path:string ->
  ?tenant:string ->
  ?headers:(string * string) list ->
  ?body:Json.t ->
  unit ->
  (int * Json.t, string) result
(** One round trip; returns status and parsed body.  A non-JSON body
    (e.g. [/metrics]) comes back as [Json.Str raw].  [headers] are extra
    request headers (e.g. [("X-Learnq-Trace", id)]). *)

val close : t -> unit
