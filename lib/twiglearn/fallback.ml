type level = Exact | Anchored | Approximate

type outcome = {
  query : Twig.Query.t option;
  level : level;
  degraded : bool;
  dropped : int;
  training_errors : int;
  spent : Core.Budget.stats;
}

(* Fuel per ladder phase: the exact search usually burns the whole budget, so
   knowing how much each rung cost is what tells an operator whether raising
   the budget would buy a better (less degraded) answer. *)
let m_fuel_exact = Core.Telemetry.Metrics.counter "learnq.fallback.fuel_exact"

let m_fuel_descend =
  Core.Telemetry.Metrics.counter "learnq.fallback.fuel_descend"

let m_degraded = Core.Telemetry.Metrics.counter "learnq.fallback.degraded"

let learn ?budget ?filter_depth ?max_filters_per_node ?(max_size = 4) examples =
  let budget =
    match budget with Some b -> b | None -> Core.Budget.unlimited ()
  in
  let phase_fuel counter f =
    if not (Core.Telemetry.enabled ()) then f ()
    else begin
      let before = (Core.Budget.stats budget).fuel_spent in
      Fun.protect
        ~finally:(fun () ->
          let spent = (Core.Budget.stats budget).fuel_spent - before in
          if spent > 0 then Core.Telemetry.Metrics.incr counter ~by:spent)
        f
    end
  in
  let finish ?(level = Exact) ?(dropped = 0) ?(training_errors = 0) query =
    if level <> Exact then Core.Telemetry.Metrics.incr m_degraded;
    {
      query;
      level;
      degraded = level <> Exact;
      dropped;
      training_errors;
      spent = Core.Budget.stats budget;
    }
  in
  let descend () =
    Core.Telemetry.with_span "twiglearn.fallback.descend" @@ fun () ->
    phase_fuel m_fuel_descend @@ fun () ->
    match Consistency.anchored examples with
    | Some q -> finish ~level:Anchored (Some q)
    | None -> (
        match Approximate.learn examples with
        | Some r ->
            finish ~level:Approximate
              ~dropped:(List.length r.dropped)
              ~training_errors:r.training_errors (Some r.query)
        | None -> finish ~level:Approximate None)
  in
  match
    Core.Budget.run budget (fun () ->
        Core.Telemetry.with_span "twiglearn.fallback.exact" @@ fun () ->
        phase_fuel m_fuel_exact @@ fun () ->
        Consistency.bounded ~budget ?filter_depth ?max_filters_per_node
          ~max_size examples)
  with
  | Core.Budget.Done (Some q) -> finish (Some q)
  (* The whole bounded space is inconsistent with the sample, or the budget
     ran out mid-search: descend the ladder either way. *)
  | Core.Budget.Done None | Core.Budget.Exhausted _ -> descend ()
