lib/pathlearn/words.ml: Automata Expr
