lib/uschema/multiplicity.mli: Format
