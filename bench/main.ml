(* Entry point of the experiment harness.

   Usage:
     dune exec bench/main.exe               # all experiments + micro-benches
     dune exec bench/main.exe -- e3 e5      # selected experiments
     dune exec bench/main.exe -- micro      # micro-benchmarks only

   A wall-clock budget for the whole run can be set with --timeout SECS or
   the LEARNQ_TIMEOUT environment variable; experiments still pending when
   it runs out are skipped (reported on stderr), so a CI lane can cap the
   harness without killing it. *)

let usage () =
  print_endline
    "usage: main.exe [--timeout SECS] [e1 .. e17 | micro | pr2 | pr3 | pr4 | pr5 | pr6 | pr7 | pr8 | pr9 | pr10]...";
  print_endline "  with no arguments, runs every experiment and the";
  print_endline "  bechamel micro-benchmarks.";
  print_endline "  LEARNQ_TIMEOUT=SECS caps the whole run (like --timeout).";
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let env_timeout =
    match Sys.getenv_opt "LEARNQ_TIMEOUT" with
    | None -> None
    | Some s -> (
        match float_of_string_opt s with
        | Some t when t > 0.0 -> Some t
        | _ ->
            prerr_endline "LEARNQ_TIMEOUT must be a positive number of seconds";
            exit 64)
  in
  let rec split_args timeout acc = function
    | "--timeout" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t > 0.0 -> split_args (Some t) acc rest
        | _ -> usage ())
    | [ "--timeout" ] -> usage ()
    | a :: rest -> split_args timeout (a :: acc) rest
    | [] -> (timeout, List.rev acc)
  in
  let timeout, names = split_args env_timeout [] args in
  let budget = Core.Budget.create ?timeout () in
  let guarded name f =
    if Core.Budget.exhausted budget then
      Printf.eprintf "skipping %s: the time budget ran out\n%!" name
    else
      match f () with
      | () -> ()
      | exception Core.Budget.Out_of_budget ->
          Printf.eprintf "%s interrupted: the time budget ran out\n%!" name
  in
  let run_experiment name =
    match List.assoc_opt name Experiments.all with
    | Some f -> guarded name f
    | None -> (
        match name with
        | "micro" -> guarded "micro" Micro.run
        | "pr2" -> guarded "pr2" Recovery.run
        | "pr3" -> guarded "pr3" Overhead.run
        | "pr4" -> guarded "pr4" Hotpath.run
        | "pr5" -> guarded "pr5" Fuzzbench.run
        | "pr6" -> guarded "pr6" Serve.run
        | "pr7" -> guarded "pr7" Storage.run
        | "pr8" -> guarded "pr8" Soak.run
        | "pr9" -> guarded "pr9" Corpusbench.run
        | "pr10" -> guarded "pr10" Sustain.run
        | _ -> usage ())
  in
  match names with
  | [] ->
      List.iter (fun (name, f) -> guarded name f) Experiments.all;
      guarded "micro" Micro.run;
      guarded "pr2" Recovery.run;
      guarded "pr3" Overhead.run;
      guarded "pr4" Hotpath.run;
      guarded "pr5" Fuzzbench.run;
      guarded "pr6" Serve.run;
      guarded "pr7" Storage.run;
      guarded "pr8" Soak.run;
      guarded "pr9" Corpusbench.run;
      guarded "pr10" Sustain.run
  | names -> List.iter run_experiment names
