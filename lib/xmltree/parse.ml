exception Syntax_error of string

(* Internal: carries the raw offset so the [_result] entry points can report
   a structured line/column position; the legacy raising entry points format
   it into a [Syntax_error] message. *)
exception Located of string * int

(* A tiny hand-rolled scanner shared by both parsers. *)
type cursor = { input : string; mutable pos : int }

let peek cur =
  if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let fail cur msg = raise (Located (msg, cur.pos))

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name cur =
  let start = cur.pos in
  let rec go () =
    match peek cur with
    | Some c when is_name_char c ->
        advance cur;
        go ()
    | _ -> ()
  in
  go ();
  if cur.pos = start then fail cur "expected a name";
  String.sub cur.input start (cur.pos - start)

(* ------------------------------------------------------------------ *)
(* XML syntax                                                          *)
(* ------------------------------------------------------------------ *)

let starts_with cur prefix =
  let n = String.length prefix in
  cur.pos + n <= String.length cur.input
  && String.sub cur.input cur.pos n = prefix

let skip_until cur stop =
  let n = String.length stop in
  let rec go () =
    if cur.pos + n > String.length cur.input then fail cur ("unterminated " ^ stop)
    else if String.sub cur.input cur.pos n = stop then cur.pos <- cur.pos + n
    else (
      advance cur;
      go ())
  in
  go ()

let skip_misc cur =
  let rec go () =
    skip_ws cur;
    if starts_with cur "<?" then (
      skip_until cur "?>";
      go ())
    else if starts_with cur "<!--" then (
      skip_until cur "-->";
      go ())
    else if starts_with cur "<!DOCTYPE" then (
      skip_until cur ">";
      go ())
  in
  go ()

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '&' then
      let entity_end =
        try String.index_from s i ';' with Not_found -> -1
      in
      if entity_end = -1 then (
        Buffer.add_char buf '&';
        go (i + 1))
      else
        let entity = String.sub s (i + 1) (entity_end - i - 1) in
        let repl =
          match entity with
          | "lt" -> "<"
          | "gt" -> ">"
          | "amp" -> "&"
          | "apos" -> "'"
          | "quot" -> "\""
          | _ -> "&" ^ entity ^ ";"
        in
        Buffer.add_string buf repl;
        go (entity_end + 1)
    else (
      Buffer.add_char buf s.[i];
      go (i + 1))
  in
  go 0;
  Buffer.contents buf

let read_attr_value cur =
  let quote =
    match peek cur with
    | Some (('"' | '\'') as q) ->
        advance cur;
        q
    | _ -> fail cur "expected a quoted attribute value"
  in
  let start = cur.pos in
  let rec go () =
    match peek cur with
    | Some c when c = quote -> ()
    | Some _ ->
        advance cur;
        go ()
    | None -> fail cur "unterminated attribute value"
  in
  go ();
  let v = String.sub cur.input start (cur.pos - start) in
  advance cur;
  unescape v

let rec parse_element cur =
  expect cur '<';
  let name = read_name cur in
  let rec attrs acc =
    skip_ws cur;
    match peek cur with
    | Some '/' | Some '>' -> List.rev acc
    | Some c when is_name_char c ->
        let attr = read_name cur in
        skip_ws cur;
        expect cur '=';
        skip_ws cur;
        let value = read_attr_value cur in
        attrs (Tree.node ("@" ^ attr) [ Tree.text value ] :: acc)
    | _ -> fail cur "malformed attribute list"
  in
  let attr_children = attrs [] in
  match peek cur with
  | Some '/' ->
      advance cur;
      expect cur '>';
      Tree.node name attr_children
  | Some '>' ->
      advance cur;
      let children = parse_content cur in
      (* closing tag *)
      expect cur '<';
      expect cur '/';
      let close = read_name cur in
      if close <> name then
        fail cur (Printf.sprintf "mismatched closing tag </%s> for <%s>" close name);
      skip_ws cur;
      expect cur '>';
      Tree.node name (attr_children @ children)
  | _ -> fail cur "malformed element"

and parse_content cur =
  let rec go acc =
    if starts_with cur "<!--" then (
      skip_until cur "-->";
      go acc)
    else if starts_with cur "<![CDATA[" then (
      cur.pos <- cur.pos + 9;
      let start = cur.pos in
      skip_until cur "]]>";
      let data = String.sub cur.input start (cur.pos - start - 3) in
      let acc = if data = "" then acc else Tree.text data :: acc in
      go acc)
    else if starts_with cur "</" then List.rev acc
    else
      match peek cur with
      | Some '<' -> go (parse_element cur :: acc)
      | None -> List.rev acc
      | Some _ ->
          let start = cur.pos in
          let rec scan () =
            match peek cur with
            | Some '<' | None -> ()
            | Some _ ->
                advance cur;
                scan ()
          in
          scan ();
          let txt = unescape (String.sub cur.input start (cur.pos - start)) in
          let trimmed = String.trim txt in
          let acc = if trimmed = "" then acc else Tree.text trimmed :: acc in
          go acc
  in
  go []

let xml_unlocated input =
  let cur = { input; pos = 0 } in
  skip_misc cur;
  (match peek cur with
  | Some '<' -> ()
  | _ -> fail cur "expected an element");
  let root = parse_element cur in
  skip_misc cur;
  (match peek cur with
  | None -> ()
  | Some _ -> fail cur "trailing content after the root element");
  root

(* Legacy raising entry points keep the historical "… at offset N" message;
   the [_result] variants turn the offset into a line/column position. *)
let relocate f =
  try f () with
  | Located (msg, pos) ->
      raise (Syntax_error (Printf.sprintf "%s at offset %d" msg pos))

let located_result ~source ~input f =
  match f () with
  | v -> Ok v
  | exception Located (msg, offset) ->
      Error (Core.Error.at_offset ~source ~input ~offset msg)

let xml input = relocate (fun () -> xml_unlocated input)

let xml_result ?(source = "<xml>") input =
  located_result ~source ~input (fun () -> xml_unlocated input)

(* ------------------------------------------------------------------ *)
(* Term syntax: a(b, c(d))                                             *)
(* ------------------------------------------------------------------ *)

let is_term_label_char c = is_name_char c || c = '@' || c = '#' || c = ' '

let read_term_label cur =
  let start = cur.pos in
  let rec go () =
    match peek cur with
    | Some c when is_term_label_char c ->
        advance cur;
        go ()
    | _ -> ()
  in
  go ();
  let raw = String.sub cur.input start (cur.pos - start) in
  let label = String.trim raw in
  if label = "" then fail cur "expected a label";
  label

let rec parse_term cur =
  skip_ws cur;
  let label = read_term_label cur in
  skip_ws cur;
  match peek cur with
  | Some '(' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ')' then (
        advance cur;
        Tree.leaf label)
      else
        let rec children acc =
          let c = parse_term cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              children (c :: acc)
          | Some ')' ->
              advance cur;
              List.rev (c :: acc)
          | _ -> fail cur "expected ',' or ')'"
        in
        Tree.node label (children [])
  | _ -> Tree.leaf label

let term_unlocated input =
  let cur = { input; pos = 0 } in
  let t = parse_term cur in
  skip_ws cur;
  match peek cur with
  | None -> t
  | Some _ -> fail cur "trailing content after the term"

let term input = relocate (fun () -> term_unlocated input)

let term_result ?(source = "<term>") input =
  located_result ~source ~input (fun () -> term_unlocated input)
