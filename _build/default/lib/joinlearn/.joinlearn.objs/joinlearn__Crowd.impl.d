lib/joinlearn/crowd.ml: Interactive Relational Signature
