module type SESSION = sig
  type query
  type item
  type state

  val init : item list -> state
  val record : state -> item -> bool -> state
  val determined : state -> item -> bool option
  val candidate : state -> query option
  val pp_item : Format.formatter -> item -> unit
  val pp_query : Format.formatter -> query -> unit
end

type ('state, 'item) strategy = Prng.t -> 'state -> 'item list -> 'item

let first_strategy _rng _st = function
  | [] -> invalid_arg "Interact.first_strategy: no informative item"
  | item :: _ -> item

let random_strategy rng _st items = Prng.pick rng items

module Make (S : SESSION) = struct
  type outcome = {
    query : S.query option;
    questions : int;
    asked : (S.item * bool) list;
    pruned : int;
    refused : int;
    degraded : bool;
    state : S.state;
  }

  let run_flaky ?(rng = Prng.create 0) ?(strategy = first_strategy)
      ?(max_questions = max_int) ?budget ~oracle ~items () =
    let budget =
      match budget with Some b -> b | None -> Budget.unlimited ()
    in
    let finish ~degraded state asked questions pruned refused =
      {
        query = S.candidate state;
        questions;
        asked = List.rev asked;
        pruned;
        refused;
        degraded;
        state;
      }
    in
    let rec loop state remaining asked questions pruned refused =
      (* Split the remaining pool into items whose label is already forced
         (uninformative — pruned without asking) and genuinely open ones.
         Determination checks dominate the session cost, so the budget is
         spent here; exhaustion ends the session with the current candidate
         rather than an exception — a degraded but usable outcome. *)
      match
        List.partition
          (fun it ->
            Budget.tick budget;
            S.determined state it = None)
          remaining
      with
      | exception Budget.Out_of_budget ->
          finish ~degraded:true state asked questions pruned refused
      | open_items, newly_determined ->
          let pruned = pruned + List.length newly_determined in
          if open_items = [] || questions >= max_questions then
            finish ~degraded:false state asked questions pruned refused
          else
            let item = strategy rng state open_items in
            let remaining = List.filter (fun it -> it != item) open_items in
            (match oracle item with
            | Flaky.Refused | Flaky.Timed_out ->
                (* The user never answered: set the question aside and keep
                   the session going on the rest of the pool. *)
                loop state remaining asked questions pruned (refused + 1)
            | Flaky.Label label ->
                let state = S.record state item label in
                loop state remaining
                  ((item, label) :: asked)
                  (questions + 1) pruned refused)
    in
    loop (S.init items) items [] 0 0 0

  let run ?rng ?strategy ?max_questions ?budget ~oracle ~items () =
    run_flaky ?rng ?strategy ?max_questions ?budget
      ~oracle:(fun it -> Flaky.Label (oracle it))
      ~items ()

  let cost ~price_per_question outcome =
    price_per_question *. float_of_int outcome.questions
end
