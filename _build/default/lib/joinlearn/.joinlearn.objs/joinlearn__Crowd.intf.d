lib/joinlearn/crowd.mli: Core Interactive Relational
