type ('q, 'i) setup = {
  learn : 'i Example.t list -> 'q option;
  selects : 'q -> 'i -> bool;
  sample : Prng.t -> 'i;
  target : 'i -> bool;
}

let draw_sample setup rng m =
  List.init m (fun _ ->
      let x = setup.sample rng in
      Example.of_labeled (x, setup.target x))

let error setup rng q ~samples =
  let wrong = ref 0 in
  for _ = 1 to samples do
    let x = setup.sample rng in
    if setup.selects q x <> setup.target x then incr wrong
  done;
  float_of_int !wrong /. float_of_int samples

type curve_point = {
  train_size : int;
  mean_error : float;
  max_error : float;
  failures : int;
}

let trial_errors setup ~seed ~size ~trials ~test_samples =
  List.init trials (fun t ->
      let rng = Prng.create ((seed * 7919) + (t * 104729) + size) in
      let sample = draw_sample setup rng size in
      match setup.learn sample with
      | None -> None
      | Some q -> Some (error setup rng q ~samples:test_samples))

let learning_curve setup ~seed ~sizes ?(trials = 10) ?(test_samples = 200) () =
  List.map
    (fun size ->
      let outcomes = trial_errors setup ~seed ~size ~trials ~test_samples in
      let errors =
        List.map (function Some e -> e | None -> 1.0) outcomes
      in
      {
        train_size = size;
        mean_error = Stats.mean errors;
        max_error = Stats.maximum errors;
        failures =
          List.length (List.filter (fun o -> o = None) outcomes);
      })
    sizes

let sample_complexity setup ~seed ~epsilon ~delta ?(trials = 10)
    ?(test_samples = 200) ?(max_size = 256) () =
  let rec search size =
    if size > max_size then None
    else
      let outcomes = trial_errors setup ~seed ~size ~trials ~test_samples in
      let bad =
        List.length
          (List.filter
             (function None -> true | Some e -> e > epsilon)
             outcomes)
      in
      if float_of_int bad /. float_of_int trials <= delta then Some size
      else search (size * 2)
  in
  search 1
