(** Learning equi-join predicates (hence natural joins) from labeled tuple
    pairs — the tractable side of the paper's Section 3: "for the natural
    joins, we have proved the tractability of some problems of interest,
    such as testing consistency of a set of positive and negative examples".

    Instances are tuple pairs; a predicate θ selects a pair iff the tuples
    agree on every attribute pair in θ.  The most specific predicate
    selecting all positives is the intersection of their signatures, and —
    because shrinking θ only enlarges the selected set — a consistent
    predicate exists iff that intersection already rejects every negative.
    All decisions below are polynomial. *)

type example = Signature.mask Core.Example.t
(** Examples are carried as signatures: label a tuple pair, keep its
    agreement mask. *)

val example :
  Signature.space ->
  Relational.Relation.tuple * Relational.Relation.tuple ->
  bool ->
  example

val most_specific : Signature.space -> Signature.mask list -> Signature.mask
(** Intersection of positive signatures ([full] on the empty list). *)

val consistent : Signature.space -> example list -> bool
val learn : Signature.space -> example list -> Signature.mask option
(** The most specific consistent predicate, when one exists. *)

(** The version space between the most specific predicate and the negative
    ceiling, with the informativeness tests driving the interactive
    protocol. *)
module Version_space : sig
  type t

  val init : Signature.space -> t
  val record : t -> Signature.mask -> bool -> t
  val consistent : t -> bool
  val most_specific : t -> Signature.mask

  val determined : t -> Signature.mask -> bool option
  (** Forced label of an unlabeled pair with the given signature, if any:
      [Some true] when every consistent predicate selects it, [Some false]
      when none does. *)

  val snapshot : t -> Signature.mask * Signature.mask list
  (** [(most_specific, negatives)] — the whole version space as plain
      bitmasks, for journal checkpoints. *)

  val restore :
    Signature.space ->
    specific:Signature.mask ->
    negatives:Signature.mask list ->
    t
  (** Inverse of {!snapshot} over a regenerated space. *)

  val flush_tests : unit -> unit
  (** Fold the shadow count of {!determined} calls into the
      [learnq.join.signature_tests] counter.  {!determined} is too hot for
      even the disabled-telemetry branch, so it counts into a plain int;
      callers flush at per-question boundaries. *)
end
